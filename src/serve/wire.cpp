#include "serve/wire.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "store/format.hpp"

namespace omptune::serve {

namespace {

// Strings travel as u16 length + bytes; 64 KiB per string is far beyond any
// app/arch/config-key and keeps a garbled length from looking plausible.
constexpr std::size_t kMaxStringBytes = 0xFFFF;

void append_string(std::string& out, std::string_view text) {
  if (text.size() > kMaxStringBytes) {
    throw WireError("string field of " + std::to_string(text.size()) +
                    " bytes exceeds the 64 KiB field limit");
  }
  store::append_scalar<std::uint16_t>(out, static_cast<std::uint16_t>(text.size()));
  out.append(text.data(), text.size());
}

/// Bounds-checked forward cursor over one frame payload.
class Cursor {
 public:
  explicit Cursor(std::string_view payload) : payload_(payload) {}

  template <typename T>
  T scalar(const char* what) {
    if (payload_.size() - at_ < sizeof(T)) {
      throw WireError(std::string("payload ends inside ") + what);
    }
    T value;
    std::memcpy(&value, payload_.data() + at_, sizeof(T));
    at_ += sizeof(T);
    return value;
  }

  std::string string(const char* what) {
    const auto len = scalar<std::uint16_t>(what);
    if (payload_.size() - at_ < len) {
      throw WireError(std::string("payload ends inside ") + what);
    }
    std::string value(payload_.substr(at_, len));
    at_ += len;
    return value;
  }

  void expect_consumed(const char* what) const {
    if (at_ != payload_.size()) {
      throw WireError(std::string(what) + " carries " +
                      std::to_string(payload_.size() - at_) +
                      " trailing bytes");
    }
  }

 private:
  std::string_view payload_;
  std::size_t at_ = 0;
};

/// Wrap `payload` in its length prefix and append to `out`.
void frame(std::string& out, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw WireError("payload of " + std::to_string(payload.size()) +
                    " bytes exceeds the frame limit");
  }
  store::append_scalar<std::uint32_t>(out,
                                      static_cast<std::uint32_t>(payload.size()));
  out += payload;
}

}  // namespace

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::Recommend: return "recommend";
    case MsgType::BestSetting: return "best-setting";
    case MsgType::Marginal: return "marginal";
    case MsgType::Stats: return "stats";
    case MsgType::Swap: return "swap";
    case MsgType::Shutdown: return "shutdown";
    case MsgType::RecommendReply: return "recommend-reply";
    case MsgType::BestSettingReply: return "best-setting-reply";
    case MsgType::MarginalReply: return "marginal-reply";
    case MsgType::StatsReply: return "stats-reply";
    case MsgType::SwapReply: return "swap-reply";
    case MsgType::Overloaded: return "overloaded";
    case MsgType::Error: return "error";
    case MsgType::ShutdownReply: return "shutdown-reply";
    case MsgType::DeadlineExceeded: return "deadline-exceeded";
  }
  return "unknown";
}

bool is_request_type(MsgType type) {
  switch (type) {
    case MsgType::Recommend:
    case MsgType::BestSetting:
    case MsgType::Marginal:
    case MsgType::Stats:
    case MsgType::Swap:
    case MsgType::Shutdown:
      return true;
    default:
      return false;
  }
}

bool is_retryable_reply(MsgType type) {
  return type == MsgType::Overloaded || type == MsgType::DeadlineExceeded;
}

bool is_idempotent_request(MsgType type) {
  switch (type) {
    case MsgType::Recommend:
    case MsgType::BestSetting:
    case MsgType::Marginal:
    case MsgType::Stats:
      return true;
    default:
      return false;
  }
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n > 0) {
      data.remove_prefix(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE, ECONNRESET, EAGAIN-on-timeout, anything terminal
  }
  return true;
}

void encode_request(std::string& out, const Request& request) {
  std::string payload;
  store::append_scalar<std::uint8_t>(payload,
                                     static_cast<std::uint8_t>(request.type));
  switch (request.type) {
    case MsgType::Recommend:
      append_string(payload, request.app);
      append_string(payload, request.arch);
      break;
    case MsgType::BestSetting:
      append_string(payload, request.arch);
      append_string(payload, request.app);
      append_string(payload, request.input);
      store::append_scalar<std::int32_t>(payload, request.threads);
      break;
    case MsgType::Marginal:
      append_string(payload, request.arch);
      append_string(payload, request.variable);
      append_string(payload, request.value);
      break;
    case MsgType::Stats:
    case MsgType::Shutdown:
      break;
    case MsgType::Swap:
      store::append_scalar<std::uint16_t>(
          payload, static_cast<std::uint16_t>(request.store_paths.size()));
      for (const std::string& path : request.store_paths) {
        append_string(payload, path);
      }
      break;
    default:
      throw WireError(std::string("cannot encode '") + to_string(request.type) +
                      "' as a request");
  }
  frame(out, payload);
}

void encode_response(std::string& out, const Response& response) {
  std::string payload;
  store::append_scalar<std::uint8_t>(payload,
                                     static_cast<std::uint8_t>(response.type));
  store::append_scalar<std::uint64_t>(payload, response.generation);
  switch (response.type) {
    case MsgType::RecommendReply: {
      store::append_scalar<std::uint8_t>(payload, response.found ? 1 : 0);
      store::append_scalar<double>(payload, response.speedup);
      append_string(payload, response.config_key);
      store::append_scalar<std::uint16_t>(
          payload,
          static_cast<std::uint16_t>(response.variable_priority.size()));
      for (const std::string& name : response.variable_priority) {
        append_string(payload, name);
      }
      break;
    }
    case MsgType::BestSettingReply:
      store::append_scalar<std::uint8_t>(payload, response.found ? 1 : 0);
      store::append_scalar<double>(payload, response.speedup);
      append_string(payload, response.config_key);
      break;
    case MsgType::MarginalReply:
      store::append_scalar<std::uint8_t>(payload, response.found ? 1 : 0);
      store::append_scalar<std::uint64_t>(payload, response.samples);
      store::append_scalar<double>(payload, response.mean_speedup);
      store::append_scalar<double>(payload, response.median_speedup);
      store::append_scalar<double>(payload, response.p95_speedup);
      store::append_scalar<double>(payload, response.optimal_share);
      break;
    case MsgType::StatsReply:
      store::append_scalar<std::uint64_t>(payload, response.served);
      store::append_scalar<std::uint64_t>(payload, response.batches);
      store::append_scalar<std::uint64_t>(payload, response.cache_hits);
      store::append_scalar<std::uint64_t>(payload, response.cache_misses);
      store::append_scalar<std::uint64_t>(payload, response.shed);
      store::append_scalar<std::uint64_t>(payload, response.deadline_exceeded);
      store::append_scalar<std::uint64_t>(payload, response.evicted_slow);
      store::append_scalar<std::uint64_t>(payload, response.swaps);
      store::append_scalar<std::uint64_t>(payload, response.connections_accepted);
      store::append_scalar<std::uint64_t>(payload, response.connections_active);
      store::append_scalar<std::uint64_t>(payload, response.store_rows);
      store::append_scalar<std::uint32_t>(payload, response.shards);
      break;
    case MsgType::SwapReply:
      store::append_scalar<std::uint8_t>(payload, response.found ? 1 : 0);
      append_string(payload, response.message);
      break;
    case MsgType::Overloaded:
    case MsgType::ShutdownReply:
    case MsgType::DeadlineExceeded:
      break;
    case MsgType::Error:
      append_string(payload, response.message);
      break;
    default:
      throw WireError(std::string("cannot encode '") + to_string(response.type) +
                      "' as a response");
  }
  frame(out, payload);
}

std::size_t frame_size(std::string_view data) {
  if (data.size() < sizeof(std::uint32_t)) return 0;
  std::uint32_t payload_bytes;
  std::memcpy(&payload_bytes, data.data(), sizeof(payload_bytes));
  if (payload_bytes > kMaxFrameBytes) {
    throw WireError("declared payload of " + std::to_string(payload_bytes) +
                    " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
                    "-byte frame limit");
  }
  const std::size_t total = sizeof(std::uint32_t) + payload_bytes;
  return data.size() >= total ? total : 0;
}

Request decode_request(std::string_view payload) {
  Cursor cursor(payload);
  const auto raw = cursor.scalar<std::uint8_t>("message type");
  Request request;
  request.type = static_cast<MsgType>(raw);
  switch (request.type) {
    case MsgType::Recommend:
      request.app = cursor.string("app");
      request.arch = cursor.string("arch");
      break;
    case MsgType::BestSetting:
      request.arch = cursor.string("arch");
      request.app = cursor.string("app");
      request.input = cursor.string("input");
      request.threads = cursor.scalar<std::int32_t>("threads");
      break;
    case MsgType::Marginal:
      request.arch = cursor.string("arch");
      request.variable = cursor.string("variable");
      request.value = cursor.string("value");
      break;
    case MsgType::Stats:
    case MsgType::Shutdown:
      break;
    case MsgType::Swap: {
      const auto count = cursor.scalar<std::uint16_t>("store path count");
      request.store_paths.reserve(count);
      for (std::uint16_t i = 0; i < count; ++i) {
        request.store_paths.push_back(cursor.string("store path"));
      }
      break;
    }
    default:
      throw WireError("unknown request type " + std::to_string(raw));
  }
  cursor.expect_consumed(to_string(request.type));
  return request;
}

Response decode_response(std::string_view payload) {
  Cursor cursor(payload);
  const auto raw = cursor.scalar<std::uint8_t>("message type");
  Response response;
  response.type = static_cast<MsgType>(raw);
  response.generation = cursor.scalar<std::uint64_t>("generation");
  switch (response.type) {
    case MsgType::RecommendReply: {
      response.found = cursor.scalar<std::uint8_t>("found flag") != 0;
      response.speedup = cursor.scalar<double>("speedup");
      response.config_key = cursor.string("config key");
      const auto count = cursor.scalar<std::uint16_t>("priority count");
      response.variable_priority.reserve(count);
      for (std::uint16_t i = 0; i < count; ++i) {
        response.variable_priority.push_back(cursor.string("priority entry"));
      }
      break;
    }
    case MsgType::BestSettingReply:
      response.found = cursor.scalar<std::uint8_t>("found flag") != 0;
      response.speedup = cursor.scalar<double>("speedup");
      response.config_key = cursor.string("config key");
      break;
    case MsgType::MarginalReply:
      response.found = cursor.scalar<std::uint8_t>("found flag") != 0;
      response.samples = cursor.scalar<std::uint64_t>("sample count");
      response.mean_speedup = cursor.scalar<double>("mean speedup");
      response.median_speedup = cursor.scalar<double>("median speedup");
      response.p95_speedup = cursor.scalar<double>("p95 speedup");
      response.optimal_share = cursor.scalar<double>("optimal share");
      break;
    case MsgType::StatsReply:
      response.served = cursor.scalar<std::uint64_t>("served");
      response.batches = cursor.scalar<std::uint64_t>("batches");
      response.cache_hits = cursor.scalar<std::uint64_t>("cache hits");
      response.cache_misses = cursor.scalar<std::uint64_t>("cache misses");
      response.shed = cursor.scalar<std::uint64_t>("shed");
      response.deadline_exceeded = cursor.scalar<std::uint64_t>("deadline exceeded");
      response.evicted_slow = cursor.scalar<std::uint64_t>("evicted slow");
      response.swaps = cursor.scalar<std::uint64_t>("swaps");
      response.connections_accepted =
          cursor.scalar<std::uint64_t>("connections accepted");
      response.connections_active =
          cursor.scalar<std::uint64_t>("connections active");
      response.store_rows = cursor.scalar<std::uint64_t>("store rows");
      response.shards = cursor.scalar<std::uint32_t>("shard count");
      break;
    case MsgType::SwapReply:
      response.found = cursor.scalar<std::uint8_t>("ok flag") != 0;
      response.message = cursor.string("message");
      break;
    case MsgType::Overloaded:
    case MsgType::ShutdownReply:
    case MsgType::DeadlineExceeded:
      break;
    case MsgType::Error:
      response.message = cursor.string("message");
      break;
    default:
      throw WireError("unknown response type " + std::to_string(raw));
  }
  cursor.expect_consumed(to_string(response.type));
  return response;
}

}  // namespace omptune::serve
