#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <netinet/in.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/errors.hpp"
#include "util/process.hpp"

namespace omptune::serve {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

int close_quiet(int fd) {
  if (fd >= 0) ::close(fd);
  return -1;
}

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long for AF_UNIX: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) sys_fail("socket(AF_UNIX)");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // the server owns its socket path
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    close_quiet(fd);
    sys_fail("bind(" + path + ")");
  }
  if (::listen(fd, 256) != 0) {
    close_quiet(fd);
    sys_fail("listen(" + path + ")");
  }
  return fd;
}

int listen_tcp(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) sys_fail("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    close_quiet(fd);
    sys_fail("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(fd, 256) != 0) {
    close_quiet(fd);
    sys_fail("listen(tcp)");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    close_quiet(fd);
    sys_fail("getsockname(tcp)");
  }
  *bound_port = ntohs(addr.sin_port);
  return fd;
}

}  // namespace

/// One accepted connection: its fd plus the partial-frame input buffer and
/// the unsent-reply output buffer. Touched only by the IO thread.
struct Server::Conn {
  int fd = -1;
  std::string in;
  std::string out;
  /// Slowloris clock: monotonic ms when the pending partial frame started
  /// waiting (0 = no partial pending). Only a COMPLETED frame resets it —
  /// trickling one byte per poll round does not keep the slot alive.
  std::int64_t stall_since_ms = 0;

  ~Conn() { close_quiet(fd); }
};

/// One request taken from a connection this round. `raw` is the payload as
/// received (the cache key material); `out` receives the framed reply.
struct Server::Work {
  enum class Kind : std::uint8_t {
    Query,      ///< execute on the pool against the round's snapshot
    Admin,      ///< Stats/Swap/Shutdown: IO thread, after the pool round
    Prefilled,  ///< reply already encoded (shed / malformed request)
  };

  Conn* conn = nullptr;
  Kind kind = Kind::Prefilled;
  std::string raw;
  Request request;
  std::string out;
  /// Monotonic deadline stamped when the frame was cut; 0 = no deadline.
  std::int64_t deadline_at_ms = 0;
};

Server::Server(std::vector<std::string> store_paths, ServerOptions options)
    : options_(std::move(options)),
      pool_(options_.threads),
      cache_(options_.cache_capacity) {
  if (options_.socket_path.empty()) {
    throw std::runtime_error("serve: socket path is required");
  }
  util::set_nonblocking(stop_pipe_.read_fd);
  util::set_nonblocking(stop_pipe_.write_fd);
  snapshot_ = Snapshot::load(store_paths, 1, &pool_);
  generation_.store(1, std::memory_order_release);
  log_line("loaded generation 1: " + std::to_string(snapshot_->rows()) +
           " rows across " + std::to_string(snapshot_->shard_count()) +
           " shard(s)");
}

Server::~Server() = default;

std::shared_ptr<const Snapshot> Server::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::uint64_t Server::swap(const std::vector<std::string>& store_paths) {
  std::lock_guard<std::mutex> serialize(swap_mutex_);
  const std::uint64_t next = generation_.load(std::memory_order_acquire) + 1;
  std::shared_ptr<const Snapshot> incoming;
  try {
    incoming = Snapshot::load(store_paths, next, &pool_);
  } catch (...) {
    counters_.swap_failures.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = incoming;
  }
  generation_.store(next, std::memory_order_release);
  cache_.purge_below(next);
  counters_.swaps.fetch_add(1, std::memory_order_relaxed);
  log_line("swapped to generation " + std::to_string(next) + ": " +
           std::to_string(incoming->rows()) + " rows across " +
           std::to_string(incoming->shard_count()) + " shard(s)");
  return next;
}

void Server::request_stop() {
  stop_requested_.store(true, std::memory_order_release);
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(stop_pipe_.write_fd, &byte, 1);
}

Response Server::answer(const Request& request, const Snapshot& snapshot) {
  Response reply;
  reply.generation = snapshot.generation();
  switch (request.type) {
    case MsgType::Recommend: {
      reply.type = MsgType::RecommendReply;
      if (const BestConfig* best =
              snapshot.best_for_pair(request.app, request.arch)) {
        reply.found = true;
        reply.speedup = best->speedup;
        reply.config_key = best->config_key;
      }
      if (const auto* priority = snapshot.priority(request.app, request.arch)) {
        reply.variable_priority = *priority;
      }
      break;
    }
    case MsgType::BestSetting: {
      reply.type = MsgType::BestSettingReply;
      if (const BestConfig* best = snapshot.best_for_setting(
              request.arch, request.app, request.input, request.threads)) {
        reply.found = true;
        reply.speedup = best->speedup;
        reply.config_key = best->config_key;
      }
      break;
    }
    case MsgType::Marginal: {
      reply.type = MsgType::MarginalReply;
      if (const analysis::MarginalRow* row = snapshot.marginal(
              request.arch, request.variable, request.value)) {
        reply.found = true;
        reply.samples = row->samples;
        reply.mean_speedup = row->mean_speedup;
        reply.median_speedup = row->median_speedup;
        reply.p95_speedup = row->p95_speedup;
        reply.optimal_share = row->optimal_share;
      }
      break;
    }
    default: {
      reply.type = MsgType::Error;
      reply.message = std::string("not a query type: ") +
                      to_string(request.type);
      break;
    }
  }
  return reply;
}

Response Server::stats_response() const {
  const ServerCounters c = counters();
  Response reply;
  reply.type = MsgType::StatsReply;
  reply.generation = c.generation;
  reply.found = true;
  reply.served = c.served;
  reply.batches = c.batches;
  reply.cache_hits = c.cache_hits;
  reply.cache_misses = c.cache_misses;
  reply.shed = c.shed;
  reply.deadline_exceeded = c.deadline_exceeded;
  reply.evicted_slow = c.evicted_slow;
  reply.swaps = c.swaps;
  reply.connections_accepted = c.connections_accepted;
  reply.connections_active = c.connections_active;
  reply.store_rows = c.store_rows;
  reply.shards = c.shards;
  return reply;
}

ServerCounters Server::counters() const {
  ServerCounters c;
  c.served = counters_.served.load(std::memory_order_relaxed);
  c.batches = counters_.batches.load(std::memory_order_relaxed);
  c.shed = counters_.shed.load(std::memory_order_relaxed);
  c.deadline_exceeded =
      counters_.deadline_exceeded.load(std::memory_order_relaxed);
  c.evicted_slow = counters_.evicted_slow.load(std::memory_order_relaxed);
  c.wire_errors = counters_.wire_errors.load(std::memory_order_relaxed);
  c.protocol_errors = counters_.protocol_errors.load(std::memory_order_relaxed);
  c.connections_accepted =
      counters_.connections_accepted.load(std::memory_order_relaxed);
  c.connections_closed =
      counters_.connections_closed.load(std::memory_order_relaxed);
  c.connections_active =
      counters_.connections_active.load(std::memory_order_relaxed);
  c.swaps = counters_.swaps.load(std::memory_order_relaxed);
  c.swap_failures = counters_.swap_failures.load(std::memory_order_relaxed);
  c.cache_hits = cache_.hits();
  c.cache_misses = cache_.misses();
  c.drained_cleanly = counters_.drained_cleanly.load(std::memory_order_relaxed);
  const std::shared_ptr<const Snapshot> snap = snapshot();
  c.generation = snap->generation();
  c.store_rows = snap->rows();
  c.shards = static_cast<std::uint32_t>(snap->shard_count());
  return c;
}

void Server::handle_admin(Work& work) {
  Response reply;
  switch (work.request.type) {
    case MsgType::Stats:
      reply = stats_response();
      break;
    case MsgType::Swap: {
      reply.type = MsgType::SwapReply;
      if (!options_.allow_admin) {
        reply.type = MsgType::Error;
        reply.generation = generation();
        reply.message = "admin messages are disabled on this server";
        break;
      }
      try {
        reply.generation = swap(work.request.store_paths);
        reply.found = true;
        reply.message = "swapped to generation " +
                        std::to_string(reply.generation);
      } catch (const std::exception& error) {
        reply.found = false;
        reply.generation = generation();
        reply.message = error.what();
      }
      break;
    }
    case MsgType::Shutdown:
      if (!options_.allow_admin) {
        reply.type = MsgType::Error;
        reply.generation = generation();
        reply.message = "admin messages are disabled on this server";
        break;
      }
      reply.type = MsgType::ShutdownReply;
      reply.generation = generation();
      reply.found = true;
      reply.message = "draining";
      draining_ = true;
      break;
    default:
      reply.type = MsgType::Error;
      reply.generation = generation();
      reply.message = std::string("unexpected admin type: ") +
                      to_string(work.request.type);
      break;
  }
  encode_response(work.out, reply);
}

void Server::execute_round(std::vector<Work>& works,
                           const std::shared_ptr<const Snapshot>& snap) {
  // Query works run concurrently: cache probe, then answer + encode + fill.
  pool_.parallel_for(
      works.size(), 4,
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        for (std::size_t i = begin; i < end; ++i) {
          Work& work = works[i];
          if (work.kind != Work::Kind::Query) continue;
          if (options_.debug_execute_delay_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(options_.debug_execute_delay_ms));
          }
          if (past_deadline(util::monotonic_ms(), work.deadline_at_ms)) {
            Response late;
            late.type = MsgType::DeadlineExceeded;
            late.generation = snap->generation();
            encode_response(work.out, late);
            counters_.deadline_exceeded.fetch_add(1,
                                                  std::memory_order_relaxed);
            continue;  // never cached: the miss is about THIS execution
          }
          const std::string key =
              ReplyCache::make_key(snap->generation(), work.raw);
          if (cache_.lookup(key, work.out)) continue;
          std::string frame;
          encode_response(frame, answer(work.request, *snap));
          work.out += frame;
          cache_.insert(key, std::move(frame));
        }
      });
  // Admin works run on the IO thread, in arrival order (a Swap must be
  // visible to a Stats queued behind it on the same connection).
  for (Work& work : works) {
    if (work.kind == Work::Kind::Admin) handle_admin(work);
  }
}

void Server::log_line(const std::string& line) const {
  if (options_.log) options_.log("serve: " + line);
}

void Server::run() {
  const int unix_fd = listen_unix(options_.socket_path);
  int tcp_fd = -1;
  if (options_.tcp_port >= 0) {
    int bound = 0;
    try {
      tcp_fd = listen_tcp(options_.tcp_port, &bound);
    } catch (...) {
      close_quiet(unix_fd);
      ::unlink(options_.socket_path.c_str());
      throw;
    }
    tcp_port_.store(bound, std::memory_order_release);
  }

  std::unique_ptr<util::ShutdownSignalGuard> signals;
  if (options_.handle_signals) {
    signals = std::make_unique<util::ShutdownSignalGuard>();
  }
  std::deque<std::unique_ptr<Conn>> conns;
  draining_ = false;

  // Keeper liveness: "hb" every interval, "gen <g>\t<path>..." whenever the
  // served generation changes (boot counts). The pipe writes happen only on
  // the IO thread, so a swap() from any thread is picked up next round. A
  // failed write means the supervisor is gone — not our problem to solve.
  std::int64_t next_heartbeat_ms = 0;
  std::uint64_t heartbeat_gen = 0;
  const auto emit_heartbeats = [&](std::int64_t now) {
    if (options_.heartbeat_fd < 0) return;
    const std::uint64_t gen = generation();
    if (gen != heartbeat_gen) {
      std::string line = "gen " + std::to_string(gen);
      for (const std::string& path : snapshot()->shard_paths()) {
        line += '\t';
        line += path;
      }
      line += '\n';
      if (util::write_all(options_.heartbeat_fd, line)) heartbeat_gen = gen;
    }
    if (now >= next_heartbeat_ms) {
      [[maybe_unused]] const bool ok =
          util::write_all(options_.heartbeat_fd, "hb\n");
      next_heartbeat_ms = now + options_.heartbeat_interval_ms;
    }
  };
  emit_heartbeats(util::monotonic_ms());

  ready_.store(true, std::memory_order_release);
  log_line("listening on " + options_.socket_path +
           (tcp_fd >= 0
                ? " and 127.0.0.1:" + std::to_string(tcp_port())
                : std::string()));

  const auto close_conn = [&](std::size_t index) {
    conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(index));
    counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
    counters_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  };

  // Flush as much of conn.out as the socket accepts right now; false means
  // the peer is gone.
  const auto try_flush = [](Conn& conn) -> bool {
    while (!conn.out.empty()) {
      const ssize_t n =
          ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
      if (n > 0) {
        conn.out.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;
    }
    return true;
  };

  while (!draining_) {
    if (stop_requested_.load(std::memory_order_acquire)) break;
    if (signals && signals->triggered()) break;

    std::vector<pollfd> fds;
    fds.push_back({stop_pipe_.read_fd, POLLIN, 0});
    if (signals) fds.push_back({signals->wake_fd(), POLLIN, 0});
    const std::size_t listeners_at = fds.size();
    fds.push_back({unix_fd, POLLIN, 0});
    if (tcp_fd >= 0) fds.push_back({tcp_fd, POLLIN, 0});
    const std::size_t conns_at = fds.size();
    for (const auto& conn : conns) {
      short events = 0;
      // Backpressure: a connection over its output budget (or mid-flood on
      // input) is not read until it drains.
      if (conn->out.size() < options_.max_output_bytes &&
          conn->in.size() < options_.max_input_bytes) {
        events |= POLLIN;
      }
      if (!conn->out.empty()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }

    // The loop may no longer sleep forever: the next heartbeat and the
    // earliest stall eviction both bound the poll timeout.
    std::int64_t wake_at = std::numeric_limits<std::int64_t>::max();
    if (options_.heartbeat_fd >= 0) {
      wake_at = std::min(wake_at, next_heartbeat_ms);
    }
    if (options_.stall_timeout_ms > 0) {
      for (const auto& conn : conns) {
        if (conn->stall_since_ms > 0) {
          wake_at = std::min(
              wake_at, conn->stall_since_ms + options_.stall_timeout_ms + 1);
        }
      }
    }
    int poll_timeout = -1;
    if (wake_at != std::numeric_limits<std::int64_t>::max()) {
      poll_timeout = static_cast<int>(std::clamp<std::int64_t>(
          wake_at - util::monotonic_ms(), 0, 60'000));
    }

    const int rc = ::poll(fds.data(), fds.size(), poll_timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      sys_fail("poll");
    }
    const std::int64_t round_now = util::monotonic_ms();
    emit_heartbeats(round_now);

    // Accept everything pending on the listeners. Connections accepted
    // here have no pollfd this round — they are served from the next
    // round's poll, so the frame-cutting loop below must only walk the
    // connections that were actually polled.
    const std::size_t polled_conns = fds.size() - conns_at;
    for (std::size_t i = listeners_at; i < conns_at; ++i) {
      if (!(fds[i].revents & POLLIN)) continue;
      for (;;) {
        const int fd = ::accept4(fds[i].fd, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;  // EAGAIN, or transient accept failure: next round
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conns.push_back(std::move(conn));
        counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
        counters_.connections_active.fetch_add(1, std::memory_order_relaxed);
      }
    }

    // Read every readable connection, then cut frames into the round's
    // work list. The snapshot is pinned once for the whole round.
    const std::shared_ptr<const Snapshot> snap = snapshot();
    std::vector<Work> works;
    std::vector<std::size_t> dead;
    std::size_t admitted = 0;
    for (std::size_t c = 0; c < polled_conns; ++c) {
      Conn& conn = *conns[c];
      const pollfd& pfd = fds[conns_at + c];
      if (pfd.revents & POLLOUT) {
        if (!try_flush(conn)) {
          dead.push_back(c);
          continue;
        }
      }
      bool peer_gone = false;
      if (pfd.revents & (POLLIN | POLLHUP | POLLERR)) {
        for (;;) {
          char buf[65536];
          const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            conn.in.append(buf, static_cast<std::size_t>(n));
            if (conn.in.size() >= options_.max_input_bytes) break;
            continue;
          }
          if (n == 0) {
            peer_gone = true;
            break;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          peer_gone = true;
          break;
        }
      }

      // Cut complete frames (bounded per connection per round).
      std::size_t consumed = 0;
      std::size_t taken = 0;
      bool framing_broken = false;
      while (taken < options_.max_batch) {
        std::size_t total = 0;
        try {
          total = frame_size(
              std::string_view(conn.in).substr(consumed));
        } catch (const WireError&) {
          framing_broken = true;
          break;
        }
        if (total == 0) break;
        Work work;
        work.conn = &conn;
        work.raw = conn.in.substr(consumed + 4, total - 4);
        consumed += total;
        ++taken;
        if (options_.request_deadline_ms > 0) {
          work.deadline_at_ms = round_now + options_.request_deadline_ms;
        }
        try {
          work.request = decode_request(work.raw);
          if (!is_request_type(work.request.type)) {
            throw WireError(std::string("reply type sent as request: ") +
                            to_string(work.request.type));
          }
          switch (work.request.type) {
            case MsgType::Stats:
            case MsgType::Swap:
            case MsgType::Shutdown:
              work.kind = Work::Kind::Admin;
              break;
            default:
              // Admission control: the bounded queue. Everything past
              // max_pending this round is shed with a typed reply.
              if (admitted < options_.max_pending) {
                work.kind = Work::Kind::Query;
                ++admitted;
              } else {
                Response overloaded;
                overloaded.type = MsgType::Overloaded;
                overloaded.generation = snap->generation();
                overloaded.message = "queue full, retry";
                encode_response(work.out, overloaded);
                counters_.shed.fetch_add(1, std::memory_order_relaxed);
              }
              break;
          }
        } catch (const std::exception& error) {
          // Well-framed but undecodable: answer with Error, keep the
          // connection (the framing is still in sync).
          work.kind = Work::Kind::Prefilled;
          work.out.clear();
          Response bad;
          bad.type = MsgType::Error;
          bad.generation = snap->generation();
          bad.message = error.what();
          encode_response(work.out, bad);
          counters_.wire_errors.fetch_add(1, std::memory_order_relaxed);
        }
        works.push_back(std::move(work));
      }
      conn.in.erase(0, consumed);
      if (taken > 0) {
        counters_.batches.fetch_add(1, std::memory_order_relaxed);
      }
      if (framing_broken ||
          (conn.in.size() >= options_.max_input_bytes && taken == 0)) {
        counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        peer_gone = true;
      }
      if (framing_broken) {
        // Protocol violation: drop the connection now, voiding any replies
        // this round would have owed it.
        for (Work& work : works) {
          if (work.conn == &conn) work.conn = nullptr;
        }
      }
      if (options_.stall_timeout_ms > 0 && !peer_gone) {
        if (conn.in.empty()) {
          conn.stall_since_ms = 0;
        } else if (taken > 0 || conn.stall_since_ms == 0) {
          conn.stall_since_ms = round_now;
        } else if (round_now - conn.stall_since_ms >
                   options_.stall_timeout_ms) {
          counters_.evicted_slow.fetch_add(1, std::memory_order_relaxed);
          log_line("evicted stalled connection: partial frame pending " +
                   std::to_string(round_now - conn.stall_since_ms) + " ms");
          peer_gone = true;
        }
      }
      if (peer_gone) dead.push_back(c);
    }

    if (!works.empty()) {
      execute_round(works, snap);
      for (Work& work : works) {
        if (!work.conn) continue;
        work.conn->out += work.out;
        counters_.served.fetch_add(1, std::memory_order_relaxed);
      }
    }

    // Opportunistic flush so small batches complete in one round trip.
    for (std::size_t c = 0; c < conns.size(); ++c) {
      Conn& conn = *conns[c];
      if (!conn.out.empty() && !try_flush(conn)) dead.push_back(c);
    }

    // Close dead connections, highest index first (erase shifts the tail).
    std::sort(dead.begin(), dead.end());
    dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
    for (std::size_t i = dead.size(); i > 0; --i) close_conn(dead[i - 1]);

    if (stop_requested_.load(std::memory_order_acquire)) break;
    if (signals && signals->triggered()) break;
  }

  // Drain: stop accepting, flush what each connection is owed, close all.
  ready_.store(false, std::memory_order_release);
  close_quiet(unix_fd);
  if (tcp_fd >= 0) close_quiet(tcp_fd);
  ::unlink(options_.socket_path.c_str());

  const std::int64_t deadline =
      util::monotonic_ms() + options_.drain_timeout_ms;
  bool flushed_all = true;
  for (;;) {
    std::vector<pollfd> fds;
    std::vector<std::size_t> pending;
    for (std::size_t c = 0; c < conns.size(); ++c) {
      if (!conns[c]->out.empty()) {
        fds.push_back({conns[c]->fd, POLLOUT, 0});
        pending.push_back(c);
      }
    }
    if (pending.empty()) break;
    const std::int64_t budget = deadline - util::monotonic_ms();
    if (budget <= 0) {
      flushed_all = false;
      break;
    }
    const int rc = ::poll(fds.data(), fds.size(),
                          static_cast<int>(budget < 100 ? budget : 100));
    if (rc < 0 && errno != EINTR) break;
    std::vector<std::size_t> dead;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (!(fds[i].revents & (POLLOUT | POLLERR | POLLHUP))) continue;
      if (!try_flush(*conns[pending[i]])) dead.push_back(pending[i]);
    }
    std::sort(dead.begin(), dead.end());
    for (std::size_t i = dead.size(); i > 0; --i) close_conn(dead[i - 1]);
  }
  const std::size_t still_open = conns.size();
  while (!conns.empty()) close_conn(conns.size() - 1);

  counters_.drained_cleanly.store(flushed_all, std::memory_order_relaxed);

  const ServerCounters c = counters();
  log_line("drained: served " + std::to_string(c.served) + " replies in " +
           std::to_string(c.batches) + " batches, shed " +
           std::to_string(c.shed) + "; connections " +
           std::to_string(c.connections_accepted) + " accepted / " +
           std::to_string(c.connections_closed) + " closed (" +
           std::to_string(still_open) + " open at drain), " +
           (flushed_all ? "all replies flushed" : "drain deadline hit"));
}

}  // namespace omptune::serve
