#include "serve/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/process.hpp"

namespace omptune::serve {

namespace {

MsgType expected_reply(MsgType request) {
  switch (request) {
    case MsgType::Recommend: return MsgType::RecommendReply;
    case MsgType::BestSetting: return MsgType::BestSettingReply;
    case MsgType::Marginal: return MsgType::MarginalReply;
    case MsgType::Stats: return MsgType::StatsReply;
    case MsgType::Swap: return MsgType::SwapReply;
    case MsgType::Shutdown: return MsgType::ShutdownReply;
    default: return MsgType::Error;
  }
}

/// A reply slot may hold the request's answer type, a typed retryable, or
/// Error. Anything else means the byte stream slipped — a garbled length
/// that still framed, a duplicated frame shifting correlation — and the
/// connection can no longer be trusted.
bool plausible_reply(MsgType request, MsgType reply) {
  return reply == expected_reply(request) || reply == MsgType::Error ||
         is_retryable_reply(reply);
}

}  // namespace

RetryingClient::RetryingClient(Connector connector, RetryPolicy policy,
                               Clock clock, Sleeper sleep)
    : connector_(std::move(connector)),
      policy_(policy),
      clock_(clock ? std::move(clock) : Clock(&util::monotonic_ms)),
      sleep_(sleep ? std::move(sleep) : Sleeper([](std::int64_t ms) {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      })) {
  if (policy_.max_attempts < 1) policy_.max_attempts = 1;
}

RetryingClient RetryingClient::over_unix(std::string socket_path,
                                         RetryPolicy policy) {
  return RetryingClient(
      [path = std::move(socket_path)]() { return Client::connect_unix(path); },
      std::move(policy));
}

void RetryingClient::record_call_outcome(bool success) {
  if (policy_.breaker_threshold <= 0) return;
  if (success) {
    consecutive_failed_calls_ = 0;
    breaker_ = BreakerState::Closed;
    return;
  }
  ++consecutive_failed_calls_;
  if (breaker_ == BreakerState::HalfOpen ||
      consecutive_failed_calls_ >= policy_.breaker_threshold) {
    breaker_ = BreakerState::Open;
    breaker_probe_at_ms_ = clock_() + policy_.breaker_cooldown_ms;
    consecutive_failed_calls_ = 0;
    ++counters_.breaker_trips;
  }
}

RetryingClient::AttemptStatus RetryingClient::attempt(
    const std::vector<Request>& requests, std::vector<Response>& replies,
    bool idempotent, std::string& failure) {
  if (!client_ || !client_->connected()) {
    try {
      Client fresh = connector_();
      fresh.set_timeouts(policy_.socket_timeout_ms);
      client_.emplace(std::move(fresh));
      ++counters_.reconnects;
    } catch (const ConnectionLost& lost) {
      // Nothing was sent: reconnect failure is retryable even for a
      // non-idempotent batch.
      failure = lost.what();
      return AttemptStatus::Replay;
    }
  }
  if (client_->has_buffered_bytes()) {
    ++counters_.poisoned;
    client_.reset();
    failure = "unsolicited bytes buffered between calls (duplicated reply?)";
    return AttemptStatus::Replay;
  }
  ++counters_.attempts;
  try {
    replies = client_->call(requests);
  } catch (const WireError& wire) {
    ++counters_.poisoned;
    client_.reset();
    failure = wire.what();
    if (!idempotent) {
      throw ConnectionLost(
          std::string("reply stream corrupt after a non-idempotent batch: ") +
          wire.what());
    }
    return AttemptStatus::Replay;
  } catch (const ConnectionLost& lost) {
    client_.reset();
    failure = lost.what();
    if (!idempotent) throw;  // ambiguous: the Swap/Shutdown may have landed
    return AttemptStatus::Replay;
  }
  for (std::size_t i = 0; i < replies.size(); ++i) {
    if (!plausible_reply(requests[i].type, replies[i].type)) {
      ++counters_.poisoned;
      client_.reset();
      failure = std::string("implausible reply '") +
                to_string(replies[i].type) + "' to '" +
                to_string(requests[i].type) + "'";
      if (!idempotent) {
        throw ConnectionLost("reply correlation broken after a "
                             "non-idempotent batch: " +
                             failure);
      }
      return AttemptStatus::Replay;
    }
  }
  for (const Response& reply : replies) {
    if (is_retryable_reply(reply.type)) {
      // A retryable reply guarantees nothing was computed for that slot, so
      // resending the WHOLE batch is safe — answered idempotent slots are
      // merely recomputed (or cache hits) on the retry.
      failure = std::string("server replied ") + to_string(reply.type);
      return AttemptStatus::RetryAll;
    }
  }
  return AttemptStatus::Done;
}

std::vector<Response> RetryingClient::call(
    const std::vector<Request>& requests) {
  ++counters_.calls;
  for (const Request& request : requests) {
    if (!is_request_type(request.type)) {
      throw WireError(std::string("not a request type: ") +
                      to_string(request.type));
    }
  }
  if (policy_.breaker_threshold > 0 && breaker_ == BreakerState::Open) {
    const std::int64_t now = clock_();
    if (now >= breaker_probe_at_ms_) {
      breaker_ = BreakerState::HalfOpen;  // this call is the probe
    } else {
      ++counters_.breaker_fast_fails;
      throw CircuitOpenError(
          "retrying again in " + std::to_string(breaker_probe_at_ms_ - now) +
          " ms");
    }
  }
  const bool idempotent =
      std::all_of(requests.begin(), requests.end(), [](const Request& r) {
        return is_idempotent_request(r.type);
      });
  std::vector<Response> replies;
  std::string failure = "no attempt made";
  std::int64_t prev_delay = 0;
  try {
    for (int attempt_no = 1; attempt_no <= policy_.max_attempts;
         ++attempt_no) {
      if (attempt_no > 1) {
        const std::int64_t delay = policy_.backoff.next_delay_ms(
            policy_.seed, "serve-retry", attempt_no, prev_delay);
        prev_delay = delay;
        sleep_(delay);
        ++counters_.retries;
      }
      if (attempt(requests, replies, idempotent, failure) ==
          AttemptStatus::Done) {
        record_call_outcome(true);
        return replies;
      }
    }
  } catch (...) {
    record_call_outcome(false);
    throw;
  }
  record_call_outcome(false);
  throw RetriesExhaustedError("after " + std::to_string(policy_.max_attempts) +
                              " attempts; last failure: " + failure);
}

Response RetryingClient::call_one(const Request& request) {
  return call({request}).front();
}

}  // namespace omptune::serve
