#pragma once

// The tuning service's length-prefixed binary wire protocol (version 1).
//
// A connection carries a stream of frames in each direction:
//
//   u32 payload_bytes | payload
//
// and the payload is one message: a u8 message type followed by the
// type's fields (integers little-endian, strings as u16 length + bytes —
// the same append_scalar/load_scalar funnel as the .omps store format).
// The server answers every request frame with exactly one reply frame, in
// request order, so a client may pipeline an arbitrary number of requests
// per write — that per-connection batch is the unit the server executes
// and the unit the bench measures.
//
// Framing errors (oversized frame, truncated payload, unknown type, a
// string running off the payload end) throw WireError, a Permanent
// util::TuneError: the peer violated the protocol, retrying the same
// bytes cannot succeed. The server closes the connection on a framing
// error but answers a well-framed yet semantically bad request (unknown
// app, empty key) with an Error reply, keeping the connection usable.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/errors.hpp"

namespace omptune::serve {

inline constexpr std::uint32_t kWireVersion = 1;

/// Hard ceiling on one frame's payload; a declared length beyond this is a
/// protocol violation (a garbling peer must not make the server buffer
/// unboundedly — the same bound idea as util::LineReader's max_line).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// The peer broke the framing/encoding contract. Permanent: the same bytes
/// can never parse.
class WireError : public util::PermanentError {
 public:
  explicit WireError(const std::string& message)
      : util::PermanentError("wire: " + message) {}
};

enum class MsgType : std::uint8_t {
  // Requests.
  Recommend = 1,    ///< best known config + variable priority for (app, arch)
  BestSetting = 2,  ///< best config for the exact (arch, app, input, threads)
  Marginal = 3,     ///< speedup stats of one (arch, variable, value)
  Stats = 4,        ///< server counters (never cached)
  Swap = 5,         ///< admin: hot-swap the store shard set
  Shutdown = 6,     ///< admin: drain and exit

  // Replies.
  RecommendReply = 33,
  BestSettingReply = 34,
  MarginalReply = 35,
  StatsReply = 36,
  SwapReply = 37,
  Overloaded = 38,  ///< typed load-shed: retry later, nothing was computed
  Error = 39,       ///< request was well-framed but unanswerable
  ShutdownReply = 40,
  DeadlineExceeded = 41,  ///< typed deadline miss: the request sat past its
                          ///< --request-deadline-ms budget; retry later
};

/// One request, flat across types: each type reads only its own fields
/// (the encoder writes only those, so unused fields never hit the wire).
struct Request {
  MsgType type = MsgType::Recommend;
  std::string app;       ///< Recommend, BestSetting
  std::string arch;      ///< Recommend, BestSetting, Marginal
  std::string input;     ///< BestSetting
  std::int32_t threads = 0;  ///< BestSetting
  std::string variable;  ///< Marginal
  std::string value;     ///< Marginal
  std::vector<std::string> store_paths;  ///< Swap
};

/// One reply, flat across types (see Request).
struct Response {
  MsgType type = MsgType::Error;
  std::uint64_t generation = 0;  ///< snapshot that answered (0: no snapshot)
  bool found = false;            ///< Recommend/BestSetting/Marginal hit
  double speedup = 0.0;          ///< best known speedup over the default
  std::string config_key;        ///< rt::RtConfig::key() of the best config
  std::vector<std::string> variable_priority;  ///< RecommendReply only
  // MarginalReply stats.
  std::uint64_t samples = 0;
  double mean_speedup = 0.0;
  double median_speedup = 0.0;
  double p95_speedup = 0.0;
  double optimal_share = 0.0;
  // StatsReply counters.
  std::uint64_t served = 0;
  std::uint64_t batches = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t evicted_slow = 0;
  std::uint64_t swaps = 0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t store_rows = 0;
  std::uint32_t shards = 0;
  std::string message;  ///< Error/SwapReply detail
};

// ---- encoding --------------------------------------------------------------

/// Append one framed message (length prefix + payload) to `out`.
void encode_request(std::string& out, const Request& request);
void encode_response(std::string& out, const Response& response);

// ---- decoding --------------------------------------------------------------

/// Bytes of the frame starting at `data` when one is fully buffered:
/// 4 + declared payload length. Returns 0 while the frame is still
/// incomplete; throws WireError if the declared length exceeds
/// kMaxFrameBytes (the caller must drop the connection, not wait for more).
std::size_t frame_size(std::string_view data);

/// Decode the payload of one complete frame (without the length prefix).
/// Throws WireError on an unknown type or malformed fields.
Request decode_request(std::string_view payload);
Response decode_response(std::string_view payload);

/// True for the message types a client sends (the server rejects reply
/// types arriving as requests without tearing the connection down).
bool is_request_type(MsgType type);

/// True for the reply types that mean "nothing was computed, the same
/// request may succeed later" — the only replies a retrying client is
/// allowed to re-issue on (Overloaded, DeadlineExceeded). Every other
/// reply is an answer; retrying it would re-ask an answered question.
bool is_retryable_reply(MsgType type);

/// True for the request types that are safe to replay on a fresh
/// connection after an ambiguous failure (pure reads: every query type
/// plus Stats). Swap and Shutdown mutate server state and must not be
/// silently re-sent by a retry layer.
bool is_idempotent_request(MsgType type);

const char* to_string(MsgType type);

// ---- socket I/O ------------------------------------------------------------

/// send(2) all of `data` on a (blocking or non-blocking-with-retry) socket:
/// retries EINTR and short writes, passes MSG_NOSIGNAL so a dead peer
/// surfaces as EPIPE instead of killing the process. Returns false when the
/// peer is gone (EPIPE/ECONNRESET/any terminal error); never throws. The
/// one write funnel for the client, the Keeper and the chaos proxy — the
/// server's poll loop keeps its own non-blocking variant.
bool send_all(int fd, std::string_view data);

}  // namespace omptune::serve
