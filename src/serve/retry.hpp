#pragma once

// The resilient client: a Client wrapper that turns a flaky wire into an
// at-most-bounded-latency query interface. Three cooperating mechanisms:
//
//  * Bounded retries with decorrelated-jitter backoff (util::BackoffPolicy,
//    the same schedule the sweep coordinator and the Keeper use), retrying
//    ONLY on typed-retryable replies (Overloaded, DeadlineExceeded) and on
//    connection loss — never on an answer, never on a WireError from our
//    own bad request.
//
//  * Reconnect-and-replay for idempotent batches: when the connection dies
//    or turns out poisoned (garbled bytes decoded into an implausible reply
//    type, or leftover bytes show the peer sent replies it did not owe —
//    duplicated frames), the client abandons the socket and replays the
//    batch on a fresh one — but only when every request in the batch is
//    idempotent (is_idempotent_request). A Swap or Shutdown that died
//    ambiguously propagates ConnectionLost to the caller instead.
//
//  * A circuit breaker at call granularity: after `breaker_threshold`
//    consecutive failed calls the breaker opens and calls fail fast with
//    CircuitOpenError (no socket traffic at all) until `breaker_cooldown_ms`
//    passes; the first call after the cooldown is the half-open probe — on
//    success the breaker closes, on failure it re-opens for another
//    cooldown. This is what keeps ten thousand retrying clients from
//    stampeding a server the Keeper is still rebooting.
//
// The clock and the sleep are injected so tests drive the breaker and the
// backoff deterministically without wall-time waits.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "util/backoff.hpp"

namespace omptune::serve {

/// The circuit breaker is open: the last `breaker_threshold` calls all
/// failed and the cooldown has not elapsed. Transient by construction.
class CircuitOpenError : public util::TransientError {
 public:
  explicit CircuitOpenError(const std::string& message)
      : util::TransientError("circuit open: " + message) {}
};

/// Every retry was spent and the call still failed. Carries the last
/// failure's text; transient — a later call may find a healthier server.
class RetriesExhaustedError : public util::TransientError {
 public:
  explicit RetriesExhaustedError(const std::string& message)
      : util::TransientError("retries exhausted: " + message) {}
};

struct RetryPolicy {
  /// Total attempts per call (first try included). Must be >= 1.
  int max_attempts = 6;
  /// Delay schedule between attempts (decorrelated jitter).
  util::BackoffPolicy backoff{/*base_ms=*/25, /*max_ms=*/2000};
  /// Seed for the deterministic backoff draw (replayable schedules).
  std::uint64_t seed = 0;
  /// SO_RCVTIMEO/SO_SNDTIMEO per socket so a server stalling mid-frame
  /// becomes a retryable ConnectionLost, not a hang. 0 = block forever.
  int socket_timeout_ms = 2000;
  /// Consecutive failed CALLS (not attempts) that trip the breaker;
  /// <= 0 disables the breaker entirely.
  int breaker_threshold = 5;
  /// How long an open breaker rejects before allowing a half-open probe.
  std::int64_t breaker_cooldown_ms = 1000;
};

struct RetryCounters {
  std::uint64_t calls = 0;         ///< call()/call_one() invocations
  std::uint64_t attempts = 0;      ///< batches actually written to a socket
  std::uint64_t retries = 0;       ///< attempts after the first, per call
  std::uint64_t reconnects = 0;    ///< fresh sockets dialed
  std::uint64_t poisoned = 0;      ///< connections abandoned for bad replies
  std::uint64_t breaker_trips = 0; ///< Closed/HalfOpen -> Open transitions
  std::uint64_t breaker_fast_fails = 0;  ///< calls rejected while Open
};

class RetryingClient {
 public:
  /// Dials a fresh connection; throws ConnectionLost on failure.
  using Connector = std::function<Client()>;
  using Clock = std::function<std::int64_t()>;          ///< monotonic ms
  using Sleeper = std::function<void(std::int64_t)>;    ///< sleep ms

  /// `clock`/`sleep` default to util::monotonic_ms and a real sleep; tests
  /// inject fakes to step the breaker cooldown without waiting.
  RetryingClient(Connector connector, RetryPolicy policy,
                 Clock clock = nullptr, Sleeper sleep = nullptr);

  /// Convenience: dial `socket_path` per connection.
  static RetryingClient over_unix(std::string socket_path, RetryPolicy policy);

  /// Like Client::call(), but survives Overloaded/DeadlineExceeded replies,
  /// connection loss and reply-stream corruption within the retry budget.
  /// Throws CircuitOpenError (breaker open), RetriesExhaustedError (budget
  /// spent), ConnectionLost (ambiguous failure of a non-idempotent batch),
  /// or WireError (our own request was malformed — not retryable).
  std::vector<Response> call(const std::vector<Request>& requests);
  Response call_one(const Request& request);

  const RetryCounters& counters() const { return counters_; }

  /// Breaker introspection for tests and the CLI's verbose mode.
  enum class BreakerState : std::uint8_t { Closed, Open, HalfOpen };
  BreakerState breaker_state() const { return breaker_; }

 private:
  enum class AttemptStatus : std::uint8_t {
    Done,      ///< replies are complete answers
    RetryAll,  ///< nothing computed (typed retryable) — back off, resend
    Replay,    ///< connection dead/poisoned — reconnect and resend
  };

  AttemptStatus attempt(const std::vector<Request>& requests,
                        std::vector<Response>& replies, bool idempotent,
                        std::string& failure);
  void record_call_outcome(bool success);

  Connector connector_;
  RetryPolicy policy_;
  Clock clock_;
  Sleeper sleep_;
  std::optional<Client> client_;

  BreakerState breaker_ = BreakerState::Closed;
  int consecutive_failed_calls_ = 0;
  std::int64_t breaker_probe_at_ms_ = 0;  ///< when Open may half-open

  RetryCounters counters_;
};

}  // namespace omptune::serve
