#pragma once

// One immutable generation of serving state: the mmap'd store shards plus
// every table a query needs, precomputed at load time.
//
// The recommendation server must answer in microseconds, but the analysis
// stack answers in milliseconds-to-seconds (influence-model fits, slice
// scans). The snapshot moves all of that to swap time: loading a snapshot
// scans the shards once — best config per setting, best config per
// (app, arch) pair, per-(arch, variable, value) marginal stats, and the
// influence-ordered variable priority per pair — and a live query is then
// a hash lookup into the frozen tables. A snapshot is never mutated after
// load; the server publishes it behind a shared_ptr, so in-flight batches
// keep the previous generation (and its mmap) alive across a hot-swap
// until their last reply is encoded.
//
// Generations are assigned by the server: 1 for the snapshot it boots
// with, +1 per successful swap. The generation is threaded into the
// StoreReader so an open/validation failure during a swap is attributable
// ("generation 7, shard b.omps"), and into every reply so clients can
// observe swaps happening under them.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/marginals.hpp"

namespace omptune::store {
class StoreReader;
}
namespace omptune::util {
class ThreadPool;
}

namespace omptune::serve {

/// Best known configuration of some scope (a setting or an (app, arch)
/// pair): the answer payload of the recommendation queries.
struct BestConfig {
  double speedup = 0.0;
  std::string config_key;  ///< rt::RtConfig::key()
};

class Snapshot {
 public:
  /// Open and aggregate `store_paths` (each a .omps store shard) as
  /// generation `generation`. Open/validation failures throw
  /// util::StoreOpenError / util::DataCorruptionError naming the path and
  /// generation. With a pool, the load-time scans run on it.
  static std::shared_ptr<const Snapshot> load(
      const std::vector<std::string>& store_paths, std::uint64_t generation,
      const util::ThreadPool* pool = nullptr);

  std::uint64_t generation() const { return generation_; }
  std::size_t shard_count() const { return shard_paths_.size(); }
  const std::vector<std::string>& shard_paths() const { return shard_paths_; }
  std::uint64_t rows() const { return rows_; }

  /// Best known config for an (app, arch) pair across every setting;
  /// nullptr when the pair has no non-quarantined samples.
  const BestConfig* best_for_pair(const std::string& app,
                                  const std::string& arch) const;

  /// Best known config for one exact (arch, app, input, threads) setting.
  const BestConfig* best_for_setting(const std::string& arch,
                                     const std::string& app,
                                     const std::string& input,
                                     std::int32_t threads) const;

  /// Marginal speedup stats of (arch, variable, value); arch "all" selects
  /// the pooled row.
  const analysis::MarginalRow* marginal(const std::string& arch,
                                        const std::string& variable,
                                        const std::string& value) const;

  /// Influence-ordered variable priority for (app, arch), falling back to
  /// the arch-level, then the global ordering — the same ladder as
  /// core::KnowledgeBase::variable_priority. Never nullptr on a snapshot
  /// with any samples; nullptr on an empty one.
  const std::vector<std::string>* priority(const std::string& app,
                                           const std::string& arch) const;

  ~Snapshot();

 private:
  Snapshot() = default;

  std::uint64_t generation_ = 0;
  std::uint64_t rows_ = 0;
  std::vector<std::string> shard_paths_;
  /// Keep the mmaps alive for exactly the snapshot's lifetime. (The answer
  /// tables own copies of everything they serve; the readers are retained
  /// so a future query type can drop to the raw slices of this generation.)
  std::vector<std::unique_ptr<store::StoreReader>> readers_;

  std::unordered_map<std::string, BestConfig> best_pair_;
  std::unordered_map<std::string, BestConfig> best_setting_;
  std::unordered_map<std::string, analysis::MarginalRow> marginals_;
  std::unordered_map<std::string, std::vector<std::string>> priority_;
};

}  // namespace omptune::serve
