#pragma once

// Blocking client for the tuning service: connect, write a pipelined batch
// of request frames, read exactly one reply frame per request, in order.
// This is the whole protocol from the client side — no callbacks, no
// dispatch table — because the server's ordering guarantee (one reply per
// request, request order, per connection) makes the correlation positional.
//
// Used by `omptune query --remote`, the serve smoke script and the
// ext_serve bench; a third-party client is ~50 lines in any language
// (see README).

#include <cstdint>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace omptune::serve {

/// The server vanished mid-call: connect refused, connection reset, close
/// mid-reply, or a socket timeout expired. Transient — a fresh connection
/// may succeed (e.g. the Keeper is restarting the server right now), which
/// is exactly the distinction the retry layer keys on.
class ConnectionLost : public util::TransientError {
 public:
  explicit ConnectionLost(const std::string& message)
      : util::TransientError("connection: " + message) {}
};

class Client {
 public:
  /// Connect to a server's unix socket. Throws ConnectionLost when the
  /// socket is absent or refuses (the caller distinguishes "server not
  /// running" by catching).
  static Client connect_unix(const std::string& socket_path);

  /// Connect to a server's loopback TCP listener.
  static Client connect_tcp(int port);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send `requests` as one pipelined batch and block until every reply
  /// arrived. Replies are positional: reply[i] answers requests[i].
  /// Throws WireError on a malformed reply, ConnectionLost when the
  /// server closes (or stalls past the socket timeout) mid-batch.
  std::vector<Response> call(const std::vector<Request>& requests);

  /// One-request convenience over call().
  Response call_one(const Request& request);

  /// Bound every recv/send with SO_RCVTIMEO/SO_SNDTIMEO so a server that
  /// stalls mid-frame surfaces as ConnectionLost instead of hanging the
  /// caller forever. 0 restores "block indefinitely".
  void set_timeouts(int timeout_ms);

  bool connected() const { return fd_ >= 0; }

  /// Bytes buffered past the last frame consumed by call(). Non-empty
  /// between calls means the server (or a fault in between) sent MORE
  /// replies than were owed — positional correlation is broken and the
  /// connection must be abandoned, which is how the retry layer detects
  /// duplicated replies.
  bool has_buffered_bytes() const { return !buffer_.empty(); }

  void close();

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Block until one complete frame is buffered; returns its payload.
  std::string read_frame();

  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last complete frame
};

}  // namespace omptune::serve
