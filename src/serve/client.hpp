#pragma once

// Blocking client for the tuning service: connect, write a pipelined batch
// of request frames, read exactly one reply frame per request, in order.
// This is the whole protocol from the client side — no callbacks, no
// dispatch table — because the server's ordering guarantee (one reply per
// request, request order, per connection) makes the correlation positional.
//
// Used by `omptune query --remote`, the serve smoke script and the
// ext_serve bench; a third-party client is ~50 lines in any language
// (see README).

#include <cstdint>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace omptune::serve {

class Client {
 public:
  /// Connect to a server's unix socket. Throws std::runtime_error when the
  /// socket is absent or refuses (the caller distinguishes "server not
  /// running" by catching).
  static Client connect_unix(const std::string& socket_path);

  /// Connect to a server's loopback TCP listener.
  static Client connect_tcp(int port);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send `requests` as one pipelined batch and block until every reply
  /// arrived. Replies are positional: reply[i] answers requests[i].
  /// Throws WireError on a malformed reply, std::runtime_error when the
  /// server closes mid-batch.
  std::vector<Response> call(const std::vector<Request>& requests);

  /// One-request convenience over call().
  Response call_one(const Request& request);

  bool connected() const { return fd_ >= 0; }
  void close();

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Block until one complete frame is buffered; returns its payload.
  std::string read_frame();

  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last complete frame
};

}  // namespace omptune::serve
