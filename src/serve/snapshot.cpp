#include "serve/snapshot.hpp"

#include <stdexcept>
#include <utility>

#include "analysis/speedup.hpp"
#include "core/tuner.hpp"
#include "store/reader.hpp"
#include "sweep/dataset.hpp"

namespace omptune::serve {

namespace {

// Key separator for the answer tables. 0x1f (ASCII unit separator) cannot
// appear in arch/app/input names or variable spellings, so concatenated
// keys never collide.
constexpr char kSep = '\x1f';

std::string pair_key(const std::string& app, const std::string& arch) {
  return app + kSep + arch;
}

std::string setting_key(const std::string& arch, const std::string& app,
                        const std::string& input, std::int32_t threads) {
  return arch + kSep + app + kSep + input + kSep + std::to_string(threads);
}

std::string marginal_key(const std::string& arch, const std::string& variable,
                         const std::string& value) {
  return arch + kSep + variable + kSep + value;
}

/// A name no real application or architecture can have, used to walk
/// KnowledgeBase::variable_priority down its fallback ladder on purpose.
const std::string kNoSuchGroup(1, kSep);

}  // namespace

Snapshot::~Snapshot() = default;

std::shared_ptr<const Snapshot> Snapshot::load(
    const std::vector<std::string>& store_paths, std::uint64_t generation,
    const util::ThreadPool* pool) {
  if (store_paths.empty()) {
    throw std::invalid_argument("Snapshot::load: no store paths");
  }
  // shared_ptr<const ...> via a mutable build object; frozen on return.
  std::shared_ptr<Snapshot> snapshot(new Snapshot());
  snapshot->generation_ = generation;
  snapshot->shard_paths_ = store_paths;
  for (const std::string& path : store_paths) {
    snapshot->readers_.push_back(
        std::make_unique<store::StoreReader>(path, generation));
    snapshot->rows_ += snapshot->readers_.back()->size();
  }

  // Aggregate the answer tables. One shard serves zero-copy off the store
  // slices; multiple shards materialize and pool their rows (load-time
  // cost only — a compacted production store is a single shard).
  std::vector<analysis::SettingBest> bests;
  std::vector<analysis::MarginalRow> per_arch, pooled;
  std::vector<std::string> archs, apps;
  sweep::Dataset merged;  // multi-shard only; must outlive the KB below
  std::unique_ptr<core::KnowledgeBase> merged_kb;
  if (snapshot->readers_.size() == 1) {
    const store::StoreReader& reader = *snapshot->readers_.front();
    bests = analysis::best_per_setting(reader, pool);
    per_arch = analysis::value_marginals(reader, true, pool);
    pooled = analysis::value_marginals(reader, false, pool);
    archs = reader.archs();
    apps = reader.apps();
  } else {
    for (const auto& reader : snapshot->readers_) {
      merged.append(reader->load(pool));
    }
    merged = merged.ok_samples();
    bests = analysis::best_per_setting(merged);
    per_arch = analysis::value_marginals(merged, true);
    pooled = analysis::value_marginals(merged, false);
    archs = merged.distinct([](const sweep::Sample& s) { return s.arch; });
    apps = merged.distinct([](const sweep::Sample& s) { return s.app; });
    merged_kb = std::make_unique<core::KnowledgeBase>(merged, 1.01, pool);
  }

  for (const analysis::SettingBest& best : bests) {
    snapshot->best_setting_[setting_key(best.arch, best.app, best.input,
                                        best.threads)] =
        BestConfig{best.best_speedup, best.best_config.key()};
    BestConfig& pair = snapshot->best_pair_[pair_key(best.app, best.arch)];
    if (pair.config_key.empty() || best.best_speedup > pair.speedup) {
      pair = BestConfig{best.best_speedup, best.best_config.key()};
    }
  }
  for (std::vector<analysis::MarginalRow>* rows : {&per_arch, &pooled}) {
    for (analysis::MarginalRow& row : *rows) {
      const std::string key = marginal_key(row.arch, row.variable, row.value);
      snapshot->marginals_[key] = std::move(row);
    }
  }

  // Influence-ordered variable priorities: one entry per (app, arch) pair
  // with samples, one arch-level fallback per arch (keyed with an empty
  // app), and the global fallback (both keys empty). Query-time lookups
  // walk that ladder, so a pair the study never covered still gets the
  // most useful ordering available — without a model fit on the hot path.
  for (const std::string& arch : archs) {
    std::unique_ptr<core::KnowledgeBase> arch_kb;
    const core::KnowledgeBase* kb = merged_kb.get();
    if (kb == nullptr) {
      arch_kb = std::make_unique<core::KnowledgeBase>(
          *snapshot->readers_.front(), arch, 1.01, pool);
      kb = arch_kb.get();
    }
    for (const std::string& app : apps) {
      snapshot->priority_[pair_key(app, arch)] = kb->variable_priority(app, arch);
    }
    snapshot->priority_[pair_key("", arch)] =
        kb->variable_priority(kNoSuchGroup, arch);
    snapshot->priority_.try_emplace(
        pair_key("", ""), kb->variable_priority(kNoSuchGroup, kNoSuchGroup));
  }

  return snapshot;
}

const BestConfig* Snapshot::best_for_pair(const std::string& app,
                                          const std::string& arch) const {
  const auto it = best_pair_.find(pair_key(app, arch));
  return it == best_pair_.end() ? nullptr : &it->second;
}

const BestConfig* Snapshot::best_for_setting(const std::string& arch,
                                             const std::string& app,
                                             const std::string& input,
                                             std::int32_t threads) const {
  const auto it = best_setting_.find(setting_key(arch, app, input, threads));
  return it == best_setting_.end() ? nullptr : &it->second;
}

const analysis::MarginalRow* Snapshot::marginal(const std::string& arch,
                                                const std::string& variable,
                                                const std::string& value) const {
  const auto it = marginals_.find(marginal_key(arch, variable, value));
  return it == marginals_.end() ? nullptr : &it->second;
}

const std::vector<std::string>* Snapshot::priority(
    const std::string& app, const std::string& arch) const {
  for (const std::string& key :
       {pair_key(app, arch), pair_key("", arch), pair_key("", "")}) {
    const auto it = priority_.find(key);
    if (it != priority_.end()) return &it->second;
  }
  return nullptr;
}

}  // namespace omptune::serve
