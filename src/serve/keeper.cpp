#include "serve/keeper.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "util/errors.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace omptune::serve {

namespace {

/// Bounded-grace child termination: SIGTERM (the child's signal guard
/// drains), then SIGKILL when the grace expires.
util::ExitStatus terminate_child(pid_t pid, std::int64_t grace_ms) {
  ::kill(pid, SIGTERM);
  const std::int64_t deadline = util::monotonic_ms() + grace_ms;
  while (util::monotonic_ms() < deadline) {
    if (std::optional<util::ExitStatus> status = util::try_wait(pid)) {
      return *status;
    }
    pollfd none{-1, 0, 0};
    ::poll(&none, 1, 20);  // portable 20 ms sleep that ignores signals
  }
  ::kill(pid, SIGKILL);
  return util::wait_for(pid);
}

}  // namespace

Keeper::Keeper(KeeperOptions options) : options_(std::move(options)) {
  if (options_.server.socket_path.empty()) {
    throw std::runtime_error("keeper: socket path is required");
  }
  store_paths_ = options_.store_paths;
}

std::vector<std::string> Keeper::current_store_paths() const {
  std::lock_guard<std::mutex> lock(store_mutex_);
  return store_paths_;
}

KeeperCounters Keeper::counters() const {
  KeeperCounters c;
  c.spawns = counters_.spawns.load(std::memory_order_relaxed);
  c.restarts = counters_.restarts.load(std::memory_order_relaxed);
  c.crashes = counters_.crashes.load(std::memory_order_relaxed);
  c.hangs = counters_.hangs.load(std::memory_order_relaxed);
  c.generations_seen =
      counters_.generations_seen.load(std::memory_order_relaxed);
  c.incidents_dropped =
      counters_.incidents_dropped.load(std::memory_order_relaxed);
  return c;
}

void Keeper::request_stop() {
  stop_requested_.store(true, std::memory_order_release);
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(stop_pipe_.write_fd, &byte, 1);
}

void Keeper::log_line(const std::string& line) const {
  if (options_.log) options_.log("keeper: " + line);
}

void Keeper::note_incident(const std::string& cause,
                           const std::string& detail) {
  log_line("incident: " + cause + ": " + detail);
  if (options_.incident_log_path.empty()) return;
  try {
    // Write-ahead: the line is durable BEFORE the restart it explains.
    // Size-capped rotation keeps a crash-looping child from growing the
    // log without bound.
    util::append_line_durable(options_.incident_log_path,
                              std::to_string(util::monotonic_ms()) + " " +
                                  cause + " " + detail,
                              options_.incident_log_max_bytes);
    if (incident_log_degraded_) {
      incident_log_degraded_ = false;
      log_line("incident log writable again: " + options_.incident_log_path);
    }
  } catch (const util::StorageError& error) {
    // An unwritable incident log must never take the service down with it:
    // keep serving, count the loss, and say so exactly once per outage.
    counters_.incidents_dropped.fetch_add(1, std::memory_order_relaxed);
    if (!incident_log_degraded_) {
      incident_log_degraded_ = true;
      log_line("incident log unwritable, serving continues without incident "
               "durability: " +
               std::string(error.what()));
    }
  }
}

void Keeper::consume_line(const std::string& line) {
  if (line == "hb") return;
  if (line.rfind("gen ", 0) == 0) {
    const std::vector<std::string> fields = util::split(line.substr(4), '\t');
    if (fields.empty()) return;
    const std::optional<int> gen = util::parse_int(fields.front());
    if (!gen || *gen < 0) return;
    reported_generation_.store(static_cast<std::uint64_t>(*gen),
                               std::memory_order_release);
    counters_.generations_seen.fetch_add(1, std::memory_order_relaxed);
    if (fields.size() > 1) {
      std::lock_guard<std::mutex> lock(store_mutex_);
      store_paths_.assign(fields.begin() + 1, fields.end());
    }
    return;
  }
  if (line.rfind("err ", 0) == 0) {
    log_line("child reported: " + line.substr(4));
    return;
  }
  log_line("unrecognized heartbeat line: " + line);
}

Keeper::Child Keeper::spawn() {
  Child child;
  const std::vector<std::string> paths = current_store_paths();
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error("keeper: fork failed");
  }
  if (pid == 0) {
    // Child: become the server. Nothing below may return to the caller's
    // stack — the child exits via _Exit in every path.
    util::die_with_parent();
    // A Keeper embedded in a CLI that already holds a ShutdownSignalGuard
    // (omptune serve --supervised) leaks the guard's singleton flag into
    // this child; clear it so the server below can install its own.
    util::reset_shutdown_guard_after_fork();
    ::signal(SIGPIPE, SIG_IGN);  // a dead keeper must surface as EPIPE
    child.heartbeat.close_read();
    int exit_code = 0;
    try {
      ServerOptions server_options = options_.server;
      server_options.heartbeat_fd = child.heartbeat.write_fd;
      server_options.heartbeat_interval_ms = options_.heartbeat_interval_ms;
      server_options.handle_signals = true;  // SIGTERM from the Keeper drains
      Server server(paths, server_options);
      server.run();
    } catch (const std::exception& error) {
      // Boot/serve failure: say why over the pipe so the incident log can
      // carry a cause better than "exited with code 1".
      util::write_all(child.heartbeat.write_fd,
                      std::string("err ") + error.what() + "\n");
      exit_code = 1;
    }
    std::_Exit(exit_code);
  }
  child.pid = pid;
  child.heartbeat.close_write();
  util::set_nonblocking(child.heartbeat.read_fd);
  child.spawned_at_ms = util::monotonic_ms();
  child.last_beat_ms = child.spawned_at_ms;
  return child;
}

int Keeper::run() {
  const auto final_cleanup = [&] {
    // Zero stale-socket leaks: a SIGKILLed child leaves its socket file
    // behind; the keeper owns the path once no child is alive.
    ::unlink(options_.server.socket_path.c_str());
    if (!options_.pid_file.empty()) {
      ::unlink(options_.pid_file.c_str());
    }
  };

  int attempt = 0;
  std::int64_t prev_delay = 0;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    Child child = spawn();
    counters_.spawns.fetch_add(1, std::memory_order_relaxed);
    child_pid_.store(child.pid, std::memory_order_release);
    if (!options_.pid_file.empty()) {
      try {
        util::atomic_write_file(options_.pid_file,
                                std::to_string(child.pid) + "\n");
      } catch (const util::StorageError& error) {
        // Same degradation rule as the incident log: a full disk costs
        // observability, never the service.
        log_line("pid file unwritable, continuing: " +
                 std::string(error.what()));
      }
    }
    log_line("spawned server pid " + std::to_string(child.pid) + " serving " +
             std::to_string(current_store_paths().size()) + " shard(s)");

    util::LineReader reader(child.heartbeat.read_fd);
    std::optional<util::ExitStatus> status;
    bool hang = false;
    std::string hang_detail;
    while (!status) {
      pollfd fds[2] = {{child.heartbeat.read_fd, POLLIN, 0},
                       {stop_pipe_.read_fd, POLLIN, 0}};
      const std::int64_t budget = child.last_beat_ms +
                                  options_.hang_timeout_ms -
                                  util::monotonic_ms();
      const int timeout = static_cast<int>(
          std::clamp<std::int64_t>(budget, 10, 1000));
      const int rc = ::poll(fds, 2, timeout);
      if (rc < 0 && errno != EINTR) {
        throw std::runtime_error("keeper: poll failed");
      }
      const std::vector<std::string> lines = reader.drain();
      if (!lines.empty()) {
        child.last_beat_ms = util::monotonic_ms();
        ready_.store(true, std::memory_order_release);
        for (const std::string& line : lines) consume_line(line);
      }
      if (stop_requested_.load(std::memory_order_acquire)) {
        status = terminate_child(child.pid,
                                 options_.server.drain_timeout_ms + 2000);
        break;
      }
      if (reader.eof()) {
        status = util::wait_for(child.pid);
        break;
      }
      const std::int64_t silent = util::monotonic_ms() - child.last_beat_ms;
      if (silent > options_.hang_timeout_ms) {
        hang = true;
        hang_detail = "no heartbeat for " + std::to_string(silent) + " ms";
        ::kill(child.pid, SIGKILL);
        status = util::wait_for(child.pid);
        break;
      }
    }
    ready_.store(false, std::memory_order_release);
    child_pid_.store(-1, std::memory_order_release);
    const std::int64_t uptime = util::monotonic_ms() - child.spawned_at_ms;

    if (stop_requested_.load(std::memory_order_acquire)) {
      log_line("stopped: child " + status->describe());
      final_cleanup();
      return 0;
    }
    if (hang) {
      counters_.hangs.fetch_add(1, std::memory_order_relaxed);
      note_incident("hang", hang_detail + "; " + status->describe() +
                                "; uptime " + std::to_string(uptime) + " ms");
    } else if (status->exited && status->exit_code == 0) {
      log_line("child drained deliberately; keeper exiting");
      final_cleanup();
      return 0;
    } else {
      counters_.crashes.fetch_add(1, std::memory_order_relaxed);
      note_incident("crash", status->describe() + "; uptime " +
                                 std::to_string(uptime) + " ms");
    }

    if (uptime >= options_.stable_after_ms) {
      attempt = 0;  // it was healthy; this is a fresh incident, not a loop
      prev_delay = 0;
    }
    ++attempt;
    if (options_.max_restarts >= 0 &&
        counters_.restarts.load(std::memory_order_relaxed) >=
            static_cast<std::uint64_t>(options_.max_restarts)) {
      log_line("restart budget exhausted (" +
               std::to_string(options_.max_restarts) + "); giving up");
      final_cleanup();
      return 1;
    }
    const std::int64_t delay = options_.restart_backoff.next_delay_ms(
        options_.seed, "keeper", attempt, prev_delay);
    prev_delay = delay;
    counters_.restarts.fetch_add(1, std::memory_order_relaxed);
    log_line("restarting in " + std::to_string(delay) + " ms (attempt " +
             std::to_string(attempt) + ")");
    pollfd stop_fd{stop_pipe_.read_fd, POLLIN, 0};
    ::poll(&stop_fd, 1, static_cast<int>(delay));
  }
  final_cleanup();
  return 0;
}

}  // namespace omptune::serve
