#pragma once

// The server's hot-config reply cache: a bounded LRU from (generation,
// raw request payload) to the fully encoded reply frame.
//
// Keying on the snapshot generation (the embedded store index the server
// is currently serving, as a monotonic swap counter) makes hot-swap
// coherence trivial: a swap bumps the generation, every new lookup misses,
// and the stale generation's entries are purged eagerly (and would age out
// of the LRU anyway). No per-entry invalidation, no reply ever served
// from a retired store.
//
// The value is the framed reply bytes, not a decoded structure: a hit
// appends straight to the connection's output buffer, which is what makes
// the warm-cache path a hash probe plus one memcpy.
//
// Thread-safe: batch execution probes/inserts from the worker pool while
// the IO thread may be purging after a swap. One mutex guards the map and
// the recency list; hit/miss tallies are atomics so the stats reply
// doesn't take the lock.

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include <unordered_map>

namespace omptune::serve {

class ReplyCache {
 public:
  /// A cache holding at most `capacity` replies; 0 disables caching
  /// (lookup always misses, insert drops).
  explicit ReplyCache(std::size_t capacity);

  /// Cache key: the generation (little-endian, 8 bytes) prepended to the
  /// raw request payload — two requests are equal exactly when their
  /// payload bytes are, so no canonicalization step is needed.
  static std::string make_key(std::uint64_t generation,
                              std::string_view request_payload);

  /// On hit, appends the cached reply frame to `out` and refreshes
  /// recency. Tallies hit/miss either way.
  bool lookup(const std::string& key, std::string& out);

  /// Insert (or refresh) a reply frame, evicting the least-recently-used
  /// entries over capacity.
  void insert(const std::string& key, std::string reply_frame);

  /// Drop every entry of a generation below `generation` (called after a
  /// hot-swap installs a new snapshot).
  void purge_below(std::uint64_t generation);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  using Entry = std::pair<std::string, std::string>;  ///< key, reply frame

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> recency_;  ///< front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace omptune::serve
