#pragma once

// serve::Keeper — the self-healing wrapper around the recommendation
// server (DESIGN.md §13). The Keeper forks the server as a child process
// and watches it over a heartbeat pipe:
//
//   keeper ──fork──▶ server child (binds the socket, serves)
//          ◀──pipe── "hb" every heartbeat_interval_ms
//                    "gen <g>\t<shard>..." at boot and after every swap
//
// Three failure modes, one recovery path:
//   crash  — the child is reaped (EOF on the pipe, waitpid says signaled
//            or nonzero exit),
//   hang   — the pipe stays silent past hang_timeout_ms (the IO loop is
//            wedged even though the process lives): the Keeper SIGKILLs it,
//   both   — append a cause line to the write-ahead incident log (durable
//            BEFORE the restart, so a crash loop is diagnosable even if the
//            Keeper itself dies), wait out a decorrelated-jitter backoff
//            delay (util::BackoffPolicy — the same schedule as sweep worker
//            respawns), then fork a replacement onto the SAME socket path.
//
// The replacement serves the last-known-good shard set: every "gen" line
// updates the Keeper's record, so a hot-swap that landed before a crash is
// what the restarted server boots from — a swap is never silently rolled
// back by a restart.
//
// A child that exits 0 drained deliberately (wire Shutdown); the Keeper
// treats that as "the operator asked us to stop" and exits 0 itself.

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "serve/server.hpp"
#include "util/backoff.hpp"
#include "util/process.hpp"

namespace omptune::serve {

struct KeeperOptions {
  /// Template for every server incarnation. socket_path is required;
  /// heartbeat_fd / heartbeat_interval_ms / handle_signals are overwritten
  /// by the Keeper per child.
  ServerOptions server;
  /// Shard set the FIRST child boots from; later incarnations boot from
  /// whatever "gen" line the pipe last reported (last-known-good).
  std::vector<std::string> store_paths;
  /// Child heartbeat cadence; the hang detector needs several missed
  /// beats before it fires.
  std::int64_t heartbeat_interval_ms = 200;
  /// Silence on the heartbeat pipe past this marks the child wedged.
  /// Must comfortably exceed the longest legitimate poll-round (a huge
  /// batch or a swap load keeps the IO thread busy and silent).
  std::int64_t hang_timeout_ms = 2000;
  /// Delay schedule between restarts.
  util::BackoffPolicy restart_backoff{/*base_ms=*/100, /*max_ms=*/5000};
  std::uint64_t seed = 0;
  /// A child that survives this long resets the backoff streak (the
  /// supervisor notion of "it was actually healthy, the next crash is a
  /// fresh incident, not a boot loop").
  std::int64_t stable_after_ms = 10000;
  /// Give up after this many restarts without reaching stability; < 0
  /// restarts forever. The CLI default is forever; tests bound it.
  int max_restarts = -1;
  /// Write-ahead incident log: one appended line per crash/hang, fsynced
  /// before the restart happens. "" disables.
  std::string incident_log_path;
  /// Rotate the incident log (rename to "<path>.1") once it would exceed
  /// this many bytes, bounding a crash loop's disk footprint to roughly
  /// twice the cap. 0 disables rotation.
  std::uint64_t incident_log_max_bytes = 1 << 20;
  /// Current child pid, rewritten atomically after every (re)spawn.
  /// "" disables.
  std::string pid_file;
  std::function<void(const std::string&)> log;
};

struct KeeperCounters {
  std::uint64_t spawns = 0;      ///< children forked (first boot included)
  std::uint64_t restarts = 0;    ///< spawns - 1, but only after failures
  std::uint64_t crashes = 0;     ///< reaped with a signal or nonzero exit
  std::uint64_t hangs = 0;       ///< SIGKILLed for heartbeat silence
  std::uint64_t generations_seen = 0;  ///< "gen" lines observed
  /// Incident lines lost because the log was unwritable (ENOSPC, EIO...).
  /// Serving continues; the degradation is logged once per outage.
  std::uint64_t incidents_dropped = 0;
};

class Keeper {
 public:
  explicit Keeper(KeeperOptions options);

  /// Supervise until request_stop() (or a clean child exit). Returns the
  /// process exit code: 0 for a deliberate stop, 1 when the restart budget
  /// was exhausted. Runs the watch loop on the calling thread.
  int run();

  /// Thread-safe stop: SIGTERM the child, wait for its drain (bounded),
  /// then return from run().
  void request_stop();

  /// True while a child is believed live and has heartbeat at least once
  /// since its spawn (its listeners are bound by the first beat).
  bool ready() const { return ready_.load(std::memory_order_acquire); }

  /// Current child pid (tests aim SIGKILL/SIGSTOP here); -1 between
  /// incarnations.
  pid_t child_pid() const { return child_pid_.load(std::memory_order_acquire); }

  /// Last-known-good shard set: what the next restart would serve.
  std::vector<std::string> current_store_paths() const;

  /// Generation number the child last reported serving.
  std::uint64_t reported_generation() const {
    return reported_generation_.load(std::memory_order_acquire);
  }

  KeeperCounters counters() const;

 private:
  struct Child {
    pid_t pid = -1;
    util::Pipe heartbeat;  ///< read end lives here; write end in the child
    std::int64_t spawned_at_ms = 0;
    std::int64_t last_beat_ms = 0;
  };

  Child spawn();
  void note_incident(const std::string& cause, const std::string& detail);
  void consume_line(const std::string& line);
  void log_line(const std::string& line) const;

  KeeperOptions options_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> ready_{false};
  std::atomic<pid_t> child_pid_{-1};
  std::atomic<std::uint64_t> reported_generation_{0};
  util::Pipe stop_pipe_;  ///< wakes the watch poll from request_stop()

  mutable std::mutex store_mutex_;
  std::vector<std::string> store_paths_;  ///< last-known-good shard set

  struct Atomics {
    std::atomic<std::uint64_t> spawns{0}, restarts{0}, crashes{0}, hangs{0},
        generations_seen{0}, incidents_dropped{0};
  };
  mutable Atomics counters_;
  /// True while the incident log is unwritable; gates the log-once warning
  /// and the recovery line. Only touched from the watch thread.
  bool incident_log_degraded_ = false;
};

}  // namespace omptune::serve
