#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <netinet/in.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace omptune::serve {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

[[noreturn]] void conn_fail(const std::string& what) {
  throw ConnectionLost(what + ": " + std::strerror(errno));
}

}  // namespace

Client Client::connect_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long for AF_UNIX: " +
                             socket_path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) sys_fail("socket(AF_UNIX)");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    conn_fail("connect(" + socket_path + ")");
  }
  return Client(fd);
}

Client Client::connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) sys_fail("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    conn_fail("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  return Client(fd);
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::set_timeouts(int timeout_ms) {
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

std::string Client::read_frame() {
  for (;;) {
    const std::size_t total = frame_size(buffer_);  // throws on oversize
    if (total != 0) {
      std::string payload = buffer_.substr(4, total - 4);
      buffer_.erase(0, total);
      return payload;
    }
    char chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      throw ConnectionLost("server closed the connection mid-reply");
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      throw ConnectionLost("recv timed out waiting for a reply frame");
    }
    conn_fail("recv");
  }
}

std::vector<Response> Client::call(const std::vector<Request>& requests) {
  if (fd_ < 0) throw std::runtime_error("client is not connected");
  std::string batch;
  for (const Request& request : requests) encode_request(batch, request);
  if (!send_all(fd_, batch)) {
    throw ConnectionLost("server closed the connection mid-request");
  }
  std::vector<Response> replies;
  replies.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    replies.push_back(decode_response(read_frame()));
  }
  return replies;
}

Response Client::call_one(const Request& request) {
  return call({request}).front();
}

}  // namespace omptune::serve
