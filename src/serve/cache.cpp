#include "serve/cache.hpp"

#include <cstring>

namespace omptune::serve {

ReplyCache::ReplyCache(std::size_t capacity) : capacity_(capacity) {}

std::string ReplyCache::make_key(std::uint64_t generation,
                                 std::string_view request_payload) {
  std::string key;
  key.reserve(sizeof(generation) + request_payload.size());
  char prefix[sizeof(generation)];
  std::memcpy(prefix, &generation, sizeof(generation));
  key.append(prefix, sizeof(generation));
  key.append(request_payload.data(), request_payload.size());
  return key;
}

bool ReplyCache::lookup(const std::string& key, std::string& out) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  recency_.splice(recency_.begin(), recency_, it->second);
  out += it->second->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ReplyCache::insert(const std::string& key, std::string reply_frame) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // A concurrent batch already computed this reply; refresh it.
    it->second->second = std::move(reply_frame);
    recency_.splice(recency_.begin(), recency_, it->second);
    return;
  }
  recency_.emplace_front(key, std::move(reply_frame));
  index_[key] = recency_.begin();
  while (index_.size() > capacity_) {
    index_.erase(recency_.back().first);
    recency_.pop_back();
  }
}

void ReplyCache::purge_below(std::uint64_t generation) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = recency_.begin(); it != recency_.end();) {
    std::uint64_t entry_generation = 0;
    if (it->first.size() >= sizeof(entry_generation)) {
      std::memcpy(&entry_generation, it->first.data(),
                  sizeof(entry_generation));
    }
    if (entry_generation < generation) {
      index_.erase(it->first);
      it = recency_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t ReplyCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recency_.size();
}

}  // namespace omptune::serve
