#pragma once

// The tuning-as-a-service front end: a long-running recommendation server
// over shared read-only .omps store shards (see DESIGN.md §12).
//
// Architecture, in one paragraph: one IO thread owns a poll(2) loop over
// the unix-socket (and optional loopback-TCP) listeners and every
// connection. Each poll round it drains readable connections, cuts the
// buffered bytes into complete frames, and gathers up to max_batch
// requests per connection — the per-connection batch. The round's batch
// set is admitted against max_pending (the bounded queue): requests over
// the bound are answered immediately with a typed Overloaded reply and
// never touch the store (load-shedding that costs the victim one frame
// round-trip, not a timeout). Admitted query requests execute on the
// shared util::ThreadPool worker loop — each one a reply-cache probe and,
// on a miss, a hash lookup into the current Snapshot — then replies are
// appended to each connection's output buffer in request order and
// flushed (POLLOUT finishes stragglers).
//
// Hot-swap: swap() builds the next Snapshot generation off to the side
// (open, validate, aggregate — seconds, off the hot path), then installs
// it with one shared_ptr store under a mutex. Batches grab the snapshot
// once per round, so every in-flight query finishes on the mapping it
// started with; the retired generation's mmap unmaps when the last such
// batch retires. The reply cache is keyed on the generation, so a swap
// implicitly invalidates it (stale entries are purged eagerly).
//
// Shutdown: SIGINT/SIGTERM (via util::ShutdownSignalGuard), a wire
// Shutdown message, or request_stop() all trigger the same drain: stop
// accepting, finish the in-flight round, flush every connection's pending
// replies under a deadline, then close and account for every connection.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/cache.hpp"
#include "serve/snapshot.hpp"
#include "serve/wire.hpp"
#include "util/process.hpp"
#include "util/thread_pool.hpp"

namespace omptune::serve {

struct ServerOptions {
  /// Filesystem path of the unix listening socket (required). An existing
  /// socket file at the path is replaced — the server owns its path.
  std::string socket_path;
  /// Loopback TCP listener: -1 disables (default), 0 binds an ephemeral
  /// port (see Server::tcp_port()), >0 binds that port on 127.0.0.1.
  int tcp_port = -1;
  /// Worker lanes for batch execution (0 = ThreadPool default).
  unsigned threads = 0;
  /// Reply-cache capacity in entries (0 disables the cache).
  std::size_t cache_capacity = 4096;
  /// Admission bound: query requests admitted per poll round; the excess
  /// is shed with Overloaded replies.
  std::size_t max_pending = 1024;
  /// Frames taken from one connection per round (the rest stay buffered —
  /// per-connection fairness under a flooding client).
  std::size_t max_batch = 512;
  /// Pause reading a connection whose unsent replies exceed this.
  std::size_t max_output_bytes = 8u << 20;
  /// Input buffered per connection before the peer counts as flooding
  /// (protocol violation, connection dropped).
  std::size_t max_input_bytes = 16u << 20;
  /// Honor wire Swap/Shutdown admin messages (the CLI serves with this on;
  /// a deployment fronting untrusted clients would turn it off).
  bool allow_admin = true;
  /// Install util::ShutdownSignalGuard during run() so SIGINT/SIGTERM
  /// drain instead of killing mid-reply. Off for in-process test servers
  /// (the guard is process-global).
  bool handle_signals = false;
  /// Budget for flushing pending replies at drain.
  std::int64_t drain_timeout_ms = 5000;
  /// Per-request budget, stamped when the frame is cut from the socket:
  /// a query still unanswered strictly past its stamp + this many ms gets
  /// a typed DeadlineExceeded reply instead of a store lookup (graceful
  /// degradation: the client retries, the queue drains). 0 disables.
  std::int64_t request_deadline_ms = 0;
  /// Slowloris defense: a connection holding a PARTIAL frame that makes no
  /// frame progress for this long is evicted (counted in evicted_slow).
  /// The clock starts when the partial appears and only a completed frame
  /// resets it, so trickling one byte per second does not keep a slot
  /// alive. 0 disables.
  std::int64_t stall_timeout_ms = 0;
  /// Keeper liveness pipe: when >= 0, the IO loop writes "hb" lines every
  /// heartbeat_interval_ms and a "gen <generation>\t<path>..." line at
  /// boot and after every swap, so the supervisor can detect a wedged
  /// process and restart onto the last-known-good shard set. -1 disables.
  int heartbeat_fd = -1;
  std::int64_t heartbeat_interval_ms = 500;
  /// Test/chaos hook: sleep this long inside each query execution. Forces
  /// deterministic deadline misses and wedge windows; 0 in production.
  std::int64_t debug_execute_delay_ms = 0;
  /// Progress/accounting lines; null = silent.
  std::function<void(const std::string&)> log;
};

/// Counter snapshot (see Server::counters()).
struct ServerCounters {
  std::uint64_t served = 0;             ///< replies written (all types)
  std::uint64_t batches = 0;            ///< per-connection batches executed
  std::uint64_t shed = 0;               ///< Overloaded replies (admission)
  std::uint64_t deadline_exceeded = 0;  ///< DeadlineExceeded replies
  std::uint64_t evicted_slow = 0;       ///< connections evicted for stalling
  std::uint64_t wire_errors = 0;        ///< Error replies to bad requests
  std::uint64_t protocol_errors = 0;    ///< connections dropped for framing
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t swaps = 0;              ///< successful hot-swaps
  std::uint64_t swap_failures = 0;      ///< rejected swaps (old gen kept)
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t generation = 0;         ///< currently served generation
  std::uint64_t store_rows = 0;         ///< rows in the current generation
  std::uint32_t shards = 0;             ///< shard stores in the generation
  bool drained_cleanly = false;         ///< set once shutdown completes
};

class Server {
 public:
  /// Load generation 1 from `store_paths` and prepare to serve. Throws
  /// util::StoreOpenError / util::DataCorruptionError if a store cannot
  /// be adopted (nothing is listening yet — boot must be loud).
  Server(std::vector<std::string> store_paths, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and serve until a shutdown trigger; returns after the
  /// drain completes. Throws std::runtime_error on listener setup failure.
  void run();

  /// Thread-safe shutdown trigger (same path as SIGINT / wire Shutdown).
  void request_stop();

  /// Hot-swap to a new shard set: builds generation current+1 from
  /// `store_paths`, installs it atomically, purges the stale cache
  /// generation. In-flight batches finish on the old snapshot. On any
  /// load failure the old generation keeps serving and the error
  /// propagates (typed, carrying path + attempted generation).
  /// Thread-safe; concurrent swaps serialize.
  std::uint64_t swap(const std::vector<std::string>& store_paths);

  /// True once run() is listening (tests poll this before connecting).
  bool ready() const { return ready_.load(std::memory_order_acquire); }

  /// Ephemeral TCP port once listening (0 = no TCP listener).
  int tcp_port() const { return tcp_port_.load(std::memory_order_acquire); }

  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  ServerCounters counters() const;

  /// Answer one request against a snapshot — the pure query path, shared
  /// by the batch executor and exposed for tests/bench to compute
  /// reference answers.
  static Response answer(const Request& request, const Snapshot& snapshot);

  /// The deadline comparator the executor uses: STRICTLY past, so a
  /// request completing exactly at its deadline is on time ("done by t",
  /// not "done before t"). deadline_at_ms == 0 means no deadline.
  static bool past_deadline(std::int64_t now_ms, std::int64_t deadline_at_ms) {
    return deadline_at_ms > 0 && now_ms > deadline_at_ms;
  }

 private:
  struct Conn;
  struct Work;

  std::shared_ptr<const Snapshot> snapshot() const;
  void execute_round(std::vector<Work>& works,
                     const std::shared_ptr<const Snapshot>& snap);
  void handle_admin(Work& work);
  Response stats_response() const;
  void log_line(const std::string& line) const;

  ServerOptions options_;
  util::ThreadPool pool_;
  ReplyCache cache_;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Snapshot> snapshot_;
  std::mutex swap_mutex_;  ///< serializes swap() callers
  std::atomic<std::uint64_t> generation_{0};

  std::atomic<bool> ready_{false};
  std::atomic<bool> stop_requested_{false};
  /// Wakes the poll loop from request_stop(). A member (not a run() local)
  /// so the write end outlives run(): a concurrent request_stop() must
  /// never race the pipe's destructor on a closed-and-reused fd.
  util::Pipe stop_pipe_;
  std::atomic<int> tcp_port_{0};
  bool draining_ = false;  ///< IO thread only

  struct Atomics {
    std::atomic<std::uint64_t> served{0}, batches{0}, shed{0},
        deadline_exceeded{0}, evicted_slow{0}, wire_errors{0},
        protocol_errors{0}, connections_accepted{0}, connections_closed{0},
        connections_active{0}, swaps{0}, swap_failures{0};
    std::atomic<bool> drained_cleanly{false};
  };
  mutable Atomics counters_;
};

}  // namespace omptune::serve
