#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace omptune::stats {

// mean/stddev are single-pass Welford updates so the store's slice-wise
// aggregation reads each runtime column exactly once (two-pass stddev would
// double every column's memory traffic). Welford is also the numerically
// stable choice: the running mean keeps the accumulated terms centered.

MeanStd mean_stddev(const double* values, std::size_t count) {
  MeanStd result;
  result.count = count;
  double mean = 0.0;
  double m2 = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double delta = values[i] - mean;
    mean += delta / static_cast<double>(i + 1);
    m2 += delta * (values[i] - mean);
  }
  result.mean = mean;
  result.stddev =
      count < 2 ? 0.0 : std::sqrt(m2 / static_cast<double>(count - 1));
  return result;
}

double mean(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("mean: empty input");
  return mean_stddev(values.data(), values.size()).mean;
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  return mean_stddev(values.data(), values.size()).stddev;
}

double min_value(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(values.begin(), values.end());
}

double max_value(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(values.begin(), values.end());
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

Summary summarize(std::vector<double> values) {
  if (values.empty()) throw std::invalid_argument("summarize: empty input");
  Summary s;
  s.count = values.size();
  const MeanStd ms = mean_stddev(values.data(), values.size());
  s.mean = ms.mean;
  s.stddev = ms.stddev;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  auto q = [&values](double p) {
    const double pos = p * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
  };
  s.q25 = q(0.25);
  s.median = q(0.5);
  s.q75 = q(0.75);
  return s;
}

Summary summarize(const double* values, std::size_t count) {
  return summarize(std::vector<double>(values, values + count));
}

}  // namespace omptune::stats
