#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace omptune::stats {

double mean(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("mean: empty input");
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (const double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double min_value(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(values.begin(), values.end());
}

double max_value(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(values.begin(), values.end());
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

Summary summarize(std::vector<double> values) {
  if (values.empty()) throw std::invalid_argument("summarize: empty input");
  Summary s;
  s.count = values.size();
  s.mean = mean(values);
  s.stddev = stddev(values);
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  auto q = [&values](double p) {
    const double pos = p * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
  };
  s.q25 = q(0.25);
  s.median = q(0.5);
  s.q75 = q(0.75);
  return s;
}

}  // namespace omptune::stats
