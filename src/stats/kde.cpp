#include "stats/kde.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "stats/descriptive.hpp"
#include "util/strings.hpp"

namespace omptune::stats {

double silverman_bandwidth(const std::vector<double>& values) {
  const double sd = stddev(values);
  const double iqr = quantile(values, 0.75) - quantile(values, 0.25);
  const double spread = iqr > 0.0 ? std::min(sd, iqr / 1.34) : sd;
  const double n = static_cast<double>(values.size());
  const double h = 0.9 * spread * std::pow(n, -0.2);
  // Degenerate distributions (all equal): fall back to a tiny positive h.
  return h > 0.0 ? h : 1e-9;
}

ViolinData kernel_density(const std::vector<double>& values, int grid_points) {
  if (values.size() < 2) {
    throw std::invalid_argument("kernel_density: need at least 2 values");
  }
  if (grid_points < 2) {
    throw std::invalid_argument("kernel_density: need at least 2 grid points");
  }
  ViolinData out;
  out.bandwidth = silverman_bandwidth(values);
  const double lo = min_value(values) - 3.0 * out.bandwidth;
  const double hi = max_value(values) + 3.0 * out.bandwidth;
  const double step = (hi - lo) / static_cast<double>(grid_points - 1);
  const double norm =
      1.0 / (static_cast<double>(values.size()) * out.bandwidth *
             std::sqrt(2.0 * M_PI));
  out.grid.resize(static_cast<std::size_t>(grid_points));
  out.density.resize(static_cast<std::size_t>(grid_points));
  for (int g = 0; g < grid_points; ++g) {
    const double x = lo + step * g;
    double acc = 0.0;
    for (const double v : values) {
      const double u = (x - v) / out.bandwidth;
      acc += std::exp(-0.5 * u * u);
    }
    out.grid[static_cast<std::size_t>(g)] = x;
    out.density[static_cast<std::size_t>(g)] = acc * norm;
  }
  return out;
}

std::vector<int> histogram(const std::vector<double>& values, double lo,
                           double hi, int bins) {
  if (bins <= 0) throw std::invalid_argument("histogram: bins must be > 0");
  if (hi <= lo) throw std::invalid_argument("histogram: hi must exceed lo");
  std::vector<int> counts(static_cast<std::size_t>(bins), 0);
  const double width = (hi - lo) / bins;
  for (const double v : values) {
    if (v < lo || v > hi) continue;
    const int bin = std::min(bins - 1, static_cast<int>((v - lo) / width));
    ++counts[static_cast<std::size_t>(bin)];
  }
  return counts;
}

std::string render_ascii_violin(const std::vector<double>& values, int bins,
                                int max_width) {
  const double lo = min_value(values);
  const double hi = max_value(values);
  const double span = hi > lo ? hi - lo : 1.0;
  const auto counts = histogram(values, lo, lo + span, bins);
  const int peak = std::max(1, *std::max_element(counts.begin(), counts.end()));

  std::string out;
  for (int b = bins - 1; b >= 0; --b) {
    const double bin_value = lo + span * (b + 0.5) / bins;
    const int width =
        counts[static_cast<std::size_t>(b)] * max_width / peak;
    out += util::format_double(bin_value, 3) + " |";
    out.append(static_cast<std::size_t>(width), '#');
    out += "  (" + std::to_string(counts[static_cast<std::size_t>(b)]) + ")\n";
  }
  return out;
}

}  // namespace omptune::stats
