#pragma once

// Wilcoxon signed-rank test for paired samples (paper IV-C, Table III):
// used to decide whether repeated runs of the same configurations differ
// significantly — i.e. whether a machine's measurements are consistent.
//
// Implementation follows the classic two-sided test with the normal
// approximation (appropriate here: the paper's pairings have thousands of
// samples), including tie-average ranking, zero-difference removal
// (Wilcoxon's original treatment, matching scipy's default), and the tie
// variance correction.

#include <vector>

namespace omptune::stats {

struct WilcoxonResult {
  /// Sum of ranks of the positive differences (the commonly reported W+;
  /// scipy reports min(W+, W-), available below).
  double w_plus = 0;
  double w_minus = 0;
  /// Test statistic: min(W+, W-).
  double statistic = 0;
  /// Two-sided p-value (normal approximation).
  double p_value = 1.0;
  /// Number of non-zero differences used.
  std::size_t n_used = 0;
};

/// Paired test of x vs y. Throws std::invalid_argument if the lengths
/// differ or fewer than 10 usable (non-equal) pairs remain — below that the
/// normal approximation is meaningless.
WilcoxonResult wilcoxon_signed_rank(const std::vector<double>& x,
                                    const std::vector<double>& y);

/// Standard normal CDF.
double normal_cdf(double z);

}  // namespace omptune::stats
