#pragma once

// Descriptive statistics used throughout the analysis (Tables IV, V, VI and
// the per-architecture medians of Section V.1).

#include <vector>

namespace omptune::stats {

/// Single-pass (Welford) mean and sample standard deviation over a raw
/// column slice — the store scanner's building block: one read of the
/// column yields both moments. Agrees with the classic two-pass formulas
/// to ~1e-12 relative (pinned in tests).
struct MeanStd {
  double mean = 0;
  double stddev = 0;  ///< n-1 denominator; 0 for fewer than 2 values
  std::size_t count = 0;
};

MeanStd mean_stddev(const double* values, std::size_t count);

double mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double stddev(const std::vector<double>& values);

double min_value(const std::vector<double>& values);
double max_value(const std::vector<double>& values);

/// Linear-interpolated quantile, q in [0, 1]. Throws on empty input.
double quantile(std::vector<double> values, double q);

double median(std::vector<double> values);

struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double q25 = 0;
  double median = 0;
  double q75 = 0;
  double max = 0;
};

/// All of the above in one pass (plus sorting for the quantiles).
Summary summarize(std::vector<double> values);

/// Summarize a raw column slice (copies once for the quantile sort).
Summary summarize(const double* values, std::size_t count);

}  // namespace omptune::stats
