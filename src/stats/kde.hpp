#pragma once

// Gaussian kernel density estimation: the violin-plot engine behind the
// paper's Figs 1, 5, 6 and 7 (performance-distribution violins per
// architecture and input size).

#include <string>
#include <vector>

namespace omptune::stats {

struct ViolinData {
  std::vector<double> grid;     ///< evaluation points (runtime/speedup axis)
  std::vector<double> density;  ///< estimated density at each grid point
  double bandwidth = 0;
};

/// Silverman's rule-of-thumb bandwidth.
double silverman_bandwidth(const std::vector<double>& values);

/// Evaluate the Gaussian KDE of `values` on `grid_points` evenly spaced
/// points spanning [min - 3h, max + 3h]. Throws on fewer than 2 values.
ViolinData kernel_density(const std::vector<double>& values, int grid_points);

/// Plain histogram (for textual violin rendering): `bins` equal-width bins
/// over [lo, hi]; returns per-bin counts.
std::vector<int> histogram(const std::vector<double>& values, double lo,
                           double hi, int bins);

/// Render a vertical ASCII violin: one row per bin, bar width proportional
/// to density — the terminal stand-in for the paper's violin plots.
std::string render_ascii_violin(const std::vector<double>& values, int bins,
                                int max_width);

}  // namespace omptune::stats
