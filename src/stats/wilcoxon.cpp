#include "stats/wilcoxon.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace omptune::stats {

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

WilcoxonResult wilcoxon_signed_rank(const std::vector<double>& x,
                                    const std::vector<double>& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("wilcoxon_signed_rank: length mismatch");
  }

  // Differences, dropping exact zeros (Wilcoxon's treatment).
  std::vector<double> diffs;
  diffs.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    if (d != 0.0) diffs.push_back(d);
  }
  const std::size_t n = diffs.size();
  if (n < 10) {
    throw std::invalid_argument(
        "wilcoxon_signed_rank: need at least 10 non-equal pairs for the "
        "normal approximation");
  }

  // Rank |d| ascending with tie-average ranks.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&diffs](std::size_t a, std::size_t b) {
    return std::abs(diffs[a]) < std::abs(diffs[b]);
  });

  std::vector<double> ranks(n, 0.0);
  double tie_correction = 0.0;  // sum over ties of (t^3 - t)
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n &&
           std::abs(diffs[order[j + 1]]) == std::abs(diffs[order[i]])) {
      ++j;
    }
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    const double t = static_cast<double>(j - i + 1);
    tie_correction += t * t * t - t;
    i = j + 1;
  }

  WilcoxonResult result;
  result.n_used = n;
  for (std::size_t k = 0; k < n; ++k) {
    if (diffs[k] > 0.0) {
      result.w_plus += ranks[k];
    } else {
      result.w_minus += ranks[k];
    }
  }
  result.statistic = std::min(result.w_plus, result.w_minus);

  const double nd = static_cast<double>(n);
  const double mean = nd * (nd + 1.0) / 4.0;
  const double variance =
      nd * (nd + 1.0) * (2.0 * nd + 1.0) / 24.0 - tie_correction / 48.0;
  if (variance <= 0.0) {
    // All differences tied at one magnitude with n tiny — degenerate.
    result.p_value = 1.0;
    return result;
  }
  const double z = (result.statistic - mean) / std::sqrt(variance);
  result.p_value = std::clamp(2.0 * normal_cdf(z), 0.0, 1.0);
  return result;
}

}  // namespace omptune::stats
