#pragma once

// Environment-variable access helpers. The runtime consumes its
// configuration from process environment variables exactly like
// LLVM/OpenMP; ScopedEnv provides an RAII mechanism for tests and the
// sweep harness to set and restore variables deterministically.

#include <optional>
#include <string>
#include <vector>

namespace omptune::util {

/// Read an environment variable; nullopt if unset.
std::optional<std::string> get_env(const std::string& name);

/// Set (or overwrite) an environment variable for this process.
void set_env(const std::string& name, const std::string& value);

/// Remove an environment variable from this process.
void unset_env(const std::string& name);

/// RAII guard: applies a set of variable assignments on construction and
/// restores the previous values (including "unset") on destruction.
/// Not thread-safe — callers must not mutate the environment concurrently,
/// mirroring POSIX setenv constraints.
class ScopedEnv {
 public:
  struct Assignment {
    std::string name;
    /// nullopt means "unset the variable".
    std::optional<std::string> value;
  };

  explicit ScopedEnv(std::vector<Assignment> assignments);
  ScopedEnv(std::initializer_list<Assignment> assignments)
      : ScopedEnv(std::vector<Assignment>(assignments)) {}
  ~ScopedEnv();

  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  struct Saved {
    std::string name;
    std::optional<std::string> previous;
  };
  std::vector<Saved> saved_;
};

}  // namespace omptune::util
