#pragma once

// Crash-safe filesystem helpers for the write-ahead journal: a reader must
// never observe a half-written file, even if the process dies mid-write.
// The standard recipe — write to a temp file in the same directory, fsync
// the file, rename() over the destination, fsync the directory — makes the
// replacement atomic on POSIX filesystems.
//
// Every durability boundary here consults util::IoHooks (io_hooks.hpp)
// before the real syscall, which is how the crash-consistency torture
// framework (DESIGN.md §14) injects crashes, torn/short writes, ENOSPC/EIO
// and read-side bit rot without touching production control flow. All I/O
// failures surface as the typed util::StorageError carrying operation,
// path and errno.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace omptune::util {

/// Atomically replace `path` with `content` (temp file + fsync + rename +
/// parent-directory fsync). Throws util::StorageError on any I/O failure;
/// on failure the previous contents of `path` (if any) are left intact.
void atomic_write_file(const std::string& path, const std::string& content);

/// fsync the directory itself so a just-renamed/unlinked entry survives
/// power loss, not only process death. Returns false when the filesystem
/// refuses to open or fsync a directory (some network filesystems do) —
/// best effort there, but EINTR is retried, never surfaced as failure.
bool fsync_directory(const std::string& dir);

/// rename(2) + parent-directory fsync: atomically move `from` over `to`
/// (same filesystem). Falls back to atomic_write_file(read_file(from)) +
/// unlink on EXDEV. Throws util::StorageError on failure.
void rename_file(const std::string& from, const std::string& to);

/// Remove `path` and fsync its parent directory, so the removal also
/// survives power loss (a durably discarded journal entry must not
/// resurrect after a crash). Returns whether anything was removed; throws
/// util::StorageError on an injected unlink failure.
bool remove_file_durable(const std::string& path);

/// Append `line` + '\n' to `path` with open(O_APPEND) + fsync: the durable
/// append-only log primitive behind the Keeper incident log. Unlike the
/// atomic-replace recipe, an append can tear mid-line on a crash — readers
/// must treat a final line without '\n' as torn (see repair_appended_log).
/// When `rotate_at_bytes` > 0 and the append would push the file past that
/// size, the file is first rotated to `path + ".1"` (replacing any previous
/// rotation) so the log stays size-capped at roughly 2x the threshold.
/// Throws util::StorageError on failure.
void append_line_durable(const std::string& path, const std::string& line,
                         std::uint64_t rotate_at_bytes = 0);

/// Drop a torn trailing line (bytes after the last '\n') left by a crash
/// mid-append. Returns the number of bytes dropped (0 for a clean or
/// missing file). Throws util::StorageError if the truncate fails.
std::size_t repair_appended_log(const std::string& path);

/// Delete leftover "<name>.tmp.<pid>" files in `dir` — droppings of
/// atomic_write_file writers that were SIGKILLed between open and rename.
/// Only call on a directory the caller owns exclusively (a concurrent live
/// writer's temp file is indistinguishable from a stale one). Returns the
/// number of files removed.
std::size_t remove_stale_temp_files(const std::string& dir);

/// Whole-file read; nullopt if the file does not exist, throws
/// util::StorageError on other I/O failures. The installed IoHooks may
/// bit-rot the returned bytes (validation downstream must catch it).
std::optional<std::string> read_file(const std::string& path);

bool file_exists(const std::string& path);

/// mkdir -p. Throws std::runtime_error on failure.
void create_directories(const std::string& path);

/// Regular files directly inside `dir` (not recursive), sorted by name.
/// Returns an empty list if `dir` does not exist.
std::vector<std::string> list_files(const std::string& dir);

/// Remove a file if present; returns whether anything was removed.
bool remove_file(const std::string& path);

/// `a + "/" + b` with separator de-duplication.
std::string path_join(const std::string& a, const std::string& b);

}  // namespace omptune::util
