#pragma once

// Crash-safe filesystem helpers for the write-ahead journal: a reader must
// never observe a half-written file, even if the process dies mid-write.
// The standard recipe — write to a temp file in the same directory, fsync
// the file, rename() over the destination, fsync the directory — makes the
// replacement atomic on POSIX filesystems.

#include <optional>
#include <string>
#include <vector>

namespace omptune::util {

/// Atomically replace `path` with `content` (temp file + fsync + rename +
/// parent-directory fsync). Throws std::runtime_error on any I/O failure;
/// on failure the previous contents of `path` (if any) are left intact.
void atomic_write_file(const std::string& path, const std::string& content);

/// fsync the directory itself so a just-renamed/unlinked entry survives
/// power loss, not only process death. Returns false when the filesystem
/// refuses to open or fsync a directory (some network filesystems do) —
/// best effort there, but EINTR is retried, never surfaced as failure.
bool fsync_directory(const std::string& dir);

/// rename(2) + parent-directory fsync: atomically move `from` over `to`
/// (same filesystem). Falls back to atomic_write_file(read_file(from)) +
/// unlink on EXDEV. Throws std::runtime_error on failure.
void rename_file(const std::string& from, const std::string& to);

/// Remove `path` and fsync its parent directory, so the removal also
/// survives power loss (a durably discarded journal entry must not
/// resurrect after a crash). Returns whether anything was removed.
bool remove_file_durable(const std::string& path);

/// Delete leftover "<name>.tmp.<pid>" files in `dir` — droppings of
/// atomic_write_file writers that were SIGKILLed between open and rename.
/// Only call on a directory the caller owns exclusively (a concurrent live
/// writer's temp file is indistinguishable from a stale one). Returns the
/// number of files removed.
std::size_t remove_stale_temp_files(const std::string& dir);

/// Whole-file read; nullopt if the file does not exist, throws
/// std::runtime_error on other I/O failures.
std::optional<std::string> read_file(const std::string& path);

bool file_exists(const std::string& path);

/// mkdir -p. Throws std::runtime_error on failure.
void create_directories(const std::string& path);

/// Regular files directly inside `dir` (not recursive), sorted by name.
/// Returns an empty list if `dir` does not exist.
std::vector<std::string> list_files(const std::string& dir);

/// Remove a file if present; returns whether anything was removed.
bool remove_file(const std::string& path);

/// `a + "/" + b` with separator de-duplication.
std::string path_join(const std::string& a, const std::string& b);

}  // namespace omptune::util
