#pragma once

// Crash-safe filesystem helpers for the write-ahead journal: a reader must
// never observe a half-written file, even if the process dies mid-write.
// The standard recipe — write to a temp file in the same directory, fsync
// the file, rename() over the destination, fsync the directory — makes the
// replacement atomic on POSIX filesystems.

#include <optional>
#include <string>
#include <vector>

namespace omptune::util {

/// Atomically replace `path` with `content` (temp file + fsync + rename).
/// Throws std::runtime_error on any I/O failure; on failure the previous
/// contents of `path` (if any) are left intact.
void atomic_write_file(const std::string& path, const std::string& content);

/// Whole-file read; nullopt if the file does not exist, throws
/// std::runtime_error on other I/O failures.
std::optional<std::string> read_file(const std::string& path);

bool file_exists(const std::string& path);

/// mkdir -p. Throws std::runtime_error on failure.
void create_directories(const std::string& path);

/// Regular files directly inside `dir` (not recursive), sorted by name.
/// Returns an empty list if `dir` does not exist.
std::vector<std::string> list_files(const std::string& dir);

/// Remove a file if present; returns whether anything was removed.
bool remove_file(const std::string& path);

/// `a + "/" + b` with separator de-duplication.
std::string path_join(const std::string& a, const std::string& b);

}  // namespace omptune::util
