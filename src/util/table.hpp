#pragma once

// Fixed-width text table rendering for the bench harness binaries, which
// print the same rows the paper's tables report.

#include <iosfwd>
#include <string>
#include <vector>

namespace omptune::util {

/// A text table with a caption, header row, and aligned columns.
class TextTable {
 public:
  TextTable(std::string caption, std::vector<std::string> header);

  /// Append a row; width must match the header.
  void add_row(std::vector<std::string> row);

  /// Render with box-drawing-free ASCII alignment.
  std::string render() const;

  void print(std::ostream& os) const;

 private:
  std::string caption_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a labelled heat map as text: one row per entity, one column per
/// feature, with each cell showing the normalized influence in [0,1] and a
/// shade glyph so the "darker = more influential" reading of the paper's
/// figures carries over to terminal output.
class HeatMapRenderer {
 public:
  HeatMapRenderer(std::string caption, std::vector<std::string> col_names);

  void add_row(const std::string& row_name, const std::vector<double>& values);

  std::string render() const;

 private:
  std::string caption_;
  std::vector<std::string> cols_;
  std::vector<std::pair<std::string, std::vector<double>>> rows_;
};

}  // namespace omptune::util
