#include "util/backoff.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace omptune::util {

std::int64_t BackoffPolicy::next_delay_ms(std::uint64_t seed,
                                          std::string_view key, int attempt,
                                          std::int64_t prev_delay_ms) const {
  const std::int64_t base = std::max<std::int64_t>(base_ms, 1);
  const std::int64_t cap = std::max<std::int64_t>(max_ms, base);
  const std::int64_t prev = std::max<std::int64_t>(prev_delay_ms, base);
  // Decorrelated jitter: uniform in [base, min(cap, 3*prev)]. The draw is a
  // hash of (seed, key, attempt) so the schedule replays identically on
  // --resume and in re-runs of the same chaos seed.
  const std::int64_t upper = std::min(cap, 3 * prev);
  const std::int64_t span = upper - base + 1;  // >= 1
  std::uint64_t h = hash_combine(seed, stable_hash(key));
  h = hash_combine(h, static_cast<std::uint64_t>(attempt) + 1);
  const std::uint64_t draw = SplitMix64(h).next();
  return base + static_cast<std::int64_t>(draw % static_cast<std::uint64_t>(span));
}

}  // namespace omptune::util
