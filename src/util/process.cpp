#include "util/process.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace omptune::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Pipe::Pipe() {
  int fds[2];
  if (::pipe(fds) != 0) throw_errno("Pipe: pipe()");
  read_fd = fds[0];
  write_fd = fds[1];
  ::fcntl(read_fd, F_SETFD, FD_CLOEXEC);
  ::fcntl(write_fd, F_SETFD, FD_CLOEXEC);
}

Pipe::~Pipe() {
  close_read();
  close_write();
}

Pipe::Pipe(Pipe&& other) noexcept
    : read_fd(other.read_fd), write_fd(other.write_fd) {
  other.read_fd = -1;
  other.write_fd = -1;
}

Pipe& Pipe::operator=(Pipe&& other) noexcept {
  if (this != &other) {
    close_read();
    close_write();
    read_fd = other.read_fd;
    write_fd = other.write_fd;
    other.read_fd = -1;
    other.write_fd = -1;
  }
  return *this;
}

void Pipe::close_read() {
  if (read_fd >= 0) {
    ::close(read_fd);
    read_fd = -1;
  }
}

void Pipe::close_write() {
  if (write_fd >= 0) {
    ::close(write_fd);
    write_fd = -1;
  }
}

std::int64_t monotonic_ms() {
  struct timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 +
         static_cast<std::int64_t>(ts.tv_nsec) / 1000000;
}

bool write_all(int fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE and friends: the peer is gone
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("set_nonblocking: fcntl");
  }
}

std::string ExitStatus::describe() const {
  if (signaled) {
    const char* name = ::strsignal(term_signal);
    return "killed by signal " + std::to_string(term_signal) + " (" +
           (name != nullptr ? name : "?") + ")";
  }
  return "exited with code " + std::to_string(exit_code);
}

namespace {

ExitStatus decode_status(int status) {
  ExitStatus out;
  if (WIFEXITED(status)) {
    out.exited = true;
    out.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    out.signaled = true;
    out.term_signal = WTERMSIG(status);
  }
  return out;
}

}  // namespace

std::optional<ExitStatus> try_wait(pid_t pid) {
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == 0) return std::nullopt;
    if (r == pid) return decode_status(status);
    if (errno == EINTR) continue;
    throw_errno("try_wait: waitpid(" + std::to_string(pid) + ")");
  }
}

ExitStatus wait_for(pid_t pid) {
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, 0);
    if (r == pid) return decode_status(status);
    if (errno == EINTR) continue;
    throw_errno("wait_for: waitpid(" + std::to_string(pid) + ")");
  }
}

std::vector<std::string> LineReader::drain() {
  std::vector<std::string> lines;
  char chunk[4096];
  while (!eof_ && !garbled_) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      eof_ = true;  // unreadable fd: treat like a closed peer
      break;
    }
    if (n == 0) {
      eof_ = true;
      break;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t i = buffer_.size() - static_cast<std::size_t>(n);
         i < buffer_.size(); ++i) {
      if (buffer_[i] == '\n') {
        lines.emplace_back(buffer_, start, i - start);
        start = i + 1;
      }
    }
    if (start > 0) buffer_.erase(0, start);
    if (buffer_.size() > max_line_) {
      garbled_ = true;  // a line this long is not our protocol
      buffer_.clear();
    }
  }
  return lines;
}

std::optional<std::string> BlockingLineReader::next() {
  for (;;) {
    if (std::optional<std::string> line = take_line()) return line;
    if (eof_) return std::nullopt;
    fill_blocking();
  }
}

std::optional<std::string> BlockingLineReader::poll_line() {
  for (;;) {
    if (std::optional<std::string> line = take_line()) return line;
    if (eof_) return std::nullopt;
    struct pollfd p{};
    p.fd = fd_;
    p.events = POLLIN;
    const int r = ::poll(&p, 1, 0);
    if (r <= 0) return std::nullopt;
    fill_blocking();
  }
}

std::optional<std::string> BlockingLineReader::take_line() {
  const std::size_t nl = buffer_.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  std::string line = buffer_.substr(0, nl);
  buffer_.erase(0, nl + 1);
  return line;
}

void BlockingLineReader::fill_blocking() {
  char chunk[512];
  for (;;) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      eof_ = true;
      return;
    }
    if (n == 0) eof_ = true;
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return;
  }
}

// ---- ShutdownSignalGuard ----------------------------------------------------

namespace {

// Signal handlers cannot carry state; the guard is process-global anyway
// (there is one SIGINT), so the self-pipe fds and flag live in statics.
std::atomic<bool> g_guard_active{false};
std::atomic<bool> g_shutdown_flag{false};
int g_wake_pipe[2] = {-1, -1};
struct sigaction g_old_int, g_old_term, g_old_pipe;

void shutdown_handler(int) {
  g_shutdown_flag.store(true, std::memory_order_relaxed);
  const char byte = 1;
  // Best effort: the flag alone is authoritative, the byte only wakes poll.
  [[maybe_unused]] const ssize_t n = ::write(g_wake_pipe[1], &byte, 1);
}

}  // namespace

ShutdownSignalGuard::ShutdownSignalGuard() {
  if (g_guard_active.exchange(true)) {
    throw std::logic_error("ShutdownSignalGuard: already active");
  }
  g_shutdown_flag.store(false);
  if (::pipe(g_wake_pipe) != 0) {
    g_guard_active.store(false);
    throw_errno("ShutdownSignalGuard: pipe()");
  }
  ::fcntl(g_wake_pipe[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(g_wake_pipe[1], F_SETFD, FD_CLOEXEC);
  set_nonblocking(g_wake_pipe[0]);
  set_nonblocking(g_wake_pipe[1]);

  struct sigaction sa{};
  sa.sa_handler = shutdown_handler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: poll must wake
  ::sigaction(SIGINT, &sa, &g_old_int);
  ::sigaction(SIGTERM, &sa, &g_old_term);

  struct sigaction ign{};
  ign.sa_handler = SIG_IGN;
  ::sigemptyset(&ign.sa_mask);
  ::sigaction(SIGPIPE, &ign, &g_old_pipe);
}

ShutdownSignalGuard::~ShutdownSignalGuard() {
  ::sigaction(SIGINT, &g_old_int, nullptr);
  ::sigaction(SIGTERM, &g_old_term, nullptr);
  ::sigaction(SIGPIPE, &g_old_pipe, nullptr);
  ::close(g_wake_pipe[0]);
  ::close(g_wake_pipe[1]);
  g_wake_pipe[0] = g_wake_pipe[1] = -1;
  g_guard_active.store(false);
}

void reset_shutdown_guard_after_fork() {
  if (!g_guard_active.load()) return;
  ::sigaction(SIGINT, &g_old_int, nullptr);
  ::sigaction(SIGTERM, &g_old_term, nullptr);
  ::sigaction(SIGPIPE, &g_old_pipe, nullptr);
  if (g_wake_pipe[0] >= 0) ::close(g_wake_pipe[0]);
  if (g_wake_pipe[1] >= 0) ::close(g_wake_pipe[1]);
  g_wake_pipe[0] = g_wake_pipe[1] = -1;
  g_shutdown_flag.store(false);
  g_guard_active.store(false);
}

int ShutdownSignalGuard::wake_fd() const { return g_wake_pipe[0]; }

bool ShutdownSignalGuard::triggered() const {
  return g_shutdown_flag.load(std::memory_order_relaxed);
}

void ShutdownSignalGuard::trigger() { shutdown_handler(0); }

void die_with_parent() {
#ifdef __linux__
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  // Race: the parent may have died between fork and prctl; in that case we
  // were reparented and the death signal will never come — exit now.
  if (::getppid() == 1) ::raise(SIGKILL);
#endif
}

}  // namespace omptune::util
