#include "util/rng.hpp"

#include <cmath>

namespace omptune::util {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // A state of all zeros is the only invalid state; SplitMix64 cannot
  // produce four consecutive zeros, so no further checks are needed.
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::uniform_index(std::uint64_t n) {
  // Rejection-free multiply-shift; bias is negligible for n << 2^64.
  return static_cast<std::uint64_t>(uniform() * static_cast<double>(n)) %
         n;
}

double Xoshiro256::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller transform.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Xoshiro256::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Xoshiro256::lognormal_factor(double sigma) {
  return std::exp(normal(0.0, sigma));
}

std::uint64_t stable_hash(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace omptune::util
