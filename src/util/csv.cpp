#include "util/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace omptune::util {

CsvTable::CsvTable(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("CsvTable::add_row: expected " +
                                std::to_string(header_.size()) + " cells, got " +
                                std::to_string(row.size()));
  }
  rows_.push_back(std::move(row));
}

std::size_t CsvTable::col_index(std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named '" + std::string(name) + "'");
}

const std::string& CsvTable::cell(std::size_t row, std::string_view col) const {
  return rows_.at(row).at(col_index(col));
}

double CsvTable::cell_as_double(std::size_t row, std::string_view col) const {
  const std::string& text = cell(row, col);
  const auto value = parse_double(text);
  if (!value) {
    throw std::invalid_argument("CsvTable: cell '" + text + "' in column '" +
                                std::string(col) + "' is not numeric");
  }
  return *value;
}

void CsvTable::write(std::ostream& os) const {
  auto write_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ',';
      os << csv_quote(row[i]);
    }
    os << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

void CsvTable::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("CsvTable: cannot open '" + path + "' for writing");
  write(os);
  if (!os) throw std::runtime_error("CsvTable: write to '" + path + "' failed");
}

CsvTable CsvTable::read(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("CsvTable: empty input");
  }
  CsvTable table(csv_split_line(line));
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    table.add_row(csv_split_line(line));
  }
  return table;
}

CsvTable CsvTable::read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("CsvTable: cannot open '" + path + "'");
  return read(is);
}

std::string csv_quote(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::vector<std::string> csv_split_line(std::string_view line) {
  // Strip a trailing CR from CRLF input.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) {
    throw std::runtime_error("csv_split_line: unterminated quote");
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace omptune::util
