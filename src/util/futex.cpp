#include "util/futex.hpp"

#include <condition_variable>
#include <mutex>

#include "util/env.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#endif

namespace omptune::util {

namespace {

// ---- portable parking lot --------------------------------------------------
//
// Waiters hash the word's address into one of a fixed set of buckets and
// sleep on that bucket's condition variable. The word re-check happens under
// the bucket lock, and wakers take the same lock before notifying, so a
// waiter that observed the stale value either sees the new value before
// sleeping or is registered on the condvar when the notify lands. Hash
// collisions only cause spurious wakeups, which the contract allows.

struct ParkBucket {
  std::mutex mutex;
  std::condition_variable cv;
  // Bumped under the lock on every wake so sleepers can detect a notify that
  // targeted their bucket even if their word is unchanged (collision case).
  std::uint64_t wake_ticket = 0;
};

constexpr std::size_t kBucketCount = 64;  // power of two

ParkBucket& bucket_for(const void* address) {
  static ParkBucket buckets[kBucketCount];
  // Mix the address bits; the low bits of heap pointers are alignment zeros.
  auto h = reinterpret_cast<std::uintptr_t>(address);
  h ^= h >> 9;
  h *= 0x9E3779B97F4A7C15ULL;
  h ^= h >> 17;
  return buckets[h & (kBucketCount - 1)];
}

void parking_lot_wait(const std::atomic<std::uint32_t>& word,
                      std::uint32_t old) {
  ParkBucket& bucket = bucket_for(&word);
  std::unique_lock<std::mutex> lock(bucket.mutex);
  if (word.load(std::memory_order_acquire) != old) return;
  const std::uint64_t ticket = bucket.wake_ticket;
  bucket.cv.wait(lock, [&] {
    return word.load(std::memory_order_acquire) != old ||
           bucket.wake_ticket != ticket;
  });
}

int parking_lot_wake(std::atomic<std::uint32_t>& word, int count) {
  ParkBucket& bucket = bucket_for(&word);
  {
    std::lock_guard<std::mutex> lock(bucket.mutex);
    ++bucket.wake_ticket;
  }
  // Condvars cannot target one word within a shared bucket, so any wake is a
  // broadcast; extra wakeups are spurious-by-contract.
  bucket.cv.notify_all();
  return count;
}

bool use_kernel_futex() {
#if defined(__linux__)
  static const bool enabled = !get_env("OMPTUNE_NO_FUTEX").has_value();
  return enabled;
#else
  return false;
#endif
}

}  // namespace

void futex_wait(const std::atomic<std::uint32_t>& word, std::uint32_t old) {
#if defined(__linux__)
  if (use_kernel_futex()) {
    // EAGAIN (word already changed) and EINTR both mean "re-check".
    syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(&word),
            FUTEX_WAIT_PRIVATE, old, nullptr, nullptr, 0);
    return;
  }
#endif
  parking_lot_wait(word, old);
}

int futex_wake(std::atomic<std::uint32_t>& word, int count) {
  if (count <= 0) return 0;
#if defined(__linux__)
  if (use_kernel_futex()) {
    const long woken =
        syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
                FUTEX_WAKE_PRIVATE, count, nullptr, nullptr, 0);
    return woken > 0 ? static_cast<int>(woken) : 0;
  }
#endif
  return parking_lot_wake(word, count);
}

int futex_wake_all(std::atomic<std::uint32_t>& word) {
#if defined(__linux__)
  if (use_kernel_futex()) return futex_wake(word, INT_MAX);
#endif
  return parking_lot_wake(word, 1 << 30);
}

const char* futex_backend() {
  return use_kernel_futex() ? "futex" : "parking-lot";
}

}  // namespace omptune::util
