#pragma once

// Read-only memory-mapped file view, the substrate of the binary sample
// store's zero-copy reader: the kernel pages data in on first touch, so a
// reader that only walks the index and a few matching column ranges never
// pays for the rest of the file.
//
// Not every filesystem supports mmap (some network and FUSE mounts refuse
// it). When the mapping fails, the view degrades gracefully to a buffered
// whole-file read into heap memory — same data()/size() contract, the
// zero-copy property is simply lost. memory_mapped() reports which path was
// taken, and setting OMPTUNE_NO_MMAP=1 in the environment forces the
// buffered path (operational escape hatch, and how tests exercise it).

#include <cstddef>
#include <string>
#include <vector>

namespace omptune::util {

/// RAII mmap(2) view of a whole file. Move-only; unmaps on destruction.
/// Empty files map to a null view with size 0 (mmap rejects length 0).
class MappedFile {
 public:
  enum class Mode {
    Auto,           ///< mmap, falling back to a buffered read on failure
    ForceBuffered,  ///< skip mmap entirely (testing / broken filesystems)
  };

  /// Maps `path` read-only (or buffers it, per `mode` / OMPTUNE_NO_MMAP).
  /// Throws std::runtime_error if the file cannot be opened, stat'ed, or
  /// read at all.
  explicit MappedFile(const std::string& path, Mode mode = Mode::Auto);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Whether data() points into a real kernel mapping (false on the
  /// buffered fallback path and for empty files).
  bool memory_mapped() const { return mapped_; }

 private:
  void reset() noexcept;
  void read_into_buffer(int fd);

  std::string path_;
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<unsigned char> buffer_;  ///< backing store of the fallback
};

}  // namespace omptune::util
