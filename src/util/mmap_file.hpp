#pragma once

// Read-only memory-mapped file view, the substrate of the binary sample
// store's zero-copy reader: the kernel pages data in on first touch, so a
// reader that only walks the index and a few matching column ranges never
// pays for the rest of the file.

#include <cstddef>
#include <string>

namespace omptune::util {

/// RAII mmap(2) view of a whole file. Move-only; unmaps on destruction.
/// Empty files map to a null view with size 0 (mmap rejects length 0).
class MappedFile {
 public:
  /// Maps `path` read-only. Throws std::runtime_error if the file cannot be
  /// opened, stat'ed, or mapped.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  void reset() noexcept;

  std::string path_;
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace omptune::util
