#pragma once

// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component of the study (noise models, subsampling,
// shuffling) derives its stream from an explicit seed so that the full
// 240k-sample sweep is bit-reproducible across runs and machines.

#include <cstdint>
#include <string_view>

namespace omptune::util {

/// SplitMix64 — used to expand a single seed into independent stream seeds.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the workhorse generator. Small state, excellent quality,
/// and fully deterministic given a seed.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate (Box–Muller; one value per call, cached pair).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal multiplicative factor: exp(normal(0, sigma)).
  double lognormal_factor(double sigma);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Stable 64-bit hash of a string (FNV-1a). Used to derive per-entity seeds
/// (e.g. per application or architecture) that do not depend on enumeration
/// order.
std::uint64_t stable_hash(std::string_view text);

/// Combine two seeds/hashes into one (boost::hash_combine style, 64-bit).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

}  // namespace omptune::util
