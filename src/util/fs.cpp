#include "util/fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace omptune::util {

namespace {

namespace stdfs = std::filesystem;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

std::string parent_dir(const std::string& path) {
  const stdfs::path p(path);
  return p.has_parent_path() ? p.parent_path().string() : std::string(".");
}

}  // namespace

bool fsync_directory(const std::string& dir) {
#ifdef O_DIRECTORY
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
#else
  const int fd = ::open(dir.c_str(), O_RDONLY);
#endif
  if (fd < 0) return false;  // best effort: some filesystems refuse dir fsync
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  ::close(fd);
  return rc == 0;
}

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::string dir = parent_dir(path);
  // The temp file must live in the same directory as the target, or the
  // final rename() could cross filesystems and lose atomicity.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("atomic_write_file: open '" + tmp + "'");

  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw_errno("atomic_write_file: write '" + tmp + "'");
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw_errno("atomic_write_file: fsync '" + tmp + "'");
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("atomic_write_file: close '" + tmp + "'");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("atomic_write_file: rename '" + tmp + "' -> '" + path + "'");
  }
  // Persist the directory entry so the rename survives a power loss.
  fsync_directory(dir);
}

void rename_file(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    if (errno == EXDEV) {
      // Cross-filesystem move: degrade to a copy that is still atomic at
      // the destination, then drop the source.
      const std::optional<std::string> content = read_file(from);
      if (!content) throw_errno("rename_file: source '" + from + "' vanished");
      atomic_write_file(to, *content);
      remove_file(from);
      return;
    }
    throw_errno("rename_file: rename '" + from + "' -> '" + to + "'");
  }
  fsync_directory(parent_dir(to));
  // The source entry is gone from its own directory too; persist that so a
  // power loss cannot resurrect the file under its old name.
  fsync_directory(parent_dir(from));
}

bool remove_file_durable(const std::string& path) {
  const bool removed = remove_file(path);
  if (removed) fsync_directory(parent_dir(path));
  return removed;
}

std::size_t remove_stale_temp_files(const std::string& dir) {
  std::size_t removed = 0;
  for (const std::string& name : list_files(dir)) {
    // atomic_write_file names its temps "<target>.tmp.<pid>".
    const std::size_t at = name.rfind(".tmp.");
    if (at == std::string::npos) continue;
    const std::string suffix = name.substr(at + 5);
    if (suffix.empty() ||
        suffix.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    if (remove_file(path_join(dir, name))) ++removed;
  }
  if (removed > 0) fsync_directory(dir);
  return removed;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (!file_exists(path)) return std::nullopt;
    throw std::runtime_error("read_file: cannot open '" + path + "'");
  }
  std::ostringstream out;
  out << is.rdbuf();
  if (is.bad()) throw std::runtime_error("read_file: read of '" + path + "' failed");
  return out.str();
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return stdfs::exists(path, ec);
}

void create_directories(const std::string& path) {
  std::error_code ec;
  stdfs::create_directories(path, ec);
  if (ec) {
    throw std::runtime_error("create_directories: '" + path + "': " + ec.message());
  }
}

std::vector<std::string> list_files(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  if (!stdfs::is_directory(dir, ec)) return out;
  for (const auto& entry : stdfs::directory_iterator(dir, ec)) {
    std::error_code entry_ec;
    if (entry.is_regular_file(entry_ec)) {
      out.push_back(entry.path().filename().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool remove_file(const std::string& path) {
  std::error_code ec;
  return stdfs::remove(path, ec);
}

std::string path_join(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  const bool sep = a.back() == '/';
  return sep ? a + b : a + "/" + b;
}

}  // namespace omptune::util
