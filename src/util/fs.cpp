#include "util/fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace omptune::util {

namespace {

namespace stdfs = std::filesystem;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// fsync a path opened read-only (used for directories after rename).
void fsync_path(const std::string& path) {
#ifdef O_DIRECTORY
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
#else
  const int fd = ::open(path.c_str(), O_RDONLY);
#endif
  if (fd < 0) return;  // best effort: some filesystems refuse dir fsync
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void atomic_write_file(const std::string& path, const std::string& content) {
  const stdfs::path target(path);
  const std::string dir =
      target.has_parent_path() ? target.parent_path().string() : std::string(".");
  // The temp file must live in the same directory as the target, or the
  // final rename() could cross filesystems and lose atomicity.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("atomic_write_file: open '" + tmp + "'");

  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw_errno("atomic_write_file: write '" + tmp + "'");
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw_errno("atomic_write_file: fsync '" + tmp + "'");
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("atomic_write_file: close '" + tmp + "'");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("atomic_write_file: rename '" + tmp + "' -> '" + path + "'");
  }
  // Persist the directory entry so the rename survives a power loss.
  fsync_path(dir);
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (!file_exists(path)) return std::nullopt;
    throw std::runtime_error("read_file: cannot open '" + path + "'");
  }
  std::ostringstream out;
  out << is.rdbuf();
  if (is.bad()) throw std::runtime_error("read_file: read of '" + path + "' failed");
  return out.str();
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return stdfs::exists(path, ec);
}

void create_directories(const std::string& path) {
  std::error_code ec;
  stdfs::create_directories(path, ec);
  if (ec) {
    throw std::runtime_error("create_directories: '" + path + "': " + ec.message());
  }
}

std::vector<std::string> list_files(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  if (!stdfs::is_directory(dir, ec)) return out;
  for (const auto& entry : stdfs::directory_iterator(dir, ec)) {
    std::error_code entry_ec;
    if (entry.is_regular_file(entry_ec)) {
      out.push_back(entry.path().filename().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool remove_file(const std::string& path) {
  std::error_code ec;
  return stdfs::remove(path, ec);
}

std::string path_join(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  const bool sep = a.back() == '/';
  return sep ? a + b : a + "/" + b;
}

}  // namespace omptune::util
