#include "util/fs.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "util/errors.hpp"
#include "util/io_hooks.hpp"

namespace omptune::util {

namespace {

namespace stdfs = std::filesystem;

[[noreturn]] void throw_storage(const std::string& operation,
                                const std::string& path, int error_number) {
  throw StorageError(operation, path, error_number);
}

std::string parent_dir(const std::string& path) {
  const stdfs::path p(path);
  return p.has_parent_path() ? p.parent_path().string() : std::string(".");
}

/// Consult the installed hook (if any) before a durability operation.
/// Returns the injected errno, or 0 to proceed.
int consult(IoOp op, const std::string& path, int fd = -1,
            const char* data = nullptr, std::size_t size = 0) {
  if (IoHooks* hooks = io_hooks()) {
    return hooks->before(IoSite{op, path, fd, data, size});
  }
  return 0;
}

/// Hooked full-buffer write loop: retries short writes and EINTR (real or
/// injected) until every byte is accepted. Throws StorageError via
/// `operation` on failure; the caller owns fd cleanup.
void write_all_hooked(int fd, const std::string& path,
                      const std::string& content,
                      const std::string& operation) {
  std::size_t written = 0;
  while (written < content.size()) {
    const char* data = content.data() + written;
    std::size_t len = content.size() - written;
    if (IoHooks* hooks = io_hooks()) {
      const IoSite site{IoOp::Write, path, fd, data, len};
      if (const int injected = hooks->before(site)) {
        if (injected == EINTR) continue;  // the loop absorbs interruptions
        throw_storage(operation, path, injected);
      }
      len = std::min(len, hooks->max_write_bytes(site));
      if (len == 0) len = 1;  // a zero-byte cap must still make progress
    }
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_storage(operation, path, errno);
    }
    written += static_cast<std::size_t>(n);
  }
}

/// Hooked fsync with EINTR retry (real or injected). Throws StorageError
/// via `operation` on failure; the caller owns fd cleanup.
void fsync_hooked(int fd, const std::string& path,
                  const std::string& operation) {
  for (;;) {
    if (const int injected = consult(IoOp::Fsync, path, fd)) {
      if (injected == EINTR) continue;
      throw_storage(operation, path, injected);
    }
    if (::fsync(fd) == 0) return;
    if (errno != EINTR) throw_storage(operation, path, errno);
  }
}

}  // namespace

bool fsync_directory(const std::string& dir) {
  // Injected faults follow the real best-effort contract: a refused
  // directory fsync is reported as false, never thrown.
  if (consult(IoOp::FsyncDir, dir) != 0) return false;
#ifdef O_DIRECTORY
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
#else
  const int fd = ::open(dir.c_str(), O_RDONLY);
#endif
  if (fd < 0) return false;  // best effort: some filesystems refuse dir fsync
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  ::close(fd);
  return rc == 0;
}

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::string dir = parent_dir(path);
  // The temp file must live in the same directory as the target, or the
  // final rename() could cross filesystems and lose atomicity.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());

  if (const int injected = consult(IoOp::Open, tmp)) {
    throw_storage("atomic_write_file: open", tmp, injected);
  }
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_storage("atomic_write_file: open", tmp, errno);

  try {
    write_all_hooked(fd, tmp, content, "atomic_write_file: write");
    fsync_hooked(fd, tmp, "atomic_write_file: fsync");
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    const int close_errno = errno;
    ::unlink(tmp.c_str());
    throw_storage("atomic_write_file: close", tmp, close_errno);
  }
  if (const int injected = consult(IoOp::Rename, path)) {
    ::unlink(tmp.c_str());
    throw_storage("atomic_write_file: rename", path, injected);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int rename_errno = errno;
    ::unlink(tmp.c_str());
    throw_storage("atomic_write_file: rename", path, rename_errno);
  }
  // Persist the directory entry so the rename survives a power loss.
  fsync_directory(dir);
}

void rename_file(const std::string& from, const std::string& to) {
  if (const int injected = consult(IoOp::Rename, to)) {
    if (injected != EXDEV) throw_storage("rename_file: rename", to, injected);
    // Injected EXDEV exercises the same cross-filesystem fallback as the
    // real thing.
    const std::optional<std::string> content = read_file(from);
    if (!content) throw_storage("rename_file: source read", from, ENOENT);
    atomic_write_file(to, *content);
    remove_file(from);
    return;
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    if (errno == EXDEV) {
      // Cross-filesystem move: degrade to a copy that is still atomic at
      // the destination, then drop the source.
      const std::optional<std::string> content = read_file(from);
      if (!content) throw_storage("rename_file: source read", from, ENOENT);
      atomic_write_file(to, *content);
      remove_file(from);
      return;
    }
    throw_storage("rename_file: rename", to, errno);
  }
  fsync_directory(parent_dir(to));
  // The source entry is gone from its own directory too; persist that so a
  // power loss cannot resurrect the file under its old name.
  fsync_directory(parent_dir(from));
}

bool remove_file_durable(const std::string& path) {
  if (const int injected = consult(IoOp::Unlink, path)) {
    throw_storage("remove_file_durable: unlink", path, injected);
  }
  const bool removed = remove_file(path);
  if (removed) fsync_directory(parent_dir(path));
  return removed;
}

std::size_t remove_stale_temp_files(const std::string& dir) {
  std::size_t removed = 0;
  for (const std::string& name : list_files(dir)) {
    // atomic_write_file names its temps "<target>.tmp.<pid>".
    const std::size_t at = name.rfind(".tmp.");
    if (at == std::string::npos) continue;
    const std::string suffix = name.substr(at + 5);
    if (suffix.empty() ||
        suffix.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    if (remove_file(path_join(dir, name))) ++removed;
  }
  if (removed > 0) fsync_directory(dir);
  return removed;
}

void append_line_durable(const std::string& path, const std::string& line,
                         std::uint64_t rotate_at_bytes) {
  const std::string payload = line + "\n";

  if (rotate_at_bytes > 0) {
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0 && st.st_size > 0 &&
        static_cast<std::uint64_t>(st.st_size) + payload.size() >
            rotate_at_bytes) {
      const std::string rotated = path + ".1";
      if (const int injected = consult(IoOp::Rename, rotated)) {
        throw_storage("append_line_durable: rotate", rotated, injected);
      }
      if (::rename(path.c_str(), rotated.c_str()) != 0) {
        throw_storage("append_line_durable: rotate", rotated, errno);
      }
      fsync_directory(parent_dir(path));
    }
  }

  if (const int injected = consult(IoOp::Open, path)) {
    throw_storage("append_line_durable: open", path, injected);
  }
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) throw_storage("append_line_durable: open", path, errno);
  try {
    write_all_hooked(fd, path, payload, "append_line_durable: write");
    fsync_hooked(fd, path, "append_line_durable: fsync");
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

std::size_t repair_appended_log(const std::string& path) {
  const std::optional<std::string> content = read_file(path);
  if (!content || content->empty()) return 0;
  if (content->back() == '\n') return 0;
  const std::size_t keep = content->rfind('\n');
  const std::size_t new_size = keep == std::string::npos ? 0 : keep + 1;
  const std::size_t dropped = content->size() - new_size;
  if (::truncate(path.c_str(), static_cast<off_t>(new_size)) != 0) {
    throw_storage("repair_appended_log: truncate", path, errno);
  }
  return dropped;
}

std::optional<std::string> read_file(const std::string& path) {
  if (const int injected = consult(IoOp::Read, path)) {
    throw_storage("read_file: open", path, injected);
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (!file_exists(path)) return std::nullopt;
    throw_storage("read_file: open", path, errno != 0 ? errno : EIO);
  }
  std::ostringstream out;
  out << is.rdbuf();
  if (is.bad()) throw_storage("read_file: read", path, errno != 0 ? errno : EIO);
  std::string bytes = out.str();
  if (IoHooks* hooks = io_hooks()) hooks->after_read(path, &bytes);
  return bytes;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return stdfs::exists(path, ec);
}

void create_directories(const std::string& path) {
  std::error_code ec;
  stdfs::create_directories(path, ec);
  if (ec) {
    throw std::runtime_error("create_directories: '" + path + "': " + ec.message());
  }
}

std::vector<std::string> list_files(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  if (!stdfs::is_directory(dir, ec)) return out;
  for (const auto& entry : stdfs::directory_iterator(dir, ec)) {
    std::error_code entry_ec;
    if (entry.is_regular_file(entry_ec)) {
      out.push_back(entry.path().filename().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool remove_file(const std::string& path) {
  std::error_code ec;
  return stdfs::remove(path, ec);
}

std::string path_join(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  const bool sep = a.back() == '/';
  return sep ? a + b : a + "/" + b;
}

}  // namespace omptune::util
