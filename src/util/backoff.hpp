#pragma once

// Exponential backoff with decorrelated jitter, shared by every retry
// surface in the repo: coordinator shard re-leases, supervisor worker
// respawns, the serve Keeper's server restarts, and the serve client's
// request retries. One implementation, one test (util_test.cpp).
//
// The draw is DETERMINISTIC: it hashes (seed, key, attempt) into the
// jitter interval instead of consulting a global RNG, so a resumed or
// re-run process reproduces the exact same schedule — the property every
// chaos test in this repo is built on — while distinct keys (shards,
// worker slots, request ids) stay decorrelated and never thundering-herd
// their retries in lockstep.

#include <cstdint>
#include <string_view>

namespace omptune::util {

/// Exponential backoff with decorrelated jitter (the AWS "decorrelated
/// jitter" scheme): delay_n = uniform[base, min(max, 3 * delay_{n-1})],
/// with delay_0 = base. Deterministic per (seed, key, attempt).
struct BackoffPolicy {
  std::int64_t base_ms = 25;
  std::int64_t max_ms = 2000;

  /// The next delay after `attempt` consecutive failures of `key`
  /// (attempt >= 1), given the previous delay (0 = none yet). Always in
  /// [base_ms, max_ms]; monotonically identical across runs for the same
  /// (seed, key, attempt, prev) tuple.
  std::int64_t next_delay_ms(std::uint64_t seed, std::string_view key,
                             int attempt, std::int64_t prev_delay_ms) const;
};

}  // namespace omptune::util
