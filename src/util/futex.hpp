#pragma once

// Minimal futex(2)-shaped wait/wake on a 32-bit atomic word.
//
// The contract is the kernel one: `futex_wait(word, old)` blocks the caller
// while `word == old` and may return spuriously; `futex_wake(word, n)` wakes
// up to `n` threads blocked on `word`. Callers therefore always loop:
//
//   uint32_t seen = word.load(acquire);
//   while (!satisfied(seen)) { futex_wait(word, seen); seen = word.load(acquire); }
//
// and a waker always *changes the word first* (release store / fetch_add)
// and only then calls futex_wake — the value check inside wait closes the
// missed-wakeup window without any lock.
//
// On Linux this is the real SYS_futex (FUTEX_WAIT_PRIVATE/FUTEX_WAKE_PRIVATE).
// Elsewhere — and on Linux when OMPTUNE_NO_FUTEX is set, so tests can cover
// it anywhere — a hashed parking lot of mutex+condvar buckets emulates the
// same semantics. The fallback serializes the word re-check under the bucket
// lock, which restores the ordering the kernel's internal queue lock provides.

#include <atomic>
#include <cstdint>

namespace omptune::util {

/// Block while `word == old`. Returns when the word differs, on a wake, or
/// spuriously; the caller re-checks its predicate either way.
void futex_wait(const std::atomic<std::uint32_t>& word, std::uint32_t old);

/// Wake up to `count` waiters blocked in futex_wait on `word`. Returns the
/// number of threads the kernel reports woken (fallback: an upper bound).
int futex_wake(std::atomic<std::uint32_t>& word, int count);

/// Wake every waiter blocked on `word`.
int futex_wake_all(std::atomic<std::uint32_t>& word);

/// "futex" when the kernel syscall is in use, "parking-lot" for the
/// portable fallback — surfaced by the primitive micro-benchmark so a
/// recorded measurement names the mechanism it measured.
const char* futex_backend();

}  // namespace omptune::util
