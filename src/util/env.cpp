#include "util/env.hpp"

#include <cstdlib>

namespace omptune::util {

std::optional<std::string> get_env(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

void set_env(const std::string& name, const std::string& value) {
  ::setenv(name.c_str(), value.c_str(), /*overwrite=*/1);
}

void unset_env(const std::string& name) { ::unsetenv(name.c_str()); }

ScopedEnv::ScopedEnv(std::vector<Assignment> assignments) {
  saved_.reserve(assignments.size());
  for (auto& a : assignments) {
    saved_.push_back(Saved{a.name, get_env(a.name)});
    if (a.value) {
      set_env(a.name, *a.value);
    } else {
      unset_env(a.name);
    }
  }
}

ScopedEnv::~ScopedEnv() {
  // Restore in reverse order so nested guards compose.
  for (auto it = saved_.rbegin(); it != saved_.rend(); ++it) {
    if (it->previous) {
      set_env(it->name, *it->previous);
    } else {
      unset_env(it->name);
    }
  }
}

}  // namespace omptune::util
