#pragma once

// Small string utilities used across the library. All functions are pure and
// allocation behaviour is explicit in the signatures.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace omptune::util {

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Remove leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// ASCII lower-case copy.
std::string to_lower(std::string_view text);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

/// Parse a decimal integer; returns nullopt on any trailing garbage.
std::optional<long long> parse_int(std::string_view text);

/// Parse a floating point number; returns nullopt on any trailing garbage.
std::optional<double> parse_double(std::string_view text);

/// Join items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// printf-style double formatting with fixed precision.
std::string format_double(double value, int precision);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace omptune::util
