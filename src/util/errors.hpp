#pragma once

// Error taxonomy for the fault-tolerant collection pipeline.
//
// The study distinguishes three failure classes, because they demand three
// different reactions:
//  - Transient:       a retry may succeed (timeouts, spurious crashes,
//                     non-finite measurements). The resilience policy retries
//                     these with bounded deterministic backoff.
//  - Permanent:       retrying is pointless (unsupported configuration,
//                     invalid request). The offending sample is quarantined
//                     immediately.
//  - DataCorruption:  persisted state failed validation (garbled journal
//                     entry, malformed dataset CSV). Never retried and never
//                     silently dropped — the caller must decide whether to
//                     recollect or abort.
//
// StudyAbort sits outside the taxonomy: it models process death or external
// cancellation and is deliberately NEVER absorbed by the resilience layer,
// so tests can kill a study at an arbitrary point and exercise resume.

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace omptune::util {

enum class ErrorClass { Transient, Permanent, DataCorruption };

inline const char* to_string(ErrorClass cls) {
  switch (cls) {
    case ErrorClass::Transient: return "transient";
    case ErrorClass::Permanent: return "permanent";
    case ErrorClass::DataCorruption: return "data-corruption";
  }
  return "unknown";
}

/// Base of the taxonomy; carries its class for coarse dispatch.
class TuneError : public std::runtime_error {
 public:
  TuneError(ErrorClass cls, const std::string& message)
      : std::runtime_error(std::string(to_string(cls)) + ": " + message),
        cls_(cls) {}

  ErrorClass error_class() const { return cls_; }

 private:
  ErrorClass cls_;
};

/// A failure where retrying may succeed (timeout, flaky run, bad sample).
class TransientError : public TuneError {
 public:
  explicit TransientError(const std::string& message)
      : TuneError(ErrorClass::Transient, message) {}
};

/// A failure where retrying cannot succeed; quarantine instead.
class PermanentError : public TuneError {
 public:
  explicit PermanentError(const std::string& message)
      : TuneError(ErrorClass::Permanent, message) {}
};

/// Persisted data failed validation (journal entry, dataset CSV, binary
/// store). The file/offset form pinpoints the corrupt byte range for
/// operator forensics: "which file, where" is the first question after a
/// disk or transfer fault, so readers of binary formats are expected to
/// report the exact offset that failed validation.
class DataCorruptionError : public TuneError {
 public:
  explicit DataCorruptionError(const std::string& message)
      : TuneError(ErrorClass::DataCorruption, message) {}

  DataCorruptionError(const std::string& file, std::uint64_t offset,
                      const std::string& message)
      : TuneError(ErrorClass::DataCorruption,
                  file + " @ offset " + std::to_string(offset) + ": " + message),
        file_(file),
        offset_(offset) {}

  /// Offending file, when known (empty for the message-only form).
  const std::string& file() const { return file_; }

  /// Byte offset of the structure that failed validation; 0 when unknown.
  std::uint64_t offset() const { return offset_; }

 private:
  std::string file_;
  std::uint64_t offset_ = 0;
};

/// A raw storage operation (open/write/fsync/rename/unlink) failed at the
/// OS level. Carries the operation, path and errno so every durability
/// boundary reports "which file, which syscall, why" instead of a bare
/// strerror string. Classification follows the errno: exhaustion and
/// interruption (ENOSPC, EDQUOT, EAGAIN, EINTR) are Transient — space can
/// be freed, the operator can react, a retry or a degraded-durability
/// continuation is legitimate — while anything else (EIO, EROFS, EACCES,
/// EBADF...) is Permanent for this path until a human intervenes.
class StorageError : public TuneError {
 public:
  StorageError(const std::string& operation, const std::string& path,
               int error_number)
      : TuneError(classify(error_number),
                  operation + " '" + path + "' failed: " +
                      describe_errno(error_number)),
        operation_(operation),
        path_(path),
        error_number_(error_number) {}

  /// The failed operation, e.g. "atomic_write_file: write".
  const std::string& operation() const { return operation_; }

  /// The file (or rename destination) the operation targeted.
  const std::string& path() const { return path_; }

  /// The raw errno; 0 when the failure had no errno (never expected).
  int error_number() const { return error_number_; }

  static ErrorClass classify(int error_number) {
    switch (error_number) {
      case ENOSPC:
      case EDQUOT:
      case EAGAIN:
      case EINTR:
        return ErrorClass::Transient;
      default:
        return ErrorClass::Permanent;
    }
  }

 private:
  static std::string describe_errno(int error_number) {
    return std::string(std::strerror(error_number)) + " (errno " +
           std::to_string(error_number) + ")";
  }

  std::string operation_;
  std::string path_;
  int error_number_ = 0;
};

/// A store file could not be opened, stat'ed or mapped at all (missing
/// file, permission, I/O error) — distinct from DataCorruption, where bytes
/// exist but fail validation. Classified Transient on purpose: the main
/// producer of this error is the serving layer's hot-swap, where a store
/// may simply not have landed yet and retrying against the next generation
/// is the right reaction. Carries the path and the serving-generation label
/// under which the open was attempted (0 = unlabeled, e.g. CLI one-shots),
/// so a failed swap is attributable to the exact store it tried to adopt.
class StoreOpenError : public TuneError {
 public:
  StoreOpenError(const std::string& path, std::uint64_t generation,
                 const std::string& message)
      : TuneError(ErrorClass::Transient,
                  (generation == 0
                       ? "cannot open store '" + path + "': " + message
                       : "cannot open store '" + path + "' (generation " +
                             std::to_string(generation) + "): " + message)),
        path_(path),
        generation_(generation) {}

  const std::string& path() const { return path_; }

  /// Serving generation the open was for; 0 when opened outside a
  /// generation scheme.
  std::uint64_t generation() const { return generation_; }

 private:
  std::string path_;
  std::uint64_t generation_ = 0;
};

/// Simulated process death / external cancellation. Not a TuneError on
/// purpose: the resilience layer must let it escape so an interrupted study
/// stops exactly where a real crash would.
class StudyAbort : public std::runtime_error {
 public:
  explicit StudyAbort(const std::string& message)
      : std::runtime_error("study aborted: " + message) {}
};

}  // namespace omptune::util
