#pragma once

// POSIX process and pipe helpers for the study supervisor's worker pool.
//
// The supervisor forks one child per worker and talks to it over two
// pipes: a command pipe (supervisor -> worker, blocking line reads) and a
// result pipe (worker -> supervisor, drained non-blocking from a poll
// loop). Everything here is the thin, EINTR-correct plumbing that makes
// that safe: full-length writes, incremental line assembly with a bound on
// line length (a garbling worker must not make the supervisor buffer
// unboundedly), exit-status decoding that distinguishes "exited N" from
// "killed by signal S" (the supervisor's crash evidence), and a self-pipe
// signal guard so SIGINT/SIGTERM wake the poll loop instead of killing the
// study mid-journal-write.

#include <sys/types.h>

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace omptune::util {

/// A unidirectional pipe; both ends close-on-exec. Throws std::runtime_error
/// if the pipe cannot be created.
struct Pipe {
  Pipe();
  ~Pipe();

  Pipe(Pipe&& other) noexcept;
  Pipe& operator=(Pipe&& other) noexcept;
  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;

  void close_read();
  void close_write();

  int read_fd = -1;
  int write_fd = -1;
};

/// Milliseconds on the monotonic clock (heartbeat/lease arithmetic must not
/// jump with wall-clock adjustments).
std::int64_t monotonic_ms();

/// Write all of `data` to `fd`, retrying on EINTR/partial writes. Returns
/// false on EPIPE or any other error (the peer died; the caller decides what
/// that means), never throws.
bool write_all(int fd, std::string_view data);

/// Put `fd` into non-blocking mode. Throws std::runtime_error on failure.
void set_nonblocking(int fd);

/// Decoded waitpid status: exactly one of `exited`/`signaled` is true for a
/// reaped child.
struct ExitStatus {
  bool exited = false;
  int exit_code = 0;
  bool signaled = false;
  int term_signal = 0;

  /// "exited with code 3" / "killed by signal 9 (SIGKILL)".
  std::string describe() const;
};

/// Non-blocking reap; nullopt while the child is still running. Throws
/// std::runtime_error if `pid` is not a child of this process.
std::optional<ExitStatus> try_wait(pid_t pid);

/// Blocking reap (EINTR-correct). Throws std::runtime_error if `pid` is not
/// a child of this process.
ExitStatus wait_for(pid_t pid);

/// Incremental line assembler over a non-blocking fd. drain() pulls every
/// byte currently available and returns the newly completed lines; a line
/// longer than `max_line` bytes marks the stream as garbled (protocol
/// violation) instead of growing the buffer without bound.
class LineReader {
 public:
  explicit LineReader(int fd, std::size_t max_line = 4096)
      : fd_(fd), max_line_(max_line) {}

  /// Newly completed lines ('\n'-stripped). Sets eof()/garbled() as side
  /// effects; both are sticky.
  std::vector<std::string> drain();

  bool eof() const { return eof_; }
  bool garbled() const { return garbled_; }
  int fd() const { return fd_; }

 private:
  int fd_;
  std::size_t max_line_;
  std::string buffer_;
  bool eof_ = false;
  bool garbled_ = false;
};

/// Blocking line reader over a pipe read end — the child-process side of
/// the worker protocol (the parent side uses the non-blocking LineReader
/// from its poll loop). next() blocks for the next command; poll_line()
/// returns one only if it is already available, so a worker can notice a
/// pending `exit` between settings without stalling.
class BlockingLineReader {
 public:
  explicit BlockingLineReader(int fd) : fd_(fd) {}

  /// Next line, blocking; nullopt on EOF (the peer is gone).
  std::optional<std::string> next();

  /// A line if one is available right now, without blocking.
  std::optional<std::string> poll_line();

  bool eof() const { return eof_; }

 private:
  std::optional<std::string> take_line();
  void fill_blocking();

  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

/// Scoped SIGINT/SIGTERM redirection through a self-pipe: while alive, both
/// signals set a flag and write one byte to an internal pipe (wakes poll)
/// instead of terminating the process; the previous handlers are restored
/// on destruction. SIGPIPE is ignored for the same scope (a write to a dead
/// worker must surface as EPIPE, not kill the supervisor). Only one
/// instance may exist at a time (the handlers are process-global).
class ShutdownSignalGuard {
 public:
  ShutdownSignalGuard();
  ~ShutdownSignalGuard();

  ShutdownSignalGuard(const ShutdownSignalGuard&) = delete;
  ShutdownSignalGuard& operator=(const ShutdownSignalGuard&) = delete;

  /// Poll this fd for readability to wake on a delivered signal.
  int wake_fd() const;

  /// Whether SIGINT/SIGTERM arrived since construction (sticky), or
  /// trigger() was called.
  bool triggered() const;

  /// Programmatic trigger (same effect as a delivered signal); safe to call
  /// from another thread.
  void trigger();
};

/// In the calling (child) process: ask the kernel to deliver SIGKILL when
/// the parent dies, so orphaned workers never outlive a crashed supervisor.
/// No-op on platforms without the feature.
void die_with_parent();

/// In a freshly forked child whose parent holds a ShutdownSignalGuard:
/// restore the pre-guard signal dispositions, close the child's copies of
/// the inherited wake-pipe fds, and clear the process-global "guard
/// installed" flag so the child may install its own guard. Without this, a
/// child forked under an active guard inherits the singleton flag and its
/// own guard construction throws "already active". No-op when no guard is
/// inherited; must only be called between fork() and exec-or-serve.
void reset_shutdown_guard_after_fork();

}  // namespace omptune::util
