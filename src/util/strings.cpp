#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace omptune::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::optional<long long> parse_int(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  long long value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

}  // namespace omptune::util
