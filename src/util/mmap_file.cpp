#include "util/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace omptune::util {

namespace {

[[noreturn]] void raise(const std::string& path, const char* what) {
  throw std::runtime_error("MappedFile: " + std::string(what) + " '" + path +
                           "': " + std::strerror(errno));
}

}  // namespace

MappedFile::MappedFile(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) raise(path, "cannot open");

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    raise(path, "cannot stat");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    return;  // empty file: null view, valid object
  }

  void* mapped = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  const int saved = errno;
  ::close(fd);  // the mapping holds its own reference
  if (mapped == MAP_FAILED) {
    errno = saved;
    raise(path, "cannot mmap");
  }
  data_ = static_cast<const unsigned char*>(mapped);
}

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : path_(std::move(other.path_)),
      data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    path_ = std::move(other.path_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MappedFile::reset() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace omptune::util
