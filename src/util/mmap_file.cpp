#include "util/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace omptune::util {

namespace {

[[noreturn]] void raise_error(const std::string& path, const char* what) {
  throw std::runtime_error("MappedFile: " + std::string(what) + " '" + path +
                           "': " + std::strerror(errno));
}

bool mmap_disabled_by_env() {
  const char* value = std::getenv("OMPTUNE_NO_MMAP");
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

}  // namespace

void MappedFile::read_into_buffer(int fd) {
  buffer_.resize(size_);
  std::size_t done = 0;
  while (done < size_) {
    const ssize_t n = ::read(fd, buffer_.data() + done, size_ - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      raise_error(path_, "cannot read");
    }
    if (n == 0) break;  // truncated under us; expose what we got
    done += static_cast<std::size_t>(n);
  }
  if (done < size_) {
    size_ = done;
    buffer_.resize(done);
  }
  data_ = buffer_.data();
}

MappedFile::MappedFile(const std::string& path, Mode mode) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) raise_error(path, "cannot open");

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    raise_error(path, "cannot stat");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    return;  // empty file: null view, valid object
  }

  if (mode == Mode::Auto && !mmap_disabled_by_env()) {
    void* mapped = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped != MAP_FAILED) {
      ::close(fd);  // the mapping holds its own reference
      data_ = static_cast<const unsigned char*>(mapped);
      mapped_ = true;
      return;
    }
    // Fall through: filesystems without mmap support (ENODEV/EINVAL/...)
    // degrade to a buffered whole-file read instead of failing the open.
  }
  read_into_buffer(fd);
  ::close(fd);
}

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : path_(std::move(other.path_)),
      data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      buffer_(std::move(other.buffer_)) {
  if (!mapped_ && !buffer_.empty()) data_ = buffer_.data();
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    path_ = std::move(other.path_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    buffer_ = std::move(other.buffer_);
    if (!mapped_ && !buffer_.empty()) data_ = buffer_.data();
  }
  return *this;
}

void MappedFile::reset() noexcept {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  buffer_.clear();
}

}  // namespace omptune::util
