#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "util/strings.hpp"

namespace omptune::util {

TextTable::TextTable(std::string caption, std::vector<std::string> header)
    : caption_(std::move(caption)), header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable::add_row: width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&widths](const std::vector<std::string>& row) {
    std::string line = "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " | ";
    }
    line.pop_back();  // trailing space
    line += '\n';
    return line;
  };

  std::string sep = "|";
  for (const std::size_t w : widths) {
    sep.append(w + 2, '-');
    sep += '|';
  }
  sep += '\n';

  std::string out;
  if (!caption_.empty()) out += caption_ + "\n";
  out += render_row(header_);
  out += sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TextTable::print(std::ostream& os) const { os << render(); }

HeatMapRenderer::HeatMapRenderer(std::string caption, std::vector<std::string> col_names)
    : caption_(std::move(caption)), cols_(std::move(col_names)) {}

void HeatMapRenderer::add_row(const std::string& row_name,
                              const std::vector<double>& values) {
  if (values.size() != cols_.size()) {
    throw std::invalid_argument("HeatMapRenderer::add_row: width mismatch");
  }
  rows_.emplace_back(row_name, values);
}

std::string HeatMapRenderer::render() const {
  // Shade glyphs from light to dark, mirroring the paper's colour scale.
  static const char* kShades[] = {" .", "..", "::", "**", "##"};

  TextTable table(caption_, [this] {
    std::vector<std::string> header{"group"};
    header.insert(header.end(), cols_.begin(), cols_.end());
    return header;
  }());

  for (const auto& [name, values] : rows_) {
    std::vector<std::string> row{name};
    for (const double v : values) {
      const double clamped = std::clamp(v, 0.0, 1.0);
      const int shade = std::min(4, static_cast<int>(clamped * 5.0));
      row.push_back(format_double(clamped, 3) + " " + kShades[shade]);
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

}  // namespace omptune::util
