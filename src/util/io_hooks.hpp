#pragma once

// Injectable I/O hooks for the crash-consistency torture framework
// (DESIGN.md §14). Every durability boundary in util/fs — the open, write,
// fsync, rename, unlink and directory-fsync operations behind the atomic
// temp-file + rename recipe, plus the append path of durable line logs —
// consults the installed IoHooks before performing the real syscall. A
// hook can therefore, deterministically per plan:
//
//   - crash the process at the k-th I/O operation (a genuine SIGKILL, so
//     no destructor or cleanup path can tidy up what a real crash would
//     leave behind),
//   - tear a write (a prefix of the buffer reaches the file, then death),
//   - shorten a write (the syscall accepts fewer bytes than offered — the
//     caller's retry loop must finish the job),
//   - fail an operation with an injected errno (ENOSPC, EIO, EINTR, ...),
//   - bit-rot bytes on the read path.
//
// When no hook is installed (production), the cost is one relaxed atomic
// load and a predicted-not-taken branch per I/O operation — gated at < 5%
// of the journal write path by bench/ext_resilience.
//
// Hooks are process-global on purpose: a forked child inherits the
// installed hook and its plan, which is exactly what the fork-per-crash-
// point enumeration harness (tests/crash_consistency_test) relies on.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace omptune::util {

/// Durability-relevant operations the fs layer exposes to hooks.
enum class IoOp : std::uint8_t {
  Open,      ///< open(2) of a file about to be written
  Write,     ///< one write(2) attempt (loops consult per attempt)
  Fsync,     ///< fsync(2) of a file fd
  FsyncDir,  ///< fsync(2) of a directory fd (rename durability)
  Rename,    ///< rename(2) publishing or rotating a file
  Unlink,    ///< unlink(2) of a durable file
  Read,      ///< whole-file read about to be returned to the caller
};

const char* to_string(IoOp op);

/// Context of one hooked operation. `path` is the primary operand (the
/// rename destination for Rename); for Write, `fd`/`data`/`size` describe
/// the attempt so a hook can tear the write itself before dying.
struct IoSite {
  IoOp op;
  const std::string& path;
  int fd = -1;
  const char* data = nullptr;
  std::size_t size = 0;
};

/// The injection interface. Implementations live in sim (StorageChaos);
/// util only defines the seam so production code carries no sim
/// dependency.
class IoHooks {
 public:
  virtual ~IoHooks() = default;

  /// Consulted immediately before each hooked operation. Return 0 to let
  /// the operation proceed, or an errno to make it fail with that value
  /// (the operation is NOT performed; the fs layer surfaces a typed
  /// StorageError, except EINTR on write/fsync which the retry loops
  /// absorb — injecting EINTR exercises exactly those loops). The hook may
  /// also not return at all: raising SIGKILL here models process death at
  /// this precise operation, optionally after pushing a prefix of a Write
  /// site's buffer to its fd (a torn write).
  virtual int before(const IoSite& site) = 0;

  /// For Write sites only: cap how many bytes the next write(2) may
  /// accept, modelling a short write. The fs write loops must continue
  /// with the remainder. Return SIZE_MAX for no cap.
  virtual std::size_t max_write_bytes(const IoSite& site) {
    (void)site;
    return static_cast<std::size_t>(-1);
  }

  /// After a successful whole-file read: may mutate `bytes` in place to
  /// model at-rest bit rot the reader must catch by validation.
  virtual void after_read(const std::string& path, std::string* bytes) {
    (void)path;
    (void)bytes;
  }
};

namespace detail {
extern std::atomic<IoHooks*> g_io_hooks;
}

/// The installed hook, or nullptr (the production fast path).
inline IoHooks* io_hooks() {
  return detail::g_io_hooks.load(std::memory_order_acquire);
}

/// Install `hooks` process-wide (nullptr uninstalls). Test-only; callers
/// own the lifetime and must uninstall before destroying the hook. Returns
/// the previously installed hook.
IoHooks* install_io_hooks(IoHooks* hooks);

/// RAII installer for tests: installs on construction, restores the
/// previous hook on destruction.
class ScopedIoHooks {
 public:
  explicit ScopedIoHooks(IoHooks* hooks) : previous_(install_io_hooks(hooks)) {}
  ~ScopedIoHooks() { install_io_hooks(previous_); }
  ScopedIoHooks(const ScopedIoHooks&) = delete;
  ScopedIoHooks& operator=(const ScopedIoHooks&) = delete;

 private:
  IoHooks* previous_;
};

}  // namespace omptune::util
