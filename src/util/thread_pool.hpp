#pragma once

// Shared worker pool for the analytics engine (see DESIGN.md §10).
//
// Every parallel analysis in this codebase must produce byte-identical
// results at any thread count, so the pool's parallel-for is *blocked*:
// [0, n) is split into fixed chunks whose boundaries depend only on n and
// the caller's grain — never on how many threads happen to execute them.
// Workers race for chunk indices, but a caller that needs a reduction
// stores per-chunk partials and merges them in ascending chunk order
// (parallel_reduce below), which makes the combined result independent of
// scheduling. Thread count then only changes wall-clock time, never a bit
// of output — the property the determinism test suite pins down.
//
// Sizing: an explicit count, or ThreadPool::default_thread_count() which
// honours OMPTUNE_ANALYSIS_THREADS and falls back to hardware_concurrency
// (the CLI's --analysis-threads flag feeds the same constructor).
//
// Nesting: a parallel_for issued from inside a pool worker runs its chunks
// inline on that worker, in order. Outer parallelism (e.g. per-group model
// fits) therefore composes with inner parallelism (data-parallel gradient
// accumulation) without deadlock; whichever level reaches the pool first
// gets the threads.
//
// Exceptions: the first exception thrown by a chunk is captured, the
// remaining chunks of that loop are abandoned, and the exception is
// rethrown on the calling thread once every in-flight chunk has retired.
// The pool itself stays fully usable afterwards (tested).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace omptune::util {

class ThreadPool {
 public:
  /// A pool executing on `threads` lanes in total, the calling thread
  /// included: ThreadPool(1) spawns no workers and runs everything inline,
  /// ThreadPool(8) spawns 7 workers. 0 means default_thread_count().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread).
  unsigned threads() const { return lanes_; }

  /// OMPTUNE_ANALYSIS_THREADS when set to a positive integer, otherwise
  /// hardware_concurrency (at least 1).
  static unsigned default_thread_count();

  /// Fixed chunk decomposition of [0, n) at the given grain: every chunk
  /// spans `grain` items except a shorter final one. Pure function of
  /// (n, grain) — the determinism contract hangs on this.
  static std::size_t chunk_count(std::size_t n, std::size_t grain);

  /// Run `body(begin, end, chunk)` for every chunk of [0, n). Chunks run
  /// concurrently on the pool (the caller participates); a body called from
  /// inside another parallel_for of this pool runs inline. Blocks until all
  /// chunks retired; rethrows the first chunk exception.
  void parallel_for(
      std::size_t n, std::size_t grain,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body) const;

 private:
  struct Job {
    std::size_t n = 0;
    std::size_t grain = 0;
    std::size_t chunks = 0;
    const std::function<void(std::size_t, std::size_t, std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<bool> failed{false};   ///< sticky: abandon remaining chunks
    std::size_t retired = 0;           ///< chunks retired, pool mutex
    unsigned workers_inside = 0;       ///< workers executing, pool mutex
    std::exception_ptr error;          ///< first failure, pool mutex
  };

  void worker_loop();
  void run_chunks(Job& job) const;

 public:
  /// The chunk loop of parallel_for without a pool: same decomposition,
  /// ascending order, on the calling thread. The free parallel_for
  /// delegates here when given a null pool.
  static void run_inline(
      std::size_t n, std::size_t grain,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

 private:

  unsigned lanes_ = 1;
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  /// Idle workers spin briefly, then park on this futex word. A submission
  /// bumps the word and wakes exactly min(chunks - 1, workers) parked
  /// workers — never a broadcast, so a two-chunk job on a 64-lane pool
  /// disturbs one sleeper instead of sixty-three (the old notify_all
  /// thundering herd).
  mutable std::atomic<std::uint32_t> wake_word_{0};
  mutable std::condition_variable job_done_;     ///< the submitter waits here
  mutable Job* job_ = nullptr;                   ///< at most one active job
  bool stop_ = false;
};

/// Blocked parallel-for that degrades to the identical inline chunk loop
/// when no pool is supplied (or the pool is single-lane): `pool == nullptr`
/// and `pool->threads() == 16` execute the same chunks in the same
/// decomposition, so serial and parallel outputs can be compared bit for
/// bit.
void parallel_for(
    const ThreadPool* pool, std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

/// Deterministic map-reduce over the fixed chunk decomposition: `body`
/// fills one State per chunk (concurrently), then `merge` folds the chunk
/// states into the first chunk's state in ascending chunk order (serially,
/// on the calling thread). The merge order — not the execution order — is
/// what the result depends on, so any thread count yields the same value.
template <typename State, typename Body, typename Merge>
State parallel_reduce(const ThreadPool* pool, std::size_t n, std::size_t grain,
                      Body&& body, Merge&& merge) {
  const std::size_t chunks = ThreadPool::chunk_count(n, grain);
  if (chunks == 0) return State{};
  std::vector<State> partials(chunks);
  parallel_for(pool, n, grain,
               [&](std::size_t begin, std::size_t end, std::size_t chunk) {
                 body(partials[chunk], begin, end);
               });
  State result = std::move(partials[0]);
  for (std::size_t c = 1; c < chunks; ++c) {
    merge(result, std::move(partials[c]));
  }
  return result;
}

}  // namespace omptune::util
