#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/env.hpp"
#include "util/futex.hpp"

namespace omptune::util {

namespace {

/// Set while a thread is executing chunks of some pool's job; nested
/// parallel_for calls from such a thread run inline instead of re-entering
/// the pool (see the header's nesting contract).
thread_local const ThreadPool* g_executing_pool = nullptr;

}  // namespace

unsigned ThreadPool::default_thread_count() {
  if (const auto env = get_env("OMPTUNE_ANALYSIS_THREADS")) {
    if (!env->empty() &&
        env->find_first_not_of("0123456789") == std::string::npos) {
      const unsigned long value = std::stoul(*env);
      if (value >= 1 && value <= 4096) return static_cast<unsigned>(value);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t ThreadPool::chunk_count(std::size_t n, std::size_t grain) {
  if (n == 0) return 0;
  const std::size_t g = std::max<std::size_t>(grain, 1);
  return (n + g - 1) / g;
}

ThreadPool::ThreadPool(unsigned threads)
    : lanes_(threads == 0 ? default_thread_count() : threads) {
  workers_.reserve(lanes_ - 1);
  for (unsigned w = 1; w < lanes_; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_word_.fetch_add(1, std::memory_order_release);
  futex_wake_all(wake_word_);
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Wait for work or shutdown. The wake word is sampled while the state
    // check still holds the pool mutex: a submission that lands after the
    // sample bumps the word, so the park below returns immediately instead
    // of missing the job.
    while (!(stop_ || (job_ != nullptr &&
                       job_->next_chunk.load(std::memory_order_relaxed) <
                           job_->chunks))) {
      const std::uint32_t seen = wake_word_.load(std::memory_order_acquire);
      lock.unlock();
      // Brief spin keeps hand-off latency low for back-to-back jobs; park
      // in the kernel once the spin comes up empty.
      bool changed = false;
      for (int i = 0; i < 128 && !changed; ++i) {
        changed = wake_word_.load(std::memory_order_acquire) != seen;
      }
      if (!changed) futex_wait(wake_word_, seen);
      lock.lock();
    }
    if (stop_) return;
    Job& job = *job_;
    // The submitter frees the Job only once retired == chunks AND no
    // worker is inside run_chunks — this counter is the lifetime guard.
    ++job.workers_inside;
    lock.unlock();
    run_chunks(job);
    lock.lock();
    --job.workers_inside;
    if (job.retired == job.chunks && job.workers_inside == 0) {
      job_done_.notify_all();
    }
  }
}

void ThreadPool::run_chunks(Job& job) const {
  const ThreadPool* previous = g_executing_pool;
  g_executing_pool = this;
  std::size_t executed = 0;
  std::exception_ptr first_error;
  for (;;) {
    const std::size_t chunk =
        job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.chunks) break;
    ++executed;
    // After a failure the loop is abandoned: remaining chunks retire
    // without running so the submitter can rethrow promptly.
    if (!job.failed.load(std::memory_order_relaxed) && first_error == nullptr) {
      try {
        const std::size_t begin = chunk * job.grain;
        const std::size_t end = std::min(begin + job.grain, job.n);
        (*job.body)(begin, end, chunk);
      } catch (...) {
        first_error = std::current_exception();
        job.failed.store(true, std::memory_order_relaxed);
      }
    }
  }
  g_executing_pool = previous;
  if (executed > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    job.retired += executed;
    if (first_error != nullptr && job.error == nullptr) {
      job.error = first_error;
    }
    if (job.retired == job.chunks) job_done_.notify_all();
  }
}

void ThreadPool::run_inline(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  const std::size_t g = std::max<std::size_t>(grain, 1);
  const std::size_t chunks = chunk_count(n, g);
  for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
    const std::size_t begin = chunk * g;
    const std::size_t end = std::min(begin + g, n);
    body(begin, end, chunk);
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body)
    const {
  const std::size_t g = std::max<std::size_t>(grain, 1);
  const std::size_t chunks = chunk_count(n, g);
  if (chunks == 0) return;
  // Single-lane pools, single-chunk loops, and nested calls from a worker
  // of this pool all take the inline path — same chunks, same order.
  if (lanes_ <= 1 || chunks == 1 || g_executing_pool == this) {
    run_inline(n, g, body);
    return;
  }

  Job job;
  job.n = n;
  job.grain = g;
  job.chunks = chunks;
  job.body = &body;

  std::unique_lock<std::mutex> lock(mutex_);
  // One job at a time: concurrent submissions from independent threads
  // queue up here. (Submissions from pool workers took the inline path.)
  job_done_.wait(lock, [this] { return job_ == nullptr; });
  job_ = &job;
  lock.unlock();
  // The submitter runs one lane itself, so at most chunks - 1 workers can
  // contribute; wake exactly that many parked workers and leave the rest
  // asleep. Spinning workers notice the bumped word without a syscall.
  const std::size_t helpers =
      std::min<std::size_t>(chunks - 1, static_cast<std::size_t>(lanes_ - 1));
  wake_word_.fetch_add(1, std::memory_order_release);
  if (helpers > 0) futex_wake(wake_word_, static_cast<int>(helpers));

  run_chunks(job);  // the submitter is a lane too

  lock.lock();
  job_done_.wait(lock, [&job] {
    return job.retired == job.chunks && job.workers_inside == 0;
  });
  job_ = nullptr;
  job_done_.notify_all();  // wake any queued submitter
  const std::exception_ptr error = job.error;
  lock.unlock();
  if (error != nullptr) std::rethrow_exception(error);
}

void parallel_for(
    const ThreadPool* pool, std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (pool != nullptr) {
    pool->parallel_for(n, grain, body);
  } else {
    ThreadPool::run_inline(n, grain, body);
  }
}

}  // namespace omptune::util
