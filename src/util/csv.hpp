#pragma once

// Minimal CSV reading/writing with RFC-4188-style quoting, used for the open
// dataset files the study produces (one row per collected sample).

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace omptune::util {

/// In-memory tabular dataset: a header plus rows of string cells.
/// Small by design; numeric interpretation happens at the point of use.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  /// Append a row; throws std::invalid_argument if the width mismatches.
  void add_row(std::vector<std::string> row);

  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  /// Column index by name; throws std::out_of_range if absent.
  std::size_t col_index(std::string_view name) const;

  /// Cell accessor by row index and column name.
  const std::string& cell(std::size_t row, std::string_view col) const;

  /// Numeric accessor; throws std::invalid_argument on non-numeric cells.
  double cell_as_double(std::size_t row, std::string_view col) const;

  /// Serialize to CSV with quoting where needed.
  void write(std::ostream& os) const;

  /// Write to a file; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

  /// Parse from a stream; throws std::runtime_error on malformed input.
  static CsvTable read(std::istream& is);

  /// Read from a file; throws std::runtime_error on I/O failure.
  static CsvTable read_file(const std::string& path);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quote a single CSV field if it contains separators, quotes or newlines.
std::string csv_quote(std::string_view field);

/// Split one CSV line honouring quotes. Throws on unterminated quotes.
std::vector<std::string> csv_split_line(std::string_view line);

}  // namespace omptune::util
