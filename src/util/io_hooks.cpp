#include "util/io_hooks.hpp"

namespace omptune::util {

namespace detail {
std::atomic<IoHooks*> g_io_hooks{nullptr};
}

const char* to_string(IoOp op) {
  switch (op) {
    case IoOp::Open: return "open";
    case IoOp::Write: return "write";
    case IoOp::Fsync: return "fsync";
    case IoOp::FsyncDir: return "fsync-dir";
    case IoOp::Rename: return "rename";
    case IoOp::Unlink: return "unlink";
    case IoOp::Read: return "read";
  }
  return "unknown";
}

IoHooks* install_io_hooks(IoHooks* hooks) {
  return detail::g_io_hooks.exchange(hooks, std::memory_order_acq_rel);
}

}  // namespace omptune::util
