#pragma once

// The barrier catalogue's common interface, mirroring the algorithm choice
// LLVM/OpenMP exposes through KMP_*_BARRIER_PATTERN. Four variants live
// behind it (see the per-variant headers for the algorithms):
//
//   central        one shared counter + one release epoch. Cheapest wake
//                  machinery, but every arrival hammers the same cache line
//                  — O(n) contention on one word.
//   tree           binary combining tree: arrivals propagate up parent by
//                  parent, the release is one broadcast epoch. O(log n)
//                  depth, each gather word written by at most two children.
//   dissemination  ceil(log2 n) point-to-point rounds; no root, no
//                  broadcast, every thread is release-symmetric. The
//                  textbook winner at scale.
//   hybrid (flat)  two levels of central counters (groups of 8, then group
//                  leaders), one broadcast release — centralized latency for
//                  small teams without a single-counter hot spot.
//
// `resolve_barrier_kind` is the Auto heuristic ThreadTeam uses: measured by
// bench/micro_primitives, small teams favour the central counter (fewest
// atomics end to end), mid sizes the flat hybrid, large teams dissemination.

#include <cstdint>
#include <memory>

#include "rt/park.hpp"

namespace omptune::rt {

/// Reusable fixed-size team barrier. `arrive_and_wait(tid)` must be called
/// by every team rank exactly once per episode; tid is the caller's stable
/// rank in [0, team_size).
class TeamBarrier {
 public:
  virtual ~TeamBarrier() = default;

  TeamBarrier(const TeamBarrier&) = delete;
  TeamBarrier& operator=(const TeamBarrier&) = delete;

  virtual void arrive_and_wait(int tid) = 0;
  virtual BarrierKind kind() const = 0;

  int team_size() const { return team_size_; }

  /// Number of waits that fell back to a kernel park; exposed for tests and
  /// the wait-policy micro-benchmark.
  std::uint64_t sleep_count() const {
    return sleeps_.load(std::memory_order_relaxed);
  }

 protected:
  TeamBarrier(int team_size, WaitBehavior wait);

  const int team_size_;
  WaitBehavior wait_;
  std::atomic<std::uint64_t> sleeps_{0};
};

/// The Auto heuristic: which variant a team of `size` should run.
BarrierKind resolve_barrier_kind(BarrierKind requested, int team_size);

/// Construct a barrier of the given (resolved) kind. Auto resolves first.
std::unique_ptr<TeamBarrier> make_team_barrier(BarrierKind kind, int team_size,
                                               WaitBehavior wait = {});

}  // namespace omptune::rt
