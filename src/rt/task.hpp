#pragma once

// Unstructured task parallelism: per-thread deques with work stealing.
//
// Each team thread owns a deque; `spawn` pushes to the owner's tail, the
// owner pops from the tail (LIFO, cache-friendly for recursive
// decomposition), and thieves steal from the head (FIFO, steals the largest
// remaining subtrees). `taskwait` blocks until the current task's children
// have completed, executing other ready tasks meanwhile; `drain` empties the
// pool at the end of a parallel region.
//
// The idle loop honours the team's wait policy through the shared WaitWord
// primitive (rt/park.hpp): turnaround spins, throughput yields between
// polls, and once the spin budget is exhausted the thread parks on the
// pool's work signal — the mechanism behind the large KMP_LIBRARY effect
// the paper measures on task-parallel benchmarks (NQueens: turnaround wins
// on every architecture, Table VII). Every event that can unblock a waiter
// (spawn, task completion, producer-done) advances the signal word, so a
// parked thread never oversleeps and a spinning thread pays no syscall.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "rt/config.hpp"
#include "rt/park.hpp"

namespace omptune::rt {

/// Task-pool counters for tests and the tasking micro-benchmark.
struct TaskStats {
  std::uint64_t spawned = 0;
  std::uint64_t executed = 0;
  std::uint64_t steals = 0;
  std::uint64_t idle_polls = 0;
  std::uint64_t idle_sleeps = 0;  ///< idle waits that parked in the kernel
};

/// Work-stealing task pool shared by one team.
class TaskPool {
 public:
  TaskPool(int team_size, WaitBehavior wait);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Called by each team thread when the parallel region starts/ends;
  /// establishes the thread's implicit task and registers the calling OS
  /// thread so spawn/taskwait can resolve the *executing* thread even when
  /// a closure captured another thread's context (stolen tasks).
  void enter_region(int tid);
  void leave_region(int tid);

  /// The pool rank of the calling OS thread if it is registered with this
  /// pool (via enter_region); `fallback` otherwise. Tasks that migrate via
  /// work stealing MUST act on the executing thread, not on whichever
  /// thread's context their closure captured — waiting on the wrong
  /// thread's current task can deadlock.
  int resolve_tid(int fallback) const;

  /// Create a child task of the calling thread's current task.
  void spawn(int tid, std::function<void()> fn);

  /// Wait until the current task's children are complete, executing other
  /// ready tasks while waiting.
  void taskwait(int tid);

  /// Execute until no tasks remain anywhere in the pool. Every team thread
  /// must call this (it is the region-end join); does NOT include a barrier.
  void drain(int tid);

  /// Execute until `producer_done` is set AND the pool is empty. Used when
  /// one thread is still seeding tasks: an empty pool alone must not release
  /// the helpers.
  void drain_until(int tid, const std::atomic<bool>& producer_done);

  /// Wake idle threads so they re-evaluate their wait predicate. Must be
  /// called after externally-observable state a drain_until predicate reads
  /// (e.g. its producer_done flag) changes.
  void notify();

  TaskStats stats() const;

 private:
  struct Task {
    std::function<void()> fn;
    Task* parent = nullptr;
    std::atomic<int> unfinished_children{0};
    /// 1 for the task itself until executed, +1 per live child (children
    /// keep the parent record alive to decrement unfinished_children).
    std::atomic<int> refs{1};
  };

  struct WorkerState {
    std::deque<Task*> deque;
    std::mutex mutex;
    Task* current = nullptr;  ///< innermost task this thread is executing
  };

  void release(Task* task);
  void run_task(int tid, Task* task);
  Task* try_pop_local(int tid);
  Task* try_steal(int tid);
  /// Execute one ready task if any. Returns true if a task was executed.
  bool try_execute_one(int tid);
  /// Run tasks until `done()` holds; parks on the work signal per the wait
  /// policy when nothing is runnable. Any event that can flip `done()` must
  /// advance `work_signal_` (spawn/completion do; see notify()).
  template <typename DonePred>
  void idle_loop(int tid, DonePred&& done);

  int team_size_;
  WaitBehavior wait_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  /// Advanced on every spawn, task completion, and notify(); idle threads
  /// sample it before re-scanning the deques and park against the sampled
  /// value, so a wake between sample and park is never lost.
  WaitWord work_signal_;
  std::atomic<std::int64_t> outstanding_{0};
  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> idle_polls_{0};
  std::atomic<std::uint64_t> idle_sleeps_{0};
};

}  // namespace omptune::rt
