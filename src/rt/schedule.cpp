#include "rt/schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace omptune::rt {

LoopScheduler::LoopScheduler(ScheduleKind kind, int chunk, std::int64_t lo,
                             std::int64_t hi, int team_size)
    : kind_(kind),
      chunk_(chunk > 0 ? chunk : 1),
      chunk_requested_(chunk > 0),
      lo_(lo),
      hi_(std::max(lo, hi)),
      team_size_(team_size),
      cursor_(lo) {
  if (team_size <= 0) {
    throw std::invalid_argument("LoopScheduler: team_size must be > 0");
  }
  per_thread_ = std::make_unique<std::atomic<std::int64_t>[]>(
      static_cast<std::size_t>(team_size));
  for (int t = 0; t < team_size; ++t) {
    per_thread_[t].store(
        kind == ScheduleKind::Static && chunk_requested_ ? t : 0,
        std::memory_order_relaxed);
  }
}

std::optional<LoopSlice> LoopScheduler::next(int tid) {
  if (tid < 0 || tid >= team_size_) {
    throw std::out_of_range("LoopScheduler::next: bad tid");
  }
  switch (kind_) {
    case ScheduleKind::Static:
      // With an explicit chunk the iterations are dealt round-robin in
      // chunk-sized pieces; otherwise one block per thread.
      return chunk_requested_ ? next_static_chunked(tid)
                              : next_static_block(tid);
    case ScheduleKind::Auto:
      // Implementation-defined: static_greedy — one contiguous block.
      return next_static_block(tid);
    case ScheduleKind::Dynamic:
      return next_dynamic();
    case ScheduleKind::Guided:
      return next_guided();
  }
  throw std::logic_error("LoopScheduler::next: bad kind");
}

std::optional<LoopSlice> LoopScheduler::next_static_block(int tid) {
  if (per_thread_[tid].exchange(1, std::memory_order_relaxed) != 0) {
    return std::nullopt;
  }
  const std::int64_t n = hi_ - lo_;
  if (n == 0) return std::nullopt;
  // Split as evenly as possible: the first (n % team) threads get one extra.
  const std::int64_t base = n / team_size_;
  const std::int64_t extra = n % team_size_;
  const std::int64_t begin =
      lo_ + tid * base + std::min<std::int64_t>(tid, extra);
  const std::int64_t len = base + (tid < extra ? 1 : 0);
  if (len == 0) return std::nullopt;
  return LoopSlice{begin, begin + len};
}

std::optional<LoopSlice> LoopScheduler::next_static_chunked(int tid) {
  // Chunk indices are dealt round-robin: thread t owns chunks t, t+T, t+2T...
  const std::int64_t chunk_index =
      per_thread_[tid].fetch_add(team_size_, std::memory_order_relaxed);
  const std::int64_t begin = lo_ + chunk_index * chunk_;
  if (begin >= hi_) return std::nullopt;
  return LoopSlice{begin, std::min(begin + chunk_, hi_)};
}

std::optional<LoopSlice> LoopScheduler::next_dynamic() {
  const std::int64_t begin =
      cursor_.fetch_add(chunk_, std::memory_order_relaxed);
  sync_ops_.fetch_add(1, std::memory_order_relaxed);
  if (begin >= hi_) return std::nullopt;
  return LoopSlice{begin, std::min(begin + chunk_, hi_)};
}

std::optional<LoopSlice> LoopScheduler::next_guided() {
  // Piece size = max(remaining / (2 * team), chunk); claimed via CAS so the
  // size decision and the claim are one atomic step.
  std::int64_t begin = cursor_.load(std::memory_order_relaxed);
  while (true) {
    if (begin >= hi_) return std::nullopt;
    const std::int64_t remaining = hi_ - begin;
    const std::int64_t size =
        std::max<std::int64_t>(chunk_, remaining / (2 * team_size_));
    const std::int64_t end = std::min(begin + size, hi_);
    sync_ops_.fetch_add(1, std::memory_order_relaxed);
    if (cursor_.compare_exchange_weak(begin, end, std::memory_order_relaxed)) {
      return LoopSlice{begin, end};
    }
    // CAS failure reloaded `begin`; retry with the fresh cursor.
  }
}

}  // namespace omptune::rt
