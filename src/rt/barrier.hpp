#pragma once

// Centralized sense-reversing barrier: one arrival counter, one release
// epoch. The waiting mechanics (spin vs yield vs park) come from the shared
// WaitWord primitive in rt/park.hpp — the surface KMP_BLOCKTIME and
// KMP_LIBRARY tune:
//  - Active (turnaround / blocktime=infinite): spin until released; lowest
//    wake-up latency, burns a core while waiting.
//  - Passive (blocktime=0): park in the kernel immediately; frees the core,
//    pays the futex wake on release.
//  - SpinThenSleep (default, blocktime=200ms): spin up to the blocktime,
//    then park.
//
// In throughput mode spinning yields to the OS between polls (the runtime is
// a good citizen on shared machines); in turnaround mode it polls without
// yielding.

#include <cstdint>

#include "rt/team_barrier.hpp"

namespace omptune::rt {

/// Sense-reversing centralized barrier for a fixed-size team.
class Barrier final : public TeamBarrier {
 public:
  /// `initial_epoch` pre-ages the release epoch — the conformance suite
  /// starts near UINT32_MAX to drive episodes across the wrap.
  explicit Barrier(int team_size, WaitBehavior wait = {},
                   std::uint32_t initial_epoch = 0);

  /// Block until all `team_size` threads have arrived. Safe for repeated
  /// use. The centralized algorithm needs no rank, so a rank-free entry
  /// point exists for callers without a stable tid (reductions, tests).
  void arrive_and_wait();
  void arrive_and_wait(int /*tid*/) override { arrive_and_wait(); }

  BarrierKind kind() const override { return BarrierKind::Central; }

 private:
  std::atomic<int> arrived_{0};
  WaitWord release_;
};

}  // namespace omptune::rt
