#pragma once

// Team barrier with a configurable wait policy.
//
// The waiting behaviour is the mechanism KMP_BLOCKTIME and KMP_LIBRARY tune:
//  - Active (turnaround / blocktime=infinite): spin until released; lowest
//    wake-up latency, burns a core while waiting.
//  - Passive (blocktime=0): sleep on a condition variable immediately;
//    frees the core, pays the OS wake-up cost on release.
//  - SpinThenSleep (default, blocktime=200ms): spin up to the blocktime,
//    then fall back to sleeping.
//
// In throughput mode spinning yields to the OS between polls (the runtime is
// a good citizen on shared machines); in turnaround mode it polls without
// yielding.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "rt/config.hpp"

namespace omptune::rt {

/// How a waiting thread burns time until a condition flips.
struct WaitBehavior {
  WaitPolicy policy = WaitPolicy::SpinThenSleep;
  bool yield_while_spinning = true;  ///< throughput yields, turnaround does not
  std::chrono::microseconds spin_budget{200'000};  ///< blocktime

  /// Derive from a runtime configuration.
  static WaitBehavior from_config(const RtConfig& config);
};

/// Sense-reversing centralized barrier for a fixed-size team.
class Barrier {
 public:
  explicit Barrier(int team_size, WaitBehavior wait = {});

  /// Block until all `team_size` threads have arrived. Safe for repeated use.
  void arrive_and_wait();

  /// Number of times any thread fell back to a condition-variable sleep;
  /// exposed for tests and the wait-policy micro-benchmark.
  std::uint64_t sleep_count() const {
    return sleeps_.load(std::memory_order_relaxed);
  }

 private:
  void wait_for_sense(bool expected);

  const int team_size_;
  WaitBehavior wait_;
  std::atomic<int> arrived_{0};
  std::atomic<bool> sense_{false};
  std::atomic<std::uint64_t> sleeps_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// Spin-then-sleep wait on an arbitrary atomic flag; shared by the barrier
/// and the task pool idle loop.
///
/// Returns when `flag.load(acquire) == expected`.
void wait_until(const std::atomic<bool>& flag, bool expected,
                const WaitBehavior& wait, std::mutex& mutex,
                std::condition_variable& cv,
                std::atomic<std::uint64_t>* sleep_counter);

}  // namespace omptune::rt
