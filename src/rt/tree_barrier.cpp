#include "rt/tree_barrier.hpp"

#include <stdexcept>
#include <thread>

namespace omptune::rt {

namespace {

/// Spin per the wait policy until `pred()` holds, then (if allowed) sleep
/// on `cv` with `mutex`. Mirrors rt::wait_until but for arbitrary
/// predicates.
template <typename Pred>
void spin_then_sleep(Pred&& pred, const WaitBehavior& wait, std::mutex& mutex,
                     std::condition_variable& cv,
                     std::atomic<std::uint64_t>& sleep_counter) {
  if (pred()) return;
  if (wait.policy != WaitPolicy::Passive) {
    const bool bounded = wait.policy == WaitPolicy::SpinThenSleep;
    const auto deadline = bounded
                              ? std::chrono::steady_clock::now() + wait.spin_budget
                              : std::chrono::steady_clock::time_point::max();
    while (true) {
      for (int i = 0; i < 64; ++i) {
        if (pred()) return;
        if (wait.yield_while_spinning) std::this_thread::yield();
      }
      if (bounded && std::chrono::steady_clock::now() >= deadline) break;
    }
  }
  sleep_counter.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, pred);
}

}  // namespace

TreeBarrier::TreeBarrier(int team_size, WaitBehavior wait)
    : team_size_(team_size), wait_(wait) {
  if (team_size <= 0) {
    throw std::invalid_argument("TreeBarrier: team_size must be > 0");
  }
  nodes_.reserve(static_cast<std::size_t>(team_size));
  for (int i = 0; i < team_size; ++i) {
    nodes_.push_back(std::make_unique<Node>());
  }
}

void TreeBarrier::wait_for_epoch(Node& node, std::uint64_t old_epoch) {
  spin_then_sleep(
      [this, old_epoch] {
        return epoch_.load(std::memory_order_acquire) != old_epoch;
      },
      wait_, node.mutex, node.cv, sleeps_);
}

void TreeBarrier::arrive_and_wait(int tid) {
  if (tid < 0 || tid >= team_size_) {
    throw std::out_of_range("TreeBarrier::arrive_and_wait: bad tid");
  }
  const std::uint64_t my_epoch = epoch_.load(std::memory_order_acquire);

  // Gather: wait for both children's subtrees to arrive.
  for (const int child : {2 * tid + 1, 2 * tid + 2}) {
    if (child >= team_size_) continue;
    Node& node = *nodes_[static_cast<std::size_t>(child)];
    spin_then_sleep(
        [&node] { return node.arrived.load(std::memory_order_acquire) != 0; },
        wait_, node.mutex, node.cv, sleeps_);
  }

  if (tid == 0) {
    // Root: the whole team has arrived. Reset the gather flags, then bump
    // the epoch (the release wave). The reset happens strictly before the
    // release, so the next round's arrivals cannot be clobbered.
    for (int i = 1; i < team_size_; ++i) {
      nodes_[static_cast<std::size_t>(i)]->arrived.store(0, std::memory_order_relaxed);
    }
    {
      // Pair the epoch bump with every node's mutex-free sleepers via the
      // root node's lock; sleepers always re-check the predicate, and
      // waiters sleep on their own node's cv (notified below).
      std::lock_guard<std::mutex> lock(nodes_[0]->mutex);
      epoch_.fetch_add(1, std::memory_order_release);
    }
    for (auto& node : nodes_) {
      std::lock_guard<std::mutex> lock(node->mutex);
      node->cv.notify_all();
    }
    return;
  }

  // Signal the parent (under the node lock so a sleeping parent cannot
  // miss the notification), then wait for the release wave.
  Node& me = *nodes_[static_cast<std::size_t>(tid)];
  {
    std::lock_guard<std::mutex> lock(me.mutex);
    me.arrived.store(1, std::memory_order_release);
  }
  me.cv.notify_all();
  wait_for_epoch(me, my_epoch);
}

}  // namespace omptune::rt
