#include "rt/tree_barrier.hpp"

#include <stdexcept>

namespace omptune::rt {

namespace {
constexpr std::size_t kLine = 64;  // padded-slot boundary (cache line)
}

TreeBarrier::TreeBarrier(int team_size, WaitBehavior wait, bool padded,
                         std::uint32_t initial_epoch)
    : TeamBarrier(team_size, wait),
      alloc_(kLine),
      nodes_(alloc_, static_cast<std::size_t>(team_size), padded) {
  release_.value.store(initial_epoch, std::memory_order_relaxed);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].arrived.value.store(initial_epoch, std::memory_order_relaxed);
  }
}

void TreeBarrier::arrive_and_wait(int tid) {
  if (tid < 0 || tid >= team_size_) {
    throw std::out_of_range("TreeBarrier::arrive_and_wait: bad tid");
  }
  // Every word is a monotone episode counter, so nothing is ever reset:
  // episode e is complete at a node once its counter reached e. `release_`
  // counts completed episodes, making the current episode its value + 1.
  const std::uint32_t episode = release_.load() + 1;

  // Gather: wait for both children's subtrees to arrive in this episode.
  for (const int child : {2 * tid + 1, 2 * tid + 2}) {
    if (child >= team_size_) continue;
    nodes_[static_cast<std::size_t>(child)].arrived.wait_reached(episode, wait_,
                                                                 &sleeps_);
  }

  if (tid == 0) {
    // Root: the whole team has arrived; broadcast the release.
    release_.advance_and_wake();
    return;
  }

  // Signal the parent, then wait for the release wave.
  nodes_[static_cast<std::size_t>(tid)].arrived.advance_and_wake();
  release_.wait_reached(episode, wait_, &sleeps_);
}

}  // namespace omptune::rt
