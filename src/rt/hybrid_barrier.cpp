#include "rt/hybrid_barrier.hpp"

#include <algorithm>
#include <stdexcept>

namespace omptune::rt {

namespace {
constexpr std::size_t kLine = 64;  // padded-slot boundary (cache line)
}

HybridBarrier::HybridBarrier(int team_size, WaitBehavior wait,
                             std::uint32_t initial_epoch)
    : TeamBarrier(team_size, wait),
      group_count_((team_size + kGroupSize - 1) / kGroupSize),
      alloc_(kLine),
      groups_(alloc_, static_cast<std::size_t>(group_count_), true) {
  release_.value.store(initial_epoch, std::memory_order_relaxed);
}

void HybridBarrier::arrive_and_wait(int tid) {
  if (tid < 0 || tid >= team_size_) {
    throw std::out_of_range("HybridBarrier::arrive_and_wait: bad tid");
  }
  const std::uint32_t my_epoch = release_.load();
  const int group = tid / kGroupSize;
  const int members = std::min(kGroupSize, team_size_ - group * kGroupSize);

  Group& mine = groups_[static_cast<std::size_t>(group)];
  if (mine.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == members) {
    // Group leader: reset the group counter for the next episode strictly
    // before signalling level two (re-arrivals only happen after a waiter
    // observes the new release epoch).
    mine.arrived.store(0, std::memory_order_relaxed);
    if (leaders_.fetch_add(1, std::memory_order_acq_rel) + 1 == group_count_) {
      leaders_.store(0, std::memory_order_relaxed);
      release_.advance_and_wake();
      return;
    }
  }
  release_.wait_changed(my_epoch, wait_, &sleeps_);
}

}  // namespace omptune::rt
