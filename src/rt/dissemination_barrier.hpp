#pragma once

// Dissemination barrier (Hensgen/Finkel/Manber): ceil(log2 n) point-to-point
// rounds. In round r, rank i signals rank (i + 2^r) mod n and waits for the
// signal from rank (i - 2^r) mod n; after the last round every rank has
// transitively heard from every other rank, so the barrier is complete with
// no root and no broadcast. Properties that make it the large-team winner:
//
//  - every hot word has exactly one writer and one reader (no contended
//    counter at any size);
//  - the critical path is log2 n signal hops, and the release is symmetric —
//    there is no O(n) wake fan-out from a single releasing thread;
//  - each (rank, round) flag is a monotone episode counter, so no reset
//    phase and no sense reversal is needed (signals for episode e+1 simply
//    count past e; waits compare wrap-safely).
//
// This is the lomp-style `dissemination` entry of the barrier catalogue.

#include <cstdint>

#include "rt/aligned_alloc.hpp"
#include "rt/team_barrier.hpp"

namespace omptune::rt {

class DisseminationBarrier final : public TeamBarrier {
 public:
  /// `initial_epoch` pre-ages every episode counter — the conformance
  /// suite starts near UINT32_MAX to drive episodes across the wrap.
  explicit DisseminationBarrier(int team_size, WaitBehavior wait = {},
                                std::uint32_t initial_epoch = 0);

  void arrive_and_wait(int tid) override;

  BarrierKind kind() const override { return BarrierKind::Dissemination; }

  int rounds() const { return rounds_; }

 private:
  /// One per (rank, round): the signal word rank waits on in that round,
  /// written only by its round-partner. Padded to its own cache line.
  struct Flag {
    WaitWord word;
  };
  /// One per rank: the rank's private episode counter (only its owner
  /// touches it; padded so neighbours don't share its line).
  struct Rank {
    std::uint32_t episode = 0;
  };

  WaitWord& flag(int tid, int round) {
    return flags_[static_cast<std::size_t>(tid) *
                      static_cast<std::size_t>(rounds_) +
                  static_cast<std::size_t>(round)]
        .word;
  }

  const int rounds_;
  KmpAllocator alloc_;
  PaddedSlots<Flag> flags_;
  PaddedSlots<Rank> ranks_;
};

}  // namespace omptune::rt
