#include "rt/config.hpp"

#include <limits>
#include <stdexcept>

#include "util/strings.hpp"

namespace omptune::rt {

using util::parse_int;
using util::to_lower;
using util::trim;

std::string to_string(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::Static: return "static";
    case ScheduleKind::Dynamic: return "dynamic";
    case ScheduleKind::Guided: return "guided";
    case ScheduleKind::Auto: return "auto";
  }
  throw std::invalid_argument("to_string: bad ScheduleKind");
}

ScheduleKind schedule_from_string(const std::string& name) {
  const std::string n = to_lower(trim(name));
  if (n == "static") return ScheduleKind::Static;
  if (n == "dynamic") return ScheduleKind::Dynamic;
  if (n == "guided") return ScheduleKind::Guided;
  if (n == "auto") return ScheduleKind::Auto;
  throw std::invalid_argument("schedule_from_string: unknown value '" + name + "'");
}

std::string to_string(LibraryMode mode) {
  switch (mode) {
    case LibraryMode::Serial: return "serial";
    case LibraryMode::Throughput: return "throughput";
    case LibraryMode::Turnaround: return "turnaround";
  }
  throw std::invalid_argument("to_string: bad LibraryMode");
}

LibraryMode library_from_string(const std::string& name) {
  const std::string n = to_lower(trim(name));
  if (n == "serial") return LibraryMode::Serial;
  if (n == "throughput") return LibraryMode::Throughput;
  if (n == "turnaround") return LibraryMode::Turnaround;
  throw std::invalid_argument("library_from_string: unknown value '" + name + "'");
}

std::string to_string(ReductionMethod method) {
  switch (method) {
    case ReductionMethod::Default: return "unset";
    case ReductionMethod::Tree: return "tree";
    case ReductionMethod::Critical: return "critical";
    case ReductionMethod::Atomic: return "atomic";
  }
  throw std::invalid_argument("to_string: bad ReductionMethod");
}

ReductionMethod reduction_from_string(const std::string& name) {
  const std::string n = to_lower(trim(name));
  if (n == "unset" || n.empty()) return ReductionMethod::Default;
  if (n == "tree") return ReductionMethod::Tree;
  if (n == "critical") return ReductionMethod::Critical;
  if (n == "atomic") return ReductionMethod::Atomic;
  throw std::invalid_argument("reduction_from_string: unknown value '" + name + "'");
}

std::string to_string(BarrierKind kind) {
  switch (kind) {
    case BarrierKind::Auto: return "auto";
    case BarrierKind::Central: return "central";
    case BarrierKind::Tree: return "tree";
    case BarrierKind::Dissemination: return "dissemination";
    case BarrierKind::Hybrid: return "hybrid";
  }
  throw std::invalid_argument("to_string: bad BarrierKind");
}

BarrierKind barrier_from_string(const std::string& name) {
  const std::string n = to_lower(trim(name));
  if (n == "auto" || n.empty()) return BarrierKind::Auto;
  if (n == "central" || n == "linear") return BarrierKind::Central;
  if (n == "tree") return BarrierKind::Tree;
  if (n == "dissemination" || n == "dissem") return BarrierKind::Dissemination;
  if (n == "hybrid" || n == "flat") return BarrierKind::Hybrid;
  throw std::invalid_argument("barrier_from_string: unknown value '" + name + "'");
}

RtConfig RtConfig::defaults_for(const arch::CpuArch& cpu) {
  RtConfig config;  // field initializers are the variable defaults
  config.align_alloc = cpu.cacheline_bytes;
  return config;
}

RtConfig RtConfig::from_env(const arch::CpuArch& cpu) {
  RtConfig config = defaults_for(cpu);

  if (const auto v = util::get_env("OMP_NUM_THREADS")) {
    const auto n = parse_int(*v);
    if (!n || *n <= 0) {
      throw std::invalid_argument("OMP_NUM_THREADS: expected positive integer, got '" + *v + "'");
    }
    config.num_threads = static_cast<int>(*n);
  }
  if (const auto v = util::get_env("OMP_PLACES")) {
    config.places = arch::places_from_string(to_lower(trim(*v)));
  }
  if (const auto v = util::get_env("OMP_PROC_BIND")) {
    config.bind = arch::bind_from_string(to_lower(trim(*v)));
  }
  if (const auto v = util::get_env("OMP_SCHEDULE")) {
    // Syntax: kind[,chunk]
    const auto parts = util::split(*v, ',');
    if (parts.empty() || parts.size() > 2) {
      throw std::invalid_argument("OMP_SCHEDULE: malformed value '" + *v + "'");
    }
    config.schedule = schedule_from_string(parts[0]);
    if (parts.size() == 2) {
      const auto chunk = parse_int(parts[1]);
      if (!chunk || *chunk <= 0) {
        throw std::invalid_argument("OMP_SCHEDULE: bad chunk in '" + *v + "'");
      }
      config.chunk = static_cast<int>(*chunk);
    }
  }
  // OMP_WAIT_POLICY is the standardized alias of the KMP pair (the paper
  // sweeps the KMP_* variables instead, since the policy derives from
  // them): ACTIVE maps to an infinite blocktime, PASSIVE to zero. Explicit
  // KMP_LIBRARY / KMP_BLOCKTIME settings take precedence below.
  if (const auto v = util::get_env("OMP_WAIT_POLICY")) {
    const std::string n = to_lower(trim(*v));
    if (n == "active") {
      config.blocktime_ms = kBlocktimeInfinite;
    } else if (n == "passive") {
      config.blocktime_ms = 0;
    } else {
      throw std::invalid_argument(
          "OMP_WAIT_POLICY: expected 'active' or 'passive', got '" + *v + "'");
    }
  }
  if (const auto v = util::get_env("KMP_LIBRARY")) {
    config.library = library_from_string(*v);
  }
  if (const auto v = util::get_env("KMP_BLOCKTIME")) {
    const std::string n = to_lower(trim(*v));
    if (n == "infinite") {
      config.blocktime_ms = kBlocktimeInfinite;
    } else {
      const auto ms = parse_int(n);
      if (!ms || *ms < 0 || *ms > std::numeric_limits<std::int32_t>::max()) {
        throw std::invalid_argument("KMP_BLOCKTIME: expected [0, INT32_MAX] or 'infinite', got '" + *v + "'");
      }
      config.blocktime_ms = *ms;
    }
  }
  if (const auto v = util::get_env("KMP_FORCE_REDUCTION")) {
    config.reduction = reduction_from_string(*v);
  }
  if (const auto v = util::get_env("KMP_BARRIER_PATTERN")) {
    config.barrier = barrier_from_string(*v);
  }
  if (const auto v = util::get_env("KMP_ALIGN_ALLOC")) {
    const auto align = parse_int(*v);
    const bool power_of_two = align && *align > 0 && (*align & (*align - 1)) == 0;
    if (!power_of_two || *align < static_cast<long long>(sizeof(void*))) {
      throw std::invalid_argument("KMP_ALIGN_ALLOC: expected power-of-two >= pointer size, got '" + *v + "'");
    }
    config.align_alloc = static_cast<int>(*align);
  }
  return config;
}

arch::BindKind RtConfig::effective_bind() const {
  if (bind != arch::BindKind::Unset) return bind;
  // The documented LLVM/OpenMP derivation: unset behaves as `false`, unless
  // places were requested, in which case the default becomes `spread`.
  return places == arch::PlacesKind::Unset ? arch::BindKind::False_
                                           : arch::BindKind::Spread;
}

int RtConfig::effective_num_threads(const arch::CpuArch& cpu) const {
  return num_threads > 0 ? num_threads : cpu.cores;
}

int RtConfig::effective_align(const arch::CpuArch& cpu) const {
  return align_alloc > 0 ? align_alloc : cpu.cacheline_bytes;
}

WaitPolicy RtConfig::wait_policy() const {
  // Turnaround mode keeps workers actively spinning regardless of blocktime;
  // otherwise blocktime selects between immediate sleep, bounded spin, and
  // infinite spin. This is the behaviour OMP_WAIT_POLICY would map onto.
  if (library == LibraryMode::Turnaround) return WaitPolicy::Active;
  if (blocktime_ms == kBlocktimeInfinite) return WaitPolicy::Active;
  if (blocktime_ms == 0) return WaitPolicy::Passive;
  return WaitPolicy::SpinThenSleep;
}

ReductionMethod RtConfig::reduction_method_for(int team_size) const {
  if (team_size <= 0) {
    throw std::invalid_argument("reduction_method_for: team_size must be > 0");
  }
  if (reduction != ReductionMethod::Default) return reduction;
  // Paper Section III.6: one thread needs no synchronization (the Tree
  // implementation degenerates to the serial special path), 2..4 threads use
  // the critical method, larger teams use the tree method.
  if (team_size == 1) return ReductionMethod::Tree;
  if (team_size <= 4) return ReductionMethod::Critical;
  return ReductionMethod::Tree;
}

std::vector<util::ScopedEnv::Assignment> RtConfig::to_env(const arch::CpuArch& cpu) const {
  std::vector<util::ScopedEnv::Assignment> env;
  auto set = [&env](std::string name, std::string value) {
    env.push_back({std::move(name), std::move(value)});
  };
  auto unset = [&env](std::string name) {
    env.push_back({std::move(name), std::nullopt});
  };

  if (num_threads > 0) set("OMP_NUM_THREADS", std::to_string(num_threads));
  else unset("OMP_NUM_THREADS");

  if (places != arch::PlacesKind::Unset) set("OMP_PLACES", to_string(places));
  else unset("OMP_PLACES");

  if (bind != arch::BindKind::Unset) set("OMP_PROC_BIND", to_string(bind));
  else unset("OMP_PROC_BIND");

  if (chunk > 0) set("OMP_SCHEDULE", to_string(schedule) + "," + std::to_string(chunk));
  else set("OMP_SCHEDULE", to_string(schedule));

  set("KMP_LIBRARY", to_string(library));
  set("KMP_BLOCKTIME", blocktime_ms == kBlocktimeInfinite
                           ? std::string("infinite")
                           : std::to_string(blocktime_ms));

  if (reduction != ReductionMethod::Default) set("KMP_FORCE_REDUCTION", to_string(reduction));
  else unset("KMP_FORCE_REDUCTION");

  set("KMP_ALIGN_ALLOC", std::to_string(effective_align(cpu)));

  if (barrier != BarrierKind::Auto) set("KMP_BARRIER_PATTERN", to_string(barrier));
  else unset("KMP_BARRIER_PATTERN");
  return env;
}

std::string RtConfig::key() const {
  std::string out;
  out += "threads=" + (num_threads > 0 ? std::to_string(num_threads) : std::string("default"));
  out += ";places=" + to_string(places);
  out += ";bind=" + to_string(bind);
  out += ";schedule=" + to_string(schedule);
  if (chunk > 0) out += "," + std::to_string(chunk);
  out += ";library=" + to_string(library);
  out += ";blocktime=" + (blocktime_ms == kBlocktimeInfinite
                              ? std::string("infinite")
                              : std::to_string(blocktime_ms));
  out += ";reduction=" + to_string(reduction);
  out += ";align=" + (align_alloc > 0 ? std::to_string(align_alloc) : std::string("default"));
  // Only a forced pattern appears in the key: Auto keeps every key (and
  // therefore every stored dataset and journal byte) from earlier studies.
  if (barrier != BarrierKind::Auto) out += ";barrier=" + to_string(barrier);
  return out;
}

}  // namespace omptune::rt
