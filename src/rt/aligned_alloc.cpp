#include "rt/aligned_alloc.hpp"

#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>

namespace omptune::rt {

namespace {

bool is_power_of_two(std::size_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

}  // namespace

KmpAllocator::KmpAllocator(std::size_t alignment) : alignment_(alignment) {
  if (!is_power_of_two(alignment) || alignment < sizeof(void*)) {
    throw std::invalid_argument(
        "KmpAllocator: alignment must be a power of two >= pointer size");
  }
}

// Layout: [header: one alignment-sized slot holding the payload size]
//         [payload: size rounded up to the alignment]
// The returned pointer is the payload start, so both the header slot and the
// payload honour the configured alignment (mirroring __kmp_allocate, which
// over-allocates and stashes bookkeeping ahead of the returned pointer).
void* KmpAllocator::allocate(std::size_t bytes) {
  const std::size_t payload = round_up(bytes == 0 ? 1 : bytes, alignment_);
  const std::size_t total = alignment_ + payload;
  char* raw = static_cast<char*>(std::aligned_alloc(alignment_, total));
  if (raw == nullptr) throw std::bad_alloc();
  std::memcpy(raw, &payload, sizeof(payload));
  char* user = raw + alignment_;
  std::memset(user, 0, payload);
  live_allocations_.fetch_add(1, std::memory_order_relaxed);
  total_allocations_.fetch_add(1, std::memory_order_relaxed);
  live_bytes_.fetch_add(payload, std::memory_order_relaxed);
  return user;
}

void KmpAllocator::deallocate(void* ptr) noexcept {
  if (ptr == nullptr) return;
  char* raw = static_cast<char*>(ptr) - alignment_;
  std::size_t payload = 0;
  std::memcpy(&payload, raw, sizeof(payload));
  live_allocations_.fetch_sub(1, std::memory_order_relaxed);
  live_bytes_.fetch_sub(payload, std::memory_order_relaxed);
  std::free(raw);
}

AllocStats KmpAllocator::stats() const {
  return AllocStats{
      .live_allocations = live_allocations_.load(std::memory_order_relaxed),
      .total_allocations = total_allocations_.load(std::memory_order_relaxed),
      .live_bytes = live_bytes_.load(std::memory_order_relaxed),
  };
}

}  // namespace omptune::rt
