#pragma once

// __kmp_allocate-style aligned allocation. KMP_ALIGN_ALLOC controls the
// alignment of the runtime's internal data structures (team scratch, the
// per-thread reduction slots, task records); the default is the cache-line
// size of the architecture. Alignment below one cache line can place two
// threads' hot words on the same line (false sharing); alignment above it
// spaces structures out at the cost of memory.

#include <atomic>
#include <cstddef>
#include <memory>

namespace omptune::rt {

/// Allocation statistics, for tests and the allocator micro-benchmark.
struct AllocStats {
  std::size_t live_allocations = 0;
  std::size_t total_allocations = 0;
  std::size_t live_bytes = 0;
};

/// Aligned arena used by the runtime for its internal structures.
/// Thread-safe; all allocations share the configured alignment.
class KmpAllocator {
 public:
  /// `alignment` must be a power of two >= sizeof(void*).
  explicit KmpAllocator(std::size_t alignment);

  std::size_t alignment() const { return alignment_; }

  /// Allocate `bytes` rounded up to a multiple of the alignment, aligned to
  /// the alignment, zero-initialized (matching __kmp_allocate). Throws
  /// std::bad_alloc on failure.
  void* allocate(std::size_t bytes);

  /// Release a pointer returned by allocate().
  void deallocate(void* ptr) noexcept;

  AllocStats stats() const;

  /// Typed helper: allocate an array of `count` Ts, each element padded to
  /// start on its own aligned boundary when `padded` is true (used for
  /// per-thread slots to avoid false sharing).
  template <typename T>
  T* allocate_array(std::size_t count, bool padded) {
    const std::size_t stride = padded ? padded_stride<T>() : sizeof(T);
    return static_cast<T*>(allocate(stride * count));
  }

  /// Bytes between consecutive padded elements of type T.
  template <typename T>
  std::size_t padded_stride() const {
    return round_up(sizeof(T), alignment_);
  }

  static std::size_t round_up(std::size_t value, std::size_t multiple) {
    return (value + multiple - 1) / multiple * multiple;
  }

 private:
  std::size_t alignment_;
  std::atomic<std::size_t> live_allocations_{0};
  std::atomic<std::size_t> total_allocations_{0};
  std::atomic<std::size_t> live_bytes_{0};
};

/// RAII view over an allocation from a KmpAllocator.
template <typename T>
class KmpArray {
 public:
  KmpArray() = default;
  KmpArray(KmpAllocator& alloc, std::size_t count, bool padded)
      : alloc_(&alloc),
        data_(alloc.allocate_array<T>(count, padded)),
        stride_(padded ? alloc.padded_stride<T>() : sizeof(T)),
        count_(count) {}
  ~KmpArray() { reset(); }

  KmpArray(const KmpArray&) = delete;
  KmpArray& operator=(const KmpArray&) = delete;
  KmpArray(KmpArray&& other) noexcept { swap(other); }
  KmpArray& operator=(KmpArray&& other) noexcept {
    if (this != &other) {
      reset();
      swap(other);
    }
    return *this;
  }

  /// Element accessor honouring the padded stride.
  T& operator[](std::size_t i) {
    return *reinterpret_cast<T*>(reinterpret_cast<char*>(data_) + i * stride_);
  }
  const T& operator[](std::size_t i) const {
    return *reinterpret_cast<const T*>(reinterpret_cast<const char*>(data_) +
                                       i * stride_);
  }

  std::size_t size() const { return count_; }
  std::size_t stride() const { return stride_; }
  bool empty() const { return count_ == 0; }

 private:
  void reset() {
    if (alloc_ != nullptr && data_ != nullptr) alloc_->deallocate(data_);
    alloc_ = nullptr;
    data_ = nullptr;
    count_ = 0;
  }
  void swap(KmpArray& other) noexcept {
    std::swap(alloc_, other.alloc_);
    std::swap(data_, other.data_);
    std::swap(stride_, other.stride_);
    std::swap(count_, other.count_);
  }

  KmpAllocator* alloc_ = nullptr;
  T* data_ = nullptr;
  std::size_t stride_ = sizeof(T);
  std::size_t count_ = 0;
};

/// Constructed (not just raw) aligned slots: placement-news `count` Ts into
/// a KmpArray, each on its own aligned boundary when `padded`. This is the
/// false-sharing fix for synchronization structures whose slots are written
/// by different threads — an unpadded vector packs several threads' hot
/// words onto one cache line and every signal invalidates its neighbours'
/// lines (measured in bench/micro_barrier's padded-vs-packed ablation).
template <typename T>
class PaddedSlots {
 public:
  PaddedSlots(KmpAllocator& alloc, std::size_t count, bool padded = true)
      : array_(alloc, count, padded) {
    for (std::size_t i = 0; i < count; ++i) new (&array_[i]) T();
  }
  ~PaddedSlots() {
    for (std::size_t i = 0; i < array_.size(); ++i) array_[i].~T();
  }

  PaddedSlots(const PaddedSlots&) = delete;
  PaddedSlots& operator=(const PaddedSlots&) = delete;

  T& operator[](std::size_t i) { return array_[i]; }
  const T& operator[](std::size_t i) const { return array_[i]; }
  std::size_t size() const { return array_.size(); }
  std::size_t stride() const { return array_.stride(); }

 private:
  KmpArray<T> array_;
};

}  // namespace omptune::rt
