#include "rt/park.hpp"

namespace omptune::rt {

WaitBehavior WaitBehavior::from_config(const RtConfig& config) {
  WaitBehavior wait;
  wait.policy = config.wait_policy();
  wait.yield_while_spinning = config.library != LibraryMode::Turnaround;
  if (config.blocktime_ms == kBlocktimeInfinite) {
    wait.spin_budget = std::chrono::microseconds::max();
  } else {
    wait.spin_budget = std::chrono::milliseconds(config.blocktime_ms);
  }
  return wait;
}

}  // namespace omptune::rt
