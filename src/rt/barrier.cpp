#include "rt/barrier.hpp"

#include <stdexcept>
#include <thread>

namespace omptune::rt {

WaitBehavior WaitBehavior::from_config(const RtConfig& config) {
  WaitBehavior wait;
  wait.policy = config.wait_policy();
  wait.yield_while_spinning = config.library != LibraryMode::Turnaround;
  if (config.blocktime_ms == kBlocktimeInfinite) {
    wait.spin_budget = std::chrono::microseconds::max();
  } else {
    wait.spin_budget = std::chrono::milliseconds(config.blocktime_ms);
  }
  return wait;
}

Barrier::Barrier(int team_size, WaitBehavior wait)
    : team_size_(team_size), wait_(wait) {
  if (team_size <= 0) {
    throw std::invalid_argument("Barrier: team_size must be > 0");
  }
}

void Barrier::arrive_and_wait() {
  const bool my_sense = sense_.load(std::memory_order_relaxed);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == team_size_) {
    // Last arrival: reset and flip the sense, waking sleepers.
    arrived_.store(0, std::memory_order_relaxed);
    {
      // The lock orders the sense flip against sleepers' predicate checks so
      // no waiter can miss the notification.
      std::lock_guard<std::mutex> lock(mutex_);
      sense_.store(!my_sense, std::memory_order_release);
    }
    cv_.notify_all();
    return;
  }
  wait_until(sense_, !my_sense, wait_, mutex_, cv_, &sleeps_);
}

void wait_until(const std::atomic<bool>& flag, bool expected,
                const WaitBehavior& wait, std::mutex& mutex,
                std::condition_variable& cv,
                std::atomic<std::uint64_t>* sleep_counter) {
  auto satisfied = [&flag, expected] {
    return flag.load(std::memory_order_acquire) == expected;
  };
  if (satisfied()) return;

  if (wait.policy != WaitPolicy::Passive) {
    const bool bounded = wait.policy == WaitPolicy::SpinThenSleep;
    const auto deadline = bounded
                              ? std::chrono::steady_clock::now() + wait.spin_budget
                              : std::chrono::steady_clock::time_point::max();
    // Poll in small batches before checking the clock to keep the spin loop
    // cheap; yield between polls in throughput mode.
    while (true) {
      for (int i = 0; i < 64; ++i) {
        if (satisfied()) return;
        if (wait.yield_while_spinning) std::this_thread::yield();
      }
      if (bounded && std::chrono::steady_clock::now() >= deadline) break;
    }
  }

  // Passive path (or spin budget exhausted): sleep until notified.
  if (sleep_counter != nullptr) {
    sleep_counter->fetch_add(1, std::memory_order_relaxed);
  }
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, satisfied);
}

}  // namespace omptune::rt
