#include "rt/barrier.hpp"

namespace omptune::rt {

Barrier::Barrier(int team_size, WaitBehavior wait, std::uint32_t initial_epoch)
    : TeamBarrier(team_size, wait) {
  release_.value.store(initial_epoch, std::memory_order_relaxed);
}

void Barrier::arrive_and_wait() {
  const std::uint32_t my_epoch = release_.load();
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == team_size_) {
    // Last arrival: reset the counter for the next episode strictly before
    // the release epoch advances (re-arrivals only happen after a waiter
    // observes the new epoch), then wake any parked waiters.
    arrived_.store(0, std::memory_order_relaxed);
    release_.advance_and_wake();
    return;
  }
  release_.wait_changed(my_epoch, wait_, &sleeps_);
}

}  // namespace omptune::rt
