#pragma once

// Runtime configuration: the environment-variable surface of the study.
//
// This mirrors Section III of the paper — the same variables, the same value
// sets, and crucially the same *default derivation rules*:
//
//   OMP_PLACES          threads | cores | ll_caches | sockets | numa_domains
//                       default: unset (threads may migrate)
//   OMP_PROC_BIND       master | close | spread | true | false
//                       default: unset == false, BUT spread if OMP_PLACES set
//   OMP_SCHEDULE        static | dynamic | guided | auto [, chunk]
//                       default: static
//   OMP_NUM_THREADS     default: number of cores
//   KMP_LIBRARY         serial | throughput | turnaround
//                       default: throughput
//   KMP_BLOCKTIME       [0, INT32_MAX] ms | infinite; default: 200
//   KMP_FORCE_REDUCTION tree | critical | atomic; default: unset (heuristic:
//                       1 thread -> none, 2..4 -> critical, >4 -> tree)
//   KMP_ALIGN_ALLOC     default: the architecture's cache-line size
//
// OMP_WAIT_POLICY is intentionally not an independent knob: LLVM/OpenMP
// derives the waiting behaviour from KMP_BLOCKTIME and KMP_LIBRARY, which is
// why the paper sweeps the two KMP_* variables instead.

#include <cstdint>
#include <string>
#include <vector>

#include "arch/cpu_arch.hpp"
#include "arch/topology.hpp"
#include "util/env.hpp"

namespace omptune::rt {

/// Worksharing-loop schedule kinds (OMP_SCHEDULE).
enum class ScheduleKind { Static, Dynamic, Guided, Auto };

std::string to_string(ScheduleKind kind);
ScheduleKind schedule_from_string(const std::string& name);

/// Runtime execution modes (KMP_LIBRARY).
enum class LibraryMode {
  Serial,      ///< run parallel constructs serially (excluded from the sweep)
  Throughput,  ///< yield while spinning; default, fits shared machines
  Turnaround,  ///< spin without yielding; fits dedicated machines
};

std::string to_string(LibraryMode mode);
LibraryMode library_from_string(const std::string& name);

/// Cross-thread reduction algorithms (KMP_FORCE_REDUCTION).
enum class ReductionMethod {
  Default,   ///< unset: heuristic selects per team size
  Tree,      ///< log2(team) combining tree
  Critical,  ///< serialize combination under one lock
  Atomic,    ///< per-thread atomic read-modify-write on the target
};

std::string to_string(ReductionMethod method);
ReductionMethod reduction_from_string(const std::string& name);

/// Waiting behaviour derived from KMP_BLOCKTIME x KMP_LIBRARY
/// (the LLVM/OpenMP replacement for OMP_WAIT_POLICY).
enum class WaitPolicy {
  Passive,       ///< sleep immediately (blocktime 0)
  SpinThenSleep, ///< spin `blocktime` ms, then sleep
  Active,        ///< spin forever (blocktime infinite or turnaround mode)
};

/// Team-barrier algorithm (mirrors KMP_PLAIN_BARRIER_PATTERN & friends).
/// Auto lets the team pick per size; the catalogue is in src/rt:
/// central counter, combining tree, dissemination rounds, flat two-level.
enum class BarrierKind { Auto, Central, Tree, Dissemination, Hybrid };

std::string to_string(BarrierKind kind);
BarrierKind barrier_from_string(const std::string& name);

/// Sentinel for KMP_BLOCKTIME=infinite.
inline constexpr std::int64_t kBlocktimeInfinite = -1;

/// A complete runtime configuration. Value 0 for `num_threads`, `chunk` and
/// `align_alloc` means "use the derived default".
struct RtConfig {
  int num_threads = 0;  ///< OMP_NUM_THREADS; 0 = number of cores
  arch::PlacesKind places = arch::PlacesKind::Unset;
  arch::BindKind bind = arch::BindKind::Unset;
  ScheduleKind schedule = ScheduleKind::Static;
  int chunk = 0;  ///< 0 = schedule-defined default chunking
  LibraryMode library = LibraryMode::Throughput;
  std::int64_t blocktime_ms = 200;  ///< kBlocktimeInfinite for "infinite"
  ReductionMethod reduction = ReductionMethod::Default;
  int align_alloc = 0;  ///< bytes; 0 = cache-line size of the architecture
  /// KMP_BARRIER_PATTERN; Auto selects per team size (the default keeps the
  /// stable dataset keys of earlier studies unchanged).
  BarrierKind barrier = BarrierKind::Auto;

  bool operator==(const RtConfig&) const = default;

  /// The paper's default configuration for an architecture (everything at
  /// its derived default; align resolves to the cache-line size).
  static RtConfig defaults_for(const arch::CpuArch& cpu);

  /// Parse the process environment (OMP_* / KMP_* variables) into a config.
  /// Unset variables keep their defaults. Throws std::invalid_argument on
  /// malformed values, matching libomp's strictness for these variables.
  static RtConfig from_env(const arch::CpuArch& cpu);

  /// OMP_PROC_BIND default derivation: unset resolves to `false` unless
  /// OMP_PLACES is set, in which case it resolves to `spread`.
  arch::BindKind effective_bind() const;

  /// OMP_NUM_THREADS default: the architecture's core count.
  int effective_num_threads(const arch::CpuArch& cpu) const;

  /// KMP_ALIGN_ALLOC default: the architecture's cache-line size.
  int effective_align(const arch::CpuArch& cpu) const;

  /// Waiting behaviour derived from library mode and blocktime.
  WaitPolicy wait_policy() const;

  /// Reduction method after applying the team-size heuristic: forced method
  /// if set; otherwise 1 thread -> no synchronization needed (reported as
  /// Tree, whose single-leaf form is the special code path), 2..4 threads ->
  /// Critical, >4 -> Tree.
  ReductionMethod reduction_method_for(int team_size) const;

  /// Environment assignments equivalent to this config, as the sweep harness
  /// exports them to a child/native run. Derived-default fields are exported
  /// as unset so the runtime re-derives them, exactly as the study's batch
  /// scripts did.
  std::vector<util::ScopedEnv::Assignment> to_env(const arch::CpuArch& cpu) const;

  /// Stable human-readable key, used in dataset rows and logs.
  std::string key() const;
};

}  // namespace omptune::rt
