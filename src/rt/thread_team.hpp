#pragma once

// Fork-join thread team: the core execution engine of the runtime.
//
// A ThreadTeam owns `num_threads - 1` persistent worker threads plus the
// calling (primary) thread. `parallel(body)` runs `body` on every team
// member. Between regions, workers wait at the fork barrier under the
// configured wait policy — the exact mechanism KMP_BLOCKTIME/KMP_LIBRARY
// control: an expensive OS wake-up on fork when workers slept, versus hot
// cores while idle when they spin.
//
// Inside a region the TeamContext exposes the worksharing loop (scheduled
// per OMP_SCHEDULE), reductions (per KMP_FORCE_REDUCTION), explicit tasks,
// and the team barrier. Thread placement is computed from
// OMP_PLACES x OMP_PROC_BIND against the architecture topology; on hosts
// whose CPU count matches the modelled topology the team pins threads, and
// otherwise the placement is retained for inspection and modelling.

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "arch/cpu_arch.hpp"
#include "arch/topology.hpp"
#include "rt/aligned_alloc.hpp"
#include "rt/config.hpp"
#include "rt/reduction.hpp"
#include "rt/schedule.hpp"
#include "rt/task.hpp"
#include "rt/team_barrier.hpp"

namespace omptune::rt {

class ThreadTeam;

/// Per-thread handle passed to the parallel body.
class TeamContext {
 public:
  int tid() const { return tid_; }
  int num_threads() const { return num_threads_; }
  ThreadTeam& team() const { return *team_; }

  /// Worksharing loop over [lo, hi): the team splits iterations per the
  /// configured schedule; `body(begin, end)` receives contiguous slices.
  /// Collective: every team thread must call it with the same bounds.
  /// Ends with the implicit worksharing barrier.
  void parallel_for(std::int64_t lo, std::int64_t hi,
                    const std::function<void(std::int64_t, std::int64_t)>& body);

  /// As parallel_for, but additionally reduces `body`'s returned partial
  /// value across the team with the configured reduction method.
  double parallel_for_reduce(
      std::int64_t lo, std::int64_t hi, ReduceOp op,
      const std::function<double(std::int64_t, std::int64_t)>& body);

  /// Reduce a per-thread value across the team (collective).
  double reduce(double local, ReduceOp op);

  /// Team barrier (collective).
  void barrier();

  /// Spawn an explicit task (child of the current task).
  void spawn(std::function<void()> fn);

  /// Wait for the current task's children, executing ready tasks meanwhile.
  void taskwait();

  /// Task-region idiom: thread 0 runs `root` (typically spawning a task
  /// tree); all threads then participate in execution until the pool is
  /// empty. Collective.
  void run_task_root(const std::function<void()>& root);

  /// Task-based loop (the OpenMP `taskloop` construct): the iteration space
  /// is divided into grain-sized chunks, each spawned as a task and executed
  /// by whichever thread steals it. Collective. `grainsize` <= 0 selects
  /// one chunk per team thread times four (the libomp-style default).
  void taskloop(std::int64_t lo, std::int64_t hi, std::int64_t grainsize,
                const std::function<void(std::int64_t, std::int64_t)>& body);

  /// Mutual exclusion across the team (the `critical` construct). May be
  /// called by any subset of threads.
  void critical(const std::function<void()>& body);

  /// The `single` construct: exactly one (unspecified) thread executes
  /// `body`; ends with the implicit barrier. Collective.
  void single(const std::function<void()>& body);

  /// The `master` construct: thread 0 executes `body`; no implied barrier.
  void master(const std::function<void()>& body);

 private:
  friend class ThreadTeam;
  TeamContext(ThreadTeam* team, int tid, int num_threads)
      : team_(team), tid_(tid), num_threads_(num_threads) {}

  ThreadTeam* team_;
  int tid_;
  int num_threads_;
  std::uint64_t single_calls_ = 0;  ///< this thread's collective single count
};

/// Aggregate runtime statistics for one team, exposed for tests and the
/// micro-benchmarks.
struct TeamStats {
  std::uint64_t parallel_regions = 0;
  std::uint64_t loop_sync_operations = 0;
  std::uint64_t barrier_sleeps = 0;
  TaskStats tasks;
  std::uint64_t contended_combines = 0;
};

class ThreadTeam {
 public:
  /// Creates the team for `cpu` under `config`; spawns the workers
  /// immediately so that repeated `parallel` calls reuse them.
  ThreadTeam(const arch::CpuArch& cpu, RtConfig config);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  /// Execute `body` on all team threads (fork-join).
  void parallel(const std::function<void(TeamContext&)>& body);

  int num_threads() const { return num_threads_; }
  const RtConfig& config() const { return config_; }
  const arch::CpuArch& cpu() const { return *cpu_; }
  const arch::Topology& topology() const { return topology_; }
  const arch::ThreadPlacement& placement() const { return placement_; }

  /// The runtime-internal allocator (alignment = KMP_ALIGN_ALLOC).
  KmpAllocator& allocator() { return allocator_; }

  /// The barrier algorithm this team selected (KMP_BARRIER_PATTERN, or the
  /// Auto heuristic applied to the team size).
  BarrierKind barrier_kind() const { return team_barrier_->kind(); }

  TeamStats stats() const;

 private:
  friend class TeamContext;

  void worker_loop(int tid);
  void setup_loop(int tid, std::int64_t lo, std::int64_t hi);

  std::mutex critical_mutex_;
  /// Monotone ticket for `single`: the n-th collective single call is
  /// executed by whichever thread wins the CAS from n to n+1. Reset per
  /// region (contexts count their own calls from zero).
  std::atomic<std::uint64_t> single_ticket_{0};

  const arch::CpuArch* cpu_;
  RtConfig config_;
  int num_threads_;
  arch::Topology topology_;
  arch::ThreadPlacement placement_;
  WaitBehavior wait_;
  KmpAllocator allocator_;

  // Catalogue barriers, one algorithm selected per team size (or forced by
  // KMP_BARRIER_PATTERN). All three share the variant.
  std::unique_ptr<TeamBarrier> fork_barrier_;
  std::unique_ptr<TeamBarrier> join_barrier_;
  std::unique_ptr<TeamBarrier> team_barrier_;  ///< user + worksharing barrier
  std::unique_ptr<Reducer> reducer_;
  std::unique_ptr<TaskPool> tasks_;

  // Job slot, written by the primary before releasing the fork barrier.
  const std::function<void(TeamContext&)>* job_ = nullptr;
  bool shutdown_ = false;
  std::atomic<bool> task_root_done_{false};

  // Current worksharing loop; (re)created by thread 0 inside setup_loop.
  std::unique_ptr<LoopScheduler> loop_;
  std::uint64_t loop_sync_total_ = 0;

  std::uint64_t parallel_regions_ = 0;
  std::vector<std::jthread> workers_;
};

}  // namespace omptune::rt
