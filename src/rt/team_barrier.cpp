#include "rt/team_barrier.hpp"

#include <stdexcept>

#include "rt/barrier.hpp"
#include "rt/dissemination_barrier.hpp"
#include "rt/hybrid_barrier.hpp"
#include "rt/tree_barrier.hpp"

namespace omptune::rt {

TeamBarrier::TeamBarrier(int team_size, WaitBehavior wait)
    : team_size_(team_size), wait_(wait) {
  if (team_size <= 0) {
    throw std::invalid_argument("TeamBarrier: team_size must be positive");
  }
}

BarrierKind resolve_barrier_kind(BarrierKind requested, int team_size) {
  if (requested != BarrierKind::Auto) return requested;
  // Crossovers measured by bench/micro_primitives (winner-per-team-size
  // table): tiny teams amortize nothing, so the central counter's two
  // atomics win; mid sizes want the flat hybrid's bounded contention at
  // centralized latency; large teams want dissemination's log-round,
  // broadcast-free release.
  if (team_size <= 4) return BarrierKind::Central;
  if (team_size <= 15) return BarrierKind::Hybrid;
  return BarrierKind::Dissemination;
}

std::unique_ptr<TeamBarrier> make_team_barrier(BarrierKind kind, int team_size,
                                               WaitBehavior wait) {
  switch (resolve_barrier_kind(kind, team_size)) {
    case BarrierKind::Central:
      return std::make_unique<Barrier>(team_size, wait);
    case BarrierKind::Tree:
      return std::make_unique<TreeBarrier>(team_size, wait);
    case BarrierKind::Dissemination:
      return std::make_unique<DisseminationBarrier>(team_size, wait);
    case BarrierKind::Hybrid:
      return std::make_unique<HybridBarrier>(team_size, wait);
    case BarrierKind::Auto:
      break;  // resolve_barrier_kind never returns Auto
  }
  throw std::logic_error("make_team_barrier: unresolved barrier kind");
}

}  // namespace omptune::rt
