#include "rt/task.hpp"

#include <stdexcept>

namespace omptune::rt {

namespace {
// Which pool the calling OS thread is registered with, and as which rank.
thread_local const TaskPool* tls_pool = nullptr;
thread_local int tls_tid = -1;
}  // namespace

TaskPool::TaskPool(int team_size, WaitBehavior wait)
    : team_size_(team_size), wait_(wait) {
  if (team_size <= 0) {
    throw std::invalid_argument("TaskPool: team_size must be > 0");
  }
  workers_.reserve(static_cast<std::size_t>(team_size));
  for (int t = 0; t < team_size; ++t) {
    workers_.push_back(std::make_unique<WorkerState>());
  }
}

TaskPool::~TaskPool() {
  // Regions must have been drained; free any implicit tasks defensively.
  for (auto& worker : workers_) {
    if (worker->current != nullptr && worker->current->parent == nullptr) {
      delete worker->current;
      worker->current = nullptr;
    }
  }
}

void TaskPool::enter_region(int tid) {
  WorkerState& me = *workers_.at(static_cast<std::size_t>(tid));
  if (me.current != nullptr) {
    throw std::logic_error("TaskPool::enter_region: region already active");
  }
  me.current = new Task();  // implicit task; no fn, no parent
  tls_pool = this;
  tls_tid = tid;
}

void TaskPool::leave_region(int tid) {
  WorkerState& me = *workers_.at(static_cast<std::size_t>(tid));
  if (me.current == nullptr || me.current->parent != nullptr) {
    throw std::logic_error("TaskPool::leave_region: not at an implicit task");
  }
  release(me.current);
  me.current = nullptr;
  tls_pool = nullptr;
  tls_tid = -1;
}

int TaskPool::resolve_tid(int fallback) const {
  return tls_pool == this ? tls_tid : fallback;
}

void TaskPool::spawn(int tid, std::function<void()> fn) {
  WorkerState& me = *workers_.at(static_cast<std::size_t>(tid));
  if (me.current == nullptr) {
    throw std::logic_error("TaskPool::spawn: no active region (call enter_region)");
  }
  Task* child = new Task();
  child->fn = std::move(fn);
  child->parent = me.current;
  me.current->unfinished_children.fetch_add(1, std::memory_order_relaxed);
  me.current->refs.fetch_add(1, std::memory_order_relaxed);
  outstanding_.fetch_add(1, std::memory_order_release);
  spawned_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(me.mutex);
    me.deque.push_back(child);
  }
  // One new task needs at most one extra runner; wake a single parked
  // thread (no syscall when everybody is already spinning or busy).
  work_signal_.advance_and_wake_some(1);
}

template <typename DonePred>
void TaskPool::idle_loop(int tid, DonePred&& done) {
  while (!done()) {
    if (try_execute_one(tid)) continue;
    idle_polls_.fetch_add(1, std::memory_order_relaxed);
    // Sample the signal word BEFORE the final predicate/deque re-check:
    // any spawn/completion after the sample advances the word and the wait
    // below returns immediately; any before it is caught by the re-check.
    const std::uint32_t seen = work_signal_.load();
    if (done()) return;
    if (try_execute_one(tid)) continue;
    work_signal_.wait_changed(seen, wait_, &idle_sleeps_);
  }
}

void TaskPool::taskwait(int tid) {
  WorkerState& me = *workers_.at(static_cast<std::size_t>(tid));
  if (me.current == nullptr) {
    throw std::logic_error("TaskPool::taskwait: no active region");
  }
  Task* waiting_on = me.current;
  idle_loop(tid, [waiting_on] {
    return waiting_on->unfinished_children.load(std::memory_order_acquire) ==
           0;
  });
}

void TaskPool::drain(int tid) {
  idle_loop(tid, [this] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

void TaskPool::drain_until(int tid, const std::atomic<bool>& producer_done) {
  idle_loop(tid, [this, &producer_done] {
    return producer_done.load(std::memory_order_acquire) &&
           outstanding_.load(std::memory_order_acquire) == 0;
  });
}

void TaskPool::notify() { work_signal_.advance_and_wake(); }

TaskStats TaskPool::stats() const {
  return TaskStats{
      .spawned = spawned_.load(std::memory_order_relaxed),
      .executed = executed_.load(std::memory_order_relaxed),
      .steals = steals_.load(std::memory_order_relaxed),
      .idle_polls = idle_polls_.load(std::memory_order_relaxed),
      .idle_sleeps = idle_sleeps_.load(std::memory_order_relaxed),
  };
}

void TaskPool::release(Task* task) {
  if (task->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    delete task;
  }
}

void TaskPool::run_task(int tid, Task* task) {
  WorkerState& me = *workers_.at(static_cast<std::size_t>(tid));
  Task* previous = me.current;
  me.current = task;
  task->fn();
  me.current = previous;

  // Completion: all of this task's own children must finish before the task
  // counts as complete for its parent's taskwait. OpenMP taskwait only waits
  // for direct children, so completion does NOT require grandchildren; the
  // child-counter decrement below is exactly the direct-child signal.
  Task* parent = task->parent;
  executed_.fetch_add(1, std::memory_order_relaxed);
  outstanding_.fetch_sub(1, std::memory_order_release);
  if (parent != nullptr) {
    parent->unfinished_children.fetch_sub(1, std::memory_order_release);
    release(parent);
  }
  release(task);
  // A completion can satisfy any waiter's predicate (taskwait on this
  // task's parent, drain's outstanding==0), so wake everyone parked; this
  // is a no-op syscall-wise when nobody sleeps.
  work_signal_.advance_and_wake();
}

TaskPool::Task* TaskPool::try_pop_local(int tid) {
  WorkerState& me = *workers_.at(static_cast<std::size_t>(tid));
  std::lock_guard<std::mutex> lock(me.mutex);
  if (me.deque.empty()) return nullptr;
  Task* task = me.deque.back();
  me.deque.pop_back();
  return task;
}

TaskPool::Task* TaskPool::try_steal(int tid) {
  for (int offset = 1; offset < team_size_; ++offset) {
    const int victim = (tid + offset) % team_size_;
    WorkerState& other = *workers_.at(static_cast<std::size_t>(victim));
    std::lock_guard<std::mutex> lock(other.mutex);
    if (other.deque.empty()) continue;
    Task* task = other.deque.front();
    other.deque.pop_front();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return task;
  }
  return nullptr;
}

bool TaskPool::try_execute_one(int tid) {
  Task* task = try_pop_local(tid);
  if (task == nullptr) task = try_steal(tid);
  if (task == nullptr) return false;
  run_task(tid, task);
  return true;
}

}  // namespace omptune::rt
