#include "rt/thread_team.hpp"

#include <algorithm>
#include <stdexcept>

namespace omptune::rt {

void TeamContext::parallel_for(
    std::int64_t lo, std::int64_t hi,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  team_->setup_loop(tid_, lo, hi);
  LoopScheduler& sched = *team_->loop_;
  while (const auto slice = sched.next(tid_)) {
    body(slice->begin, slice->end);
  }
  barrier();  // implicit end-of-worksharing barrier
}

double TeamContext::parallel_for_reduce(
    std::int64_t lo, std::int64_t hi, ReduceOp op,
    const std::function<double(std::int64_t, std::int64_t)>& body) {
  team_->setup_loop(tid_, lo, hi);
  LoopScheduler& sched = *team_->loop_;
  double local = reduce_identity(op);
  while (const auto slice = sched.next(tid_)) {
    local = reduce_apply(op, local, body(slice->begin, slice->end));
  }
  return reduce(local, op);
}

double TeamContext::reduce(double local, ReduceOp op) {
  const ReductionMethod method =
      team_->config_.reduction_method_for(num_threads_);
  return team_->reducer_->reduce(tid_, local, op, method);
}

void TeamContext::barrier() { team_->team_barrier_->arrive_and_wait(tid_); }

void TeamContext::spawn(std::function<void()> fn) {
  // Resolve the EXECUTING thread: a stolen task's closure may have captured
  // another thread's context, but task operations must act on the thread
  // actually running the task (waiting on another thread's current task can
  // deadlock).
  team_->tasks_->spawn(team_->tasks_->resolve_tid(tid_), std::move(fn));
}

void TeamContext::taskwait() {
  team_->tasks_->taskwait(team_->tasks_->resolve_tid(tid_));
}

void TeamContext::run_task_root(const std::function<void()>& root) {
  if (tid_ == 0) {
    team_->task_root_done_.store(false, std::memory_order_relaxed);
  }
  barrier();  // helpers must not observe a stale done flag
  if (tid_ == 0) {
    root();
    team_->task_root_done_.store(true, std::memory_order_release);
    // Helpers may be parked with an empty pool waiting for this flag.
    team_->tasks_->notify();
  }
  // Everyone (including thread 0 after seeding) executes until the root has
  // finished producing AND the pool is empty.
  team_->tasks_->drain_until(tid_, team_->task_root_done_);
  barrier();
}

namespace {

// KMP_LIBRARY=serial runs parallel constructs with a team of one.
int resolve_team_size(const arch::CpuArch& cpu, const RtConfig& config) {
  if (config.library == LibraryMode::Serial) return 1;
  return config.effective_num_threads(cpu);
}

}  // namespace

void TeamContext::taskloop(
    std::int64_t lo, std::int64_t hi, std::int64_t grainsize,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  std::int64_t grain = grainsize;
  if (grain <= 0) {
    const std::int64_t chunks = 4LL * num_threads_;
    grain = std::max<std::int64_t>(1, (std::max<std::int64_t>(0, hi - lo) + chunks - 1) / chunks);
  }
  run_task_root([this, lo, hi, grain, &body] {
    for (std::int64_t begin = lo; begin < hi; begin += grain) {
      const std::int64_t end = std::min(begin + grain, hi);
      spawn([&body, begin, end] { body(begin, end); });
    }
  });
}

void TeamContext::critical(const std::function<void()>& body) {
  std::lock_guard<std::mutex> lock(team_->critical_mutex_);
  body();
}

void TeamContext::single(const std::function<void()>& body) {
  // All team threads call this the same number of times (collective), so
  // every thread arrives with the same call index; exactly one CAS wins.
  const std::uint64_t ticket = single_calls_++;
  std::uint64_t expected = ticket;
  if (team_->single_ticket_.compare_exchange_strong(expected, ticket + 1,
                                                    std::memory_order_acq_rel)) {
    body();
  }
  barrier();  // implicit end-of-single barrier
}

void TeamContext::master(const std::function<void()>& body) {
  if (tid_ == 0) body();
}

ThreadTeam::ThreadTeam(const arch::CpuArch& cpu, RtConfig config)
    : cpu_(&cpu),
      config_(config),
      num_threads_(resolve_team_size(cpu, config)),
      topology_(cpu),
      placement_(arch::assign_threads(topology_, config.places,
                                      config.effective_bind(), num_threads_)),
      wait_(WaitBehavior::from_config(config)),
      allocator_(static_cast<std::size_t>(config.effective_align(cpu))) {
  const BarrierKind kind = resolve_barrier_kind(config_.barrier, num_threads_);
  fork_barrier_ = make_team_barrier(kind, num_threads_, wait_);
  join_barrier_ = make_team_barrier(kind, num_threads_, wait_);
  team_barrier_ = make_team_barrier(kind, num_threads_, wait_);
  reducer_ =
      std::make_unique<Reducer>(allocator_, num_threads_, *team_barrier_);
  tasks_ = std::make_unique<TaskPool>(num_threads_, wait_);

  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int t = 1; t < num_threads_; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadTeam::~ThreadTeam() {
  shutdown_ = true;
  fork_barrier_->arrive_and_wait(0);
  // jthread joins in the member destructor.
}

void ThreadTeam::parallel(const std::function<void(TeamContext&)>& body) {
  job_ = &body;
  ++parallel_regions_;
  single_ticket_.store(0, std::memory_order_relaxed);
  fork_barrier_->arrive_and_wait(0);

  tasks_->enter_region(0);
  TeamContext ctx(this, 0, num_threads_);
  body(ctx);
  tasks_->drain(0);
  tasks_->leave_region(0);

  join_barrier_->arrive_and_wait(0);
  job_ = nullptr;
}

void ThreadTeam::worker_loop(int tid) {
  while (true) {
    fork_barrier_->arrive_and_wait(tid);
    if (shutdown_) return;
    tasks_->enter_region(tid);
    TeamContext ctx(this, tid, num_threads_);
    (*job_)(ctx);
    tasks_->drain(tid);
    tasks_->leave_region(tid);
    join_barrier_->arrive_and_wait(tid);
  }
}

void ThreadTeam::setup_loop(int tid, std::int64_t lo, std::int64_t hi) {
  // Collective: align the team, let thread 0 (re)create the shared
  // scheduler, then release everyone onto it.
  team_barrier_->arrive_and_wait(tid);
  if (tid == 0) {
    if (loop_ != nullptr) loop_sync_total_ += loop_->sync_operations();
    loop_ = std::make_unique<LoopScheduler>(config_.schedule, config_.chunk, lo,
                                            hi, num_threads_);
  }
  team_barrier_->arrive_and_wait(tid);
}

TeamStats ThreadTeam::stats() const {
  TeamStats stats;
  stats.parallel_regions = parallel_regions_;
  stats.loop_sync_operations =
      loop_sync_total_ + (loop_ != nullptr ? loop_->sync_operations() : 0);
  stats.barrier_sleeps = fork_barrier_->sleep_count() +
                         join_barrier_->sleep_count() +
                         team_barrier_->sleep_count();
  stats.tasks = tasks_->stats();
  stats.contended_combines = reducer_->contended_combines();
  return stats;
}

}  // namespace omptune::rt
