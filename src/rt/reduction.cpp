#include "rt/reduction.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace omptune::rt {

double reduce_identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum: return 0.0;
    case ReduceOp::Prod: return 1.0;
    case ReduceOp::Max: return -std::numeric_limits<double>::infinity();
    case ReduceOp::Min: return std::numeric_limits<double>::infinity();
  }
  throw std::invalid_argument("reduce_identity: bad op");
}

double reduce_apply(ReduceOp op, double a, double b) {
  switch (op) {
    case ReduceOp::Sum: return a + b;
    case ReduceOp::Prod: return a * b;
    case ReduceOp::Max: return std::max(a, b);
    case ReduceOp::Min: return std::min(a, b);
  }
  throw std::invalid_argument("reduce_apply: bad op");
}

Reducer::Reducer(KmpAllocator& alloc, int team_size, TeamBarrier& barrier)
    : team_size_(team_size),
      barrier_(&barrier),
      slots_(alloc, static_cast<std::size_t>(team_size), /*padded=*/true) {
  if (team_size <= 0) {
    throw std::invalid_argument("Reducer: team_size must be > 0");
  }
}

double Reducer::reduce(int tid, double local, ReduceOp op,
                       ReductionMethod method) {
  if (tid < 0 || tid >= team_size_) {
    throw std::out_of_range("Reducer::reduce: bad tid");
  }
  if (team_size_ == 1) {
    // Single-thread special path: no synchronization (paper III.6).
    return local;
  }
  switch (method) {
    case ReductionMethod::Tree: return reduce_tree(tid, local, op);
    case ReductionMethod::Critical: return reduce_critical(tid, local, op);
    case ReductionMethod::Atomic: return reduce_atomic(tid, local, op);
    case ReductionMethod::Default:
      throw std::invalid_argument(
          "Reducer::reduce: resolve Default via RtConfig::reduction_method_for "
          "before calling");
  }
  throw std::logic_error("Reducer::reduce: bad method");
}

double Reducer::reduce_tree(int tid, double local, ReduceOp op) {
  slots_[static_cast<std::size_t>(tid)] = local;
  barrier_->arrive_and_wait(tid);
  for (int stride = 1; stride < team_size_; stride *= 2) {
    if (tid % (2 * stride) == 0 && tid + stride < team_size_) {
      slots_[static_cast<std::size_t>(tid)] =
          reduce_apply(op, slots_[static_cast<std::size_t>(tid)],
                       slots_[static_cast<std::size_t>(tid + stride)]);
    }
    barrier_->arrive_and_wait(tid);
  }
  const double result = slots_[0];
  // Trailing barrier: nobody may start the next round (overwriting slot 0)
  // until every thread has read the result.
  barrier_->arrive_and_wait(tid);
  return result;
}

double Reducer::reduce_critical(int tid, double local, ReduceOp op) {
  barrier_->arrive_and_wait(tid);  // previous round fully consumed
  if (tid == 0) shared_scalar_ = reduce_identity(op);
  barrier_->arrive_and_wait(tid);
  {
    std::lock_guard<std::mutex> lock(critical_mutex_);
    shared_scalar_ = reduce_apply(op, shared_scalar_, local);
    contended_combines_.fetch_add(1, std::memory_order_relaxed);
  }
  barrier_->arrive_and_wait(tid);
  return shared_scalar_;
}

double Reducer::reduce_atomic(int tid, double local, ReduceOp op) {
  barrier_->arrive_and_wait(tid);
  if (tid == 0) {
    atomic_scalar_.store(reduce_identity(op), std::memory_order_relaxed);
  }
  barrier_->arrive_and_wait(tid);
  double expected = atomic_scalar_.load(std::memory_order_relaxed);
  while (!atomic_scalar_.compare_exchange_weak(
      expected, reduce_apply(op, expected, local), std::memory_order_relaxed)) {
    contended_combines_.fetch_add(1, std::memory_order_relaxed);
  }
  contended_combines_.fetch_add(1, std::memory_order_relaxed);
  barrier_->arrive_and_wait(tid);
  return atomic_scalar_.load(std::memory_order_relaxed);
}

}  // namespace omptune::rt
