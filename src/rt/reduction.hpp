#pragma once

// Cross-thread reductions (KMP_FORCE_REDUCTION).
//
// Three algorithms, matching the LLVM/OpenMP choices:
//  - tree:     per-thread slots combined pairwise in log2(team) rounds.
//  - critical: every thread folds its value into one shared scalar under a
//              lock; O(team) serialized combines.
//  - atomic:   every thread folds via an atomic compare-exchange loop on the
//              shared scalar; contention grows with the team.
//
// When no method is forced, the heuristic of the paper's Section III.6
// applies (1 thread: no synchronization; 2..4: critical; >4: tree) — see
// RtConfig::reduction_method_for.
//
// The per-thread slots live in KMP_ALIGN_ALLOC-aligned storage, so the
// alignment variable directly controls whether two threads' slots share a
// cache line.

#include <atomic>
#include <cstdint>
#include <mutex>

#include "rt/aligned_alloc.hpp"
#include "rt/config.hpp"
#include "rt/team_barrier.hpp"

namespace omptune::rt {

/// Reduction combiners supported by the runtime entry point.
enum class ReduceOp { Sum, Prod, Max, Min };

/// Identity element of an operation.
double reduce_identity(ReduceOp op);

/// Apply a combiner.
double reduce_apply(ReduceOp op, double a, double b);

/// Team-wide reduction arena. One instance per team; reusable across any
/// number of reduction rounds. All team threads must call `reduce` the same
/// number of times with the same (op, method) arguments — the usual OpenMP
/// worksharing discipline.
class Reducer {
 public:
  /// `barrier` may be any catalogue variant; reduce() arrives with the
  /// caller's team rank.
  Reducer(KmpAllocator& alloc, int team_size, TeamBarrier& barrier);

  /// Perform one reduction round; every team thread contributes `local` and
  /// receives the combined value.
  double reduce(int tid, double local, ReduceOp op, ReductionMethod method);

  /// Serialized/atomic combine operations observed (cost proxy for tests
  /// and the reduction micro-benchmark).
  std::uint64_t contended_combines() const {
    return contended_combines_.load(std::memory_order_relaxed);
  }

 private:
  double reduce_tree(int tid, double local, ReduceOp op);
  double reduce_critical(int tid, double local, ReduceOp op);
  double reduce_atomic(int tid, double local, ReduceOp op);

  int team_size_;
  TeamBarrier* barrier_;
  KmpArray<double> slots_;  ///< padded per-thread slots (tree)
  double shared_scalar_ = 0.0;           ///< critical target
  std::atomic<double> atomic_scalar_{0}; ///< atomic target
  std::mutex critical_mutex_;
  std::atomic<std::uint64_t> contended_combines_{0};
};

}  // namespace omptune::rt
