#pragma once

// Futex-style spin-then-park waiting: the single waiting primitive shared by
// every barrier variant and the task-pool idle loop.
//
// The unit is a WaitWord — a 32-bit epoch counter plus a sleeper count.
// Waiters spin on the value per the team's WaitBehavior (the KMP_BLOCKTIME x
// KMP_LIBRARY surface), then park in the kernel via util::futex_wait.
// Signalers advance the value first and wake only when the sleeper count is
// non-zero, so the hot hand-off path (both sides running) costs one atomic
// add and one load — no mutex, no condition variable, no syscall. This is
// what replaced the mutex+condvar wait_until(): the condvar path made every
// release take a lock and pay a notify even when all waiters were spinning,
// and its broadcast woke the whole team at once (the thundering herd the
// passive wait policy is known for).
//
// Epochs wrap: all comparisons are wrap-safe (epoch_before), and the barrier
// conformance suite runs episodes across the 2^32 boundary.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "rt/config.hpp"
#include "util/futex.hpp"

namespace omptune::rt {

/// How a waiting thread burns time until a condition flips.
struct WaitBehavior {
  WaitPolicy policy = WaitPolicy::SpinThenSleep;
  bool yield_while_spinning = true;  ///< throughput yields, turnaround does not
  std::chrono::microseconds spin_budget{200'000};  ///< blocktime

  /// Derive from a runtime configuration.
  static WaitBehavior from_config(const RtConfig& config);
};

/// Wrap-safe "epoch a is strictly before b" on 32-bit counters.
inline bool epoch_before(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}

/// A 32-bit epoch word with parked-waiter accounting.
///
/// Waiter:  word.wait_until(satisfied, behavior, &sleeps)
/// Signaler: word.advance(); (implicit wake of sleepers only)
///
/// The sleeper count and the value are both sequentially consistent at the
/// park boundary: a waiter registers as a sleeper *before* its final value
/// check, a signaler advances the value *before* reading the sleeper count,
/// so one of them always sees the other — the lock-free equivalent of the
/// condvar's "flip under the mutex" rule.
struct WaitWord {
  std::atomic<std::uint32_t> value{0};
  std::atomic<std::uint32_t> sleepers{0};

  std::uint32_t load(std::memory_order order = std::memory_order_acquire) const {
    return value.load(order);
  }

  /// Advance the epoch and wake every parked waiter (if any).
  void advance_and_wake() {
    value.fetch_add(1, std::memory_order_seq_cst);
    wake_if_sleeping(1 << 30);
  }

  /// Advance the epoch and wake at most `count` parked waiters.
  void advance_and_wake_some(int count) {
    value.fetch_add(1, std::memory_order_seq_cst);
    wake_if_sleeping(count);
  }

  /// Wake parked waiters without touching the value (the caller advanced or
  /// changed some other observable state first — only valid when waiters
  /// re-check a predicate that state satisfies).
  void wake_if_sleeping(int count) {
    if (sleepers.load(std::memory_order_seq_cst) != 0) {
      util::futex_wake(value, count);
    }
  }

  /// Block until `satisfied(value)` holds: spin per `wait`, then park.
  /// Returns the satisfying value. `sleep_counter` (optional) is bumped once
  /// if the wait actually parked — the "fell back to an OS sleep" statistic
  /// KMP_BLOCKTIME tuning is about.
  template <typename Satisfied>
  std::uint32_t wait_until(Satisfied&& satisfied, const WaitBehavior& wait,
                           std::atomic<std::uint64_t>* sleep_counter) {
    std::uint32_t seen = value.load(std::memory_order_acquire);
    if (satisfied(seen)) return seen;

    if (wait.policy != WaitPolicy::Passive) {
      const bool bounded = wait.policy == WaitPolicy::SpinThenSleep;
      const auto deadline =
          bounded ? std::chrono::steady_clock::now() + wait.spin_budget
                  : std::chrono::steady_clock::time_point::max();
      // Poll in small batches before checking the clock to keep the spin
      // loop cheap; yield between polls in throughput mode.
      while (true) {
        for (int i = 0; i < 64; ++i) {
          seen = value.load(std::memory_order_acquire);
          if (satisfied(seen)) return seen;
          if (wait.yield_while_spinning) std::this_thread::yield();
        }
        if (bounded && std::chrono::steady_clock::now() >= deadline) break;
      }
    }

    // Park: register as a sleeper, then re-check with seq_cst so the
    // signaler's advance/sleeper-read pair cannot miss us.
    if (sleep_counter != nullptr) {
      sleep_counter->fetch_add(1, std::memory_order_relaxed);
    }
    sleepers.fetch_add(1, std::memory_order_seq_cst);
    for (;;) {
      seen = value.load(std::memory_order_seq_cst);
      if (satisfied(seen)) break;
      util::futex_wait(value, seen);
    }
    sleepers.fetch_sub(1, std::memory_order_relaxed);
    return seen;
  }

  /// Block until the value differs from `old`.
  std::uint32_t wait_changed(std::uint32_t old, const WaitBehavior& wait,
                             std::atomic<std::uint64_t>* sleep_counter) {
    return wait_until([old](std::uint32_t v) { return v != old; }, wait,
                      sleep_counter);
  }

  /// Block until the value has reached `target` (wrap-safe).
  std::uint32_t wait_reached(std::uint32_t target, const WaitBehavior& wait,
                             std::atomic<std::uint64_t>* sleep_counter) {
    return wait_until(
        [target](std::uint32_t v) { return !epoch_before(v, target); }, wait,
        sleep_counter);
  }
};

}  // namespace omptune::rt
