#pragma once

// Combining-tree barrier: arrivals propagate up a binary tree (each parent
// waits for its two children), the release is one broadcast epoch — O(log n)
// contention per hot word instead of one shared counter hammered by the
// whole team. LLVM/OpenMP selects among such barrier algorithms with
// KMP_*_BARRIER_PATTERN; this is the ablation substrate for that choice
// (see bench/micro_barrier and bench/micro_primitives).
//
// Each tree node's gather word lives on its own cache line (PaddedSlots over
// the KMP_ALIGN_ALLOC-style allocator). The earlier node layout interleaved
// every node's atomics in one vector, so two siblings' arrival flags shared
// a line and each signal invalidated the other's — `padded=false` keeps that
// packed layout available for the micro-benchmark to quantify.

#include <cstdint>

#include "rt/aligned_alloc.hpp"
#include "rt/team_barrier.hpp"

namespace omptune::rt {

class TreeBarrier final : public TeamBarrier {
 public:
  /// `initial_epoch` pre-ages every episode counter — the conformance
  /// suite starts near UINT32_MAX to drive episodes across the wrap.
  explicit TreeBarrier(int team_size, WaitBehavior wait = {},
                       bool padded = true, std::uint32_t initial_epoch = 0);

  /// Block until all team threads have arrived. `tid` must be the caller's
  /// stable team rank in [0, team_size).
  void arrive_and_wait(int tid) override;

  BarrierKind kind() const override { return BarrierKind::Tree; }

 private:
  /// One per team rank: the rank's arrival flag, waited on by its tree
  /// parent. Node i's children are 2i+1 and 2i+2.
  struct Node {
    WaitWord arrived;
  };

  KmpAllocator alloc_;
  PaddedSlots<Node> nodes_;
  WaitWord release_;
};

}  // namespace omptune::rt
