#pragma once

// Combining-tree barrier: an alternative to the centralized sense-reversing
// barrier for large teams. Arrivals propagate up a binary tree (each parent
// waits for its two children), the release propagates down — O(log n)
// contention per hot word instead of one shared counter hammered by the
// whole team. LLVM/OpenMP selects among such barrier algorithms with
// KMP_*_BARRIER_PATTERN; this is the ablation substrate for that choice
// (see bench/micro_barrier).

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "rt/barrier.hpp"

namespace omptune::rt {

class TreeBarrier {
 public:
  explicit TreeBarrier(int team_size, WaitBehavior wait = {});

  /// Block until all team threads have arrived. `tid` must be the caller's
  /// stable team rank in [0, team_size).
  void arrive_and_wait(int tid);

  int team_size() const { return team_size_; }
  std::uint64_t sleep_count() const {
    return sleeps_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    std::atomic<int> arrived{0};
    std::atomic<std::uint64_t> release_epoch{0};
    std::mutex mutex;
    std::condition_variable cv;
  };

  void wait_for_epoch(Node& node, std::uint64_t epoch);

  int team_size_;
  WaitBehavior wait_;
  /// One node per internal tree position; node i has children 2i+1, 2i+2.
  std::vector<std::unique_ptr<Node>> nodes_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> sleeps_{0};
};

}  // namespace omptune::rt
