#pragma once

// Worksharing-loop scheduling (OMP_SCHEDULE).
//
//  - static (no chunk): one contiguous block per thread, computed up front;
//    zero runtime coordination.
//  - static,chunk: chunk-sized pieces dealt round-robin to threads.
//  - dynamic: threads grab chunk-sized pieces (default 1) from a shared
//    atomic counter; best load balance, highest coordination cost.
//  - guided: like dynamic but the piece size starts at remaining/team and
//    decays geometrically toward the chunk minimum.
//  - auto: implementation-defined; like LLVM/OpenMP's static_greedy we hand
//    each thread one contiguous block (equivalent to plain static here).

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "rt/config.hpp"

namespace omptune::rt {

/// Half-open iteration range [begin, end).
struct LoopSlice {
  std::int64_t begin = 0;
  std::int64_t end = 0;

  std::int64_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
  bool operator==(const LoopSlice&) const = default;
};

/// Shared per-loop scheduler state. One instance is created per worksharing
/// loop and shared by the whole team; each thread repeatedly calls
/// `next(tid)` until it returns nullopt.
class LoopScheduler {
 public:
  /// Schedules iterations of [lo, hi) across `team_size` threads.
  /// `chunk` <= 0 selects the schedule kind's default chunking.
  LoopScheduler(ScheduleKind kind, int chunk, std::int64_t lo, std::int64_t hi,
                int team_size);

  /// Next slice for thread `tid`, or nullopt when the loop is exhausted for
  /// that thread. Thread-safe across the team.
  std::optional<LoopSlice> next(int tid);

  ScheduleKind kind() const { return kind_; }
  std::int64_t chunk() const { return chunk_; }

  /// Number of shared-counter operations performed so far (coordination
  /// cost proxy used by tests and the schedule micro-benchmark).
  std::uint64_t sync_operations() const {
    return sync_ops_.load(std::memory_order_relaxed);
  }

 private:
  std::optional<LoopSlice> next_static_block(int tid);
  std::optional<LoopSlice> next_static_chunked(int tid);
  std::optional<LoopSlice> next_dynamic();
  std::optional<LoopSlice> next_guided();

  ScheduleKind kind_;
  std::int64_t chunk_;
  bool chunk_requested_;
  std::int64_t lo_;
  std::int64_t hi_;
  int team_size_;

  /// Per-thread cursor: next chunk index for static,chunk; 0/1 "block taken"
  /// flag for static block and auto.
  std::unique_ptr<std::atomic<std::int64_t>[]> per_thread_;
  /// Shared progress cursor for dynamic and guided.
  std::atomic<std::int64_t> cursor_;
  std::atomic<std::uint64_t> sync_ops_{0};
};

}  // namespace omptune::rt
