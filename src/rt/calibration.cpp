#include "rt/calibration.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace omptune::rt {

namespace {

constexpr const char* kVersionLine = "omptune-calibration v1";
constexpr const char* kBarrierPrefix = "barrier.";

/// Named scalar fields, in serialization order.
struct Field {
  const char* name;
  double CalibrationTable::* member;
};

const std::vector<Field>& fields() {
  static const std::vector<Field> kFields = {
      {"idle_active_us", &CalibrationTable::idle_active_us},
      {"idle_yield_factor", &CalibrationTable::idle_yield_factor},
      {"region_active_base_us", &CalibrationTable::region_active_base_us},
      {"region_active_per_thread_us",
       &CalibrationTable::region_active_per_thread_us},
      {"region_spin_base_us", &CalibrationTable::region_spin_base_us},
      {"region_spin_per_thread_us",
       &CalibrationTable::region_spin_per_thread_us},
      {"region_spin_sleep_frac", &CalibrationTable::region_spin_sleep_frac},
      {"region_passive_per_thread_us",
       &CalibrationTable::region_passive_per_thread_us},
      {"chunk_grab_us", &CalibrationTable::chunk_grab_us},
      {"reduction_hop_base_us", &CalibrationTable::reduction_hop_base_us},
      {"reduction_hop_numa_us", &CalibrationTable::reduction_hop_numa_us},
      {"park_unpark_us", &CalibrationTable::park_unpark_us},
      {"condvar_roundtrip_us", &CalibrationTable::condvar_roundtrip_us},
      {"cas_contended_us", &CalibrationTable::cas_contended_us},
      {"fetch_add_contended_us", &CalibrationTable::fetch_add_contended_us},
      {"lock_acquire_us", &CalibrationTable::lock_acquire_us},
  };
  return kFields;
}

double parse_double(const std::string& text, const std::string& line) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("calibration: malformed value in line: " + line);
  }
}

std::string format_double(double value) {
  std::ostringstream out;
  out << std::setprecision(std::numeric_limits<double>::max_digits10) << value;
  return out.str();
}

}  // namespace

CalibrationTable CalibrationTable::parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  // First non-blank, non-comment line must be the version marker.
  bool versioned = false;
  CalibrationTable table;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (!versioned) {
      if (line != kVersionLine) {
        throw std::runtime_error(
            "calibration: unsupported version line: " + line);
      }
      versioned = true;
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("calibration: malformed line: " + line);
    }
    const std::string key = line.substr(0, eq);
    const double value = parse_double(line.substr(eq + 1), line);

    if (key.rfind(kBarrierPrefix, 0) == 0) {
      table.barrier_phase_us[key.substr(std::string(kBarrierPrefix).size())] =
          value;
      continue;
    }
    bool known = false;
    for (const Field& field : fields()) {
      if (key == field.name) {
        table.*(field.member) = value;
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::runtime_error("calibration: unknown key: " + key);
    }
  }
  if (!versioned) {
    throw std::runtime_error("calibration: missing version line");
  }
  return table;
}

CalibrationTable CalibrationTable::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("calibration: cannot read " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

std::string CalibrationTable::serialize() const {
  std::ostringstream out;
  out << kVersionLine << "\n";
  for (const Field& field : fields()) {
    out << field.name << "=" << format_double(this->*(field.member)) << "\n";
  }
  for (const auto& [key, value] : barrier_phase_us) {
    out << kBarrierPrefix << key << "=" << format_double(value) << "\n";
  }
  return out.str();
}

void CalibrationTable::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("calibration: cannot write " + path);
  }
  out << serialize();
  if (!out) {
    throw std::runtime_error("calibration: write failed for " + path);
  }
}

bool CalibrationTable::operator==(const CalibrationTable& other) const {
  for (const Field& field : fields()) {
    if (this->*(field.member) != other.*(field.member)) return false;
  }
  return barrier_phase_us == other.barrier_phase_us;
}

}  // namespace omptune::rt
