#pragma once

// Flat/hybrid two-level barrier (the lomp-style `flat` catalogue entry):
// threads arrive at a per-group central counter (groups of 8), the last
// arrival of each group arrives at a second-level leader counter, and the
// last leader broadcasts one release epoch. Two fetch_adds end to end for
// most threads — centralized latency — while no single counter is hammered
// by more than max(8, n/8) threads, which defers the central barrier's
// contention collapse to much larger teams.

#include <cstdint>

#include "rt/aligned_alloc.hpp"
#include "rt/team_barrier.hpp"

namespace omptune::rt {

class HybridBarrier final : public TeamBarrier {
 public:
  /// `initial_epoch` pre-ages the release epoch — the conformance suite
  /// starts near UINT32_MAX to drive episodes across the wrap.
  explicit HybridBarrier(int team_size, WaitBehavior wait = {},
                         std::uint32_t initial_epoch = 0);

  void arrive_and_wait(int tid) override;

  BarrierKind kind() const override { return BarrierKind::Hybrid; }

  static constexpr int kGroupSize = 8;

  int group_count() const { return group_count_; }

 private:
  /// One per group: the group's arrival counter, on its own cache line so
  /// groups don't invalidate each other while gathering.
  struct Group {
    std::atomic<int> arrived{0};
  };

  const int group_count_;
  KmpAllocator alloc_;
  PaddedSlots<Group> groups_;
  std::atomic<int> leaders_{0};
  WaitWord release_;
};

}  // namespace omptune::rt
