#include "rt/dissemination_barrier.hpp"

#include <algorithm>
#include <stdexcept>

namespace omptune::rt {

namespace {
constexpr std::size_t kLine = 64;  // padded-slot boundary (cache line)

int rounds_for(int team_size) {
  int rounds = 0;
  while ((1 << rounds) < team_size) ++rounds;
  return rounds;
}
}  // namespace

DisseminationBarrier::DisseminationBarrier(int team_size, WaitBehavior wait,
                                           std::uint32_t initial_epoch)
    : TeamBarrier(team_size, wait),
      rounds_(rounds_for(team_size)),
      alloc_(kLine),
      flags_(alloc_,
             std::max<std::size_t>(1, static_cast<std::size_t>(team_size) *
                                          static_cast<std::size_t>(rounds_)),
             true),
      ranks_(alloc_, static_cast<std::size_t>(team_size), true) {
  for (std::size_t i = 0; i < flags_.size(); ++i) {
    flags_[i].word.value.store(initial_epoch, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    ranks_[i].episode = initial_epoch;
  }
}

void DisseminationBarrier::arrive_and_wait(int tid) {
  if (tid < 0 || tid >= team_size_) {
    throw std::out_of_range("DisseminationBarrier::arrive_and_wait: bad tid");
  }
  // Each rank keeps a private episode counter; every flag is a monotone
  // counter incremented once per episode by its unique signaler, so waits
  // compare wrap-safely against the episode number and nothing is reset.
  Rank& me = ranks_[static_cast<std::size_t>(tid)];
  const std::uint32_t episode = ++me.episode;

  for (int r = 0; r < rounds_; ++r) {
    const int peer = (tid + (1 << r)) % team_size_;
    // A partner racing one episode ahead only drives the counter further
    // past our target, so the signal/wait order needs no round handshake.
    flag(peer, r).advance_and_wake();
    flag(tid, r).wait_reached(episode, wait_, &sleeps_);
  }
}

}  // namespace omptune::rt
