#pragma once

// Measured-cost table for the performance model's primitive terms.
//
// The perf model's region-overhead, idle-latency, coordination, and
// reduction terms used to be hard-coded constants; this table makes them
// data. bench/micro_primitives measures the real primitives on the host
// (barrier phase per variant x team size, park/unpark round-trip, contended
// CAS/fetch-add, lock acquire) and emits a table; sim::PerfModel consumes
// one. The default-constructed table IS the historical constants, so a
// PerfModel built without a table predicts bit-identically to the code the
// constants lived in — the checked-in docs/calibration/fallback.cal is that
// same table serialized, and tests/calibration_test pins all three equal.
//
// Serialized form: a version line "omptune-calibration v1" followed by
// key=value lines ('#' comments allowed). Doubles round-trip exactly
// (max_digits10). Unknown keys and foreign versions are rejected loudly —
// tables are machine-generated, so a mismatch is a defect, not noise.

#include <map>
#include <string>

namespace omptune::rt {

/// Primitive costs consumed by sim::PerfModel. All times in microseconds.
/// Field defaults are the historical model constants (the fallback table).
struct CalibrationTable {
  // ---- model-facing terms (defaults = historical constants) --------------
  /// Idle pickup base latency (active/spinning waiter).
  double idle_active_us = 0.3;
  /// Extra idle latency per unit of the host's yield latency (throughput
  /// mode yields between polls).
  double idle_yield_factor = 0.35;
  /// Fork/join region cost, active policy: base + per-thread term.
  double region_active_base_us = 1.0;
  double region_active_per_thread_us = 0.02;
  /// Region cost, spin-then-sleep policy: base + per-thread + the fraction
  /// of workers that overslept the blocktime (x host sleep latency).
  double region_spin_base_us = 1.5;
  double region_spin_per_thread_us = 0.05;
  double region_spin_sleep_frac = 0.02;
  /// Region cost, passive policy: per-thread wake fan-out on top of the
  /// host sleep latency (the thundering herd).
  double region_passive_per_thread_us = 0.9;
  /// Shared-counter grab (dynamic/guided chunk handout).
  double chunk_grab_us = 0.15;
  /// Reduction combining-hop cost: base + extra on >2-NUMA machines.
  double reduction_hop_base_us = 0.25;
  double reduction_hop_numa_us = 0.1;

  // ---- measured primitives (informative; 0 = not measured) ---------------
  double park_unpark_us = 0.0;        ///< futex park/unpark round-trip
  double condvar_roundtrip_us = 0.0;  ///< mutex+condvar equivalent
  double cas_contended_us = 0.0;      ///< CAS retry loop under contention
  double fetch_add_contended_us = 0.0;
  double lock_acquire_us = 0.0;  ///< uncontended mutex lock/unlock

  /// Barrier phase cost per variant x team size, keyed "central.t4",
  /// "dissemination.t16", ... (written by bench/micro_primitives).
  std::map<std::string, double> barrier_phase_us;

  /// The historical constants (identical to a default-constructed table).
  static CalibrationTable fallback() { return CalibrationTable{}; }

  /// Parse a serialized table. Throws std::runtime_error on a missing or
  /// foreign version line, malformed line, or unknown key.
  static CalibrationTable parse(const std::string& text);

  /// Load from a file. Throws std::runtime_error (unreadable file or any
  /// parse error).
  static CalibrationTable load(const std::string& path);

  /// Serialize; exact double round-trip. `save` writes atomically enough
  /// for our uses (truncate + write).
  std::string serialize() const;
  void save(const std::string& path) const;

  bool operator==(const CalibrationTable& other) const;
};

}  // namespace omptune::rt
