#pragma once

// CPU architecture descriptors for the three machines the paper's study ran
// on (Table I), plus derived micro-architectural parameters consumed by the
// performance model (src/sim) and by the runtime's configuration defaults
// (KMP_ALIGN_ALLOC defaults to the cache-line size).

#include <string>
#include <vector>

namespace omptune::arch {

enum class ArchId {
  A64FX,    ///< Fujitsu A64FX (aarch64, SVE, HBM2)
  Skylake,  ///< Intel Xeon Gold 6148 (Skylake-SP)
  Milan,    ///< AMD EPYC 7643 (Zen 3)
};

/// Human-readable identifier used in datasets ("a64fx", "skylake", "milan").
std::string to_string(ArchId id);

/// Parse a dataset identifier back to an ArchId; throws std::invalid_argument.
ArchId arch_from_string(const std::string& name);

/// Static description of one CPU, combining the paper's Table I columns with
/// the micro-architectural parameters the performance model needs.
struct CpuArch {
  ArchId id;
  std::string name;         ///< dataset identifier, e.g. "a64fx"
  std::string description;  ///< marketing name, e.g. "Fujitsu A64FX"

  // ---- Table I columns ----
  int cores = 0;          ///< total physical cores
  int sockets = 1;        ///< 0 sockets in the paper's A64FX row is printed "-"
  int numa_nodes = 1;     ///< NUMA domains (A64FX: 4 CMGs)
  double clock_ghz = 0;   ///< base clock
  std::string memory_type;  ///< "HBM" or "DDR4"
  int memory_gb = 0;

  // ---- derived / micro-architectural ----
  int cacheline_bytes = 64;    ///< 256 on A64FX, 64 on both X86 parts
  int ll_caches = 1;           ///< number of last-level cache groups
  double mem_bw_gbs = 0;       ///< aggregate memory bandwidth (GB/s)
  double numa_remote_penalty = 1.0;  ///< remote/local access latency ratio
  double flops_per_cycle_core = 16;  ///< peak DP FLOPs per cycle per core

  /// Relative run-to-run measurement noise (log-normal sigma). Calibrated so
  /// the Wilcoxon consistency results of Tables III/IV reproduce: A64FX is
  /// near-deterministic, both X86 machines are noisy.
  double noise_sigma = 0.0;
  /// Magnitude of the systematic between-repetition drift observed on the
  /// X86 machines (shared cluster): each repetition batch carries a bias.
  double repetition_drift = 0.0;

  // ---- calibrated performance-model parameters (see src/sim) ----
  /// Cost of one sched_yield poll while idle-spinning in throughput mode.
  double yield_latency_us = 2.0;
  /// Cost of a condition-variable sleep/wake round trip.
  double sleep_latency_us = 40.0;
  /// Probability that an unbound thread's memory access loses NUMA locality
  /// (captures both OS migration frequency and first-touch dilution). Near
  /// zero on A64FX (HBM + CMG-local scheduling) and Skylake (2 nodes, NUMA
  /// balancing effective), large on Milan (NPS4, 8 nodes).
  double unbound_locality_loss = 0.1;
  /// Queueing amplification when memory demand exceeds saturation
  /// bandwidth (cross-CCX/directory contention on Milan).
  double bw_contention = 0.05;
  /// Single-thread memory-time multiplier relative to Skylake (HBM has high
  /// latency despite its bandwidth).
  double serial_mem_factor = 1.0;

  int cores_per_socket() const { return cores / (sockets > 0 ? sockets : 1); }
  int cores_per_numa() const { return cores / (numa_nodes > 0 ? numa_nodes : 1); }
  int cores_per_llc() const { return cores / (ll_caches > 0 ? ll_caches : 1); }

  /// Peak double-precision GFLOP/s of the whole chip.
  double peak_gflops() const {
    return clock_ghz * flops_per_cycle_core * cores;
  }
};

/// The three architectures of the study, in the paper's Table I order.
const std::vector<CpuArch>& all_architectures();

/// Lookup by id; the returned reference has static storage duration.
const CpuArch& architecture(ArchId id);

}  // namespace omptune::arch
