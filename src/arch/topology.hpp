#pragma once

// Hardware topology model: cores arranged in sockets, NUMA domains and
// last-level-cache groups. Provides the place lists for every OMP_PLACES
// value and the OpenMP-conformant thread->place assignment for every
// OMP_PROC_BIND policy. Used both by the native runtime (to pin logical
// threads) and by the performance model (to score a placement).

#include <cstdint>
#include <string>
#include <vector>

#include "arch/cpu_arch.hpp"

namespace omptune::arch {

/// A place is a set of cores, stored as core ids (always a contiguous range
/// for the regular topologies modelled here, but kept general).
struct Place {
  std::vector<int> cores;
};

/// The OMP_PLACES granularities of the paper's study. `Unset` means the OS
/// may migrate threads freely; `Threads` is listed for completeness (the
/// paper skips it because no SMT machines were evaluated); `NumaDomains`
/// requires hwloc in LLVM/OpenMP and was likewise skipped in the paper's
/// sweep, but both are implemented here.
enum class PlacesKind {
  Unset,
  Threads,
  Cores,
  LLCaches,
  Sockets,
  NumaDomains,
};

std::string to_string(PlacesKind kind);
PlacesKind places_from_string(const std::string& name);

/// Thread binding policies of OMP_PROC_BIND. `Unset` resolves per the
/// LLVM/OpenMP default derivation (see rt::RtConfig). `Master` is the
/// deprecated spelling of `primary` and keeps threads on the primary
/// thread's place.
enum class BindKind {
  Unset,
  False_,
  True_,
  Master,
  Close,
  Spread,
};

std::string to_string(BindKind kind);
BindKind bind_from_string(const std::string& name);

/// Per-core static location within the chip.
struct CoreLocation {
  int core = 0;
  int socket = 0;
  int numa = 0;
  int llc = 0;
};

/// Immutable topology derived from a CpuArch descriptor.
class Topology {
 public:
  explicit Topology(const CpuArch& cpu);

  const CpuArch& cpu() const { return *cpu_; }
  int num_cores() const { return static_cast<int>(locations_.size()); }
  const CoreLocation& location(int core) const { return locations_.at(core); }

  /// Place list for a given granularity. For `Unset`, returns a single place
  /// covering the whole machine (threads may migrate anywhere).
  std::vector<Place> places(PlacesKind kind) const;

  /// Number of places for the granularity.
  int num_places(PlacesKind kind) const;

 private:
  const CpuArch* cpu_;
  std::vector<CoreLocation> locations_;
};

/// Result of assigning an OpenMP thread team to places.
struct ThreadPlacement {
  /// places[i] = place index assigned to thread i (into the place list used);
  /// empty when binding is disabled (threads float).
  std::vector<int> place_of_thread;
  /// The resolved place list the indices refer to.
  std::vector<Place> place_list;
  /// True when threads are pinned (bind != false/unset-without-places).
  bool bound = false;
};

/// Compute the OpenMP 5.x thread->place assignment.
///
/// - `Close`: threads packed into consecutive places starting at the
///   primary thread's place.
/// - `Spread`: the place list is partitioned into `num_threads` roughly
///   equal sub-partitions; thread i lands in the first place of partition i.
/// - `Master`: every thread shares place 0 (the primary's place).
/// - `True_`: binding enabled with implementation-defined policy; LLVM uses
///   the same assignment as `Close` here.
/// - `False_` / `Unset`: no binding (threads float across the machine).
///
/// When `places` is `Unset` but binding is requested, LLVM falls back to
/// core-granularity places; this function mirrors that.
ThreadPlacement assign_threads(const Topology& topo, PlacesKind places,
                               BindKind bind, int num_threads);

/// Summary statistics of a placement, consumed by the performance model.
struct PlacementStats {
  bool bound = false;
  int distinct_numa = 1;    ///< NUMA domains covered by the team
  int distinct_llc = 1;     ///< LLC groups covered by the team
  int distinct_sockets = 1; ///< sockets covered by the team
  double max_threads_per_core = 1.0;  ///< oversubscription factor (worst core)
  double numa_balance = 1.0;  ///< 1 = perfectly even across covered domains
};

/// Compute placement statistics for a team of `num_threads` threads.
PlacementStats placement_stats(const Topology& topo, PlacesKind places,
                               BindKind bind, int num_threads);

}  // namespace omptune::arch
