#include "arch/cpu_arch.hpp"

#include <stdexcept>

namespace omptune::arch {

std::string to_string(ArchId id) {
  switch (id) {
    case ArchId::A64FX: return "a64fx";
    case ArchId::Skylake: return "skylake";
    case ArchId::Milan: return "milan";
  }
  throw std::invalid_argument("to_string: bad ArchId");
}

ArchId arch_from_string(const std::string& name) {
  if (name == "a64fx") return ArchId::A64FX;
  if (name == "skylake") return ArchId::Skylake;
  if (name == "milan") return ArchId::Milan;
  throw std::invalid_argument("arch_from_string: unknown architecture '" + name + "'");
}

const std::vector<CpuArch>& all_architectures() {
  // Table I of the paper, plus model parameters:
  //  - A64FX: 48 cores in 4 CMGs (Core Memory Groups), HBM2 ~1 TB/s,
  //    256 B cache lines, SVE-512. Single-user Ookami nodes measure with
  //    very low noise (Table III: all p-values high).
  //  - Skylake 6148: 2 sockets x 20 cores, 6-channel DDR4 ~256 GB/s,
  //    AVX-512. Shared SeaWulf cluster: noisy (Table III: low p-values).
  //  - Milan 7643: 2 sockets x 48 cores, 8 NUMA nodes (NPS4), 16 CCXs with
  //    32 MB L3 each, ~410 GB/s DDR4. Also noisy.
  static const std::vector<CpuArch> archs = [] {
    std::vector<CpuArch> v;

    CpuArch a64fx;
    a64fx.id = ArchId::A64FX;
    a64fx.name = "a64fx";
    a64fx.description = "Fujitsu A64FX";
    a64fx.cores = 48;
    a64fx.sockets = 1;
    a64fx.numa_nodes = 4;
    a64fx.clock_ghz = 1.8;
    a64fx.memory_type = "HBM";
    a64fx.memory_gb = 32;
    a64fx.cacheline_bytes = 256;
    a64fx.ll_caches = 4;  // one L2 per CMG acts as LLC
    a64fx.mem_bw_gbs = 1024.0;
    a64fx.numa_remote_penalty = 1.35;  // HBM keeps remote penalty moderate
    a64fx.flops_per_cycle_core = 32;   // 2x 512-bit SVE FMA
    a64fx.noise_sigma = 0.002;
    a64fx.repetition_drift = 0.0;
    a64fx.yield_latency_us = 32.0;  // 1.8 GHz in-order-ish core, slow syscall
    a64fx.sleep_latency_us = 90.0;
    a64fx.unbound_locality_loss = 0.04;  // CMG-local scheduling + HBM
    a64fx.bw_contention = 0.01;          // 1 TB/s is never saturated here
    a64fx.serial_mem_factor = 1.3;       // HBM2 latency
    v.push_back(a64fx);

    CpuArch skylake;
    skylake.id = ArchId::Skylake;
    skylake.name = "skylake";
    skylake.description = "Intel Xeon Gold 6148 (Skylake)";
    skylake.cores = 40;
    skylake.sockets = 2;
    skylake.numa_nodes = 2;
    skylake.clock_ghz = 2.4;
    skylake.memory_type = "DDR4";
    skylake.memory_gb = 188;
    skylake.cacheline_bytes = 64;
    skylake.ll_caches = 2;  // one shared L3 per socket
    skylake.mem_bw_gbs = 256.0;
    skylake.numa_remote_penalty = 1.7;
    skylake.flops_per_cycle_core = 32;  // 2x AVX-512 FMA
    skylake.noise_sigma = 0.028;
    skylake.repetition_drift = 0.012;
    skylake.yield_latency_us = 20.0;
    skylake.sleep_latency_us = 45.0;
    skylake.unbound_locality_loss = 0.015;  // 2 nodes, kernel NUMA balancing
    skylake.bw_contention = 0.03;
    skylake.serial_mem_factor = 1.0;
    v.push_back(skylake);

    CpuArch milan;
    milan.id = ArchId::Milan;
    milan.name = "milan";
    milan.description = "AMD EPYC 7643 (Milan)";
    milan.cores = 96;
    milan.sockets = 2;
    milan.numa_nodes = 8;
    milan.clock_ghz = 2.3;
    milan.memory_type = "DDR4";
    milan.memory_gb = 251;
    milan.cacheline_bytes = 64;
    milan.ll_caches = 16;  // one 32 MB L3 per 6-core CCX
    milan.mem_bw_gbs = 410.0;
    milan.numa_remote_penalty = 2.1;  // NPS4 + cross-socket is expensive
    milan.flops_per_cycle_core = 16;  // 2x AVX2 FMA
    milan.noise_sigma = 0.034;
    milan.repetition_drift = 0.02;
    milan.yield_latency_us = 12.0;
    milan.sleep_latency_us = 35.0;
    milan.unbound_locality_loss = 1.0;  // NPS4: 8 nodes, costly remote CCX hops
    milan.bw_contention = 0.65;         // directory/xGMI queueing when saturated
    milan.serial_mem_factor = 1.05;
    v.push_back(milan);

    return v;
  }();
  return archs;
}

const CpuArch& architecture(ArchId id) {
  for (const CpuArch& a : all_architectures()) {
    if (a.id == id) return a;
  }
  throw std::invalid_argument("architecture: bad ArchId");
}

}  // namespace omptune::arch
