#include "arch/topology.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>

namespace omptune::arch {

std::string to_string(PlacesKind kind) {
  switch (kind) {
    case PlacesKind::Unset: return "unset";
    case PlacesKind::Threads: return "threads";
    case PlacesKind::Cores: return "cores";
    case PlacesKind::LLCaches: return "ll_caches";
    case PlacesKind::Sockets: return "sockets";
    case PlacesKind::NumaDomains: return "numa_domains";
  }
  throw std::invalid_argument("to_string: bad PlacesKind");
}

PlacesKind places_from_string(const std::string& name) {
  if (name == "unset" || name.empty()) return PlacesKind::Unset;
  if (name == "threads") return PlacesKind::Threads;
  if (name == "cores") return PlacesKind::Cores;
  if (name == "ll_caches") return PlacesKind::LLCaches;
  if (name == "sockets") return PlacesKind::Sockets;
  if (name == "numa_domains") return PlacesKind::NumaDomains;
  throw std::invalid_argument("places_from_string: unknown value '" + name + "'");
}

std::string to_string(BindKind kind) {
  switch (kind) {
    case BindKind::Unset: return "unset";
    case BindKind::False_: return "false";
    case BindKind::True_: return "true";
    case BindKind::Master: return "master";
    case BindKind::Close: return "close";
    case BindKind::Spread: return "spread";
  }
  throw std::invalid_argument("to_string: bad BindKind");
}

BindKind bind_from_string(const std::string& name) {
  if (name == "unset" || name.empty()) return BindKind::Unset;
  if (name == "false") return BindKind::False_;
  if (name == "true") return BindKind::True_;
  if (name == "master" || name == "primary") return BindKind::Master;
  if (name == "close") return BindKind::Close;
  if (name == "spread") return BindKind::Spread;
  throw std::invalid_argument("bind_from_string: unknown value '" + name + "'");
}

Topology::Topology(const CpuArch& cpu) : cpu_(&cpu) {
  if (cpu.cores <= 0) throw std::invalid_argument("Topology: cpu.cores must be > 0");
  locations_.resize(cpu.cores);
  const int per_socket = cpu.cores_per_socket();
  const int per_numa = cpu.cores_per_numa();
  const int per_llc = cpu.cores_per_llc();
  for (int c = 0; c < cpu.cores; ++c) {
    locations_[c] = CoreLocation{
        .core = c,
        .socket = c / per_socket,
        .numa = c / per_numa,
        .llc = c / per_llc,
    };
  }
}

std::vector<Place> Topology::places(PlacesKind kind) const {
  auto group_by = [this](auto selector) {
    std::map<int, Place> groups;
    for (const CoreLocation& loc : locations_) {
      groups[selector(loc)].cores.push_back(loc.core);
    }
    std::vector<Place> out;
    out.reserve(groups.size());
    for (auto& [key, place] : groups) out.push_back(std::move(place));
    return out;
  };

  switch (kind) {
    case PlacesKind::Unset: {
      // One machine-wide place: threads may run (and migrate) anywhere.
      Place all;
      all.cores.resize(locations_.size());
      std::iota(all.cores.begin(), all.cores.end(), 0);
      return {all};
    }
    case PlacesKind::Threads:
    case PlacesKind::Cores:
      // No SMT on the modelled machines, so threads == cores.
      return group_by([](const CoreLocation& l) { return l.core; });
    case PlacesKind::LLCaches:
      return group_by([](const CoreLocation& l) { return l.llc; });
    case PlacesKind::Sockets:
      return group_by([](const CoreLocation& l) { return l.socket; });
    case PlacesKind::NumaDomains:
      return group_by([](const CoreLocation& l) { return l.numa; });
  }
  throw std::invalid_argument("Topology::places: bad PlacesKind");
}

int Topology::num_places(PlacesKind kind) const {
  return static_cast<int>(places(kind).size());
}

ThreadPlacement assign_threads(const Topology& topo, PlacesKind places,
                               BindKind bind, int num_threads) {
  if (num_threads <= 0) {
    throw std::invalid_argument("assign_threads: num_threads must be > 0");
  }

  ThreadPlacement result;

  const bool wants_binding = bind == BindKind::Master || bind == BindKind::Close ||
                             bind == BindKind::Spread || bind == BindKind::True_;
  if (!wants_binding) {
    result.bound = false;
    result.place_list = topo.places(PlacesKind::Unset);
    return result;
  }

  // LLVM falls back to core granularity when binding is requested without an
  // explicit place partition.
  const PlacesKind effective =
      places == PlacesKind::Unset ? PlacesKind::Cores : places;
  result.place_list = topo.places(effective);
  result.bound = true;

  const int P = static_cast<int>(result.place_list.size());
  result.place_of_thread.resize(num_threads);

  switch (bind) {
    case BindKind::Master:
      // All threads on the primary thread's place.
      std::fill(result.place_of_thread.begin(), result.place_of_thread.end(), 0);
      break;
    case BindKind::Close:
    case BindKind::True_:
      // Consecutive places from the primary's place, wrapping.
      for (int t = 0; t < num_threads; ++t) {
        result.place_of_thread[t] = t % P;
      }
      break;
    case BindKind::Spread:
      // Partition the place list into num_threads sub-partitions; thread i
      // occupies the first place of partition i (OpenMP 5.x semantics).
      for (int t = 0; t < num_threads; ++t) {
        result.place_of_thread[t] =
            static_cast<int>((static_cast<long long>(t) * P) / num_threads) % P;
      }
      break;
    default:
      throw std::logic_error("assign_threads: unreachable bind kind");
  }
  return result;
}

PlacementStats placement_stats(const Topology& topo, PlacesKind places,
                               BindKind bind, int num_threads) {
  const ThreadPlacement placement = assign_threads(topo, places, bind, num_threads);
  PlacementStats stats;
  stats.bound = placement.bound;

  if (!placement.bound) {
    // Unbound threads migrate across the whole chip over time.
    const CpuArch& cpu = topo.cpu();
    stats.distinct_numa = cpu.numa_nodes;
    stats.distinct_llc = cpu.ll_caches;
    stats.distinct_sockets = cpu.sockets > 0 ? cpu.sockets : 1;
    stats.max_threads_per_core =
        std::max(1.0, static_cast<double>(num_threads) / cpu.cores);
    stats.numa_balance = 1.0;
    return stats;
  }

  // Distribute each place's threads round-robin over its cores, then derive
  // per-core / per-domain loads.
  std::map<int, int> threads_in_place;
  for (const int p : placement.place_of_thread) ++threads_in_place[p];

  std::map<int, int> core_load;
  for (const auto& [p, count] : threads_in_place) {
    const Place& place = placement.place_list.at(p);
    const int width = static_cast<int>(place.cores.size());
    for (int i = 0; i < count; ++i) {
      ++core_load[place.cores[i % width]];
    }
  }

  std::set<int> numas, llcs, sockets;
  std::map<int, int> numa_load;
  int max_core_load = 0;
  for (const auto& [core, load] : core_load) {
    const CoreLocation& loc = topo.location(core);
    numas.insert(loc.numa);
    llcs.insert(loc.llc);
    sockets.insert(loc.socket);
    numa_load[loc.numa] += load;
    max_core_load = std::max(max_core_load, load);
  }

  stats.distinct_numa = static_cast<int>(numas.size());
  stats.distinct_llc = static_cast<int>(llcs.size());
  stats.distinct_sockets = static_cast<int>(sockets.size());
  stats.max_threads_per_core = static_cast<double>(max_core_load);

  int max_numa_load = 0;
  for (const auto& [numa, load] : numa_load) {
    max_numa_load = std::max(max_numa_load, load);
  }
  const double even = static_cast<double>(num_threads) /
                      static_cast<double>(numa_load.size());
  stats.numa_balance = max_numa_load > 0 ? even / max_numa_load : 1.0;
  return stats;
}

}  // namespace omptune::arch
