#include "store/tiered.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <stdexcept>

#include "store/writer.hpp"
#include "sweep/dataset.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"

namespace omptune::store {

namespace {

std::string hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

/// Content hash of one merge group: combined hash of every member's raw
/// bytes. Names the group's intermediate, so a surviving intermediate is
/// reused iff it was produced from byte-identical inputs — the property
/// that makes mid-compaction crash resume converge on identical output.
std::uint64_t group_content_hash(const std::vector<std::string>& members) {
  std::uint64_t h = 0x7143ed00c0de5ULL;
  for (const std::string& path : members) {
    const auto bytes = util::read_file(path);
    // Missing members are caught later by the load path; hash them as empty
    // so the reuse check stays deterministic.
    h = util::hash_combine(h, util::stable_hash(bytes ? *bytes : ""));
  }
  return h;
}

void remove_scratch(const std::string& dir) {
  for (const std::string& name : util::list_files(dir)) {
    util::remove_file(util::path_join(dir, name));
  }
  ::rmdir(dir.c_str());
}

}  // namespace

TieredReport tiered_compact(const std::vector<std::string>& inputs,
                            const std::string& out_path,
                            const TieredOptions& options) {
  if (inputs.empty()) {
    throw std::invalid_argument("tiered_compact: no input stores");
  }
  if (options.fan_in < 2) {
    throw std::invalid_argument("tiered_compact: fan_in must be >= 2");
  }
  const std::string scratch =
      options.scratch_dir.empty() ? out_path + ".tiers" : options.scratch_dir;
  util::create_directories(scratch);
  util::remove_stale_temp_files(scratch);

  TieredReport report;
  report.inputs = inputs.size();

  std::vector<std::string> current = inputs;
  // Every intermediate this run touches (written or reused). Anything else
  // in scratch is a dropping of a previous crashed run whose inputs have
  // since changed — stale by definition, swept before publish.
  std::set<std::string> live_intermediates;
  std::size_t level = 0;
  // Always at least one pass, even for a single input: the output must be a
  // normalized (deduped, freshly serialized) store regardless of input count.
  do {
    ++report.tiers;
    std::vector<std::string> next;
    for (std::size_t start = 0; start < current.size();
         start += options.fan_in) {
      const std::size_t end = std::min(start + options.fan_in, current.size());
      const std::vector<std::string> group(current.begin() + start,
                                           current.begin() + end);
      const std::string inter_path = util::path_join(
          scratch, "t" + std::to_string(level) + "-" +
                       std::to_string(start / options.fan_in) + "-" +
                       hex16(group_content_hash(group)) + ".omps");
      ++report.merges;
      live_intermediates.insert(inter_path);
      if (util::file_exists(inter_path)) {
        // A content-named intermediate from a previous (crashed) run: adopt
        // it iff it still validates end to end.
        try {
          sweep::Dataset::load_store(inter_path);
          ++report.reused_intermediates;
          if (options.progress) {
            options.progress("tiered: reusing intermediate " + inter_path);
          }
          next.push_back(inter_path);
          continue;
        } catch (const util::DataCorruptionError&) {
          util::remove_file(inter_path);  // torn scratch file; rebuild
        }
      }
      sweep::Dataset combined;
      for (const std::string& member : group) {
        try {
          sweep::Dataset loaded = sweep::Dataset::load_store(member);
          if (level == 0) report.samples_in += loaded.size();
          combined.append(std::move(loaded));
        } catch (const util::DataCorruptionError& err) {
          // Only original inputs may be forgiven; a bad intermediate at a
          // deeper level is our own scratch corrupted underneath us.
          if (level == 0 && options.lenient) {
            ++report.skipped_inputs;
            if (options.progress) {
              options.progress(std::string("tiered: skipping corrupt input: ") +
                               err.what());
            }
            continue;
          }
          throw;
        }
      }
      sweep::Dataset::DedupeReport dedupe;
      sweep::Dataset deduped = combined.deduped(&dedupe);
      report.duplicates_dropped += dedupe.duplicates;
      report.replaced += dedupe.replaced;
      write_store(inter_path, deduped);
      next.push_back(inter_path);
    }
    current = std::move(next);
    ++level;
  } while (current.size() > 1);

  // Stale-intermediate sweep: content-named files from previous crashed
  // runs that no group of THIS run produced would otherwise survive every
  // keep_scratch resume cycle.
  for (const std::string& name : util::list_files(scratch)) {
    const std::string path = util::path_join(scratch, name);
    if (live_intermediates.count(path) != 0) continue;
    if (util::remove_file(path)) {
      ++report.stale_intermediates_removed;
      if (options.progress) {
        options.progress("tiered: removed stale intermediate " + path);
      }
    }
  }

  // Validate the final store before publishing it over the previous output,
  // and pull the output tallies from what will actually be published.
  const std::string& final_path = current.front();
  {
    const sweep::Dataset final_dataset = sweep::Dataset::load_store(final_path);
    report.samples_out = final_dataset.size();
    report.quarantined = final_dataset.quarantined_count();
  }
  // Atomic publish: rename + parent-dir fsync. A crash before this line
  // leaves the previous out_path intact; after it, the new store is durable.
  util::rename_file(final_path, out_path);
  if (!options.keep_scratch) remove_scratch(scratch);
  if (options.progress) {
    options.progress("tiered: published " + out_path + " (" +
                     std::to_string(report.samples_out) + " samples, " +
                     std::to_string(report.tiers) + " tiers)");
  }
  return report;
}

}  // namespace omptune::store
