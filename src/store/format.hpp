#pragma once

// On-disk layout of the .omps binary columnar sample store (version 1).
//
// Why a binary store: the study's knowledge base is a >240k-sample tabular
// dataset, and the journal multiplies it into hundreds of per-setting CSV
// files. Re-parsing text on every `analyze`/`recommend` dominates their
// runtime; a recommendation for one (app, arch) pair does not need the
// other ~99% of the rows at all. The store keeps each variable in its own
// typed contiguous block with an embedded setting index, so an mmap-backed
// reader materializes exactly the rows a query touches.
//
// Layout (all integers little-endian, every section 8-byte aligned, packed
// back-to-back with no gaps — every file byte is covered by exactly one
// checksum):
//
//   [0, 48)               FileHeader
//   [48, 48 + 32*S)       section table, S entries
//   [header_bytes, ...)   sections, in table order
//
// FileHeader (48 bytes):
//   u8  magic[8]     "OMPSTORE"
//   u32 version      1
//   u32 header_bytes 48 + 32 * section_count
//   u64 file_bytes   declared total size (truncation check)
//   u64 sample_count rows
//   u32 reps         runtime slots per row (R0..Rk, zero-padded)
//   u32 section_count
//   u64 header_checksum   FNV-1a over [0, header_bytes) with this field 0
//
// Section table entry (32 bytes):
//   u32 kind, u32 reserved(0), u64 offset, u64 bytes, u64 checksum
//
// Sections (each present exactly once, sizes fully determined by
// sample_count and reps — any disagreement is corruption):
//   kDictionaries  six string tables (arch, app, input, suite, kind, error):
//                  u32 count, then count x { u32 len, bytes }
//   kKeyColumns    u16 arch[n], u16 app[n], u16 input[n], (pad) i32 threads[n]
//   kConfigColumns i64 blocktime[n]; i32 num_threads[n], chunk[n], align[n],
//                  attempts[n]; u16 runtime_count[n], suite[n], kind[n];
//                  u8 places[n], bind[n], schedule[n], library[n],
//                  reduction[n], status[n], is_default[n]
//   kStatColumns   f64 mean[n], f64 default[n], f64 speedup[n]
//   kRuntimes      f64[n * reps], row-major (sample i at i*reps)
//   kErrors        u32 error-dictionary code[n]
//   kIndex         u64 group_count, then 32-byte entries
//                  { u16 arch, u16 app, u16 input, u16 pad, i32 threads,
//                    u32 pad, u64 first_row, u64 row_count } — runs of
//                  identical setting keys in row order, partitioning [0, n)
//
// The reader validates the header, dictionaries, key columns and index on
// open (cheap, metadata-sized); a full load() additionally verifies every
// section checksum; an indexed query() deliberately skips the bulk
// checksums — the point is to not read non-matching rows — and instead
// range/finiteness-checks every value it materializes. Corruption always
// surfaces as util::DataCorruptionError naming the file and byte offset.

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace omptune::store {

// The zero-copy column views below alias raw file bytes; a big-endian host
// would need byte-swapping reads instead (no such target exists for this
// reproduction's toolchain, so it is excluded up front rather than half
// supported).
static_assert(std::endian::native == std::endian::little,
              "the .omps reader/writer assumes a little-endian host");

inline constexpr char kMagic[8] = {'O', 'M', 'P', 'S', 'T', 'O', 'R', 'E'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 48;
inline constexpr std::size_t kSectionEntryBytes = 32;
inline constexpr std::size_t kIndexEntryBytes = 32;

/// Section kinds, in their on-disk table order.
enum class SectionKind : std::uint32_t {
  Dictionaries = 1,
  KeyColumns = 2,
  ConfigColumns = 3,
  StatColumns = 4,
  Runtimes = 5,
  Errors = 6,
  Index = 7,
};

inline constexpr std::uint32_t kSectionCount = 7;

/// Exclusive upper bounds of the packed enum columns; codes at or above the
/// bound are corruption (an enum cast from a garbled byte is UB-adjacent,
/// so the reader range-checks before casting).
inline constexpr std::uint8_t kPlacesKinds = 6;
inline constexpr std::uint8_t kBindKinds = 6;
inline constexpr std::uint8_t kScheduleKinds = 4;
inline constexpr std::uint8_t kLibraryModes = 3;
inline constexpr std::uint8_t kReductionMethods = 4;
inline constexpr std::uint8_t kSampleStatuses = 3;

/// Section checksum: FNV-1a-style xor-multiply over 64-bit words (with the
/// length folded in up front so a truncated-but-zero-padded block cannot
/// collide with the original). Word-wise instead of byte-wise because a full
/// load() checksums every section — ~80 bytes per sample — and the byte-serial
/// multiply chain of textbook FNV would dominate the load time the store
/// exists to eliminate. Any flipped byte changes its word and therefore the
/// digest: each step is h = (h ^ w) * odd-constant, injective in w.
inline std::uint64_t checksum_bytes(const void* data, std::size_t bytes) {
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL ^ (kPrime * bytes);
  std::size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, p + i, 8);
    h = (h ^ word) * kPrime;
  }
  if (i < bytes) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p + i, bytes - i);
    h = (h ^ tail) * kPrime;
  }
  return h;
}

/// Round `bytes` up to the section alignment.
inline std::size_t pad8(std::size_t bytes) { return (bytes + 7u) & ~std::size_t{7}; }

// ---- column-array offsets within the fixed-layout sections -----------------
// One definition shared by the writer and the reader, so the two can never
// disagree about where an array lives. All offsets are relative to the
// section start; `bytes` is the exact (padded) section size for n samples.

struct KeyColumnsLayout {
  std::size_t arch, app, input, threads, bytes;
};

inline KeyColumnsLayout key_columns_layout(std::size_t n) {
  KeyColumnsLayout l{};
  l.arch = 0;
  l.app = 2 * n;
  l.input = 4 * n;
  l.threads = (6 * n + 3u) & ~std::size_t{3};
  l.bytes = pad8(l.threads + 4 * n);
  return l;
}

struct ConfigColumnsLayout {
  std::size_t blocktime, num_threads, chunk, align, attempts;
  std::size_t runtime_count, suite, kind;
  std::size_t places, bind, schedule, library, reduction, status, is_default;
  std::size_t bytes;
};

inline ConfigColumnsLayout config_columns_layout(std::size_t n) {
  ConfigColumnsLayout l{};
  std::size_t at = 0;
  l.blocktime = at;      at += 8 * n;
  l.num_threads = at;    at += 4 * n;
  l.chunk = at;          at += 4 * n;
  l.align = at;          at += 4 * n;
  l.attempts = at;       at += 4 * n;
  l.runtime_count = at;  at += 2 * n;
  l.suite = at;          at += 2 * n;
  l.kind = at;           at += 2 * n;
  l.places = at;         at += n;
  l.bind = at;           at += n;
  l.schedule = at;       at += n;
  l.library = at;        at += n;
  l.reduction = at;      at += n;
  l.status = at;         at += n;
  l.is_default = at;     at += n;
  l.bytes = pad8(at);
  return l;
}

struct StatColumnsLayout {
  std::size_t mean, deflt, speedup, bytes;
};

inline StatColumnsLayout stat_columns_layout(std::size_t n) {
  return StatColumnsLayout{0, 8 * n, 16 * n, 24 * n};
}

inline std::size_t runtimes_bytes(std::size_t n, std::size_t reps) {
  return 8 * n * reps;
}

inline std::size_t errors_bytes(std::size_t n) { return pad8(4 * n); }

// ---- little-endian scalar append/load helpers -------------------------------
// On the (asserted) little-endian host these are plain memcpys, but keeping
// them funneled through one place documents the on-disk byte order.

template <typename T>
void append_scalar(std::string& out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));
}

template <typename T>
T load_scalar(const unsigned char* at) {
  T value;
  std::memcpy(&value, at, sizeof(T));
  return value;
}

}  // namespace omptune::store
