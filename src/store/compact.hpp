#pragma once

// Journal compaction: fold the many per-setting CSV entries a journaled
// study leaves behind into one indexed .omps store. This is the bridge from
// the fault-tolerant collection format (one small atomic file per setting)
// to the query format (one mmap-able file per study) — analyze/recommend
// then parse no CSV at all.

#include <cstddef>
#include <string>

namespace omptune::sweep {
class StudyJournal;
}

namespace omptune::store {

/// Outcome tally of one compaction run.
struct CompactReport {
  std::size_t entries = 0;            ///< journal CSV files folded in
  std::size_t samples_in = 0;         ///< rows read across all entries
  std::size_t samples_out = 0;        ///< rows written to the store
  std::size_t duplicates_dropped = 0; ///< rows dropped as duplicate identities
  std::size_t replaced = 0;           ///< kept rows upgraded by a better status
  std::size_t quarantined = 0;        ///< quarantined rows in the output
};

/// Compact every completed entry of `journal` into an .omps store at
/// `out_path` (atomic replace). Entries are concatenated in file-name order
/// and deduplicated by measurement identity, best status winning — the
/// behavior StudyJournal::compact documents. Throws
/// util::DataCorruptionError if any entry fails CSV validation.
CompactReport compact_journal(const sweep::StudyJournal& journal,
                              const std::string& out_path);

}  // namespace omptune::store
