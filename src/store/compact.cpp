#include "store/compact.hpp"

#include "store/writer.hpp"
#include "sweep/dataset.hpp"
#include "sweep/journal.hpp"
#include "util/fs.hpp"

namespace omptune::store {

CompactReport compact_journal(const sweep::StudyJournal& journal,
                              const std::string& out_path) {
  CompactReport report;
  sweep::Dataset combined;
  for (const std::string& name : journal.entry_files()) {
    sweep::Dataset entry =
        sweep::Dataset::load_csv_file(util::path_join(journal.directory(), name));
    report.samples_in += entry.size();
    combined.append(std::move(entry));
    ++report.entries;
  }

  sweep::Dataset::DedupeReport dedupe;
  sweep::Dataset deduped = combined.deduped(&dedupe);
  report.duplicates_dropped = dedupe.duplicates;
  report.replaced = dedupe.replaced;
  report.samples_out = deduped.size();
  report.quarantined = deduped.quarantined_count();

  write_store(out_path, deduped);
  return report;
}

}  // namespace omptune::store

namespace omptune::sweep {

// Declared in sweep/journal.hpp, implemented here so the base sweep library
// carries no dependency on the store format.
store::CompactReport StudyJournal::compact(const std::string& out_path) const {
  return store::compact_journal(*this, out_path);
}

}  // namespace omptune::sweep
