#include "store/reader.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "store/format.hpp"
#include "util/errors.hpp"
#include "util/thread_pool.hpp"

namespace omptune::store {

namespace {

/// Human name of a section kind, for error messages.
const char* section_name(std::size_t zero_based_kind) {
  static const char* const names[kSectionCount] = {
      "dictionaries", "key-columns", "config-columns", "stat-columns",
      "runtimes",     "errors",      "index"};
  return zero_based_kind < kSectionCount ? names[zero_based_kind] : "unknown";
}

constexpr std::size_t kDictCount = 6;

const char* dict_name(std::size_t dict) {
  static const char* const names[kDictCount] = {"arch", "app",  "input",
                                                "suite", "kind", "error"};
  return dict < kDictCount ? names[dict] : "unknown";
}

}  // namespace

void StoreReader::corrupt(std::uint64_t offset, const std::string& message) const {
  if (generation_ != 0) {
    throw util::DataCorruptionError(
        file_.path(), offset,
        "generation " + std::to_string(generation_) + ": " + message);
  }
  throw util::DataCorruptionError(file_.path(), offset, message);
}

const unsigned char* StoreReader::at(const Section& section,
                                     std::size_t offset) const {
  return file_.data() + section.offset + offset;
}

void StoreReader::verify_section_checksum(const Section& section,
                                          const char* name) const {
  const std::uint64_t actual =
      checksum_bytes(file_.data() + section.offset, section.bytes);
  if (actual != section.checksum) {
    corrupt(section.offset, std::string(name) + " section checksum mismatch " +
                                "(declared at offset " +
                                std::to_string(section.table_entry_offset + 24) +
                                ")");
  }
}

namespace {

/// Open the backing file, converting any open/stat/read failure into the
/// typed StoreOpenError so callers (most importantly the serving layer's
/// hot-swap) can attribute it to a path and generation without string
/// matching. Validation failures are NOT converted — those carry byte
/// offsets and stay DataCorruptionError.
util::MappedFile open_store_file(const std::string& path,
                                 std::uint64_t generation) {
  try {
    return util::MappedFile(path);
  } catch (const std::runtime_error& error) {
    throw util::StoreOpenError(path, generation, error.what());
  }
}

}  // namespace

StoreReader::StoreReader(const std::string& path) : StoreReader(path, 0) {}

StoreReader::StoreReader(const std::string& path, std::uint64_t generation)
    : file_(open_store_file(path, generation)), generation_(generation) {
  const unsigned char* data = file_.data();
  const std::size_t size = file_.size();

  // ---- header ----
  if (size < kHeaderBytes) {
    corrupt(0, "file is " + std::to_string(size) +
                   " bytes, smaller than the " + std::to_string(kHeaderBytes) +
                   "-byte header");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    corrupt(0, "bad magic (not an .omps store)");
  }
  const auto version = load_scalar<std::uint32_t>(data + 8);
  if (version != kVersion) {
    corrupt(8, "unsupported store version " + std::to_string(version) +
                   " (this reader handles version " + std::to_string(kVersion) +
                   ")");
  }
  const auto header_bytes = load_scalar<std::uint32_t>(data + 12);
  const auto declared_file_bytes = load_scalar<std::uint64_t>(data + 16);
  const auto sample_count = load_scalar<std::uint64_t>(data + 24);
  const auto reps = load_scalar<std::uint32_t>(data + 32);
  const auto section_count = load_scalar<std::uint32_t>(data + 36);
  const auto declared_header_checksum = load_scalar<std::uint64_t>(data + 40);

  if (section_count != kSectionCount) {
    corrupt(36, "version-1 store must have " + std::to_string(kSectionCount) +
                    " sections, header declares " + std::to_string(section_count));
  }
  if (header_bytes != kHeaderBytes + kSectionCount * kSectionEntryBytes) {
    corrupt(12, "header_bytes is " + std::to_string(header_bytes) +
                    ", expected " +
                    std::to_string(kHeaderBytes +
                                   kSectionCount * kSectionEntryBytes));
  }
  if (declared_file_bytes != size) {
    corrupt(16, "header declares " + std::to_string(declared_file_bytes) +
                    " file bytes but the file is " + std::to_string(size) +
                    " (truncated or padded)");
  }
  if (size < header_bytes) {
    corrupt(12, "file ends inside the section table");
  }
  // Sanity-bound the counts before any size arithmetic: key columns cost 10
  // bytes per sample and a runtime slot 8, so counts beyond these bounds
  // cannot be honest and would otherwise risk overflow in the checks below.
  if (sample_count > size / 10) {
    corrupt(24, "sample_count " + std::to_string(sample_count) +
                    " exceeds what a " + std::to_string(size) +
                    "-byte file can hold");
  }
  if (sample_count > 0 && reps > size / (8 * sample_count)) {
    corrupt(32, "reps " + std::to_string(reps) +
                    " exceeds what the file can hold for " +
                    std::to_string(sample_count) + " samples");
  }
  sample_count_ = static_cast<std::size_t>(sample_count);
  reps_ = reps;

  {
    std::string header_copy(reinterpret_cast<const char*>(data), header_bytes);
    const std::uint64_t zero = 0;
    std::memcpy(header_copy.data() + 40, &zero, sizeof(zero));
    const std::uint64_t actual =
        checksum_bytes(header_copy.data(), header_copy.size());
    if (actual != declared_header_checksum) {
      corrupt(40, "header checksum mismatch");
    }
  }

  // ---- section table: the 7 kinds in order, packed with no gaps ----
  std::uint64_t expected_offset = header_bytes;
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    const std::uint64_t entry = kHeaderBytes + i * kSectionEntryBytes;
    const auto kind = load_scalar<std::uint32_t>(data + entry);
    if (kind != i + 1) {
      corrupt(entry, "section table entry " + std::to_string(i) +
                         " has kind " + std::to_string(kind) + ", expected " +
                         std::to_string(i + 1) + " (" + section_name(i) + ")");
    }
    Section& section = sections_[i];
    section.table_entry_offset = entry;
    section.offset = load_scalar<std::uint64_t>(data + entry + 8);
    section.bytes = load_scalar<std::uint64_t>(data + entry + 16);
    section.checksum = load_scalar<std::uint64_t>(data + entry + 24);
    if (section.offset != expected_offset) {
      corrupt(entry + 8, std::string(section_name(i)) + " section at offset " +
                             std::to_string(section.offset) + ", expected " +
                             std::to_string(expected_offset) +
                             " (sections must be packed back-to-back)");
    }
    if (section.offset % 8 != 0) {
      corrupt(entry + 8, std::string(section_name(i)) +
                             " section offset is not 8-byte aligned");
    }
    if (section.bytes > size - section.offset) {
      corrupt(entry + 16, std::string(section_name(i)) +
                              " section overruns the file");
    }
    expected_offset += section.bytes;
  }
  if (expected_offset != size) {
    corrupt(size - 1 < kHeaderBytes ? 0 : size - 1,
            "sections cover " + std::to_string(expected_offset) + " of " +
                std::to_string(size) + " file bytes");
  }

  // ---- fixed-layout section sizes are fully determined by (n, reps) ----
  const std::size_t n = sample_count_;
  const struct {
    SectionKind kind;
    std::uint64_t expected;
  } expected_sizes[] = {
      {SectionKind::KeyColumns, key_columns_layout(n).bytes},
      {SectionKind::ConfigColumns, config_columns_layout(n).bytes},
      {SectionKind::StatColumns, stat_columns_layout(n).bytes},
      {SectionKind::Runtimes, runtimes_bytes(n, reps_)},
      {SectionKind::Errors, errors_bytes(n)},
  };
  for (const auto& check : expected_sizes) {
    const std::size_t i = static_cast<std::size_t>(check.kind) - 1;
    if (sections_[i].bytes != check.expected) {
      corrupt(sections_[i].table_entry_offset + 16,
              std::string(section_name(i)) + " section is " +
                  std::to_string(sections_[i].bytes) + " bytes, expected " +
                  std::to_string(check.expected) + " for " + std::to_string(n) +
                  " samples");
    }
  }

  // ---- metadata sections a query depends on: checksum, then parse ----
  const Section& dict_section =
      sections_[static_cast<std::size_t>(SectionKind::Dictionaries) - 1];
  const Section& key_section =
      sections_[static_cast<std::size_t>(SectionKind::KeyColumns) - 1];
  const Section& index_section =
      sections_[static_cast<std::size_t>(SectionKind::Index) - 1];
  verify_section_checksum(dict_section, "dictionaries");
  verify_section_checksum(key_section, "key-columns");
  verify_section_checksum(index_section, "index");

  // Dictionaries: six length-prefixed string tables, then zero padding.
  {
    std::size_t cursor = 0;
    const auto need = [&](std::size_t bytes, const char* what) {
      if (bytes > dict_section.bytes - cursor) {
        corrupt(dict_section.offset + cursor,
                std::string("dictionary section ends inside ") + what);
      }
    };
    for (std::size_t d = 0; d < kDictCount; ++d) {
      need(4, "a table count");
      const auto count = load_scalar<std::uint32_t>(at(dict_section, cursor));
      cursor += 4;
      if (d < 5 && count > 0x10000u) {
        corrupt(dict_section.offset + cursor - 4,
                std::string(dict_name(d)) + " dictionary declares " +
                    std::to_string(count) + " entries, above the u16 code space");
      }
      dicts_[d].reserve(count);
      for (std::uint32_t e = 0; e < count; ++e) {
        need(4, "a string length");
        const auto len = load_scalar<std::uint32_t>(at(dict_section, cursor));
        cursor += 4;
        need(len, "a string body");
        dicts_[d].emplace_back(
            reinterpret_cast<const char*>(at(dict_section, cursor)), len);
        cursor += len;
      }
    }
    for (; cursor < dict_section.bytes; ++cursor) {
      if (*at(dict_section, cursor) != 0) {
        corrupt(dict_section.offset + cursor,
                "non-zero byte in dictionary section padding");
      }
    }
  }

  // Key columns: every code must resolve in its dictionary.
  {
    const KeyColumnsLayout layout = key_columns_layout(n);
    const struct {
      std::size_t column;
      std::size_t dict;
    } columns[] = {{layout.arch, 0}, {layout.app, 1}, {layout.input, 2}};
    for (const auto& col : columns) {
      for (std::size_t row = 0; row < n; ++row) {
        const auto code =
            load_scalar<std::uint16_t>(at(key_section, col.column + 2 * row));
        if (code >= dicts_[col.dict].size()) {
          corrupt(key_section.offset + col.column + 2 * row,
                  std::string(dict_name(col.dict)) + " code " +
                      std::to_string(code) + " in row " + std::to_string(row) +
                      " is outside the " + std::to_string(dicts_[col.dict].size()) +
                      "-entry dictionary");
        }
      }
    }
  }

  // Index: runs must partition [0, n) in order with in-range codes.
  {
    if (index_section.bytes < 8) {
      corrupt(index_section.offset, "index section too small for its count");
    }
    const auto group_count = load_scalar<std::uint64_t>(at(index_section, 0));
    if (index_section.bytes != 8 + group_count * kIndexEntryBytes) {
      corrupt(index_section.offset,
              "index declares " + std::to_string(group_count) +
                  " entries but the section is " +
                  std::to_string(index_section.bytes) + " bytes");
    }
    index_.reserve(static_cast<std::size_t>(group_count));
    std::uint64_t next_row = 0;
    for (std::uint64_t g = 0; g < group_count; ++g) {
      const std::size_t entry = 8 + static_cast<std::size_t>(g) * kIndexEntryBytes;
      IndexRun run{};
      run.arch = load_scalar<std::uint16_t>(at(index_section, entry));
      run.app = load_scalar<std::uint16_t>(at(index_section, entry + 2));
      run.input = load_scalar<std::uint16_t>(at(index_section, entry + 4));
      run.threads = load_scalar<std::int32_t>(at(index_section, entry + 8));
      run.first_row = load_scalar<std::uint64_t>(at(index_section, entry + 16));
      run.row_count = load_scalar<std::uint64_t>(at(index_section, entry + 24));
      if (run.arch >= dicts_[0].size() || run.app >= dicts_[1].size() ||
          run.input >= dicts_[2].size()) {
        corrupt(index_section.offset + entry,
                "index entry " + std::to_string(g) +
                    " has an out-of-range dictionary code");
      }
      if (run.first_row != next_row || run.row_count == 0 ||
          run.row_count > n - run.first_row) {
        corrupt(index_section.offset + entry,
                "index entry " + std::to_string(g) + " covers rows [" +
                    std::to_string(run.first_row) + ", " +
                    std::to_string(run.first_row + run.row_count) +
                    "), expected the partition to resume at row " +
                    std::to_string(next_row));
      }
      next_row = run.first_row + run.row_count;
      index_.push_back(run);
    }
    if (next_row != n) {
      corrupt(index_section.offset,
              "index covers " + std::to_string(next_row) + " of " +
                  std::to_string(n) + " rows");
    }
  }
}

std::vector<SettingEntry> StoreReader::settings() const {
  std::vector<SettingEntry> out;
  out.reserve(index_.size());
  for (const IndexRun& run : index_) {
    SettingEntry entry;
    entry.arch = dicts_[0][run.arch];
    entry.app = dicts_[1][run.app];
    entry.input = dicts_[2][run.input];
    entry.threads = run.threads;
    entry.first_row = static_cast<std::size_t>(run.first_row);
    entry.rows = static_cast<std::size_t>(run.row_count);
    out.push_back(std::move(entry));
  }
  return out;
}

std::uint16_t StoreReader::dict_code(const Section& section,
                                     std::size_t column_offset, std::size_t row,
                                     std::size_t dict, const char* what) const {
  const std::size_t offset = column_offset + 2 * row;
  const auto code = load_scalar<std::uint16_t>(at(section, offset));
  if (code >= dicts_[dict].size()) {
    corrupt(section.offset + offset,
            std::string(what) + " code " + std::to_string(code) + " in row " +
                std::to_string(row) + " is outside the " +
                std::to_string(dicts_[dict].size()) + "-entry dictionary");
  }
  return code;
}

sweep::Sample StoreReader::materialize_row(std::size_t row) const {
  const std::size_t n = sample_count_;
  const Section& key_section =
      sections_[static_cast<std::size_t>(SectionKind::KeyColumns) - 1];
  const Section& config_section =
      sections_[static_cast<std::size_t>(SectionKind::ConfigColumns) - 1];
  const Section& stat_section =
      sections_[static_cast<std::size_t>(SectionKind::StatColumns) - 1];
  const Section& runtime_section =
      sections_[static_cast<std::size_t>(SectionKind::Runtimes) - 1];
  const Section& error_section =
      sections_[static_cast<std::size_t>(SectionKind::Errors) - 1];
  const KeyColumnsLayout keys = key_columns_layout(n);
  const ConfigColumnsLayout cfg = config_columns_layout(n);
  const StatColumnsLayout stats = stat_columns_layout(n);

  sweep::Sample s;
  // Key columns were fully validated at open; load without rechecking.
  s.arch = dicts_[0][load_scalar<std::uint16_t>(at(key_section, keys.arch + 2 * row))];
  s.app = dicts_[1][load_scalar<std::uint16_t>(at(key_section, keys.app + 2 * row))];
  s.input =
      dicts_[2][load_scalar<std::uint16_t>(at(key_section, keys.input + 2 * row))];
  s.threads = load_scalar<std::int32_t>(at(key_section, keys.threads + 4 * row));

  // Config columns are outside the open-time checksums (a query skips the
  // bulk blocks), so every value materialized here is range-checked.
  s.suite = dicts_[3][dict_code(config_section, cfg.suite, row, 3, "suite")];
  s.kind = dicts_[4][dict_code(config_section, cfg.kind, row, 4, "kind")];
  s.config.blocktime_ms =
      load_scalar<std::int64_t>(at(config_section, cfg.blocktime + 8 * row));
  s.config.num_threads =
      load_scalar<std::int32_t>(at(config_section, cfg.num_threads + 4 * row));
  s.config.chunk = load_scalar<std::int32_t>(at(config_section, cfg.chunk + 4 * row));
  s.config.align_alloc =
      load_scalar<std::int32_t>(at(config_section, cfg.align + 4 * row));
  s.attempts = load_scalar<std::int32_t>(at(config_section, cfg.attempts + 4 * row));

  const auto enum_byte = [&](std::size_t column, std::uint8_t bound,
                             const char* what) {
    const std::size_t offset = column + row;
    const std::uint8_t value = *at(config_section, offset);
    if (value >= bound) {
      corrupt(config_section.offset + offset,
              std::string(what) + " value " + std::to_string(value) +
                  " in row " + std::to_string(row) + " is outside [0, " +
                  std::to_string(bound) + ")");
    }
    return value;
  };
  s.config.places =
      static_cast<arch::PlacesKind>(enum_byte(cfg.places, kPlacesKinds, "places"));
  s.config.bind =
      static_cast<arch::BindKind>(enum_byte(cfg.bind, kBindKinds, "bind"));
  s.config.schedule = static_cast<rt::ScheduleKind>(
      enum_byte(cfg.schedule, kScheduleKinds, "schedule"));
  s.config.library = static_cast<rt::LibraryMode>(
      enum_byte(cfg.library, kLibraryModes, "library"));
  s.config.reduction = static_cast<rt::ReductionMethod>(
      enum_byte(cfg.reduction, kReductionMethods, "reduction"));
  s.status = static_cast<sweep::SampleStatus>(
      enum_byte(cfg.status, kSampleStatuses, "status"));
  s.is_default = enum_byte(cfg.is_default, 2, "is_default") != 0;

  const auto stat = [&](std::size_t column, const char* what) {
    const std::size_t offset = column + 8 * row;
    const double value = load_scalar<double>(at(stat_section, offset));
    if (!std::isfinite(value)) {
      corrupt(stat_section.offset + offset, std::string(what) + " in row " +
                                                std::to_string(row) +
                                                " is not finite");
    }
    return value;
  };
  s.mean_runtime = stat(stats.mean, "mean_runtime");
  s.default_runtime = stat(stats.deflt, "default_runtime");
  s.speedup = stat(stats.speedup, "speedup");

  const auto runtime_count = load_scalar<std::uint16_t>(
      at(config_section, cfg.runtime_count + 2 * row));
  if (runtime_count > reps_) {
    corrupt(config_section.offset + cfg.runtime_count + 2 * row,
            "row " + std::to_string(row) + " declares " +
                std::to_string(runtime_count) + " runtimes, store holds " +
                std::to_string(reps_) + " slots per row");
  }
  s.runtimes.reserve(runtime_count);
  for (std::uint16_t r = 0; r < runtime_count; ++r) {
    const std::size_t offset = 8 * (row * reps_ + r);
    const double value = load_scalar<double>(at(runtime_section, offset));
    if (!std::isfinite(value)) {
      corrupt(runtime_section.offset + offset,
              "runtime " + std::to_string(r) + " in row " + std::to_string(row) +
                  " is not finite");
    }
    s.runtimes.push_back(value);
  }
  runtime_bytes_touched_.fetch_add(8u * runtime_count,
                                   std::memory_order_relaxed);

  const std::size_t error_offset = 4 * row;
  const auto error_code = load_scalar<std::uint32_t>(at(error_section, error_offset));
  if (error_code >= dicts_[5].size()) {
    corrupt(error_section.offset + error_offset,
            "error code " + std::to_string(error_code) + " in row " +
                std::to_string(row) + " is outside the " +
                std::to_string(dicts_[5].size()) + "-entry dictionary");
  }
  s.error = dicts_[5][error_code];
  return s;
}

sweep::Dataset StoreReader::load(const util::ThreadPool* pool) const {
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    verify_section_checksum(sections_[i], section_name(i));
  }
  std::vector<sweep::Sample> samples(sample_count_);
  util::parallel_for(pool, sample_count_, 1024,
                     [&](std::size_t begin, std::size_t end, std::size_t) {
                       for (std::size_t row = begin; row < end; ++row) {
                         samples[row] = materialize_row(row);
                       }
                     });
  return sweep::Dataset(std::move(samples));
}

void StoreReader::ensure_scan_validated() const {
  std::call_once(scan_validated_, [this] {
    // The metadata sections (dictionaries, key columns, index) were
    // verified at open; scan additionally needs the bulk blocks its slices
    // alias to be trustworthy — in particular the enum bytes SettingSlice
    // casts without per-value range checks.
    const SectionKind bulk[] = {SectionKind::ConfigColumns,
                                SectionKind::StatColumns, SectionKind::Runtimes,
                                SectionKind::Errors};
    for (const SectionKind kind : bulk) {
      const std::size_t i = static_cast<std::size_t>(kind) - 1;
      verify_section_checksum(sections_[i], section_name(i));
    }
    // A checksummed store can still have been *written* with out-of-range
    // codes only by a buggy writer, never by bit rot — but the cost of
    // closing that hole is one linear pass over 7 byte columns, so close it.
    const ConfigColumnsLayout cfg = config_columns_layout(sample_count_);
    const Section& config_section =
        sections_[static_cast<std::size_t>(SectionKind::ConfigColumns) - 1];
    const struct {
      std::size_t column;
      std::uint8_t bound;
      const char* what;
    } enum_columns[] = {
        {cfg.places, kPlacesKinds, "places"},
        {cfg.bind, kBindKinds, "bind"},
        {cfg.schedule, kScheduleKinds, "schedule"},
        {cfg.library, kLibraryModes, "library"},
        {cfg.reduction, kReductionMethods, "reduction"},
        {cfg.status, kSampleStatuses, "status"},
        {cfg.is_default, 2, "is_default"},
    };
    for (const auto& col : enum_columns) {
      for (std::size_t row = 0; row < sample_count_; ++row) {
        const std::uint8_t value = *at(config_section, col.column + row);
        if (value >= col.bound) {
          corrupt(config_section.offset + col.column + row,
                  std::string(col.what) + " value " + std::to_string(value) +
                      " in row " + std::to_string(row) + " is outside [0, " +
                      std::to_string(col.bound) + ")");
        }
      }
    }
    for (std::size_t row = 0; row < sample_count_; ++row) {
      const auto count = load_scalar<std::uint16_t>(
          at(config_section, cfg.runtime_count + 2 * row));
      if (count > reps_) {
        corrupt(config_section.offset + cfg.runtime_count + 2 * row,
                "row " + std::to_string(row) + " declares " +
                    std::to_string(count) + " runtimes, store holds " +
                    std::to_string(reps_) + " slots per row");
      }
    }
    // The checksum pass read the whole runtime section; count it once.
    runtime_bytes_touched_.fetch_add(
        sections_[static_cast<std::size_t>(SectionKind::Runtimes) - 1].bytes,
        std::memory_order_relaxed);
  });
}

SettingSlice StoreReader::setting_slice(std::size_t i) const {
  const IndexRun& run = index_.at(i);
  const std::size_t n = sample_count_;
  const std::size_t first = static_cast<std::size_t>(run.first_row);
  const Section& config_section =
      sections_[static_cast<std::size_t>(SectionKind::ConfigColumns) - 1];
  const Section& stat_section =
      sections_[static_cast<std::size_t>(SectionKind::StatColumns) - 1];
  const Section& runtime_section =
      sections_[static_cast<std::size_t>(SectionKind::Runtimes) - 1];
  const Section& error_section =
      sections_[static_cast<std::size_t>(SectionKind::Errors) - 1];
  const ConfigColumnsLayout cfg = config_columns_layout(n);
  const StatColumnsLayout stats = stat_columns_layout(n);

  const auto f64 = [&](const Section& s, std::size_t column, std::size_t stride) {
    return reinterpret_cast<const double*>(at(s, column + stride * first));
  };

  SettingSlice slice;
  slice.arch = &dicts_[0][run.arch];
  slice.app = &dicts_[1][run.app];
  slice.input = &dicts_[2][run.input];
  slice.threads = run.threads;
  slice.setting_index = i;
  slice.first_row = first;
  slice.rows = static_cast<std::size_t>(run.row_count);
  slice.reps = reps_;
  slice.mean_runtime = f64(stat_section, stats.mean, 8);
  slice.default_runtime = f64(stat_section, stats.deflt, 8);
  slice.speedup = f64(stat_section, stats.speedup, 8);
  slice.runtimes =
      reinterpret_cast<const double*>(at(runtime_section, 8 * first * reps_));
  slice.runtime_count = reinterpret_cast<const std::uint16_t*>(
      at(config_section, cfg.runtime_count + 2 * first));
  slice.blocktime = reinterpret_cast<const std::int64_t*>(
      at(config_section, cfg.blocktime + 8 * first));
  slice.num_threads = reinterpret_cast<const std::int32_t*>(
      at(config_section, cfg.num_threads + 4 * first));
  slice.chunk = reinterpret_cast<const std::int32_t*>(
      at(config_section, cfg.chunk + 4 * first));
  slice.align = reinterpret_cast<const std::int32_t*>(
      at(config_section, cfg.align + 4 * first));
  slice.attempts = reinterpret_cast<const std::int32_t*>(
      at(config_section, cfg.attempts + 4 * first));
  slice.suite = reinterpret_cast<const std::uint16_t*>(
      at(config_section, cfg.suite + 2 * first));
  slice.kind = reinterpret_cast<const std::uint16_t*>(
      at(config_section, cfg.kind + 2 * first));
  slice.places = at(config_section, cfg.places + first);
  slice.bind = at(config_section, cfg.bind + first);
  slice.schedule = at(config_section, cfg.schedule + first);
  slice.library = at(config_section, cfg.library + first);
  slice.reduction = at(config_section, cfg.reduction + first);
  slice.status = at(config_section, cfg.status + first);
  slice.is_default = at(config_section, cfg.is_default + first);
  slice.error =
      reinterpret_cast<const std::uint32_t*>(at(error_section, 4 * first));
  return slice;
}

void StoreReader::scan(const std::function<void(const SettingSlice&)>& visit,
                       const util::ThreadPool* pool) const {
  ensure_scan_validated();
  util::parallel_for(pool, index_.size(), 1,
                     [&](std::size_t begin, std::size_t, std::size_t) {
                       visit(setting_slice(begin));
                     });
}

sweep::Dataset StoreReader::query(const StoreQuery& query) const {
  // Resolve query strings to dictionary codes once; a value absent from a
  // dictionary matches no row, which is an empty result, not an error.
  const auto resolve = [&](const std::optional<std::string>& value,
                           std::size_t dict) -> std::optional<std::uint32_t> {
    if (!value) return std::nullopt;
    for (std::size_t i = 0; i < dicts_[dict].size(); ++i) {
      if (dicts_[dict][i] == *value) return static_cast<std::uint32_t>(i);
    }
    return std::uint32_t{0x10000};  // outside the u16 code space: matches nothing
  };
  const auto arch_code = resolve(query.arch, 0);
  const auto app_code = resolve(query.app, 1);
  const auto input_code = resolve(query.input, 2);

  sweep::Dataset out;
  for (const IndexRun& run : index_) {
    if (arch_code && run.arch != *arch_code) continue;
    if (app_code && run.app != *app_code) continue;
    if (input_code && run.input != *input_code) continue;
    if (query.threads && run.threads != *query.threads) continue;
    const std::size_t first = static_cast<std::size_t>(run.first_row);
    const std::size_t rows = static_cast<std::size_t>(run.row_count);
    for (std::size_t row = first; row < first + rows; ++row) {
      out.add(materialize_row(row));
    }
  }
  return out;
}

}  // namespace omptune::store

namespace omptune::sweep {

// Declared in sweep/dataset.hpp, implemented here so the base sweep library
// carries no dependency on the store format.
Dataset Dataset::load_store(const std::string& path) {
  return store::StoreReader(path).load();
}

}  // namespace omptune::sweep
