#pragma once

// Tiered (LSM-style) store compaction: merge many small per-shard .omps
// stores into one large store through levels of bounded fan-in, under the
// same Ok > Retried > Quarantined dedupe rule as flat compaction.
//
// Why tiers instead of loading everything at once: a coordinator-scale
// corpus arrives as hundreds of shard stores, and a single flat merge would
// hold every sample in memory simultaneously. Merging `fan_in` stores at a
// time bounds peak memory to one group per level while producing a result
// PROVABLY identical to the flat merge: the dedupe rule keeps the
// best-status occurrence at the identity's first-appearance position, which
// is associative under consecutive grouping — so tier structure (which
// depends only on the input count) never leaks into the output bytes.
//
// Crash safety: every intermediate is written atomically into a scratch
// directory under a content-derived name (hash of the group's input bytes),
// and the final store is published with rename + parent-dir fsync. A
// compactor killed at ANY point either left the previous output intact or
// the new one — never a torn file — and a re-run reuses whatever valid
// intermediates survived, converging on a byte-identical result.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace omptune::store {

struct TieredOptions {
  /// Stores merged per group per level. >= 2.
  std::size_t fan_in = 8;
  /// Skip (with a warning) inputs that fail store validation instead of
  /// aborting the compaction; skipped inputs are tallied in the report.
  bool lenient = false;
  /// Scratch directory for intermediates; empty = "<out_path>.tiers".
  /// Created on demand, removed after successful publish unless
  /// keep_scratch.
  std::string scratch_dir;
  /// Leave intermediates behind after publish (crash-resume tests).
  bool keep_scratch = false;
  /// Receives one progress/warning line per event. Null = silent.
  std::function<void(const std::string&)> progress;
};

struct TieredReport {
  std::size_t inputs = 0;               ///< input stores offered
  std::size_t skipped_inputs = 0;       ///< inputs dropped under lenient
  std::size_t tiers = 0;                ///< merge levels executed
  std::size_t merges = 0;               ///< group merges executed (incl. reused)
  std::size_t reused_intermediates = 0; ///< valid intermediates adopted as-is
  std::size_t samples_in = 0;           ///< rows read from the input stores
  std::size_t samples_out = 0;          ///< rows in the published store
  std::size_t duplicates_dropped = 0;   ///< rows dropped as duplicate identities
  std::size_t replaced = 0;             ///< kept rows upgraded by a better status
  std::size_t quarantined = 0;          ///< quarantined rows in the output
  /// Scratch files from previous (crashed) runs whose content hash no
  /// longer matches any group this run — garbage-collected before publish
  /// so repeated crash/retry cycles cannot accumulate dead intermediates.
  std::size_t stale_intermediates_removed = 0;
};

/// Merge the .omps stores at `inputs` (in order) into one store at
/// `out_path`. Equivalent to loading all inputs in order, deduping by
/// status preference and writing the result — but executed in tiers of
/// `fan_in` with crash-safe intermediates and an atomic final publish.
/// Throws std::invalid_argument on empty inputs or fan_in < 2;
/// util::DataCorruptionError (naming file and offset) when an input or a
/// stale intermediate's replacement fails validation in strict mode.
TieredReport tiered_compact(const std::vector<std::string>& inputs,
                            const std::string& out_path,
                            const TieredOptions& options = {});

}  // namespace omptune::store
