#include "store/writer.hpp"

#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "store/format.hpp"
#include "util/fs.hpp"

namespace omptune::store {

namespace {

using sweep::Dataset;
using sweep::Sample;

/// First-appearance-ordered string dictionary.
struct Dict {
  std::vector<std::string> values;
  std::map<std::string, std::uint32_t> codes;

  std::uint32_t code(const std::string& value) {
    const auto [it, inserted] =
        codes.emplace(value, static_cast<std::uint32_t>(values.size()));
    if (inserted) values.push_back(value);
    return it->second;
  }
};

void append_dict(std::string& out, const Dict& dict) {
  append_scalar<std::uint32_t>(out, static_cast<std::uint32_t>(dict.values.size()));
  for (const std::string& value : dict.values) {
    append_scalar<std::uint32_t>(out, static_cast<std::uint32_t>(value.size()));
    out.append(value);
  }
}

std::uint16_t narrow16(std::uint32_t code, const char* what) {
  if (code > 0xFFFFu) {
    throw std::invalid_argument(std::string("write_store: more than 65535 distinct ") +
                                what + " values");
  }
  return static_cast<std::uint16_t>(code);
}

double finite_or_throw(double value, const char* what, std::size_t row) {
  if (!std::isfinite(value)) {
    throw std::invalid_argument("write_store: non-finite " + std::string(what) +
                                " in sample " + std::to_string(row));
  }
  return value;
}

void pad_to_8(std::string& out) { out.resize(pad8(out.size()), '\0'); }

/// Pad an in-section array boundary to `align` bytes.
void pad_to(std::string& out, std::size_t align) {
  while (out.size() % align != 0) out.push_back('\0');
}

}  // namespace

std::string serialize_store(const Dataset& dataset) {
  const std::vector<Sample>& samples = dataset.samples();
  const std::size_t n = samples.size();
  std::size_t reps = 0;
  for (const Sample& s : samples) reps = std::max(reps, s.runtimes.size());

  // ---- dictionaries (and per-sample codes, built in one pass) ----
  Dict arch_dict, app_dict, input_dict, suite_dict, kind_dict, error_dict;
  std::vector<std::uint16_t> arch_code(n), app_code(n), input_code(n);
  std::vector<std::uint16_t> suite_code(n), kind_code(n);
  std::vector<std::uint32_t> error_code(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Sample& s = samples[i];
    arch_code[i] = narrow16(arch_dict.code(s.arch), "arch");
    app_code[i] = narrow16(app_dict.code(s.app), "app");
    input_code[i] = narrow16(input_dict.code(s.input), "input");
    suite_code[i] = narrow16(suite_dict.code(s.suite), "suite");
    kind_code[i] = narrow16(kind_dict.code(s.kind), "kind");
    error_code[i] = error_dict.code(s.error);
  }

  std::string dictionaries;
  append_dict(dictionaries, arch_dict);
  append_dict(dictionaries, app_dict);
  append_dict(dictionaries, input_dict);
  append_dict(dictionaries, suite_dict);
  append_dict(dictionaries, kind_dict);
  append_dict(dictionaries, error_dict);
  pad_to_8(dictionaries);

  // ---- key columns ----
  std::string key_cols;
  for (std::size_t i = 0; i < n; ++i) append_scalar(key_cols, arch_code[i]);
  for (std::size_t i = 0; i < n; ++i) append_scalar(key_cols, app_code[i]);
  for (std::size_t i = 0; i < n; ++i) append_scalar(key_cols, input_code[i]);
  pad_to(key_cols, 4);
  for (std::size_t i = 0; i < n; ++i) {
    append_scalar<std::int32_t>(key_cols, samples[i].threads);
  }
  pad_to_8(key_cols);

  // ---- config columns (widest first so every array stays aligned) ----
  std::string config_cols;
  for (const Sample& s : samples) {
    append_scalar<std::int64_t>(config_cols, s.config.blocktime_ms);
  }
  for (const Sample& s : samples) {
    append_scalar<std::int32_t>(config_cols, s.config.num_threads);
  }
  for (const Sample& s : samples) {
    append_scalar<std::int32_t>(config_cols, s.config.chunk);
  }
  for (const Sample& s : samples) {
    append_scalar<std::int32_t>(config_cols, s.config.align_alloc);
  }
  for (const Sample& s : samples) {
    append_scalar<std::int32_t>(config_cols, s.attempts);
  }
  for (const Sample& s : samples) {
    append_scalar<std::uint16_t>(config_cols,
                                 static_cast<std::uint16_t>(s.runtimes.size()));
  }
  for (const Sample& s : samples) append_scalar(config_cols, suite_code[&s - samples.data()]);
  for (const Sample& s : samples) append_scalar(config_cols, kind_code[&s - samples.data()]);
  for (const Sample& s : samples) {
    append_scalar<std::uint8_t>(config_cols,
                                static_cast<std::uint8_t>(s.config.places));
  }
  for (const Sample& s : samples) {
    append_scalar<std::uint8_t>(config_cols, static_cast<std::uint8_t>(s.config.bind));
  }
  for (const Sample& s : samples) {
    append_scalar<std::uint8_t>(config_cols,
                                static_cast<std::uint8_t>(s.config.schedule));
  }
  for (const Sample& s : samples) {
    append_scalar<std::uint8_t>(config_cols,
                                static_cast<std::uint8_t>(s.config.library));
  }
  for (const Sample& s : samples) {
    append_scalar<std::uint8_t>(config_cols,
                                static_cast<std::uint8_t>(s.config.reduction));
  }
  for (const Sample& s : samples) {
    append_scalar<std::uint8_t>(config_cols, static_cast<std::uint8_t>(s.status));
  }
  for (const Sample& s : samples) {
    append_scalar<std::uint8_t>(config_cols, s.is_default ? 1 : 0);
  }
  pad_to_8(config_cols);

  // ---- stat columns ----
  std::string stat_cols;
  for (std::size_t i = 0; i < n; ++i) {
    append_scalar(stat_cols, finite_or_throw(samples[i].mean_runtime, "mean_runtime", i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    append_scalar(stat_cols,
                  finite_or_throw(samples[i].default_runtime, "default_runtime", i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    append_scalar(stat_cols, finite_or_throw(samples[i].speedup, "speedup", i));
  }

  // ---- runtimes (fixed stride, zero-padded like the CSV schema) ----
  std::string runtimes;
  runtimes.reserve(n * reps * sizeof(double));
  for (std::size_t i = 0; i < n; ++i) {
    const Sample& s = samples[i];
    for (std::size_t r = 0; r < reps; ++r) {
      append_scalar(runtimes,
                    r < s.runtimes.size()
                        ? finite_or_throw(s.runtimes[r], "runtime", i)
                        : 0.0);
    }
  }

  // ---- error codes ----
  std::string errors;
  for (std::size_t i = 0; i < n; ++i) append_scalar(errors, error_code[i]);
  pad_to_8(errors);

  // ---- index: runs of identical (arch, app, input, threads) keys ----
  struct Run {
    std::uint16_t arch, app, input;
    std::int32_t threads;
    std::uint64_t first_row, row_count;
  };
  std::vector<Run> runs;
  for (std::size_t i = 0; i < n; ++i) {
    const bool extends = !runs.empty() && runs.back().arch == arch_code[i] &&
                         runs.back().app == app_code[i] &&
                         runs.back().input == input_code[i] &&
                         runs.back().threads == samples[i].threads;
    if (extends) {
      ++runs.back().row_count;
    } else {
      runs.push_back(Run{arch_code[i], app_code[i], input_code[i],
                         samples[i].threads, i, 1});
    }
  }
  std::string index;
  append_scalar<std::uint64_t>(index, runs.size());
  for (const Run& run : runs) {
    append_scalar(index, run.arch);
    append_scalar(index, run.app);
    append_scalar(index, run.input);
    append_scalar<std::uint16_t>(index, 0);
    append_scalar(index, run.threads);
    append_scalar<std::uint32_t>(index, 0);
    append_scalar(index, run.first_row);
    append_scalar(index, run.row_count);
  }

  // The writer's append order and the shared layout helpers must agree;
  // catching a drift here turns a subtle reader bug into a loud writer one.
  if (key_cols.size() != key_columns_layout(n).bytes ||
      config_cols.size() != config_columns_layout(n).bytes ||
      stat_cols.size() != stat_columns_layout(n).bytes ||
      runtimes.size() != runtimes_bytes(n, reps) ||
      errors.size() != errors_bytes(n)) {
    throw std::logic_error("write_store: section layout drifted from format.hpp");
  }

  // ---- assemble header + section table + sections ----
  const std::string* sections[kSectionCount] = {
      &dictionaries, &key_cols, &config_cols, &stat_cols,
      &runtimes,     &errors,   &index};
  const SectionKind kinds[kSectionCount] = {
      SectionKind::Dictionaries, SectionKind::KeyColumns,
      SectionKind::ConfigColumns, SectionKind::StatColumns,
      SectionKind::Runtimes,      SectionKind::Errors,
      SectionKind::Index};

  const std::size_t header_bytes =
      kHeaderBytes + kSectionCount * kSectionEntryBytes;
  std::size_t file_bytes = header_bytes;
  for (const std::string* s : sections) file_bytes += s->size();

  std::string out;
  out.reserve(file_bytes);
  out.append(kMagic, sizeof(kMagic));
  append_scalar<std::uint32_t>(out, kVersion);
  append_scalar<std::uint32_t>(out, static_cast<std::uint32_t>(header_bytes));
  append_scalar<std::uint64_t>(out, file_bytes);
  append_scalar<std::uint64_t>(out, n);
  append_scalar<std::uint32_t>(out, static_cast<std::uint32_t>(reps));
  append_scalar<std::uint32_t>(out, kSectionCount);
  const std::size_t checksum_at = out.size();
  append_scalar<std::uint64_t>(out, 0);  // header checksum, patched below

  std::size_t offset = header_bytes;
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    append_scalar<std::uint32_t>(out, static_cast<std::uint32_t>(kinds[i]));
    append_scalar<std::uint32_t>(out, 0);
    append_scalar<std::uint64_t>(out, offset);
    append_scalar<std::uint64_t>(out, sections[i]->size());
    append_scalar<std::uint64_t>(out,
                                 checksum_bytes(sections[i]->data(), sections[i]->size()));
    offset += sections[i]->size();
  }

  const std::uint64_t header_checksum = checksum_bytes(out.data(), out.size());
  std::memcpy(out.data() + checksum_at, &header_checksum, sizeof(header_checksum));

  for (const std::string* s : sections) out.append(*s);
  return out;
}

void write_store(const std::string& path, const Dataset& dataset) {
  util::atomic_write_file(path, serialize_store(dataset));
}

}  // namespace omptune::store

namespace omptune::sweep {

// Declared in sweep/dataset.hpp, implemented here so the base sweep library
// carries no dependency on the store format.
void Dataset::save_store(const std::string& path) const {
  store::write_store(path, *this);
}

}  // namespace omptune::sweep
