#pragma once

// mmap-backed zero-copy reader for the .omps binary sample store.
//
// Opening a store validates the header, the section table, the string
// dictionaries, the key columns and the setting index — everything a query
// needs to trust, all metadata-sized. The bulk blocks (config/stat columns,
// runtime matrix) are NOT touched at open: an indexed query materializes
// only the rows whose (arch, app, input, threads) key matches, so a
// recommendation for one pair never reads the other settings' runtime
// blocks (the kernel never even pages them in). A full load() verifies
// every section checksum before materializing, making it the
// corruption-proof path for `analyze`-style whole-dataset consumers.
//
// Every validation failure throws util::DataCorruptionError carrying the
// file path and the byte offset of the offending structure.
//
// Thread-safety contract: after construction, a StoreReader is a read-only
// view and every const member — load(), query(), scan(), setting_slice(),
// settings() — may be called concurrently from any number of threads. The
// only mutable state is the runtime-bytes instrumentation counter (atomic)
// and the scan validation latch (std::once_flag); neither affects results.
// Construction and destruction are not synchronized against concurrent use
// of the same instance, as usual.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sweep/dataset.hpp"
#include "util/mmap_file.hpp"

namespace omptune::util {
class ThreadPool;
}

namespace omptune::store {

/// Conjunctive row filter over the indexed setting key; unset fields match
/// everything. An empty query selects the whole store.
struct StoreQuery {
  std::optional<std::string> arch;
  std::optional<std::string> app;
  std::optional<std::string> input;
  std::optional<int> threads;
};

/// One index entry: a run of rows sharing a setting key.
struct SettingEntry {
  std::string arch, app, input;
  int threads = 0;
  std::size_t first_row = 0;
  std::size_t rows = 0;
};

/// Zero-copy view of one setting's run of rows: every pointer aims straight
/// into the store mapping, offset to the run's first row, so an aggregation
/// walks contiguous typed columns without materializing a single Sample.
/// Valid exactly as long as the StoreReader that produced it. Row indices
/// below are run-relative: 0 .. rows-1.
struct SettingSlice {
  const std::string* arch = nullptr;   ///< dictionary-owned key strings
  const std::string* app = nullptr;
  const std::string* input = nullptr;
  std::int32_t threads = 0;
  std::size_t setting_index = 0;       ///< position in the embedded index
  std::size_t first_row = 0;           ///< absolute row of the run's start
  std::size_t rows = 0;
  std::size_t reps = 0;                ///< runtime slots per row

  // Stat columns (f64).
  const double* mean_runtime = nullptr;
  const double* default_runtime = nullptr;
  const double* speedup = nullptr;
  // Runtime matrix: row i's measurements at runtimes[i * reps], of which
  // runtime_count[i] are real (the rest are zero padding).
  const double* runtimes = nullptr;
  const std::uint16_t* runtime_count = nullptr;
  // Config columns.
  const std::int64_t* blocktime = nullptr;
  const std::int32_t* num_threads = nullptr;
  const std::int32_t* chunk = nullptr;
  const std::int32_t* align = nullptr;
  const std::int32_t* attempts = nullptr;
  const std::uint16_t* suite = nullptr;  ///< suite-dictionary codes
  const std::uint16_t* kind = nullptr;   ///< kind-dictionary codes
  const std::uint8_t* places = nullptr;
  const std::uint8_t* bind = nullptr;
  const std::uint8_t* schedule = nullptr;
  const std::uint8_t* library = nullptr;
  const std::uint8_t* reduction = nullptr;
  const std::uint8_t* status = nullptr;
  const std::uint8_t* is_default = nullptr;
  const std::uint32_t* error = nullptr;  ///< error-dictionary codes

  bool quarantined(std::size_t i) const {
    return static_cast<sweep::SampleStatus>(status[i]) ==
           sweep::SampleStatus::Quarantined;
  }

  /// Decode row i's runtime configuration (enum bytes were validated by the
  /// scan checksum pass, so the casts are safe).
  rt::RtConfig config(std::size_t i) const {
    rt::RtConfig c;
    c.blocktime_ms = blocktime[i];
    c.num_threads = num_threads[i];
    c.chunk = chunk[i];
    c.align_alloc = align[i];
    c.places = static_cast<arch::PlacesKind>(places[i]);
    c.bind = static_cast<arch::BindKind>(bind[i]);
    c.schedule = static_cast<rt::ScheduleKind>(schedule[i]);
    c.library = static_cast<rt::LibraryMode>(library[i]);
    c.reduction = static_cast<rt::ReductionMethod>(reduction[i]);
    return c;
  }
};

class StoreReader {
 public:
  /// Opens and validates `path` (see file comment for what open checks).
  /// A file that cannot be opened/mapped at all throws
  /// util::StoreOpenError naming the path; validation failures throw
  /// util::DataCorruptionError with path and offset.
  explicit StoreReader(const std::string& path);

  /// Same, labeled with the serving `generation` the open is for: both the
  /// open error and every corruption message then carry "generation N" so
  /// a failed hot-swap is attributable to the exact store it tried to
  /// adopt (see serve::Snapshot).
  StoreReader(const std::string& path, std::uint64_t generation);

  const std::string& path() const { return file_.path(); }

  /// Serving-generation label this reader was opened under (0: unlabeled).
  std::uint64_t generation() const { return generation_; }
  std::size_t size() const { return sample_count_; }
  std::size_t repetitions() const { return reps_; }
  std::uint64_t file_bytes() const { return file_.size(); }

  /// Whether the store is served from a real kernel mapping. False on the
  /// buffered-read fallback (mmap-refusing filesystems, OMPTUNE_NO_MMAP=1):
  /// same query results, just without the zero-copy property.
  bool memory_mapped() const { return file_.memory_mapped(); }

  /// Dictionary views (first-appearance order, as written).
  const std::vector<std::string>& archs() const { return dicts_[0]; }
  const std::vector<std::string>& apps() const { return dicts_[1]; }
  const std::vector<std::string>& inputs() const { return dicts_[2]; }

  /// The embedded setting index, in row order.
  std::vector<SettingEntry> settings() const;

  /// Materialize every sample. Verifies the checksum of every section
  /// first: a flipped byte anywhere in the file is rejected, never loaded.
  /// With a pool, rows materialize in parallel (the result is identical —
  /// each row is independent and lands at its own position).
  sweep::Dataset load(const util::ThreadPool* pool = nullptr) const;

  /// Materialize only the rows matching `query`, located via the index.
  /// Skips whole-section checksums by design (the point is not reading the
  /// non-matching blocks); every value actually materialized is range- and
  /// finiteness-checked instead.
  sweep::Dataset query(const StoreQuery& query) const;

  /// Number of runs in the embedded setting index.
  std::size_t setting_count() const { return index_.size(); }

  /// Zero-copy column view of index run `i` (see SettingSlice). Requires a
  /// prior scan()/ensure_scan_validated() on this reader — the slice hands
  /// out raw bulk-section pointers, so the bulk checksums must have been
  /// verified first.
  SettingSlice setting_slice(std::size_t i) const;

  /// Visit every setting run with a zero-copy SettingSlice — the
  /// aggregation path: no Dataset, no Sample, no copies. The first scan on
  /// a reader verifies the bulk-section checksums once (config, stats,
  /// runtimes, errors — the metadata sections were verified at open), after
  /// which slices serve raw mapped memory. Visits run concurrently on the
  /// pool; callers needing a reduction should use util::parallel_reduce
  /// over setting_count()/setting_slice() directly so partials merge in
  /// deterministic chunk order.
  void scan(const std::function<void(const SettingSlice&)>& visit,
            const util::ThreadPool* pool = nullptr) const;

  /// Verify the bulk-section checksums once (idempotent, thread-safe);
  /// throws util::DataCorruptionError on a mismatch. scan() calls this, but
  /// callers driving setting_slice() by hand must do it themselves.
  void ensure_scan_validated() const;

  /// Bytes of the runtime block materialized so far by load()/query() on
  /// this reader — instrumentation for the bench/tests proving that queries
  /// leave non-matching runtime blocks untouched. (scan() counts the whole
  /// runtime section once, at validation time: the checksum pass reads it.)
  /// Atomic so concurrent load()/query()/scan() calls on one reader tally
  /// without racing.
  std::uint64_t runtime_bytes_touched() const {
    return runtime_bytes_touched_.load(std::memory_order_relaxed);
  }

 private:
  struct Section {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;
    std::uint64_t table_entry_offset = 0;  ///< for error reporting
  };

  [[noreturn]] void corrupt(std::uint64_t offset, const std::string& message) const;
  const unsigned char* at(const Section& section, std::size_t offset) const;
  void verify_section_checksum(const Section& section, const char* name) const;
  sweep::Sample materialize_row(std::size_t row) const;
  std::uint16_t dict_code(const Section& key_section, std::size_t column_offset,
                          std::size_t row, std::size_t dict, const char* what) const;

  util::MappedFile file_;
  std::uint64_t generation_ = 0;
  std::size_t sample_count_ = 0;
  std::size_t reps_ = 0;
  Section sections_[7];  ///< indexed by SectionKind - 1
  /// arch, app, input, suite, kind, error — dictionary order of the format.
  std::vector<std::string> dicts_[6];
  struct IndexRun {
    std::uint16_t arch, app, input;
    std::int32_t threads;
    std::uint64_t first_row, row_count;
  };
  std::vector<IndexRun> index_;
  mutable std::atomic<std::uint64_t> runtime_bytes_touched_{0};
  mutable std::once_flag scan_validated_;
};

}  // namespace omptune::store
