#pragma once

// mmap-backed zero-copy reader for the .omps binary sample store.
//
// Opening a store validates the header, the section table, the string
// dictionaries, the key columns and the setting index — everything a query
// needs to trust, all metadata-sized. The bulk blocks (config/stat columns,
// runtime matrix) are NOT touched at open: an indexed query materializes
// only the rows whose (arch, app, input, threads) key matches, so a
// recommendation for one pair never reads the other settings' runtime
// blocks (the kernel never even pages them in). A full load() verifies
// every section checksum before materializing, making it the
// corruption-proof path for `analyze`-style whole-dataset consumers.
//
// Every validation failure throws util::DataCorruptionError carrying the
// file path and the byte offset of the offending structure.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sweep/dataset.hpp"
#include "util/mmap_file.hpp"

namespace omptune::store {

/// Conjunctive row filter over the indexed setting key; unset fields match
/// everything. An empty query selects the whole store.
struct StoreQuery {
  std::optional<std::string> arch;
  std::optional<std::string> app;
  std::optional<std::string> input;
  std::optional<int> threads;
};

/// One index entry: a run of rows sharing a setting key.
struct SettingEntry {
  std::string arch, app, input;
  int threads = 0;
  std::size_t first_row = 0;
  std::size_t rows = 0;
};

class StoreReader {
 public:
  /// Opens and validates `path` (see file comment for what open checks).
  explicit StoreReader(const std::string& path);

  const std::string& path() const { return file_.path(); }
  std::size_t size() const { return sample_count_; }
  std::size_t repetitions() const { return reps_; }
  std::uint64_t file_bytes() const { return file_.size(); }

  /// Whether the store is served from a real kernel mapping. False on the
  /// buffered-read fallback (mmap-refusing filesystems, OMPTUNE_NO_MMAP=1):
  /// same query results, just without the zero-copy property.
  bool memory_mapped() const { return file_.memory_mapped(); }

  /// Dictionary views (first-appearance order, as written).
  const std::vector<std::string>& archs() const { return dicts_[0]; }
  const std::vector<std::string>& apps() const { return dicts_[1]; }
  const std::vector<std::string>& inputs() const { return dicts_[2]; }

  /// The embedded setting index, in row order.
  std::vector<SettingEntry> settings() const;

  /// Materialize every sample. Verifies the checksum of every section
  /// first: a flipped byte anywhere in the file is rejected, never loaded.
  sweep::Dataset load() const;

  /// Materialize only the rows matching `query`, located via the index.
  /// Skips whole-section checksums by design (the point is not reading the
  /// non-matching blocks); every value actually materialized is range- and
  /// finiteness-checked instead.
  sweep::Dataset query(const StoreQuery& query) const;

  /// Bytes of the runtime block materialized so far by load()/query() on
  /// this reader — instrumentation for the bench/tests proving that queries
  /// leave non-matching runtime blocks untouched.
  std::uint64_t runtime_bytes_touched() const { return runtime_bytes_touched_; }

 private:
  struct Section {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;
    std::uint64_t table_entry_offset = 0;  ///< for error reporting
  };

  [[noreturn]] void corrupt(std::uint64_t offset, const std::string& message) const;
  const unsigned char* at(const Section& section, std::size_t offset) const;
  void verify_section_checksum(const Section& section, const char* name) const;
  sweep::Sample materialize_row(std::size_t row) const;
  std::uint16_t dict_code(const Section& key_section, std::size_t column_offset,
                          std::size_t row, std::size_t dict, const char* what) const;

  util::MappedFile file_;
  std::size_t sample_count_ = 0;
  std::size_t reps_ = 0;
  Section sections_[7];  ///< indexed by SectionKind - 1
  /// arch, app, input, suite, kind, error — dictionary order of the format.
  std::vector<std::string> dicts_[6];
  struct IndexRun {
    std::uint16_t arch, app, input;
    std::int32_t threads;
    std::uint64_t first_row, row_count;
  };
  std::vector<IndexRun> index_;
  mutable std::uint64_t runtime_bytes_touched_ = 0;
};

}  // namespace omptune::store
