#pragma once

// Writer for the .omps binary columnar sample store (see format.hpp for the
// layout). Serializes a sweep::Dataset into dictionary-coded, typed column
// blocks plus the embedded setting index, and replaces the destination
// atomically (temp file + fsync + rename, like the journal) so a reader
// never observes a half-written store.

#include <string>

#include "sweep/dataset.hpp"

namespace omptune::store {

/// Serialize `dataset` to `path` in .omps format v1 (atomic replace).
/// Throws std::invalid_argument on data that cannot be stored faithfully
/// (non-finite runtimes/means/speedups, more than 65535 distinct values in
/// a u16-coded dictionary) and std::runtime_error on I/O failure.
void write_store(const std::string& path, const sweep::Dataset& dataset);

/// In-memory serialization (the byte content write_store persists);
/// exposed for tests that corrupt specific offsets.
std::string serialize_store(const sweep::Dataset& dataset);

}  // namespace omptune::store
