#pragma once

// Feature-influence analysis (paper Section IV-D / Figs 2-4): label samples
// optimal vs sub-optimal, fit a logistic regression per group, and report
// the weight-normalized |coefficient| of every feature. Darker cell =
// larger share of the decision boundary = more influential variable.

#include <string>
#include <vector>

#include "ml/features.hpp"
#include "ml/logistic_regression.hpp"
#include "sweep/dataset.hpp"

namespace omptune::util {
class ThreadPool;
}

namespace omptune::analysis {

/// The paper's three grouping strategies (IV-D).
enum class Grouping {
  PerApplication,      ///< one row per app, all archs pooled (Fig 2)
  PerArchitecture,     ///< one row per arch, all apps pooled (Fig 3)
  PerArchApplication,  ///< one row per (arch, app) pair (Fig 4)
};

std::string to_string(Grouping grouping);

struct InfluenceRow {
  std::string group;               ///< e.g. "cg", "milan", "milan/cg"
  std::vector<double> influence;   ///< per feature, sums to 1
  double model_accuracy = 0.0;     ///< training accuracy of the classifier
  double positive_share = 0.0;     ///< fraction labelled optimal
  std::size_t samples = 0;
};

struct InfluenceMap {
  std::vector<std::string> feature_names;
  std::vector<InfluenceRow> rows;

  /// Influence of `feature` in `group`; throws if either is unknown.
  double at(const std::string& group, const std::string& feature) const;
};

/// Build the influence map for a grouping. Groups whose labels are all
/// identical (degenerate classification) are skipped — mirroring e.g. Sort
/// and Strassen showing no reliance where they were not executed.
///
/// Groups fit concurrently on `pool` (each group's own gradient loop then
/// runs inline on its worker); rows are emitted in group first-appearance
/// order regardless of completion order, and each fit is deterministic, so
/// the map is bit-identical at any thread count.
InfluenceMap influence_map(const sweep::Dataset& dataset, Grouping grouping,
                           double label_threshold = 1.01,
                           ml::LogisticOptions options = {},
                           const util::ThreadPool* pool = nullptr);

}  // namespace omptune::analysis
