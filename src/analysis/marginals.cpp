#include "analysis/marginals.hpp"

#include <map>
#include <stdexcept>
#include <tuple>

#include "analysis/variables.hpp"
#include "store/reader.hpp"
#include "util/thread_pool.hpp"

namespace omptune::analysis {

namespace {

/// (arch, variable, value) -> the speedups of every sample holding that
/// value, in row order.
using GroupKey = std::tuple<std::string, std::string, std::string>;
using Groups = std::map<GroupKey, std::vector<double>>;

MarginalRow marginal_row(const GroupKey& key, std::vector<double>& speedups) {
  MarginalRow row;
  row.arch = std::get<0>(key);
  row.variable = std::get<1>(key);
  row.value = std::get<2>(key);
  row.samples = speedups.size();
  row.mean_speedup = stats::mean(speedups);
  row.median_speedup = stats::median(speedups);
  row.p95_speedup = stats::quantile(speedups, 0.95);
  std::size_t optimal = 0;
  for (const double s : speedups) optimal += (s > 1.01);
  row.optimal_share =
      static_cast<double>(optimal) / static_cast<double>(speedups.size());
  return row;
}

}  // namespace

std::vector<MarginalRow> value_marginals(const sweep::Dataset& dataset,
                                         bool per_arch) {
  Groups groups;
  for (const sweep::Sample& s : dataset.samples()) {
    const std::string arch = per_arch ? s.arch : std::string("all");
    for (const auto& [variable, value] : config_variable_values(s.config)) {
      groups[{arch, variable, value}].push_back(s.speedup);
    }
  }

  std::vector<MarginalRow> rows;
  rows.reserve(groups.size());
  for (auto& [key, speedups] : groups) {
    rows.push_back(marginal_row(key, speedups));
  }
  return rows;
}

std::vector<MarginalRow> value_marginals(const store::StoreReader& reader,
                                         bool per_arch,
                                         const util::ThreadPool* pool) {
  reader.ensure_scan_validated();
  // Gather: per-chunk group maps merged in chunk (= run, = row) order, so
  // every group's speedup vector matches the serial row-order walk exactly
  // (the mean's summation order is part of the bit-identity contract).
  Groups groups = util::parallel_reduce<Groups>(
      pool, reader.setting_count(), 1,
      [&](Groups& partial, std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          const store::SettingSlice slice = reader.setting_slice(r);
          const std::string arch = per_arch ? *slice.arch : std::string("all");
          for (std::size_t i = 0; i < slice.rows; ++i) {
            if (slice.quarantined(i)) continue;
            for (const auto& [variable, value] :
                 config_variable_values(slice.config(i))) {
              partial[{arch, variable, value}].push_back(slice.speedup[i]);
            }
          }
        }
      },
      [](Groups& into, Groups&& from) {
        for (auto& [key, values] : from) {
          std::vector<double>& dst = into[key];
          if (dst.empty()) {
            dst = std::move(values);
          } else {
            dst.insert(dst.end(), values.begin(), values.end());
          }
        }
      });

  // Summarize each group independently (parallel; slots don't interact).
  std::vector<Groups::iterator> items;
  items.reserve(groups.size());
  for (auto it = groups.begin(); it != groups.end(); ++it) items.push_back(it);
  std::vector<MarginalRow> rows(items.size());
  util::parallel_for(pool, items.size(), 1,
                     [&](std::size_t begin, std::size_t end, std::size_t) {
                       for (std::size_t i = begin; i < end; ++i) {
                         rows[i] = marginal_row(items[i]->first, items[i]->second);
                       }
                     });
  return rows;
}

MarginalRow best_value_of(const std::vector<MarginalRow>& marginals,
                          const std::string& arch,
                          const std::string& variable) {
  const MarginalRow* best = nullptr;
  for (const MarginalRow& row : marginals) {
    if (row.arch != arch || row.variable != variable) continue;
    if (best == nullptr || row.median_speedup > best->median_speedup) {
      best = &row;
    }
  }
  if (best == nullptr) {
    throw std::invalid_argument("best_value_of: no rows for " + arch + "/" + variable);
  }
  return *best;
}

}  // namespace omptune::analysis
