#include "analysis/marginals.hpp"

#include <map>
#include <stdexcept>

namespace omptune::analysis {

namespace {

std::vector<std::pair<std::string, std::string>> variable_values(
    const rt::RtConfig& config) {
  return {
      {"OMP_PLACES", arch::to_string(config.places)},
      {"OMP_PROC_BIND", arch::to_string(config.bind)},
      {"OMP_SCHEDULE", rt::to_string(config.schedule)},
      {"KMP_LIBRARY", rt::to_string(config.library)},
      {"KMP_BLOCKTIME", config.blocktime_ms == rt::kBlocktimeInfinite
                            ? std::string("infinite")
                            : std::to_string(config.blocktime_ms)},
      {"KMP_FORCE_REDUCTION", rt::to_string(config.reduction)},
      {"KMP_ALIGN_ALLOC", std::to_string(config.align_alloc)},
  };
}

}  // namespace

std::vector<MarginalRow> value_marginals(const sweep::Dataset& dataset,
                                         bool per_arch) {
  // (arch, variable, value) -> speedups
  std::map<std::tuple<std::string, std::string, std::string>, std::vector<double>>
      groups;
  for (const sweep::Sample& s : dataset.samples()) {
    const std::string arch = per_arch ? s.arch : std::string("all");
    for (const auto& [variable, value] : variable_values(s.config)) {
      groups[{arch, variable, value}].push_back(s.speedup);
    }
  }

  std::vector<MarginalRow> rows;
  rows.reserve(groups.size());
  for (auto& [key, speedups] : groups) {
    MarginalRow row;
    row.arch = std::get<0>(key);
    row.variable = std::get<1>(key);
    row.value = std::get<2>(key);
    row.samples = speedups.size();
    row.mean_speedup = stats::mean(speedups);
    row.median_speedup = stats::median(speedups);
    row.p95_speedup = stats::quantile(speedups, 0.95);
    std::size_t optimal = 0;
    for (const double s : speedups) optimal += (s > 1.01);
    row.optimal_share =
        static_cast<double>(optimal) / static_cast<double>(speedups.size());
    rows.push_back(std::move(row));
  }
  return rows;
}

MarginalRow best_value_of(const std::vector<MarginalRow>& marginals,
                          const std::string& arch,
                          const std::string& variable) {
  const MarginalRow* best = nullptr;
  for (const MarginalRow& row : marginals) {
    if (row.arch != arch || row.variable != variable) continue;
    if (best == nullptr || row.median_speedup > best->median_speedup) {
      best = &row;
    }
  }
  if (best == nullptr) {
    throw std::invalid_argument("best_value_of: no rows for " + arch + "/" + variable);
  }
  return *best;
}

}  // namespace omptune::analysis
