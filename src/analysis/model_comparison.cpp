#include "analysis/model_comparison.hpp"

#include <algorithm>

#include "ml/decision_tree.hpp"
#include "ml/features.hpp"
#include "ml/scaler.hpp"

namespace omptune::analysis {

namespace {

bool degenerate(const std::vector<int>& labels) {
  const auto positives = std::count(labels.begin(), labels.end(), 1);
  return positives == 0 || positives == static_cast<long>(labels.size());
}

double majority_accuracy(const std::vector<int>& labels) {
  const auto positives =
      static_cast<double>(std::count(labels.begin(), labels.end(), 1));
  const double share = positives / static_cast<double>(labels.size());
  return std::max(share, 1.0 - share);
}

}  // namespace

std::vector<ModelComparisonRow> compare_models(const sweep::Dataset& dataset,
                                               double label_threshold,
                                               ml::ForestOptions forest_options) {
  ml::FeatureOptions options;
  options.include_application = true;  // per-arch grouping pools apps
  const ml::FeatureEncoder encoder(options);

  std::vector<ModelComparisonRow> rows;
  for (const std::string& arch :
       dataset.distinct([](const sweep::Sample& s) { return s.arch; })) {
    const sweep::Dataset slice = dataset.filter(
        [&arch](const sweep::Sample& s) { return s.arch == arch; });
    const std::vector<int> labels =
        ml::FeatureEncoder::labels(slice, label_threshold);
    if (degenerate(labels)) continue;

    const ml::Matrix raw = encoder.encode(slice);
    ml::StandardScaler scaler;
    const ml::Matrix scaled = scaler.fit_transform(raw);

    ModelComparisonRow row;
    row.group = arch;
    row.samples = labels.size();
    row.positive_share =
        static_cast<double>(std::count(labels.begin(), labels.end(), 1)) /
        static_cast<double>(labels.size());

    ml::LogisticRegression logistic;
    logistic.fit(scaled, labels);
    row.logistic_accuracy = logistic.accuracy(scaled, labels);

    // Trees are scale-invariant: fit on the raw features.
    ml::DecisionTree tree(forest_options.tree);
    tree.fit(raw, labels);
    row.tree_accuracy = tree.accuracy(raw, labels);

    ml::RandomForest forest(forest_options);
    forest.fit(raw, labels);
    row.forest_accuracy = forest.accuracy(raw, labels);
    row.forest_oob_accuracy = forest.oob_accuracy();

    rows.push_back(row);
  }
  return rows;
}

std::vector<TransferResult> leave_one_app_out(const sweep::Dataset& dataset,
                                              double label_threshold,
                                              ml::ForestOptions forest_options) {
  // Environment-variable features only: application identity must not leak
  // into a model meant to generalize to unseen applications.
  const ml::FeatureEncoder encoder{ml::FeatureOptions{}};

  std::vector<TransferResult> results;
  for (const std::string& arch :
       dataset.distinct([](const sweep::Sample& s) { return s.arch; })) {
    const sweep::Dataset arch_data = dataset.filter(
        [&arch](const sweep::Sample& s) { return s.arch == arch; });
    for (const std::string& app :
         arch_data.distinct([](const sweep::Sample& s) { return s.app; })) {
      const sweep::Dataset train = arch_data.filter(
          [&app](const sweep::Sample& s) { return s.app != app; });
      const sweep::Dataset test = arch_data.filter(
          [&app](const sweep::Sample& s) { return s.app == app; });
      const std::vector<int> train_labels =
          ml::FeatureEncoder::labels(train, label_threshold);
      const std::vector<int> test_labels =
          ml::FeatureEncoder::labels(test, label_threshold);
      if (train.size() == 0 || test.size() == 0 || degenerate(train_labels)) {
        continue;
      }

      ml::RandomForest forest(forest_options);
      forest.fit(encoder.encode(train), train_labels);

      TransferResult result;
      result.arch = arch;
      result.held_out_app = app;
      result.test_samples = test_labels.size();
      result.majority_baseline = majority_accuracy(test_labels);
      result.forest_accuracy =
          forest.accuracy(encoder.encode(test), test_labels);
      results.push_back(result);
    }
  }
  return results;
}

}  // namespace omptune::analysis
