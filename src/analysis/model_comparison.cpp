#include "analysis/model_comparison.hpp"

#include <algorithm>
#include <optional>

#include "ml/decision_tree.hpp"
#include "ml/features.hpp"
#include "ml/scaler.hpp"
#include "util/thread_pool.hpp"

namespace omptune::analysis {

namespace {

bool degenerate(const std::vector<int>& labels) {
  const auto positives = std::count(labels.begin(), labels.end(), 1);
  return positives == 0 || positives == static_cast<long>(labels.size());
}

double majority_accuracy(const std::vector<int>& labels) {
  const auto positives =
      static_cast<double>(std::count(labels.begin(), labels.end(), 1));
  const double share = positives / static_cast<double>(labels.size());
  return std::max(share, 1.0 - share);
}

}  // namespace

std::vector<ModelComparisonRow> compare_models(const sweep::Dataset& dataset,
                                               double label_threshold,
                                               ml::ForestOptions forest_options,
                                               const util::ThreadPool* pool) {
  ml::FeatureOptions options;
  options.include_application = true;  // per-arch grouping pools apps
  const ml::FeatureEncoder encoder(options);

  // One slot per architecture, computed concurrently, gathered in
  // first-appearance order (degenerate groups leave theirs empty).
  const std::vector<std::string> archs =
      dataset.distinct([](const sweep::Sample& s) { return s.arch; });
  std::vector<std::optional<ModelComparisonRow>> slots(archs.size());
  util::parallel_for(
      pool, archs.size(), 1, [&](std::size_t begin, std::size_t, std::size_t) {
        const std::string& arch = archs[begin];
        const sweep::Dataset slice = dataset.filter(
            [&arch](const sweep::Sample& s) { return s.arch == arch; });
        const std::vector<int> labels =
            ml::FeatureEncoder::labels(slice, label_threshold);
        if (degenerate(labels)) return;

        const ml::Matrix raw = encoder.encode(slice);
        ml::StandardScaler scaler;
        const ml::Matrix scaled = scaler.fit_transform(raw);

        ModelComparisonRow row;
        row.group = arch;
        row.samples = labels.size();
        row.positive_share =
            static_cast<double>(std::count(labels.begin(), labels.end(), 1)) /
            static_cast<double>(labels.size());

        ml::LogisticRegression logistic;
        logistic.fit(scaled, labels, pool);
        row.logistic_accuracy = logistic.accuracy(scaled, labels, pool);

        // Trees are scale-invariant: fit on the raw features.
        ml::DecisionTree tree(forest_options.tree);
        tree.fit(raw, labels);
        row.tree_accuracy = tree.accuracy(raw, labels);

        ml::RandomForest forest(forest_options);
        forest.fit(raw, labels, pool);
        row.forest_accuracy = forest.accuracy(raw, labels);
        row.forest_oob_accuracy = forest.oob_accuracy();

        slots[begin] = std::move(row);
      });
  std::vector<ModelComparisonRow> rows;
  for (auto& slot : slots) {
    if (slot.has_value()) rows.push_back(std::move(*slot));
  }
  return rows;
}

std::vector<TransferResult> leave_one_app_out(const sweep::Dataset& dataset,
                                              double label_threshold,
                                              ml::ForestOptions forest_options,
                                              const util::ThreadPool* pool) {
  // Environment-variable features only: application identity must not leak
  // into a model meant to generalize to unseen applications.
  const ml::FeatureEncoder encoder{ml::FeatureOptions{}};

  // Flatten the (arch, held-out app) grid into independent tasks; each
  // trains its own forest, so the whole grid fans out on the pool. Slots
  // keep the serial loop's (arch, app) first-appearance order.
  struct Task {
    std::string arch, app;
  };
  std::vector<Task> tasks;
  for (const std::string& arch :
       dataset.distinct([](const sweep::Sample& s) { return s.arch; })) {
    const sweep::Dataset arch_data = dataset.filter(
        [&arch](const sweep::Sample& s) { return s.arch == arch; });
    for (const std::string& app :
         arch_data.distinct([](const sweep::Sample& s) { return s.app; })) {
      tasks.push_back(Task{arch, app});
    }
  }

  std::vector<std::optional<TransferResult>> slots(tasks.size());
  util::parallel_for(
      pool, tasks.size(), 1, [&](std::size_t begin, std::size_t, std::size_t) {
        const Task& task = tasks[begin];
        const sweep::Dataset arch_data = dataset.filter(
            [&task](const sweep::Sample& s) { return s.arch == task.arch; });
        const sweep::Dataset train = arch_data.filter(
            [&task](const sweep::Sample& s) { return s.app != task.app; });
        const sweep::Dataset test = arch_data.filter(
            [&task](const sweep::Sample& s) { return s.app == task.app; });
        const std::vector<int> train_labels =
            ml::FeatureEncoder::labels(train, label_threshold);
        const std::vector<int> test_labels =
            ml::FeatureEncoder::labels(test, label_threshold);
        if (train.size() == 0 || test.size() == 0 || degenerate(train_labels)) {
          return;
        }

        ml::RandomForest forest(forest_options);
        forest.fit(encoder.encode(train), train_labels, pool);

        TransferResult result;
        result.arch = task.arch;
        result.held_out_app = task.app;
        result.test_samples = test_labels.size();
        result.majority_baseline = majority_accuracy(test_labels);
        result.forest_accuracy =
            forest.accuracy(encoder.encode(test), test_labels);
        slots[begin] = result;
      });
  std::vector<TransferResult> results;
  for (const auto& slot : slots) {
    if (slot.has_value()) results.push_back(*slot);
  }
  return results;
}

}  // namespace omptune::analysis
