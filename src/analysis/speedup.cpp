#include "analysis/speedup.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "stats/descriptive.hpp"
#include "store/reader.hpp"
#include "util/thread_pool.hpp"

namespace omptune::analysis {

namespace {

std::string setting_key(const std::string& arch, const std::string& app,
                        const std::string& input, int threads) {
  return arch + "/" + app + "/" + input + "/" + std::to_string(threads);
}

/// Best non-quarantined row of one index run (run-relative), strictly-greater
/// replacement so the earliest of tied rows wins — the Dataset walk's rule.
struct RunBest {
  bool any = false;
  double speedup = 0;
  std::size_t row = 0;
};

RunBest run_best(const store::SettingSlice& slice) {
  RunBest best;
  for (std::size_t i = 0; i < slice.rows; ++i) {
    if (slice.quarantined(i)) continue;
    if (!best.any || slice.speedup[i] > best.speedup) {
      best.any = true;
      best.speedup = slice.speedup[i];
      best.row = i;
    }
  }
  return best;
}

}  // namespace

std::vector<SettingBest> best_per_setting(const sweep::Dataset& dataset) {
  std::map<std::string, SettingBest> by_setting;
  std::vector<std::string> order;
  for (const sweep::Sample& s : dataset.samples()) {
    // Quarantined samples carry placeholder runtimes/speedups, not
    // measurements — they must not seed or win a setting's best.
    if (s.is_quarantined()) continue;
    const std::string key = s.arch + "/" + s.app + "/" + s.input + "/" +
                            std::to_string(s.threads);
    auto it = by_setting.find(key);
    if (it == by_setting.end()) {
      order.push_back(key);
      SettingBest best;
      best.arch = s.arch;
      best.app = s.app;
      best.input = s.input;
      best.threads = s.threads;
      best.best_speedup = s.speedup;
      best.best_config = s.config;
      by_setting.emplace(key, std::move(best));
    } else if (s.speedup > it->second.best_speedup) {
      it->second.best_speedup = s.speedup;
      it->second.best_config = s.config;
    }
  }
  std::vector<SettingBest> out;
  out.reserve(order.size());
  for (const std::string& key : order) out.push_back(by_setting.at(key));
  return out;
}

std::vector<SettingBest> best_per_setting(const store::StoreReader& reader,
                                          const util::ThreadPool* pool) {
  reader.ensure_scan_validated();
  const std::size_t runs = reader.setting_count();
  std::vector<RunBest> bests(runs);
  util::parallel_for(pool, runs, 1,
                     [&](std::size_t begin, std::size_t end, std::size_t) {
                       for (std::size_t r = begin; r < end; ++r) {
                         bests[r] = run_best(reader.setting_slice(r));
                       }
                     });
  // Fold runs sharing a key in run (= first-appearance) order. Strictly-
  // greater replacement again, so an earlier run keeps a tie — exactly what
  // the row-ordered Dataset walk does.
  std::vector<SettingBest> out;
  std::map<std::string, std::size_t> index_of;
  for (std::size_t r = 0; r < runs; ++r) {
    if (!bests[r].any) continue;
    const store::SettingSlice slice = reader.setting_slice(r);
    const std::string key =
        setting_key(*slice.arch, *slice.app, *slice.input, slice.threads);
    const auto it = index_of.find(key);
    if (it == index_of.end()) {
      index_of.emplace(key, out.size());
      SettingBest best;
      best.arch = *slice.arch;
      best.app = *slice.app;
      best.input = *slice.input;
      best.threads = slice.threads;
      best.best_speedup = bests[r].speedup;
      best.best_config = slice.config(bests[r].row);
      out.push_back(std::move(best));
    } else if (bests[r].speedup > out[it->second].best_speedup) {
      out[it->second].best_speedup = bests[r].speedup;
      out[it->second].best_config = slice.config(bests[r].row);
    }
  }
  return out;
}

std::vector<ArchAppRange> speedup_ranges_by_arch(const sweep::Dataset& dataset) {
  return speedup_ranges_by_arch(best_per_setting(dataset));
}

std::vector<ArchAppRange> speedup_ranges_by_arch(
    const store::StoreReader& reader, const util::ThreadPool* pool) {
  return speedup_ranges_by_arch(best_per_setting(reader, pool));
}

std::vector<ArchAppRange> speedup_ranges_by_arch(
    const std::vector<SettingBest>& bests) {
  std::map<std::pair<std::string, std::string>, ArchAppRange> ranges;
  std::vector<std::pair<std::string, std::string>> order;
  for (const SettingBest& b : bests) {
    const auto key = std::make_pair(b.app, b.arch);
    auto it = ranges.find(key);
    if (it == ranges.end()) {
      order.push_back(key);
      ranges[key] = ArchAppRange{b.app, b.arch, b.best_speedup, b.best_speedup};
    } else {
      it->second.lo = std::min(it->second.lo, b.best_speedup);
      it->second.hi = std::max(it->second.hi, b.best_speedup);
    }
  }
  std::vector<ArchAppRange> out;
  out.reserve(order.size());
  for (const auto& key : order) out.push_back(ranges.at(key));
  std::sort(out.begin(), out.end(), [](const ArchAppRange& a, const ArchAppRange& b) {
    return a.app != b.app ? a.app < b.app : a.arch < b.arch;
  });
  return out;
}

std::vector<AppRange> speedup_ranges_by_app(const sweep::Dataset& dataset) {
  return speedup_ranges_by_app(best_per_setting(dataset));
}

std::vector<AppRange> speedup_ranges_by_app(const store::StoreReader& reader,
                                            const util::ThreadPool* pool) {
  return speedup_ranges_by_app(best_per_setting(reader, pool));
}

std::vector<AppRange> speedup_ranges_by_app(
    const std::vector<SettingBest>& bests) {
  std::map<std::string, AppRange> ranges;
  for (const SettingBest& b : bests) {
    auto it = ranges.find(b.app);
    if (it == ranges.end()) {
      ranges[b.app] = AppRange{b.app, b.best_speedup, b.best_speedup};
    } else {
      it->second.lo = std::min(it->second.lo, b.best_speedup);
      it->second.hi = std::max(it->second.hi, b.best_speedup);
    }
  }
  std::vector<AppRange> out;
  out.reserve(ranges.size());
  for (const auto& [app, range] : ranges) out.push_back(range);  // sorted by app
  return out;
}

std::vector<ArchUpshot> upshot_by_arch(const sweep::Dataset& dataset) {
  return upshot_by_arch(best_per_setting(dataset));
}

std::vector<ArchUpshot> upshot_by_arch(const store::StoreReader& reader,
                                       const util::ThreadPool* pool) {
  return upshot_by_arch(best_per_setting(reader, pool));
}

std::vector<ArchUpshot> upshot_by_arch(const std::vector<SettingBest>& bests) {
  std::map<std::string, std::vector<double>> per_arch;
  std::vector<std::string> order;
  for (const SettingBest& b : bests) {
    if (per_arch.find(b.arch) == per_arch.end()) order.push_back(b.arch);
    per_arch[b.arch].push_back(b.best_speedup);
  }
  std::vector<ArchUpshot> out;
  for (const std::string& arch : order) {
    std::vector<double>& values = per_arch.at(arch);
    ArchUpshot upshot;
    upshot.arch = arch;
    upshot.min_best = stats::min_value(values);
    upshot.median_best = stats::median(values);
    upshot.max_best = stats::max_value(values);
    out.push_back(upshot);
  }
  return out;
}

std::vector<SettingSummary> setting_runtime_summaries(
    const store::StoreReader& reader, const util::ThreadPool* pool) {
  reader.ensure_scan_validated();
  const std::size_t runs = reader.setting_count();

  // Pass 1 (parallel): gather each run's valid runtimes off the contiguous
  // runtime slice, in row order.
  std::vector<std::vector<double>> per_run(runs);
  util::parallel_for(
      pool, runs, 1, [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t r = begin; r < end; ++r) {
          const store::SettingSlice slice = reader.setting_slice(r);
          std::vector<double>& values = per_run[r];
          for (std::size_t i = 0; i < slice.rows; ++i) {
            if (slice.quarantined(i)) continue;
            const double* row = slice.runtimes + i * slice.reps;
            values.insert(values.end(), row, row + slice.runtime_count[i]);
          }
        }
      });

  // Serial fold: runs sharing a key concatenate in run order.
  std::vector<SettingSummary> out;
  std::vector<std::vector<double>> merged;
  std::map<std::string, std::size_t> index_of;
  for (std::size_t r = 0; r < runs; ++r) {
    if (per_run[r].empty()) continue;
    const store::SettingSlice slice = reader.setting_slice(r);
    const std::string key =
        setting_key(*slice.arch, *slice.app, *slice.input, slice.threads);
    const auto it = index_of.find(key);
    if (it == index_of.end()) {
      index_of.emplace(key, out.size());
      SettingSummary summary;
      summary.arch = *slice.arch;
      summary.app = *slice.app;
      summary.input = *slice.input;
      summary.threads = slice.threads;
      out.push_back(std::move(summary));
      merged.push_back(std::move(per_run[r]));
    } else {
      std::vector<double>& dst = merged[it->second];
      dst.insert(dst.end(), per_run[r].begin(), per_run[r].end());
    }
  }

  // Pass 2 (parallel): summarize each setting; every output slot is its own.
  util::parallel_for(pool, out.size(), 1,
                     [&](std::size_t begin, std::size_t end, std::size_t) {
                       for (std::size_t i = begin; i < end; ++i) {
                         out[i].runtime = stats::summarize(std::move(merged[i]));
                       }
                     });
  return out;
}

}  // namespace omptune::analysis
