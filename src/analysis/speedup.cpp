#include "analysis/speedup.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "stats/descriptive.hpp"

namespace omptune::analysis {

std::vector<SettingBest> best_per_setting(const sweep::Dataset& dataset) {
  std::map<std::string, SettingBest> by_setting;
  std::vector<std::string> order;
  for (const sweep::Sample& s : dataset.samples()) {
    // Quarantined samples carry placeholder runtimes/speedups, not
    // measurements — they must not seed or win a setting's best.
    if (s.is_quarantined()) continue;
    const std::string key = s.arch + "/" + s.app + "/" + s.input + "/" +
                            std::to_string(s.threads);
    auto it = by_setting.find(key);
    if (it == by_setting.end()) {
      order.push_back(key);
      SettingBest best;
      best.arch = s.arch;
      best.app = s.app;
      best.input = s.input;
      best.threads = s.threads;
      best.best_speedup = s.speedup;
      best.best_config = s.config;
      by_setting.emplace(key, std::move(best));
    } else if (s.speedup > it->second.best_speedup) {
      it->second.best_speedup = s.speedup;
      it->second.best_config = s.config;
    }
  }
  std::vector<SettingBest> out;
  out.reserve(order.size());
  for (const std::string& key : order) out.push_back(by_setting.at(key));
  return out;
}

std::vector<ArchAppRange> speedup_ranges_by_arch(const sweep::Dataset& dataset) {
  const auto bests = best_per_setting(dataset);
  std::map<std::pair<std::string, std::string>, ArchAppRange> ranges;
  std::vector<std::pair<std::string, std::string>> order;
  for (const SettingBest& b : bests) {
    const auto key = std::make_pair(b.app, b.arch);
    auto it = ranges.find(key);
    if (it == ranges.end()) {
      order.push_back(key);
      ranges[key] = ArchAppRange{b.app, b.arch, b.best_speedup, b.best_speedup};
    } else {
      it->second.lo = std::min(it->second.lo, b.best_speedup);
      it->second.hi = std::max(it->second.hi, b.best_speedup);
    }
  }
  std::vector<ArchAppRange> out;
  out.reserve(order.size());
  for (const auto& key : order) out.push_back(ranges.at(key));
  std::sort(out.begin(), out.end(), [](const ArchAppRange& a, const ArchAppRange& b) {
    return a.app != b.app ? a.app < b.app : a.arch < b.arch;
  });
  return out;
}

std::vector<AppRange> speedup_ranges_by_app(const sweep::Dataset& dataset) {
  const auto bests = best_per_setting(dataset);
  std::map<std::string, AppRange> ranges;
  for (const SettingBest& b : bests) {
    auto it = ranges.find(b.app);
    if (it == ranges.end()) {
      ranges[b.app] = AppRange{b.app, b.best_speedup, b.best_speedup};
    } else {
      it->second.lo = std::min(it->second.lo, b.best_speedup);
      it->second.hi = std::max(it->second.hi, b.best_speedup);
    }
  }
  std::vector<AppRange> out;
  out.reserve(ranges.size());
  for (const auto& [app, range] : ranges) out.push_back(range);  // sorted by app
  return out;
}

std::vector<ArchUpshot> upshot_by_arch(const sweep::Dataset& dataset) {
  const auto bests = best_per_setting(dataset);
  std::map<std::string, std::vector<double>> per_arch;
  std::vector<std::string> order;
  for (const SettingBest& b : bests) {
    if (per_arch.find(b.arch) == per_arch.end()) order.push_back(b.arch);
    per_arch[b.arch].push_back(b.best_speedup);
  }
  std::vector<ArchUpshot> out;
  for (const std::string& arch : order) {
    std::vector<double>& values = per_arch.at(arch);
    ArchUpshot upshot;
    upshot.arch = arch;
    upshot.min_best = stats::min_value(values);
    upshot.median_best = stats::median(values);
    upshot.max_best = stats::max_value(values);
    out.push_back(upshot);
  }
  return out;
}

}  // namespace omptune::analysis
