#pragma once

// Recommendation extraction (paper Table VII) and worst-performance trend
// mining (Section V.4).

#include <string>
#include <vector>

#include "sweep/dataset.hpp"

namespace omptune::store {
class StoreReader;
}
namespace omptune::util {
class ThreadPool;
}

namespace omptune::analysis {

/// One recommended variable/value pair for an (app, arch) scope, with the
/// lift of that value among near-best configurations relative to its base
/// rate in the whole group.
struct Recommendation {
  std::string app;
  std::string arch;      ///< "all" when consistent across architectures
  std::string variable;  ///< paper spelling, e.g. "KMP_LIBRARY"
  std::string value;     ///< e.g. "turnaround"
  double lift = 1.0;     ///< P(value | near-best) / P(value)
  double share_in_best = 0.0;
};

/// Extract the dominant variable/value pairs among near-best configurations
/// (within `tolerance` of the setting's best speedup) for one application.
/// Returns per-arch recommendations, plus "all"-scoped entries for values
/// dominant on every architecture (e.g. NQueens: KMP_LIBRARY=turnaround).
std::vector<Recommendation> recommend_for_app(const sweep::Dataset& dataset,
                                              const std::string& app,
                                              double tolerance = 0.01,
                                              double min_lift = 1.3);

/// Store-backed variant: aggregates `app`'s rows straight off the store's
/// zero-copy setting slices — no Sample materialization, and the other
/// applications' runtime blocks are never touched. Settings scan in
/// parallel on `pool`; per-chunk counts merge in run order, so the result
/// is identical to the Dataset overload at any thread count.
std::vector<Recommendation> recommend_for_app(const store::StoreReader& store,
                                              const std::string& app,
                                              double tolerance = 0.01,
                                              double min_lift = 1.3,
                                              const util::ThreadPool* pool = nullptr);

/// Worst-performance trend (RQ4): how over-represented a condition is in
/// the slowest decile of samples.
struct WorstTrend {
  std::string condition;      ///< human-readable description
  double share_in_worst = 0;  ///< frequency within the slowest decile
  double share_overall = 0;   ///< base rate
  double lift = 0;            ///< ratio of the two
};

/// Mine the slowest `decile` (default bottom 10% by speedup) for the
/// paper's reported trend: master/primary binding with large thread counts,
/// plus the other binding conditions for comparison.
std::vector<WorstTrend> worst_trends(const sweep::Dataset& dataset,
                                     double decile = 0.1);

}  // namespace omptune::analysis
