#pragma once

// Model-comparison and transfer analyses — the paper's Section VI future
// work, implemented: compare the interpretable linear classifier against
// non-linear models (CART / random forest) per grouping, and quantify how
// well knowledge transfers to *unseen* applications via leave-one-app-out
// evaluation (the paper: "there is no guarantee this knowledge can be
// transferred to new unseen applications").

#include <string>
#include <vector>

#include "ml/logistic_regression.hpp"
#include "ml/random_forest.hpp"
#include "sweep/dataset.hpp"

namespace omptune::util {
class ThreadPool;
}

namespace omptune::analysis {

struct ModelComparisonRow {
  std::string group;
  std::size_t samples = 0;
  double positive_share = 0.0;
  double logistic_accuracy = 0.0;
  double tree_accuracy = 0.0;
  double forest_accuracy = 0.0;
  double forest_oob_accuracy = 0.0;  ///< honest generalization estimate
};

/// Fit logistic regression, a single CART tree, and a random forest on each
/// architecture's data (optimal/sub-optimal labels) and report training +
/// out-of-bag accuracies. Degenerate single-class groups are skipped.
/// Architectures fit concurrently on `pool` (the forests' tree training
/// parallelizes on it too); rows keep first-appearance arch order and every
/// model is deterministic, so results are identical at any thread count.
std::vector<ModelComparisonRow> compare_models(const sweep::Dataset& dataset,
                                               double label_threshold = 1.01,
                                               ml::ForestOptions forest = {},
                                               const util::ThreadPool* pool = nullptr);

struct TransferResult {
  std::string arch;
  std::string held_out_app;
  std::size_t test_samples = 0;
  double majority_baseline = 0.0;  ///< accuracy of always predicting the majority class
  double forest_accuracy = 0.0;    ///< forest trained on the other apps
};

/// Leave-one-app-out transfer per architecture: train a forest on every
/// other application's samples (environment-variable features only — no
/// application identity) and evaluate on the held-out app.
std::vector<TransferResult> leave_one_app_out(const sweep::Dataset& dataset,
                                              double label_threshold = 1.01,
                                              ml::ForestOptions forest = {},
                                              const util::ThreadPool* pool = nullptr);

}  // namespace omptune::analysis
