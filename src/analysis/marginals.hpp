#pragma once

// Marginal value analysis: the paper's stated goal of "form[ing]
// qualitative relations between features" made explicit — for every
// environment variable and every value it takes, the distribution of
// speedups across the samples holding that value, per architecture.
// This is the drill-down a reader performs on the violin plots.

#include <string>
#include <vector>

#include "stats/descriptive.hpp"
#include "sweep/dataset.hpp"

namespace omptune::store {
class StoreReader;
}
namespace omptune::util {
class ThreadPool;
}

namespace omptune::analysis {

struct MarginalRow {
  std::string arch;        ///< "all" for the pooled row
  std::string variable;    ///< paper spelling, e.g. "KMP_LIBRARY"
  std::string value;       ///< e.g. "turnaround"
  std::size_t samples = 0;
  double mean_speedup = 0;
  double median_speedup = 0;
  double p95_speedup = 0;      ///< tail potential of this value
  double optimal_share = 0;    ///< fraction with speedup > 1.01
};

/// Per-(arch, variable, value) speedup summaries. `per_arch` false pools
/// the architectures into "all" rows.
std::vector<MarginalRow> value_marginals(const sweep::Dataset& dataset,
                                         bool per_arch = true);

/// Scan-based variant aggregating off the store's column slices. Skips
/// quarantined rows, so it equals the Dataset overload applied to
/// dataset.ok_samples() — the form every analysis consumer uses. The group
/// gather merges per-chunk partials in run order and the per-group stats
/// are independent, so the result is identical at any thread count.
std::vector<MarginalRow> value_marginals(const store::StoreReader& reader,
                                         bool per_arch = true,
                                         const util::ThreadPool* pool = nullptr);

/// Convenience: the single best value of `variable` on `arch` by median
/// speedup; throws std::invalid_argument when absent from the dataset.
MarginalRow best_value_of(const std::vector<MarginalRow>& marginals,
                          const std::string& arch, const std::string& variable);

}  // namespace omptune::analysis
