#pragma once

// Marginal value analysis: the paper's stated goal of "form[ing]
// qualitative relations between features" made explicit — for every
// environment variable and every value it takes, the distribution of
// speedups across the samples holding that value, per architecture.
// This is the drill-down a reader performs on the violin plots.

#include <string>
#include <vector>

#include "stats/descriptive.hpp"
#include "sweep/dataset.hpp"

namespace omptune::analysis {

struct MarginalRow {
  std::string arch;        ///< "all" for the pooled row
  std::string variable;    ///< paper spelling, e.g. "KMP_LIBRARY"
  std::string value;       ///< e.g. "turnaround"
  std::size_t samples = 0;
  double mean_speedup = 0;
  double median_speedup = 0;
  double p95_speedup = 0;      ///< tail potential of this value
  double optimal_share = 0;    ///< fraction with speedup > 1.01
};

/// Per-(arch, variable, value) speedup summaries. `per_arch` false pools
/// the architectures into "all" rows.
std::vector<MarginalRow> value_marginals(const sweep::Dataset& dataset,
                                         bool per_arch = true);

/// Convenience: the single best value of `variable` on `arch` by median
/// speedup; throws std::invalid_argument when absent from the dataset.
MarginalRow best_value_of(const std::vector<MarginalRow>& marginals,
                          const std::string& arch, const std::string& variable);

}  // namespace omptune::analysis
