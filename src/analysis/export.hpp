#pragma once

// Figure-data export — the paper's "visualization of the results, and all
// tooling used in the process" deliverable: violin (KDE) series and
// influence heat maps as plain CSV plus ready-to-run gnuplot scripts, so
// the figures can be re-plotted outside the terminal renderings.

#include <string>
#include <vector>

#include "analysis/influence.hpp"
#include "stats/kde.hpp"
#include "sweep/dataset.hpp"

namespace omptune::analysis {

/// Write one KDE curve as CSV (columns: value, density).
void write_violin_csv(const std::string& path, const stats::ViolinData& violin);

/// Write an influence map as CSV (rows: group; columns: features).
void write_heatmap_csv(const std::string& path, const InfluenceMap& map);

/// Export everything needed to re-plot one application's violin figure
/// (paper Figs 1, 5-7): one CSV per (arch, input, threads) group with the
/// runtime KDE, plus `<app>_violin.gp`, a gnuplot script that plots them.
/// Returns the paths written. Groups with fewer than 2 samples are skipped.
std::vector<std::string> export_violin_figure(const sweep::Dataset& dataset,
                                              const std::string& app,
                                              const std::string& out_dir,
                                              int grid_points = 128);

/// Export one heat-map figure (paper Figs 2-4): the CSV plus a gnuplot
/// matrix-plot script. Returns the paths written.
std::vector<std::string> export_heatmap_figure(const InfluenceMap& map,
                                               const std::string& name,
                                               const std::string& out_dir);

}  // namespace omptune::analysis
