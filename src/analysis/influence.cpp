#include "analysis/influence.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "ml/scaler.hpp"
#include "util/thread_pool.hpp"

namespace omptune::analysis {

std::string to_string(Grouping grouping) {
  switch (grouping) {
    case Grouping::PerApplication: return "per-application";
    case Grouping::PerArchitecture: return "per-architecture";
    case Grouping::PerArchApplication: return "per-architecture-application";
  }
  throw std::invalid_argument("to_string: bad Grouping");
}

double InfluenceMap::at(const std::string& group,
                        const std::string& feature) const {
  const auto feature_it =
      std::find(feature_names.begin(), feature_names.end(), feature);
  if (feature_it == feature_names.end()) {
    throw std::invalid_argument("InfluenceMap::at: unknown feature '" + feature + "'");
  }
  const std::size_t col =
      static_cast<std::size_t>(feature_it - feature_names.begin());
  for (const InfluenceRow& row : rows) {
    if (row.group == group) return row.influence.at(col);
  }
  throw std::invalid_argument("InfluenceMap::at: unknown group '" + group + "'");
}

namespace {

ml::FeatureOptions options_for(Grouping grouping) {
  ml::FeatureOptions options;
  switch (grouping) {
    case Grouping::PerApplication:
      // Pooling architectures: the Architecture placeholder column reveals
      // how architecture-dependent an app's tuning is (Fig 2).
      options.include_architecture = true;
      break;
    case Grouping::PerArchitecture:
      // Pooling applications: the Application column (Fig 3).
      options.include_application = true;
      break;
    case Grouping::PerArchApplication:
      break;
  }
  return options;
}

std::vector<std::string> group_keys(const sweep::Dataset& dataset,
                                    Grouping grouping) {
  switch (grouping) {
    case Grouping::PerApplication:
      return dataset.distinct([](const sweep::Sample& s) { return s.app; });
    case Grouping::PerArchitecture:
      return dataset.distinct([](const sweep::Sample& s) { return s.arch; });
    case Grouping::PerArchApplication:
      return dataset.distinct(
          [](const sweep::Sample& s) { return s.arch + "/" + s.app; });
  }
  throw std::invalid_argument("group_keys: bad Grouping");
}

sweep::Dataset group_slice(const sweep::Dataset& dataset, Grouping grouping,
                           const std::string& key) {
  switch (grouping) {
    case Grouping::PerApplication:
      return dataset.filter(
          [&key](const sweep::Sample& s) { return s.app == key; });
    case Grouping::PerArchitecture:
      return dataset.filter(
          [&key](const sweep::Sample& s) { return s.arch == key; });
    case Grouping::PerArchApplication:
      return dataset.filter([&key](const sweep::Sample& s) {
        return s.arch + "/" + s.app == key;
      });
  }
  throw std::invalid_argument("group_slice: bad Grouping");
}

}  // namespace

InfluenceMap influence_map(const sweep::Dataset& dataset, Grouping grouping,
                           double label_threshold, ml::LogisticOptions options,
                           const util::ThreadPool* pool) {
  const ml::FeatureEncoder encoder(options_for(grouping));
  InfluenceMap map;
  map.feature_names = encoder.names();

  // One slot per group, filled concurrently (degenerate groups leave
  // theirs empty), then gathered in group order — completion order never
  // shows in the output. A group's fit receives the pool too: when the
  // group loop has saturated it, the nested gradient loops run inline.
  const std::vector<std::string> keys = group_keys(dataset, grouping);
  std::vector<std::optional<InfluenceRow>> rows(keys.size());
  util::parallel_for(
      pool, keys.size(), 1, [&](std::size_t begin, std::size_t, std::size_t) {
        const std::string& key = keys[begin];
        const sweep::Dataset slice = group_slice(dataset, grouping, key);
        const std::vector<int> labels =
            ml::FeatureEncoder::labels(slice, label_threshold);

        const std::size_t positives = static_cast<std::size_t>(
            std::count(labels.begin(), labels.end(), 1));
        if (positives == 0 || positives == labels.size()) {
          // Degenerate group: a single class carries no separating signal.
          return;
        }

        ml::StandardScaler scaler;
        const ml::Matrix x = scaler.fit_transform(encoder.encode(slice));
        ml::LogisticRegression model(options);
        model.fit(x, labels, pool);

        InfluenceRow row;
        row.group = key;
        row.influence = model.normalized_influence();
        row.model_accuracy = model.accuracy(x, labels, pool);
        row.positive_share =
            static_cast<double>(positives) / static_cast<double>(labels.size());
        row.samples = labels.size();
        rows[begin] = std::move(row);
      });
  for (auto& row : rows) {
    if (row.has_value()) map.rows.push_back(std::move(*row));
  }
  return map;
}

}  // namespace omptune::analysis
