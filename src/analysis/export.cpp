#include "analysis/export.hpp"

#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>

#include "util/strings.hpp"

namespace omptune::analysis {

namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("export: cannot open '" + path + "'");
  return os;
}

/// File-system friendly version of a group key.
std::string slug(std::string text) {
  for (char& c : text) {
    if (c == '/' || c == ' ' || c == '=') c = '_';
  }
  return text;
}

}  // namespace

void write_violin_csv(const std::string& path, const stats::ViolinData& violin) {
  std::ofstream os = open_or_throw(path);
  os << "value,density\n";
  for (std::size_t i = 0; i < violin.grid.size(); ++i) {
    os << util::format_double(violin.grid[i], 9) << ','
       << util::format_double(violin.density[i], 9) << '\n';
  }
  if (!os) throw std::runtime_error("export: write to '" + path + "' failed");
}

void write_heatmap_csv(const std::string& path, const InfluenceMap& map) {
  std::ofstream os = open_or_throw(path);
  os << "group";
  for (const std::string& feature : map.feature_names) {
    os << ',' << util::csv_quote(feature);
  }
  os << '\n';
  for (const InfluenceRow& row : map.rows) {
    os << util::csv_quote(row.group);
    for (const double v : row.influence) {
      os << ',' << util::format_double(v, 6);
    }
    os << '\n';
  }
  if (!os) throw std::runtime_error("export: write to '" + path + "' failed");
}

std::vector<std::string> export_violin_figure(const sweep::Dataset& dataset,
                                              const std::string& app,
                                              const std::string& out_dir,
                                              int grid_points) {
  std::filesystem::create_directories(out_dir);

  std::map<std::string, std::vector<double>> groups;
  for (const sweep::Sample& s : dataset.samples()) {
    if (s.app != app) continue;
    groups[s.arch + "/" + s.input + "/t" + std::to_string(s.threads)].push_back(
        s.mean_runtime);
  }
  if (groups.empty()) {
    throw std::invalid_argument("export_violin_figure: no samples for app '" + app + "'");
  }

  std::vector<std::string> written;
  std::vector<std::pair<std::string, std::string>> plotted;  // title, file
  for (const auto& [key, runtimes] : groups) {
    if (runtimes.size() < 2) continue;
    const stats::ViolinData violin = stats::kernel_density(runtimes, grid_points);
    const std::string path = out_dir + "/" + app + "_" + slug(key) + ".csv";
    write_violin_csv(path, violin);
    written.push_back(path);
    plotted.emplace_back(key, path);
  }

  // gnuplot script: one density curve per group.
  const std::string script_path = out_dir + "/" + app + "_violin.gp";
  std::ofstream gp = open_or_throw(script_path);
  gp << "# Re-plot of the '" << app << "' runtime distributions (paper-style violins)\n"
     << "set datafile separator ','\n"
     << "set key outside\n"
     << "set xlabel 'runtime (s)'\n"
     << "set ylabel 'density'\n"
     << "set title 'Full-space runtime distributions: " << app << "'\n"
     << "plot \\\n";
  for (std::size_t i = 0; i < plotted.size(); ++i) {
    gp << "  '" << std::filesystem::path(plotted[i].second).filename().string()
       << "' using 1:2 skip 1 with lines title '" << plotted[i].first << "'";
    gp << (i + 1 < plotted.size() ? ", \\\n" : "\n");
  }
  if (!gp) throw std::runtime_error("export: write to '" + script_path + "' failed");
  written.push_back(script_path);
  return written;
}

std::vector<std::string> export_heatmap_figure(const InfluenceMap& map,
                                               const std::string& name,
                                               const std::string& out_dir) {
  std::filesystem::create_directories(out_dir);
  const std::string csv_path = out_dir + "/" + name + ".csv";
  write_heatmap_csv(csv_path, map);

  const std::string script_path = out_dir + "/" + name + ".gp";
  std::ofstream gp = open_or_throw(script_path);
  gp << "# Re-plot of the '" << name << "' influence heat map\n"
     << "set datafile separator ','\n"
     << "set view map\n"
     << "set palette defined (0 'white', 1 'dark-blue')\n"
     << "set cbrange [0:*]\n"
     << "set title 'Feature influence: " << name << "'\n"
     << "set xtics rotate by -45\n"
     << "plot '" << name << ".csv' matrix rowheaders columnheaders using 1:2:3 with image\n";
  if (!gp) throw std::runtime_error("export: write to '" + script_path + "' failed");
  return {csv_path, script_path};
}

}  // namespace omptune::analysis
