#include "analysis/recommend.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/speedup.hpp"
#include "stats/descriptive.hpp"
#include "store/reader.hpp"

namespace omptune::analysis {

namespace {

/// Variable/value pairs of one configuration, in the paper's spellings.
std::vector<std::pair<std::string, std::string>> variable_values(
    const rt::RtConfig& config) {
  return {
      {"OMP_PLACES", arch::to_string(config.places)},
      {"OMP_PROC_BIND", arch::to_string(config.bind)},
      {"OMP_SCHEDULE", rt::to_string(config.schedule)},
      {"KMP_LIBRARY", rt::to_string(config.library)},
      {"KMP_BLOCKTIME", config.blocktime_ms == rt::kBlocktimeInfinite
                            ? std::string("infinite")
                            : std::to_string(config.blocktime_ms)},
      {"KMP_FORCE_REDUCTION", rt::to_string(config.reduction)},
      {"KMP_ALIGN_ALLOC", std::to_string(config.align_alloc)},
  };
}

}  // namespace

std::vector<Recommendation> recommend_for_app(const sweep::Dataset& dataset,
                                              const std::string& app,
                                              double tolerance,
                                              double min_lift) {
  const sweep::Dataset app_data =
      dataset.filter([&app](const sweep::Sample& s) { return s.app == app; });

  // Per-setting best speedups, to define "near-best".
  std::map<std::string, double> setting_best;
  auto setting_key = [](const sweep::Sample& s) {
    return s.arch + "/" + s.input + "/" + std::to_string(s.threads);
  };
  for (const sweep::Sample& s : app_data.samples()) {
    double& best = setting_best[setting_key(s)];
    best = std::max(best, s.speedup);
  }

  const std::vector<std::string> archs =
      app_data.distinct([](const sweep::Sample& s) { return s.arch; });

  std::vector<Recommendation> recommendations;
  std::map<std::pair<std::string, std::string>, std::set<std::string>> everywhere;

  for (const std::string& arch : archs) {
    const sweep::Dataset arch_data = app_data.filter(
        [&arch](const sweep::Sample& s) { return s.arch == arch; });

    // Count variable values overall and among near-best samples.
    std::map<std::pair<std::string, std::string>, std::size_t> overall, best;
    std::size_t n_best = 0;
    for (const sweep::Sample& s : arch_data.samples()) {
      const bool near_best =
          s.speedup >= setting_best.at(setting_key(s)) * (1.0 - tolerance) &&
          s.speedup > 1.01;
      for (const auto& vv : variable_values(s.config)) {
        ++overall[vv];
        if (near_best) ++best[vv];
      }
      if (near_best) ++n_best;
    }
    if (n_best == 0) continue;

    const auto n_total = static_cast<double>(arch_data.size());
    for (const auto& [vv, best_count] : best) {
      const double share_best = static_cast<double>(best_count) / n_best;
      const double share_all = static_cast<double>(overall.at(vv)) / n_total;
      if (share_all <= 0.0) continue;
      const double lift = share_best / share_all;
      if (lift >= min_lift && share_best >= 0.3) {
        Recommendation rec;
        rec.app = app;
        rec.arch = arch;
        rec.variable = vv.first;
        rec.value = vv.second;
        rec.lift = lift;
        rec.share_in_best = share_best;
        recommendations.push_back(rec);
        everywhere[vv].insert(arch);
      }
    }
  }

  // Promote pairs recommended on every architecture to scope "all".
  for (const auto& [vv, arch_set] : everywhere) {
    if (arch_set.size() == archs.size() && archs.size() > 1) {
      double lift = 0.0, share = 0.0;
      for (const Recommendation& rec : recommendations) {
        if (rec.variable == vv.first && rec.value == vv.second) {
          lift = std::max(lift, rec.lift);
          share = std::max(share, rec.share_in_best);
        }
      }
      recommendations.push_back(
          Recommendation{app, "all", vv.first, vv.second, lift, share});
    }
  }

  std::sort(recommendations.begin(), recommendations.end(),
            [](const Recommendation& a, const Recommendation& b) {
              if (a.arch != b.arch) return a.arch < b.arch;
              return a.lift > b.lift;
            });
  return recommendations;
}

std::vector<Recommendation> recommend_for_app(const store::StoreReader& store,
                                              const std::string& app,
                                              double tolerance,
                                              double min_lift) {
  store::StoreQuery query;
  query.app = app;
  return recommend_for_app(store.query(query), app, tolerance, min_lift);
}

std::vector<WorstTrend> worst_trends(const sweep::Dataset& dataset,
                                     double decile) {
  std::vector<double> speedups;
  speedups.reserve(dataset.size());
  for (const sweep::Sample& s : dataset.samples()) speedups.push_back(s.speedup);
  const double cutoff = stats::quantile(speedups, decile);

  struct Condition {
    std::string name;
    bool (*test)(const sweep::Sample&);
  };
  static const Condition kConditions[] = {
      {"OMP_PROC_BIND=master with >= half the cores as threads",
       [](const sweep::Sample& s) {
         return s.config.bind == arch::BindKind::Master &&
                s.threads * 2 >= arch::architecture(arch::arch_from_string(s.arch)).cores;
       }},
      {"OMP_PROC_BIND=master",
       [](const sweep::Sample& s) {
         return s.config.bind == arch::BindKind::Master;
       }},
      {"OMP_PROC_BIND=close",
       [](const sweep::Sample& s) {
         return s.config.bind == arch::BindKind::Close;
       }},
      {"OMP_PROC_BIND=spread",
       [](const sweep::Sample& s) {
         return s.config.bind == arch::BindKind::Spread;
       }},
      {"KMP_BLOCKTIME=0 (passive waiting)",
       [](const sweep::Sample& s) { return s.config.blocktime_ms == 0; }},
  };

  std::vector<WorstTrend> trends;
  const auto n = static_cast<double>(dataset.size());
  for (const Condition& condition : kConditions) {
    std::size_t in_worst = 0, worst_total = 0, overall = 0;
    for (const sweep::Sample& s : dataset.samples()) {
      const bool matches = condition.test(s);
      overall += matches;
      if (s.speedup <= cutoff) {
        ++worst_total;
        in_worst += matches;
      }
    }
    WorstTrend trend;
    trend.condition = condition.name;
    trend.share_in_worst =
        worst_total > 0 ? static_cast<double>(in_worst) / worst_total : 0.0;
    trend.share_overall = static_cast<double>(overall) / n;
    trend.lift = trend.share_overall > 0.0
                     ? trend.share_in_worst / trend.share_overall
                     : 0.0;
    trends.push_back(trend);
  }
  std::sort(trends.begin(), trends.end(),
            [](const WorstTrend& a, const WorstTrend& b) { return a.lift > b.lift; });
  return trends;
}

}  // namespace omptune::analysis
