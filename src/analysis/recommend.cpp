#include "analysis/recommend.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/speedup.hpp"
#include "analysis/variables.hpp"
#include "stats/descriptive.hpp"
#include "store/reader.hpp"
#include "util/thread_pool.hpp"

namespace omptune::analysis {

namespace {

using VariableValue = std::pair<std::string, std::string>;

/// Value frequencies of one (app, arch) group: overall and among near-best
/// samples. Pure counts, so the scan's merge order cannot affect them.
struct ArchCounts {
  std::map<VariableValue, std::size_t> overall, best;
  std::size_t n_best = 0;
  std::size_t n_total = 0;
};

/// Assemble recommendations from per-arch counts — the shared back half of
/// both recommend_for_app overloads. `archs` is in first-appearance order.
std::vector<Recommendation> recommendations_from_counts(
    const std::string& app, const std::vector<std::string>& archs,
    const std::map<std::string, ArchCounts>& by_arch, double min_lift) {
  std::vector<Recommendation> recommendations;
  std::map<VariableValue, std::set<std::string>> everywhere;

  for (const std::string& arch : archs) {
    const ArchCounts& counts = by_arch.at(arch);
    if (counts.n_best == 0) continue;
    const auto n_total = static_cast<double>(counts.n_total);
    for (const auto& [vv, best_count] : counts.best) {
      const double share_best =
          static_cast<double>(best_count) / static_cast<double>(counts.n_best);
      const double share_all =
          static_cast<double>(counts.overall.at(vv)) / n_total;
      if (share_all <= 0.0) continue;
      const double lift = share_best / share_all;
      if (lift >= min_lift && share_best >= 0.3) {
        Recommendation rec;
        rec.app = app;
        rec.arch = arch;
        rec.variable = vv.first;
        rec.value = vv.second;
        rec.lift = lift;
        rec.share_in_best = share_best;
        recommendations.push_back(rec);
        everywhere[vv].insert(arch);
      }
    }
  }

  // Promote pairs recommended on every architecture to scope "all".
  for (const auto& [vv, arch_set] : everywhere) {
    if (arch_set.size() == archs.size() && archs.size() > 1) {
      double lift = 0.0, share = 0.0;
      for (const Recommendation& rec : recommendations) {
        if (rec.variable == vv.first && rec.value == vv.second) {
          lift = std::max(lift, rec.lift);
          share = std::max(share, rec.share_in_best);
        }
      }
      recommendations.push_back(
          Recommendation{app, "all", vv.first, vv.second, lift, share});
    }
  }

  std::sort(recommendations.begin(), recommendations.end(),
            [](const Recommendation& a, const Recommendation& b) {
              if (a.arch != b.arch) return a.arch < b.arch;
              return a.lift > b.lift;
            });
  return recommendations;
}

}  // namespace

std::vector<Recommendation> recommend_for_app(const sweep::Dataset& dataset,
                                              const std::string& app,
                                              double tolerance,
                                              double min_lift) {
  const sweep::Dataset app_data =
      dataset.filter([&app](const sweep::Sample& s) { return s.app == app; });

  // Per-setting best speedups, to define "near-best".
  std::map<std::string, double> setting_best;
  auto setting_key = [](const sweep::Sample& s) {
    return s.arch + "/" + s.input + "/" + std::to_string(s.threads);
  };
  for (const sweep::Sample& s : app_data.samples()) {
    double& best = setting_best[setting_key(s)];
    best = std::max(best, s.speedup);
  }

  const std::vector<std::string> archs =
      app_data.distinct([](const sweep::Sample& s) { return s.arch; });

  std::map<std::string, ArchCounts> by_arch;
  for (const sweep::Sample& s : app_data.samples()) {
    ArchCounts& counts = by_arch[s.arch];
    ++counts.n_total;
    const bool near_best =
        s.speedup >= setting_best.at(setting_key(s)) * (1.0 - tolerance) &&
        s.speedup > 1.01;
    for (const auto& vv : config_variable_values(s.config)) {
      ++counts.overall[vv];
      if (near_best) ++counts.best[vv];
    }
    if (near_best) ++counts.n_best;
  }

  return recommendations_from_counts(app, archs, by_arch, min_lift);
}

std::vector<Recommendation> recommend_for_app(const store::StoreReader& store,
                                              const std::string& app,
                                              double tolerance,
                                              double min_lift,
                                              const util::ThreadPool* pool) {
  store.ensure_scan_validated();
  const std::size_t runs = store.setting_count();

  // Pass 1: per-(arch, input, threads) best speedup over every sample of
  // the app — quarantined placeholders included, exactly like the Dataset
  // walk (their speedup of 0 never wins, and never passes the >1.01 gate
  // below either). Also collects the architectures in run (= row) order.
  struct Pass1 {
    std::map<std::string, double> setting_best;
    std::vector<std::string> arch_order;
  };
  const auto add_arch = [](std::vector<std::string>& order,
                           const std::string& arch) {
    if (std::find(order.begin(), order.end(), arch) == order.end()) {
      order.push_back(arch);
    }
  };
  Pass1 pass1 = util::parallel_reduce<Pass1>(
      pool, runs, 1,
      [&](Pass1& partial, std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          const store::SettingSlice slice = store.setting_slice(r);
          if (*slice.app != app) continue;
          const std::string key = *slice.arch + "/" + *slice.input + "/" +
                                  std::to_string(slice.threads);
          double& best = partial.setting_best[key];
          for (std::size_t i = 0; i < slice.rows; ++i) {
            best = std::max(best, slice.speedup[i]);
          }
          add_arch(partial.arch_order, *slice.arch);
        }
      },
      [&](Pass1& into, Pass1&& from) {
        for (const auto& [key, best] : from.setting_best) {
          double& dst = into.setting_best[key];
          dst = std::max(dst, best);
        }
        for (const std::string& arch : from.arch_order) {
          add_arch(into.arch_order, arch);
        }
      });

  // Pass 2 classifies each sample against the complete pass-1 map — an
  // inherent barrier between the two scans. All integer counts, merged by
  // addition: scheduling cannot perturb them.
  using ByArch = std::map<std::string, ArchCounts>;
  ByArch by_arch = util::parallel_reduce<ByArch>(
      pool, runs, 1,
      [&](ByArch& partial, std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          const store::SettingSlice slice = store.setting_slice(r);
          if (*slice.app != app) continue;
          const std::string key = *slice.arch + "/" + *slice.input + "/" +
                                  std::to_string(slice.threads);
          const double best = pass1.setting_best.at(key);
          ArchCounts& counts = partial[*slice.arch];
          for (std::size_t i = 0; i < slice.rows; ++i) {
            ++counts.n_total;
            const bool near_best = slice.speedup[i] >= best * (1.0 - tolerance) &&
                                   slice.speedup[i] > 1.01;
            for (const auto& vv : config_variable_values(slice.config(i))) {
              ++counts.overall[vv];
              if (near_best) ++counts.best[vv];
            }
            if (near_best) ++counts.n_best;
          }
        }
      },
      [](ByArch& into, ByArch&& from) {
        for (auto& [arch, counts] : from) {
          ArchCounts& dst = into[arch];
          dst.n_total += counts.n_total;
          dst.n_best += counts.n_best;
          for (const auto& [vv, c] : counts.overall) dst.overall[vv] += c;
          for (const auto& [vv, c] : counts.best) dst.best[vv] += c;
        }
      });

  return recommendations_from_counts(app, pass1.arch_order, by_arch, min_lift);
}

std::vector<WorstTrend> worst_trends(const sweep::Dataset& dataset,
                                     double decile) {
  std::vector<double> speedups;
  speedups.reserve(dataset.size());
  for (const sweep::Sample& s : dataset.samples()) speedups.push_back(s.speedup);
  const double cutoff = stats::quantile(speedups, decile);

  struct Condition {
    std::string name;
    bool (*test)(const sweep::Sample&);
  };
  static const Condition kConditions[] = {
      {"OMP_PROC_BIND=master with >= half the cores as threads",
       [](const sweep::Sample& s) {
         return s.config.bind == arch::BindKind::Master &&
                s.threads * 2 >= arch::architecture(arch::arch_from_string(s.arch)).cores;
       }},
      {"OMP_PROC_BIND=master",
       [](const sweep::Sample& s) {
         return s.config.bind == arch::BindKind::Master;
       }},
      {"OMP_PROC_BIND=close",
       [](const sweep::Sample& s) {
         return s.config.bind == arch::BindKind::Close;
       }},
      {"OMP_PROC_BIND=spread",
       [](const sweep::Sample& s) {
         return s.config.bind == arch::BindKind::Spread;
       }},
      {"KMP_BLOCKTIME=0 (passive waiting)",
       [](const sweep::Sample& s) { return s.config.blocktime_ms == 0; }},
  };

  std::vector<WorstTrend> trends;
  const auto n = static_cast<double>(dataset.size());
  for (const Condition& condition : kConditions) {
    std::size_t in_worst = 0, worst_total = 0, overall = 0;
    for (const sweep::Sample& s : dataset.samples()) {
      const bool matches = condition.test(s);
      overall += matches;
      if (s.speedup <= cutoff) {
        ++worst_total;
        in_worst += matches;
      }
    }
    WorstTrend trend;
    trend.condition = condition.name;
    trend.share_in_worst =
        worst_total > 0 ? static_cast<double>(in_worst) / worst_total : 0.0;
    trend.share_overall = static_cast<double>(overall) / n;
    trend.lift = trend.share_overall > 0.0
                     ? trend.share_in_worst / trend.share_overall
                     : 0.0;
    trends.push_back(trend);
  }
  std::sort(trends.begin(), trends.end(),
            [](const WorstTrend& a, const WorstTrend& b) { return a.lift > b.lift; });
  return trends;
}

}  // namespace omptune::analysis
