#pragma once

// The environment-variable view of one runtime configuration, in the
// paper's spellings — the single definition shared by the marginal-value
// analysis and the recommendation extractor (previously each kept its own
// copy, which could silently diverge).

#include <string>
#include <utility>
#include <vector>

#include "arch/topology.hpp"
#include "rt/config.hpp"

namespace omptune::analysis {

/// Variable/value pairs of one configuration, e.g. {"KMP_LIBRARY",
/// "turnaround"}. Fixed order, fixed set: one pair per tuned variable.
inline std::vector<std::pair<std::string, std::string>> config_variable_values(
    const rt::RtConfig& config) {
  return {
      {"OMP_PLACES", arch::to_string(config.places)},
      {"OMP_PROC_BIND", arch::to_string(config.bind)},
      {"OMP_SCHEDULE", rt::to_string(config.schedule)},
      {"KMP_LIBRARY", rt::to_string(config.library)},
      {"KMP_BLOCKTIME", config.blocktime_ms == rt::kBlocktimeInfinite
                            ? std::string("infinite")
                            : std::to_string(config.blocktime_ms)},
      {"KMP_FORCE_REDUCTION", rt::to_string(config.reduction)},
      {"KMP_ALIGN_ALLOC", std::to_string(config.align_alloc)},
  };
}

}  // namespace omptune::analysis
