#pragma once

// Upshot-potential analysis (paper Section V.1, Tables V and VI):
// per-setting best speedups and their ranges per application/architecture.

#include <string>
#include <vector>

#include "sweep/dataset.hpp"

namespace omptune::analysis {

/// Best observed speedup within one experiment setting.
struct SettingBest {
  std::string arch;
  std::string app;
  std::string input;
  int threads = 0;
  double best_speedup = 1.0;
  rt::RtConfig best_config;
};

/// Best speedup per setting across the dataset (one entry per distinct
/// (arch, app, input, threads)).
std::vector<SettingBest> best_per_setting(const sweep::Dataset& dataset);

/// Table V row: the [min, max] over settings of the per-setting best for
/// one (app, arch).
struct ArchAppRange {
  std::string app;
  std::string arch;
  double lo = 0;
  double hi = 0;
};

std::vector<ArchAppRange> speedup_ranges_by_arch(const sweep::Dataset& dataset);

/// Table VI row: the [min, max] over (arch, setting) for one app.
struct AppRange {
  std::string app;
  double lo = 0;
  double hi = 0;
};

std::vector<AppRange> speedup_ranges_by_app(const sweep::Dataset& dataset);

/// Section V.1 headline numbers per architecture: the min / median / max of
/// the per-setting best speedups.
struct ArchUpshot {
  std::string arch;
  double min_best = 0;
  double median_best = 0;
  double max_best = 0;
};

std::vector<ArchUpshot> upshot_by_arch(const sweep::Dataset& dataset);

}  // namespace omptune::analysis
