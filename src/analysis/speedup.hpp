#pragma once

// Upshot-potential analysis (paper Section V.1, Tables V and VI):
// per-setting best speedups and their ranges per application/architecture.
//
// Every entry point has two forms: the original Dataset walk, and a
// zero-copy StoreReader overload that aggregates straight off the store's
// column slices (no Sample materialization) and accepts an optional
// ThreadPool. The two produce identical results, and the reader overload is
// bit-identical across thread counts: per-run partials are merged in run
// (= row) order, never in completion order.

#include <string>
#include <vector>

#include "stats/descriptive.hpp"
#include "sweep/dataset.hpp"

namespace omptune::store {
class StoreReader;
}
namespace omptune::util {
class ThreadPool;
}

namespace omptune::analysis {

/// Best observed speedup within one experiment setting.
struct SettingBest {
  std::string arch;
  std::string app;
  std::string input;
  int threads = 0;
  double best_speedup = 1.0;
  rt::RtConfig best_config;
};

/// Best speedup per setting across the dataset (one entry per distinct
/// (arch, app, input, threads)).
std::vector<SettingBest> best_per_setting(const sweep::Dataset& dataset);

/// Same result computed from the store's zero-copy setting slices, without
/// materializing a Dataset. Quarantined rows are skipped, matching the
/// Dataset overload. Runs aggregate in parallel on `pool`; runs sharing a
/// key fold in first-appearance order, so output order and tie-breaking are
/// identical to the Dataset walk.
std::vector<SettingBest> best_per_setting(const store::StoreReader& reader,
                                          const util::ThreadPool* pool = nullptr);

/// Table V row: the [min, max] over settings of the per-setting best for
/// one (app, arch).
struct ArchAppRange {
  std::string app;
  std::string arch;
  double lo = 0;
  double hi = 0;
};

std::vector<ArchAppRange> speedup_ranges_by_arch(const sweep::Dataset& dataset);
std::vector<ArchAppRange> speedup_ranges_by_arch(
    const std::vector<SettingBest>& bests);
std::vector<ArchAppRange> speedup_ranges_by_arch(
    const store::StoreReader& reader, const util::ThreadPool* pool = nullptr);

/// Table VI row: the [min, max] over (arch, setting) for one app.
struct AppRange {
  std::string app;
  double lo = 0;
  double hi = 0;
};

std::vector<AppRange> speedup_ranges_by_app(const sweep::Dataset& dataset);
std::vector<AppRange> speedup_ranges_by_app(const std::vector<SettingBest>& bests);
std::vector<AppRange> speedup_ranges_by_app(const store::StoreReader& reader,
                                            const util::ThreadPool* pool = nullptr);

/// Section V.1 headline numbers per architecture: the min / median / max of
/// the per-setting best speedups.
struct ArchUpshot {
  std::string arch;
  double min_best = 0;
  double median_best = 0;
  double max_best = 0;
};

std::vector<ArchUpshot> upshot_by_arch(const sweep::Dataset& dataset);
std::vector<ArchUpshot> upshot_by_arch(const std::vector<SettingBest>& bests);
std::vector<ArchUpshot> upshot_by_arch(const store::StoreReader& reader,
                                       const util::ThreadPool* pool = nullptr);

/// Descriptive runtime statistics of one experiment setting, over every
/// repetition of every non-quarantined sample in the setting.
struct SettingSummary {
  std::string arch;
  std::string app;
  std::string input;
  int threads = 0;
  stats::Summary runtime;
};

/// Per-setting runtime summaries straight off the store's runtime matrix:
/// each worker reads its settings' contiguous runtime slices in place (one
/// copy into the quantile sort, nothing else). Settings whose samples are
/// all quarantined are omitted. Deterministic at any thread count.
std::vector<SettingSummary> setting_runtime_summaries(
    const store::StoreReader& reader, const util::ThreadPool* pool = nullptr);

}  // namespace omptune::analysis
