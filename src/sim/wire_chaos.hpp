#pragma once

// Wire-level chaos for the serving stack: a deterministic fault proxy that
// sits between a serve::Client and a serve::Server on unix sockets,
//
//   client ──▶ proxy (listen_path) ──▶ server (upstream_path)
//
// forwarding request bytes verbatim and injecting faults into REPLY frames
// — the direction where corruption is dangerous, because the client acts
// on what it reads. Per complete reply frame the proxy draws one fault
// from a seed-keyed stream (hash of seed and a global frame index, the
// ChaosMonkey construction from fault_runner.hpp), so a chaos schedule
// reproduces exactly across runs:
//
//   reset     drop the connection before forwarding the frame,
//   truncate  forward half the frame, then drop the connection,
//   stall     forward half, sleep stall_ms mid-frame, forward the rest
//             (latency, not loss — exercises client socket timeouts),
//   garble    flip one payload byte (framing stays intact; the client
//             must catch the lie by decode failure or implausible type),
//   duplicate forward the frame twice (breaks positional correlation —
//             the client must notice unsolicited leftover bytes).
//
// This is the adversary tests/serve_chaos_test.cpp runs the retrying
// client against: under all five faults at once, every issued query must
// still complete within its bounded retry budget.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace omptune::sim {

struct WireChaosSpec {
  std::uint64_t seed = 0;
  double reset_rate = 0.0;      ///< P(drop connection, frame unsent)
  double truncate_rate = 0.0;   ///< P(half the frame, then drop)
  double stall_rate = 0.0;      ///< P(sleep stall_ms mid-frame)
  double garble_rate = 0.0;     ///< P(flip one payload byte)
  double duplicate_rate = 0.0;  ///< P(send the frame twice)
  std::int64_t stall_ms = 100;  ///< injected mid-frame pause (bounded!)

  bool enabled() const {
    return reset_rate > 0 || truncate_rate > 0 || stall_rate > 0 ||
           garble_rate > 0 || duplicate_rate > 0;
  }

  /// Parse "seed=7,reset=0.05,truncate=0.05,stall=0.05,garble=0.05,
  /// dup=0.05,stall_ms=50" (any subset, any order). Throws
  /// std::invalid_argument on unknown keys or malformed values.
  static WireChaosSpec parse(const std::string& text);

  /// Render back to the parse() syntax (CLI echo, CI logs).
  std::string describe() const;
};

/// What the draw decided for one reply frame.
enum class WireFault : std::uint8_t {
  None, Reset, Truncate, Stall, Garble, Duplicate
};

const char* to_string(WireFault fault);

struct WireChaosCounters {
  std::uint64_t connections = 0;  ///< client connections accepted
  std::uint64_t frames = 0;       ///< reply frames seen (faulted or not)
  std::uint64_t resets = 0;
  std::uint64_t truncated = 0;
  std::uint64_t stalled = 0;
  std::uint64_t garbled = 0;
  std::uint64_t duplicated = 0;
};

/// The proxy itself: listens on `listen_path`, dials `upstream_path` once
/// per accepted connection, one forwarding thread per connection. start()
/// returns once the listener is bound (clients may connect immediately);
/// stop() tears everything down and joins. A dead upstream (e.g. a server
/// the Keeper is mid-restart on) surfaces to the client as a dropped
/// connection — exactly what a real crashed server looks like.
class WireChaosProxy {
 public:
  WireChaosProxy(std::string listen_path, std::string upstream_path,
                 WireChaosSpec spec);
  ~WireChaosProxy();

  WireChaosProxy(const WireChaosProxy&) = delete;
  WireChaosProxy& operator=(const WireChaosProxy&) = delete;

  void start();
  void stop();

  WireChaosCounters counters() const;

  /// The fault the global frame index `frame` draws — exposed so tests can
  /// predict (and assert) the schedule without running the proxy.
  WireFault draw(std::uint64_t frame) const;

 private:
  void accept_loop();
  void serve_connection(int client_fd);

  std::string listen_path_;
  std::string upstream_path_;
  WireChaosSpec spec_;

  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::thread acceptor_;
  std::mutex threads_mutex_;
  std::vector<std::thread> threads_;

  /// Global reply-frame index: the chaos stream position. Advances across
  /// connections so reconnects continue the schedule instead of replaying
  /// its head.
  std::atomic<std::uint64_t> frame_index_{0};

  struct Atomics {
    std::atomic<std::uint64_t> connections{0}, frames{0}, resets{0},
        truncated{0}, stalled{0}, garbled{0}, duplicated{0};
  };
  mutable Atomics counters_;
};

}  // namespace omptune::sim
