#pragma once

// Deterministic fault injection for resilience testing.
//
// FaultInjectingRunner wraps any Runner and, based purely on a seeded hash
// of (batch_seed, sample_index, repetition, per-sample attempt number),
// injects the cluster failure modes the resilience layer must survive:
//   - crashes:   throws util::TransientError (a preempted/killed run),
//   - hangs:     sleeps past the watchdog deadline before returning,
//   - NaN / negative runtimes (a garbage reading),
//   - noise spikes: multiplies the runtime by spike_factor.
// Because the decision includes the attempt number, a fault that fires on
// attempt 1 deterministically clears (or not) on retry — every test run
// reproduces the same schedule of failures.
//
// `kill_after_runs` additionally simulates process death: after N
// successful forwarded runs the decorator throws util::StudyAbort, which
// the resilience policy deliberately lets escape. Tests use this to kill a
// journaled study at an arbitrary point and exercise resume.

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "sim/executor.hpp"
#include "util/errors.hpp"

namespace omptune::sim {

struct FaultSpec {
  std::uint64_t seed = 0;        ///< fault stream seed (independent of data)
  double crash_rate = 0.0;       ///< P(throw TransientError)
  double hang_rate = 0.0;        ///< P(sleep hang_ms before returning)
  double nan_rate = 0.0;         ///< P(return NaN)
  double negative_rate = 0.0;    ///< P(return -runtime)
  double spike_rate = 0.0;       ///< P(runtime *= spike_factor)
  std::int64_t hang_ms = 50;     ///< injected hang duration (bounded!)
  double spike_factor = 25.0;
  /// Sticky faults: triples listed here fail on EVERY attempt (exercises
  /// quarantine). Key format: "<arch>/<app>/<sample_index>".
  bool sticky = false;
  /// > 0: throw util::StudyAbort after this many successful runs.
  std::uint64_t kill_after_runs = 0;
};

// ---- process-level chaos ----------------------------------------------------
//
// ChaosSpec describes faults at the WORKER PROCESS level rather than the
// measurement level: the supervisor's containment path (crash detection,
// heartbeat timeouts, protocol-garbage handling, shard reassignment,
// crash-count quarantine) must be testable without waiting for real
// faults. A ChaosMonkey embedded in the worker draws deterministically per
// (seed, setting key, attempt, sample counter) — attempt is the number of
// times the setting has already crashed a worker, handed down in the lease
// — so a chaos schedule reproduces exactly across runs and machines, and a
// setting that killed its worker once does not deterministically kill every
// replacement.

struct ChaosSpec {
  std::uint64_t seed = 0;     ///< chaos stream seed
  double kill_rate = 0.0;     ///< P(raise SIGKILL) per completed sample
  double segv_rate = 0.0;     ///< P(raise SIGSEGV) per completed sample
  double wedge_rate = 0.0;    ///< P(stop making progress forever)
  double garble_rate = 0.0;   ///< P(write protocol garbage to the supervisor)
  /// Coordinator-facing rates (shard-level faults, drawn per lease attempt
  /// via draw_shard_fault rather than per sample):
  double truncate_rate = 0.0;   ///< P(truncate the published shard store)
  double duplicate_rate = 0.0;  ///< P(deliver the same shard twice)
  /// Setting keys containing this substring are killed on EVERY attempt —
  /// the deterministic "poisonous setting" that must end in quarantine.
  std::string sticky_kill_substr;

  bool enabled() const {
    return kill_rate > 0 || segv_rate > 0 || wedge_rate > 0 ||
           garble_rate > 0 || truncate_rate > 0 || duplicate_rate > 0 ||
           !sticky_kill_substr.empty();
  }

  /// Parse "seed=7,kill=0.02,segv=0.01,wedge=0.01,garble=0.01,truncate=0.01,
  /// dup=0.01,sticky=bt" (any subset, any order). Throws
  /// std::invalid_argument on unknown keys or malformed values.
  static ChaosSpec parse(const std::string& text);

  /// Render back to the parse() syntax (CLI echo, resume hints).
  std::string describe() const;
};

/// What the chaos draw decided for one observation point.
enum class ChaosAction { None, Kill, Segv, Wedge, Garble };

const char* to_string(ChaosAction action);

/// Shard-level fault decided once per (shard, lease attempt) — the failure
/// modes a multi-host coordinator must contain:
///   KillHolder        the lease-holding host dies mid-shard,
///   StallHeartbeat    the host stops heartbeating but stays alive,
///   TruncateStore     the host publishes a truncated .omps and claims done,
///   DuplicateDelivery the host reports the same shard done twice.
enum class ShardFault { None, KillHolder, StallHeartbeat, TruncateStore,
                        DuplicateDelivery };

const char* to_string(ShardFault fault);

/// Deterministic per-sample chaos decision stream for one worker process.
class ChaosMonkey {
 public:
  explicit ChaosMonkey(ChaosSpec spec) : spec_(std::move(spec)) {}

  /// Decide the fate of the worker after one more completed sample of
  /// `setting_key`. `attempt` is the setting's prior crash count (from the
  /// lease); `sample` counts samples within the setting.
  ChaosAction draw(const std::string& setting_key, int attempt,
                   std::uint64_t sample) const;

  /// Decide the shard-level fault for one lease attempt of `shard_key`
  /// (e.g. "shard-3"). Hashed with a salt distinct from the sample-level
  /// draw so the two streams are independent; deterministic per
  /// (seed, shard_key, attempt).
  ShardFault draw_shard_fault(const std::string& shard_key, int attempt) const;

  const ChaosSpec& spec() const { return spec_; }

 private:
  ChaosSpec spec_;
};

class FaultInjectingRunner final : public Runner {
 public:
  FaultInjectingRunner(Runner& inner, FaultSpec spec)
      : inner_(&inner), spec_(spec) {}

  double run(const apps::Application& app, const apps::InputSize& input,
             const arch::CpuArch& cpu, const rt::RtConfig& config,
             std::uint64_t batch_seed, int repetition,
             std::uint64_t sample_index) override;

  /// Successful (non-faulted) runs forwarded so far.
  std::uint64_t completed_runs() const { return completed_; }
  std::uint64_t injected_faults() const { return injected_; }

  const FaultSpec& spec() const { return spec_; }

 private:
  Runner* inner_;
  FaultSpec spec_;
  std::uint64_t completed_ = 0;
  std::uint64_t injected_ = 0;
  /// Attempt counters per (batch_seed, sample_index, repetition) so retries
  /// of the same sample see a fresh (but deterministic) fault draw.
  std::map<std::string, int> attempts_;
};

}  // namespace omptune::sim
