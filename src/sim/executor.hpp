#pragma once

// Unified execution interface for the study: a Runner produces a runtime
// measurement for (application, input, architecture, configuration).
//
//  - ModelRunner evaluates the calibrated performance model (microseconds
//    per sample: the full 240k-sample study runs in seconds, deterministic).
//  - NativeRunner executes the real kernel through the runtime substrate on
//    the current host and reports wall-clock time. Problem sizes are shrunk
//    by `native_scale` and thread counts capped for test hosts.

#include <cstdint>
#include <memory>

#include "apps/application.hpp"
#include "arch/cpu_arch.hpp"
#include "rt/config.hpp"
#include "sim/perf_model.hpp"

namespace omptune::sim {

class Runner {
 public:
  virtual ~Runner() = default;

  /// One runtime measurement in seconds.
  virtual double run(const apps::Application& app, const apps::InputSize& input,
                     const arch::CpuArch& cpu, const rt::RtConfig& config,
                     std::uint64_t batch_seed, int repetition,
                     std::uint64_t sample_index) = 0;
};

/// Deterministic model-based runner (the default study engine).
class ModelRunner final : public Runner {
 public:
  explicit ModelRunner(PerfModel model = PerfModel()) : model_(model) {}

  double run(const apps::Application& app, const apps::InputSize& input,
             const arch::CpuArch& cpu, const rt::RtConfig& config,
             std::uint64_t batch_seed, int repetition,
             std::uint64_t sample_index) override;

  const PerfModel& model() const { return model_; }

 private:
  PerfModel model_;
};

/// Wall-clock runner executing the real kernels through the runtime.
class NativeRunner final : public Runner {
 public:
  /// `native_scale` shrinks problem sizes; `max_threads` caps team sizes so
  /// oversubscription on small hosts stays bounded (0 = no cap).
  explicit NativeRunner(double native_scale = 0.05, int max_threads = 8)
      : native_scale_(native_scale), max_threads_(max_threads) {}

  double run(const apps::Application& app, const apps::InputSize& input,
             const arch::CpuArch& cpu, const rt::RtConfig& config,
             std::uint64_t batch_seed, int repetition,
             std::uint64_t sample_index) override;

  /// Checksum of the last run, for validation.
  double last_checksum() const { return last_checksum_; }

 private:
  double native_scale_;
  int max_threads_;
  double last_checksum_ = 0.0;
};

}  // namespace omptune::sim
