#include "sim/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "util/rng.hpp"

namespace omptune::sim {

namespace {

using apps::AppCharacteristics;
using apps::ParallelismKind;
using arch::CpuArch;
using rt::RtConfig;
using rt::ScheduleKind;
using rt::WaitPolicy;

/// Reference machine for AppCharacteristics::base_seconds.
constexpr double kReferenceClockGhz = 2.4;  // Skylake 6148

/// Memory bandwidth one thread can consume (GB/s) — sets the saturation
/// thread count sat = mem_bw / kPerThreadBw.
constexpr double kPerThreadBwGbs = 10.0;

/// Context-switch tax per extra thread stacked on one core.
constexpr double kOversubscriptionTax = 0.12;

/// Residual imbalance after dynamic/guided rebalancing.
constexpr double kDynamicResidual = 0.06;
constexpr double kGuidedResidual = 0.12;

/// Fraction of tasks that end in a steal/idle episode, as a function of
/// imbalance.
double steal_fraction(double imbalance) {
  return std::clamp(0.25 + 0.8 * imbalance, 0.0, 0.95);
}

/// Placement statistics are pure in (arch, places, bind, threads) and the
/// model evaluates millions of configurations per sweep — memoize them.
const arch::PlacementStats& cached_placement_stats(const CpuArch& cpu,
                                                   arch::PlacesKind places,
                                                   arch::BindKind bind,
                                                   int threads) {
  using Key = std::tuple<arch::ArchId, arch::PlacesKind, arch::BindKind, int>;
  static std::map<Key, arch::PlacementStats> cache;
  static std::mutex mutex;

  const Key key{cpu.id, places, bind, threads};
  std::lock_guard<std::mutex> lock(mutex);
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  const arch::Topology topo(cpu);
  return cache.emplace(key, arch::placement_stats(topo, places, bind, threads))
      .first->second;
}

/// Latency (us) a waiting thread pays per idle episode before it acquires
/// new work, per wait policy.
double idle_latency_us(const rt::CalibrationTable& cal, const CpuArch& cpu,
                       const RtConfig& config) {
  switch (config.wait_policy()) {
    case WaitPolicy::Active:
      // Turnaround spins without yielding: near-immediate pickup.
      // blocktime=infinite in throughput mode still yields between polls.
      return config.library == rt::LibraryMode::Turnaround
                 ? cal.idle_active_us
                 : cal.idle_active_us +
                       cal.idle_yield_factor * cpu.yield_latency_us;
    case WaitPolicy::SpinThenSleep:
      // Gaps shorter than the blocktime behave like yielding spin.
      return cal.idle_active_us + cal.idle_yield_factor * cpu.yield_latency_us;
    case WaitPolicy::Passive:
      return cpu.sleep_latency_us;
  }
  return cpu.sleep_latency_us;
}

/// Cost (seconds) of forking/joining one parallel region.
double region_cost_seconds(const rt::CalibrationTable& cal, const CpuArch& cpu,
                           const RtConfig& config, int threads) {
  const double t = static_cast<double>(threads);
  double us = 0.0;
  switch (config.wait_policy()) {
    case WaitPolicy::Active:
      us = cal.region_active_base_us + cal.region_active_per_thread_us * t;
      break;
    case WaitPolicy::SpinThenSleep:
      // Workers usually still spinning between close-by regions; a small
      // fraction has slept (long gaps).
      us = cal.region_spin_base_us + cal.region_spin_per_thread_us * t +
           cal.region_spin_sleep_frac * cpu.sleep_latency_us;
      break;
    case WaitPolicy::Passive:
      // Thundering-herd wake-up of the whole team.
      us = cpu.sleep_latency_us + cal.region_passive_per_thread_us * t;
      break;
  }
  return us * 1e-6;
}

/// Cost (seconds) of one team-wide reduction with the given method.
double reduction_cost_seconds(const rt::CalibrationTable& cal,
                              const CpuArch& cpu, rt::ReductionMethod method,
                              int threads) {
  const double t = static_cast<double>(threads);
  const double hop_us =
      cal.reduction_hop_base_us +
      cal.reduction_hop_numa_us * (cpu.numa_nodes > 2 ? 1.0 : 0.0);
  switch (method) {
    case rt::ReductionMethod::Tree:
      return (std::log2(std::max(2.0, t)) * 2.0 * hop_us) * 1e-6;
    case rt::ReductionMethod::Critical:
      return (t * 0.6 * hop_us) * 1e-6;
    case rt::ReductionMethod::Atomic:
      // CAS retries grow mildly superlinearly with contention.
      return (t * 0.35 * hop_us * (1.0 + t / 256.0)) * 1e-6;
    case rt::ReductionMethod::Default:
      break;
  }
  return 0.0;  // unreachable: caller resolves Default first
}

}  // namespace

ModelBreakdown PerfModel::breakdown(const apps::Application& app,
                                    const apps::InputSize& input,
                                    const CpuArch& cpu,
                                    const RtConfig& config) const {
  const AppCharacteristics c = app.characteristics(input);
  const int threads = config.effective_num_threads(cpu);
  const arch::PlacementStats& placement = cached_placement_stats(
      cpu, config.places, config.effective_bind(), threads);

  ModelBreakdown b;

  // ---- 1. architecture-scaled serial work --------------------------------
  const double compute_scale = kReferenceClockGhz / cpu.clock_ghz;
  const double mem_scale = cpu.serial_mem_factor;
  const double w_compute = c.base_seconds * (1.0 - c.mem_intensity) * compute_scale;
  const double w_memory = c.base_seconds * c.mem_intensity * mem_scale;
  const double total_w = w_compute + w_memory;
  b.serial_seconds = total_w * c.serial_fraction;
  const double par_compute = w_compute * (1.0 - c.serial_fraction);
  const double par_memory = w_memory * (1.0 - c.serial_fraction);

  // Locality and contention only bite once the working set escapes the
  // last-level caches and local memory pools; cache-resident inputs are
  // insensitive to NUMA placement.
  const double mem_pressure = std::clamp(c.working_set_mb / 1500.0, 0.0, 1.0);

  // ---- 2. placement: usable parallelism, oversubscription, locality ------
  // Threads stacked on the same core time-share it (master binding with
  // core-granularity places collapses the whole team onto one core).
  const double usable =
      std::min<double>(threads / std::max(1.0, placement.max_threads_per_core),
                       cpu.cores);
  b.oversubscription_factor =
      1.0 + kOversubscriptionTax * (placement.max_threads_per_core - 1.0);

  // Memory bandwidth available to the team: covered NUMA domains only.
  const double numa_share =
      static_cast<double>(placement.distinct_numa) / cpu.numa_nodes;
  const double sat_threads =
      std::max(1.0, cpu.mem_bw_gbs * numa_share / kPerThreadBwGbs);

  // Locality: unbound threads migrate and dilute first-touch locality.
  if (!placement.bound) {
    b.locality_factor = 1.0 + c.numa_sensitivity * cpu.unbound_locality_loss *
                                  (cpu.numa_remote_penalty - 1.0) *
                                  mem_pressure *
                                  (cpu.numa_nodes > 1 ? 1.0 : 0.0);
  } else {
    // Bound but uneven NUMA population also costs a little.
    b.locality_factor = 1.0 + c.numa_sensitivity * 0.15 *
                                  (1.0 - placement.numa_balance) *
                                  mem_pressure * (cpu.numa_remote_penalty - 1.0);
  }

  // Queueing contention once demand exceeds the covered bandwidth. Remote
  // traffic (the locality loss) additionally amplifies it.
  const double mem_demand_threads = std::min(usable, static_cast<double>(threads));
  if (mem_demand_threads > sat_threads && c.mem_intensity > 0.05) {
    const double overshoot = (mem_demand_threads - sat_threads) / sat_threads;
    b.contention_factor =
        1.0 + cpu.bw_contention * overshoot * (0.5 + 0.5 * b.locality_factor);
  }

  // ---- 3. schedule: residual imbalance + coordination ---------------------
  // Task apps: work stealing rebalances the tree; only a small residual
  // remains (the imbalance instead drives the steal/idle rate below).
  double residual_imbalance = app.kind() == ParallelismKind::Task
                                  ? c.load_imbalance * 0.15
                                  : c.load_imbalance;
  double coordination = 0.0;
  if (app.kind() == ParallelismKind::Loop) {
    const double grab_contention = 1.0 + static_cast<double>(threads) / 48.0;
    const double chunk =
        config.chunk > 0 ? static_cast<double>(config.chunk) : 1.0;
    switch (config.schedule) {
      case ScheduleKind::Static:
      case ScheduleKind::Auto:
        residual_imbalance = c.load_imbalance;
        break;
      case ScheduleKind::Dynamic:
        residual_imbalance = c.load_imbalance * kDynamicResidual;
        coordination = c.base_seconds * (c.iteration_rate / chunk) *
                       cal_.chunk_grab_us * grab_contention * 1e-6;
        break;
      case ScheduleKind::Guided:
        residual_imbalance = c.load_imbalance * kGuidedResidual;
        // ~log chunks per thread: coordination is much cheaper.
        coordination = c.base_seconds *
                       (8.0 * threads * std::log2(2.0 + c.iteration_rate)) *
                       cal_.chunk_grab_us * 1e-6;
        break;
    }
  }
  b.imbalance_factor = 1.0 + residual_imbalance;
  b.schedule_coordination_seconds = coordination;

  // ---- 4. wait policy ------------------------------------------------------
  if (app.kind() == ParallelismKind::Task) {
    // Per-steal idle latency relative to task granularity.
    const double latency = idle_latency_us(cal_, cpu, config);
    b.task_idle_factor =
        1.0 + steal_fraction(c.load_imbalance) * latency /
                  std::max(0.5, c.task_granularity_us);
  }
  b.region_overhead_seconds = c.base_seconds * c.region_rate *
                              region_cost_seconds(cal_, cpu, config, threads);

  // ---- 5. reductions -------------------------------------------------------
  const rt::ReductionMethod method = config.reduction_method_for(threads);
  b.reduction_overhead_seconds =
      c.base_seconds * c.reduction_rate *
      reduction_cost_seconds(cal_, cpu, method, threads);

  // ---- 6. alignment --------------------------------------------------------
  // KMP_ALIGN_ALLOC defaults to the cache line. Larger alignment slightly
  // de-conflicts the runtime's hot internal structures for allocation-heavy
  // apps, at a small footprint cost; below-cacheline alignment (not in the
  // sweep) would false-share.
  const double align_ratio = static_cast<double>(config.effective_align(cpu)) /
                             cpu.cacheline_bytes;
  if (align_ratio >= 1.0) {
    const double benefit = 0.006 * c.alloc_intensity * std::log2(align_ratio);
    const double footprint = 0.0015 * (align_ratio - 1.0) *
                             (c.working_set_mb > 100.0 ? 1.0 : 0.4);
    b.align_factor = 1.0 - benefit + footprint;
  } else {
    b.align_factor = 1.0 + 0.05 * c.alloc_intensity;
  }

  // ---- compose -------------------------------------------------------------
  b.compute_seconds = par_compute / usable * b.imbalance_factor *
                      b.oversubscription_factor * b.task_idle_factor;
  const double mem_speedup = std::min(mem_demand_threads, sat_threads);
  b.memory_seconds = par_memory / mem_speedup * b.imbalance_factor *
                     b.oversubscription_factor * b.task_idle_factor *
                     b.locality_factor * b.contention_factor;

  b.total_seconds = (b.serial_seconds + b.compute_seconds + b.memory_seconds +
                     b.region_overhead_seconds + b.reduction_overhead_seconds +
                     b.schedule_coordination_seconds) *
                    b.align_factor;
  return b;
}

double PerfModel::predict(const apps::Application& app,
                          const apps::InputSize& input, const CpuArch& cpu,
                          const RtConfig& config) const {
  return breakdown(app, input, cpu, config).total_seconds;
}

double PerfModel::measure(const apps::Application& app,
                          const apps::InputSize& input, const CpuArch& cpu,
                          const RtConfig& config, std::uint64_t batch_seed,
                          int repetition, std::uint64_t sample_index) const {
  const double clean = predict(app, input, cpu, config);

  // Per-sample log-normal noise.
  util::Xoshiro256 rng(util::hash_combine(
      util::hash_combine(batch_seed, sample_index),
      static_cast<std::uint64_t>(repetition) * 0x9E3779B9ULL + 1));
  double noisy = clean * rng.lognormal_factor(cpu.noise_sigma);

  // Systematic per-repetition drift (shared X86 cluster): every sample in
  // repetition R of a batch shares the same bias factor, so two repetitions
  // differ consistently — what the paper's Wilcoxon test flags on Milan and
  // Skylake but not on the single-user A64FX nodes.
  if (cpu.repetition_drift > 0.0) {
    util::Xoshiro256 drift_rng(util::hash_combine(
        batch_seed, 0xD21F7ULL + static_cast<std::uint64_t>(repetition)));
    noisy *= drift_rng.lognormal_factor(cpu.repetition_drift);
  }
  return noisy;
}

}  // namespace omptune::sim
