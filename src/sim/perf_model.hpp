#pragma once

// The machine performance model — the substitute for the paper's three
// physical testbeds (see DESIGN.md §2).
//
// Given an application's workload signature (apps::AppCharacteristics), a
// CPU descriptor (arch::CpuArch) and a full runtime configuration
// (rt::RtConfig), the model predicts the wall-clock runtime by composing:
//
//   1. an Amdahl/roofline core: serial fraction + compute part scaling with
//      usable cores + memory part scaling up to the bandwidth-saturation
//      thread count (with queueing contention past it);
//   2. placement effects from OMP_PLACES x OMP_PROC_BIND via
//      arch::placement_stats: NUMA locality, per-core oversubscription
//      (master binding!), bandwidth share of the covered domains;
//   3. schedule effects from OMP_SCHEDULE: residual load imbalance per kind
//      plus the shared-counter coordination cost of dynamic/guided;
//   4. wait-policy effects from KMP_LIBRARY x KMP_BLOCKTIME: per-region
//      fork/join wake-up costs for loop apps, and per-steal idle latencies
//      for task apps (the NQueens "turnaround" mechanism);
//   5. reduction-algorithm costs from KMP_FORCE_REDUCTION;
//   6. a small KMP_ALIGN_ALLOC term on runtime-internal structures.
//
// The primitive costs behind terms 3-5 (region fork/join, idle pickup,
// chunk grab, reduction hop) come from an rt::CalibrationTable. The default
// table reproduces the historical hard-coded constants exactly; a table
// measured on the host by bench/micro_primitives can be substituted
// (`omptune model --calibration=FILE`).
//
// `predict` is pure and deterministic. `measure` adds the architecture's
// calibrated measurement-noise model: log-normal per-sample noise plus a
// systematic per-repetition drift on the (shared-cluster) X86 machines —
// the behaviour the paper's Wilcoxon analysis detects in Tables III/IV.

#include <cstdint>
#include <utility>

#include "apps/application.hpp"
#include "arch/cpu_arch.hpp"
#include "arch/topology.hpp"
#include "rt/calibration.hpp"
#include "rt/config.hpp"

namespace omptune::sim {

/// Additive/multiplicative components of one prediction, exposed so tests
/// and the ablation benches can attribute runtime to mechanisms.
struct ModelBreakdown {
  double serial_seconds = 0;
  double compute_seconds = 0;
  double memory_seconds = 0;
  double region_overhead_seconds = 0;
  double reduction_overhead_seconds = 0;
  double schedule_coordination_seconds = 0;
  double task_idle_factor = 1.0;   ///< multiplier on the parallel part
  double imbalance_factor = 1.0;   ///< multiplier on the parallel part
  double locality_factor = 1.0;    ///< multiplier on the memory part
  double contention_factor = 1.0;  ///< multiplier on the memory part
  double align_factor = 1.0;       ///< multiplier on the total
  double oversubscription_factor = 1.0;
  double total_seconds = 0;
};

class PerfModel {
 public:
  /// Default: the fallback calibration (the historical constants) —
  /// predictions are bit-identical to the pre-table model.
  PerfModel() = default;

  /// Model with measured primitive costs.
  explicit PerfModel(rt::CalibrationTable calibration)
      : cal_(std::move(calibration)) {}

  const rt::CalibrationTable& calibration() const { return cal_; }

  /// Noiseless runtime prediction (seconds).
  double predict(const apps::Application& app, const apps::InputSize& input,
                 const arch::CpuArch& cpu, const rt::RtConfig& config) const;

  /// Full component attribution for one prediction.
  ModelBreakdown breakdown(const apps::Application& app,
                           const apps::InputSize& input,
                           const arch::CpuArch& cpu,
                           const rt::RtConfig& config) const;

  /// One noisy measurement, as the sweep harness records it.
  /// `batch_seed` identifies the experiment batch (app/arch/setting);
  /// `repetition` is the run index within the batch (R0, R1, ...);
  /// `sample_index` distinguishes configs within the batch.
  double measure(const apps::Application& app, const apps::InputSize& input,
                 const arch::CpuArch& cpu, const rt::RtConfig& config,
                 std::uint64_t batch_seed, int repetition,
                 std::uint64_t sample_index) const;

 private:
  rt::CalibrationTable cal_;
};

}  // namespace omptune::sim
