#include "sim/energy_model.hpp"

#include <algorithm>
#include <cmath>

namespace omptune::sim {

double idle_watts(const arch::CpuArch& cpu) {
  // Roughly: big HPC packages idle at 60-100 W total.
  switch (cpu.id) {
    case arch::ArchId::A64FX: return 60.0;   // TDP ~160 W, efficient idle
    case arch::ArchId::Skylake: return 90.0; // 2 sockets
    case arch::ArchId::Milan: return 100.0;  // 2 sockets, big IO die
  }
  return 80.0;
}

double core_watts(const arch::CpuArch& cpu) {
  // (TDP - idle) / cores, approximately.
  switch (cpu.id) {
    case arch::ArchId::A64FX: return (160.0 - 60.0) / 48.0;
    case arch::ArchId::Skylake: return (2 * 150.0 - 90.0) / 40.0;
    case arch::ArchId::Milan: return (2 * 225.0 - 100.0) / 96.0;
  }
  return 3.0;
}

double spin_power_factor(const rt::RtConfig& config) {
  switch (config.wait_policy()) {
    case rt::WaitPolicy::Active:
      // Turnaround spins a tight load-compare loop: nearly full power.
      return config.library == rt::LibraryMode::Turnaround ? 0.9 : 0.7;
    case rt::WaitPolicy::SpinThenSleep:
      // Yield-spin with an eventual sleep: a blend.
      return 0.6;
    case rt::WaitPolicy::Passive:
      return 0.05;  // parked in the OS
  }
  return 0.5;
}

EnergyEstimate EnergyModel::estimate(const apps::Application& app,
                                     const apps::InputSize& input,
                                     const arch::CpuArch& cpu,
                                     const rt::RtConfig& config) const {
  const ModelBreakdown breakdown = perf_.breakdown(app, input, cpu, config);
  const int threads = config.effective_num_threads(cpu);

  // Thread business: ideal parallel time over actual time on the used
  // cores — the rest of the team is waiting (imbalance, saturation, serial
  // sections, idle polling). The task-idle factor inflates the parallel
  // component with *waiting* time, so divide it back out: waiting threads
  // must be billed at the spin rate, not as busy cores.
  const double parallel_seconds =
      (breakdown.compute_seconds + breakdown.memory_seconds) /
      std::max(1.0, breakdown.task_idle_factor);
  const double total = breakdown.total_seconds;
  const double busy_share = total > 0.0
                                ? std::clamp((breakdown.serial_seconds / threads +
                                              parallel_seconds) /
                                                 total,
                                             0.0, 1.0)
                                : 1.0;
  const double busy_threads = busy_share * threads;
  const double waiting_threads = threads - busy_threads;

  EnergyEstimate estimate;
  estimate.seconds = total;
  estimate.spin_watts =
      core_watts(cpu) * waiting_threads * spin_power_factor(config);
  estimate.avg_watts =
      idle_watts(cpu) + core_watts(cpu) * busy_threads + estimate.spin_watts;
  estimate.joules = estimate.avg_watts * estimate.seconds;
  estimate.edp = estimate.joules * estimate.seconds;
  return estimate;
}

}  // namespace omptune::sim
