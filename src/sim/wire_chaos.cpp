#include "sim/wire_chaos.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace omptune::sim {

WireChaosSpec WireChaosSpec::parse(const std::string& text) {
  WireChaosSpec spec;
  if (text.empty()) return spec;
  for (const std::string& token : util::split(text, ',')) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("wire chaos spec: token '" + token +
                                  "' is not key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    try {
      if (key == "seed") {
        spec.seed = std::stoull(value);
      } else if (key == "reset") {
        spec.reset_rate = std::stod(value);
      } else if (key == "truncate") {
        spec.truncate_rate = std::stod(value);
      } else if (key == "stall") {
        spec.stall_rate = std::stod(value);
      } else if (key == "garble") {
        spec.garble_rate = std::stod(value);
      } else if (key == "dup") {
        spec.duplicate_rate = std::stod(value);
      } else if (key == "stall_ms") {
        spec.stall_ms = std::stoll(value);
      } else {
        throw std::invalid_argument("wire chaos spec: unknown key '" + key +
                                    "'");
      }
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      throw std::invalid_argument("wire chaos spec: malformed value in '" +
                                  token + "'");
    }
  }
  return spec;
}

std::string WireChaosSpec::describe() const {
  std::string out = "seed=" + std::to_string(seed);
  const auto add = [&out](const char* key, double rate) {
    if (rate > 0) out += std::string(",") + key + "=" + std::to_string(rate);
  };
  add("reset", reset_rate);
  add("truncate", truncate_rate);
  add("stall", stall_rate);
  add("garble", garble_rate);
  add("dup", duplicate_rate);
  if (stall_rate > 0) out += ",stall_ms=" + std::to_string(stall_ms);
  return out;
}

const char* to_string(WireFault fault) {
  switch (fault) {
    case WireFault::None: return "none";
    case WireFault::Reset: return "reset";
    case WireFault::Truncate: return "truncate";
    case WireFault::Stall: return "stall";
    case WireFault::Garble: return "garble";
    case WireFault::Duplicate: return "duplicate";
  }
  return "?";
}

namespace {

int listen_unix_path(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long for AF_UNIX: " + path);
  }
  const int fd =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string what = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("bind/listen(" + path + "): " + what);
  }
  return fd;
}

int dial_unix_path(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// send(2) everything, EINTR/short-write correct, MSG_NOSIGNAL. False when
/// the peer is gone.
bool send_bytes(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n > 0) {
      data += n;
      size -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::uint32_t le32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

}  // namespace

WireChaosProxy::WireChaosProxy(std::string listen_path,
                               std::string upstream_path, WireChaosSpec spec)
    : listen_path_(std::move(listen_path)),
      upstream_path_(std::move(upstream_path)),
      spec_(spec) {}

WireChaosProxy::~WireChaosProxy() { stop(); }

WireFault WireChaosProxy::draw(std::uint64_t frame) const {
  util::Xoshiro256 rng(util::hash_combine(
      util::hash_combine(spec_.seed, util::stable_hash("wire-chaos")), frame));
  double u = rng.uniform();
  const auto take = [&u](double rate) {
    if (u < rate) return true;
    u -= rate;
    return false;
  };
  if (take(spec_.reset_rate)) return WireFault::Reset;
  if (take(spec_.truncate_rate)) return WireFault::Truncate;
  if (take(spec_.stall_rate)) return WireFault::Stall;
  if (take(spec_.garble_rate)) return WireFault::Garble;
  if (take(spec_.duplicate_rate)) return WireFault::Duplicate;
  return WireFault::None;
}

void WireChaosProxy::start() {
  listen_fd_ = listen_unix_path(listen_path_);
  stop_.store(false, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void WireChaosProxy::stop() {
  stop_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    workers.swap(threads_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(listen_path_.c_str());
  }
}

WireChaosCounters WireChaosProxy::counters() const {
  WireChaosCounters c;
  c.connections = counters_.connections.load(std::memory_order_relaxed);
  c.frames = counters_.frames.load(std::memory_order_relaxed);
  c.resets = counters_.resets.load(std::memory_order_relaxed);
  c.truncated = counters_.truncated.load(std::memory_order_relaxed);
  c.stalled = counters_.stalled.load(std::memory_order_relaxed);
  c.garbled = counters_.garbled.load(std::memory_order_relaxed);
  c.duplicated = counters_.duplicated.load(std::memory_order_relaxed);
  return c;
}

void WireChaosProxy::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc <= 0) continue;
    for (;;) {
      const int fd =
          ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) break;
      counters_.connections.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(threads_mutex_);
      threads_.emplace_back([this, fd] { serve_connection(fd); });
    }
  }
}

void WireChaosProxy::serve_connection(int client_fd) {
  const int upstream_fd = dial_unix_path(upstream_path_);
  if (upstream_fd < 0) {
    // Upstream down (mid-restart): to the client this is a crashed server.
    ::close(client_fd);
    return;
  }
  std::string reply_buffer;  // upstream bytes pending frame-cut
  bool alive = true;
  while (alive && !stop_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{client_fd, POLLIN, 0}, {upstream_fd, POLLIN, 0}};
    const int rc = ::poll(fds, 2, 100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;

    // Request direction: verbatim.
    if (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
      char buf[65536];
      const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
      if (n <= 0 && !(n < 0 && errno == EINTR)) break;
      if (n > 0 && !send_bytes(upstream_fd, buf, static_cast<std::size_t>(n)))
        break;
    }

    // Reply direction: buffer, cut frames, inject.
    if (fds[1].revents & (POLLIN | POLLHUP | POLLERR)) {
      char buf[65536];
      const ssize_t n = ::recv(upstream_fd, buf, sizeof(buf), 0);
      if (n <= 0 && !(n < 0 && errno == EINTR)) break;
      if (n > 0) reply_buffer.append(buf, static_cast<std::size_t>(n));
    }
    while (alive && reply_buffer.size() >= 4) {
      const std::size_t total = 4 + le32(reply_buffer.data());
      if (reply_buffer.size() < total) break;
      std::string frame = reply_buffer.substr(0, total);
      reply_buffer.erase(0, total);
      const std::uint64_t index =
          frame_index_.fetch_add(1, std::memory_order_relaxed);
      counters_.frames.fetch_add(1, std::memory_order_relaxed);
      switch (draw(index)) {
        case WireFault::Reset:
          counters_.resets.fetch_add(1, std::memory_order_relaxed);
          alive = false;
          break;
        case WireFault::Truncate:
          counters_.truncated.fetch_add(1, std::memory_order_relaxed);
          send_bytes(client_fd, frame.data(), total / 2);
          alive = false;
          break;
        case WireFault::Stall: {
          counters_.stalled.fetch_add(1, std::memory_order_relaxed);
          const std::size_t half = total / 2;
          if (!send_bytes(client_fd, frame.data(), half)) {
            alive = false;
            break;
          }
          std::this_thread::sleep_for(
              std::chrono::milliseconds(spec_.stall_ms));
          if (!send_bytes(client_fd, frame.data() + half, total - half)) {
            alive = false;
          }
          break;
        }
        case WireFault::Garble: {
          counters_.garbled.fetch_add(1, std::memory_order_relaxed);
          // Flip one PAYLOAD byte: the framing survives, the content lies.
          if (total > 4) {
            util::Xoshiro256 rng(util::hash_combine(
                util::hash_combine(spec_.seed, util::stable_hash("garble-at")),
                index));
            const std::size_t at = 4 + rng.uniform_index(total - 4);
            frame[at] = static_cast<char>(frame[at] ^ 0x5A);
          }
          if (!send_bytes(client_fd, frame.data(), total)) alive = false;
          break;
        }
        case WireFault::Duplicate:
          counters_.duplicated.fetch_add(1, std::memory_order_relaxed);
          if (!send_bytes(client_fd, frame.data(), total) ||
              !send_bytes(client_fd, frame.data(), total)) {
            alive = false;
          }
          break;
        case WireFault::None:
          if (!send_bytes(client_fd, frame.data(), total)) alive = false;
          break;
      }
    }
  }
  ::close(client_fd);
  ::close(upstream_fd);
}

}  // namespace omptune::sim
