#include "sim/executor.hpp"

#include <chrono>

#include "rt/thread_team.hpp"

namespace omptune::sim {

double ModelRunner::run(const apps::Application& app,
                        const apps::InputSize& input, const arch::CpuArch& cpu,
                        const rt::RtConfig& config, std::uint64_t batch_seed,
                        int repetition, std::uint64_t sample_index) {
  return model_.measure(app, input, cpu, config, batch_seed, repetition,
                        sample_index);
}

double NativeRunner::run(const apps::Application& app,
                         const apps::InputSize& input, const arch::CpuArch& cpu,
                         const rt::RtConfig& config, std::uint64_t /*batch_seed*/,
                         int /*repetition*/, std::uint64_t /*sample_index*/) {
  rt::RtConfig capped = config;
  const int threads = config.effective_num_threads(cpu);
  if (max_threads_ > 0 && threads > max_threads_) {
    capped.num_threads = max_threads_;
  }
  rt::ThreadTeam team(cpu, capped);
  const auto start = std::chrono::steady_clock::now();
  last_checksum_ = app.run_native(team, input, native_scale_);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace omptune::sim
