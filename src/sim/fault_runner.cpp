#include "sim/fault_runner.hpp"

#include <chrono>
#include <limits>
#include <thread>

#include "util/rng.hpp"

namespace omptune::sim {

double FaultInjectingRunner::run(const apps::Application& app,
                                 const apps::InputSize& input,
                                 const arch::CpuArch& cpu,
                                 const rt::RtConfig& config,
                                 std::uint64_t batch_seed, int repetition,
                                 std::uint64_t sample_index) {
  const std::string sample_id = std::to_string(batch_seed) + "/" +
                                std::to_string(sample_index) + "/" +
                                std::to_string(repetition);
  const int attempt = spec_.sticky ? 0 : attempts_[sample_id]++;

  // One uniform draw decides the fault; the same (sample, attempt) always
  // draws the same value, independent of execution order.
  std::uint64_t h = util::hash_combine(spec_.seed, batch_seed);
  h = util::hash_combine(h, sample_index);
  h = util::hash_combine(h, static_cast<std::uint64_t>(repetition) + 1);
  h = util::hash_combine(h, static_cast<std::uint64_t>(attempt) + 1);
  // hash_combine alone leaves small-integer differences in the low bits;
  // SplitMix64 finalizes with full avalanche so the draw is uniform.
  const double draw =
      static_cast<double>(util::SplitMix64(h).next() >> 11) * 0x1.0p-53;

  double threshold = spec_.crash_rate;
  if (draw < threshold) {
    ++injected_;
    throw util::TransientError("injected crash (sample " + sample_id + ")");
  }
  if (draw < (threshold += spec_.hang_rate)) {
    ++injected_;
    std::this_thread::sleep_for(std::chrono::milliseconds(spec_.hang_ms));
    // Fall through and return the real value: the watchdog has already
    // given up, and a late result from an abandoned attempt must not be
    // mistaken for success.
  } else if (draw < (threshold += spec_.nan_rate)) {
    ++injected_;
    return std::numeric_limits<double>::quiet_NaN();
  }

  double runtime = inner_->run(app, input, cpu, config, batch_seed, repetition,
                               sample_index);

  if (draw >= threshold && draw < (threshold += spec_.negative_rate)) {
    ++injected_;
    return -runtime;
  }
  if (draw >= threshold && draw < (threshold += spec_.spike_rate)) {
    ++injected_;
    runtime *= spec_.spike_factor;
  }

  ++completed_;
  if (spec_.kill_after_runs > 0 && completed_ >= spec_.kill_after_runs) {
    throw util::StudyAbort("simulated process death after " +
                           std::to_string(completed_) + " runs");
  }
  return runtime;
}

}  // namespace omptune::sim
