#include "sim/fault_runner.hpp"

#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"

#include "util/strings.hpp"

namespace omptune::sim {

ChaosSpec ChaosSpec::parse(const std::string& text) {
  ChaosSpec spec;
  if (text.empty()) return spec;
  for (const std::string& token : util::split(text, ',')) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("chaos spec: token '" + token +
                                  "' is not key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    try {
      if (key == "seed") {
        spec.seed = std::stoull(value);
      } else if (key == "kill") {
        spec.kill_rate = std::stod(value);
      } else if (key == "segv") {
        spec.segv_rate = std::stod(value);
      } else if (key == "wedge") {
        spec.wedge_rate = std::stod(value);
      } else if (key == "garble") {
        spec.garble_rate = std::stod(value);
      } else if (key == "truncate") {
        spec.truncate_rate = std::stod(value);
      } else if (key == "dup") {
        spec.duplicate_rate = std::stod(value);
      } else if (key == "sticky") {
        spec.sticky_kill_substr = value;
      } else {
        throw std::invalid_argument("chaos spec: unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      throw std::invalid_argument("chaos spec: bad value for '" + key + "': '" +
                                  value + "'");
    }
  }
  return spec;
}

std::string ChaosSpec::describe() const {
  std::string out = "seed=" + std::to_string(seed);
  const auto add = [&out](const char* key, double rate) {
    if (rate > 0) out += std::string(",") + key + "=" + std::to_string(rate);
  };
  add("kill", kill_rate);
  add("segv", segv_rate);
  add("wedge", wedge_rate);
  add("garble", garble_rate);
  add("truncate", truncate_rate);
  add("dup", duplicate_rate);
  if (!sticky_kill_substr.empty()) out += ",sticky=" + sticky_kill_substr;
  return out;
}

const char* to_string(ChaosAction action) {
  switch (action) {
    case ChaosAction::None: return "none";
    case ChaosAction::Kill: return "kill";
    case ChaosAction::Segv: return "segv";
    case ChaosAction::Wedge: return "wedge";
    case ChaosAction::Garble: return "garble";
  }
  return "?";
}

const char* to_string(ShardFault fault) {
  switch (fault) {
    case ShardFault::None: return "none";
    case ShardFault::KillHolder: return "kill-holder";
    case ShardFault::StallHeartbeat: return "stall-heartbeat";
    case ShardFault::TruncateStore: return "truncate-store";
    case ShardFault::DuplicateDelivery: return "duplicate-delivery";
  }
  return "?";
}

ChaosAction ChaosMonkey::draw(const std::string& setting_key, int attempt,
                              std::uint64_t sample) const {
  if (!spec_.enabled()) return ChaosAction::None;
  if (!spec_.sticky_kill_substr.empty() &&
      setting_key.find(spec_.sticky_kill_substr) != std::string::npos) {
    return ChaosAction::Kill;  // poisonous on every attempt, by design
  }
  std::uint64_t h = util::hash_combine(spec_.seed, util::stable_hash(setting_key));
  h = util::hash_combine(h, static_cast<std::uint64_t>(attempt) + 1);
  h = util::hash_combine(h, sample + 1);
  const double draw =
      static_cast<double>(util::SplitMix64(h).next() >> 11) * 0x1.0p-53;

  double threshold = spec_.kill_rate;
  if (draw < threshold) return ChaosAction::Kill;
  if (draw < (threshold += spec_.segv_rate)) return ChaosAction::Segv;
  if (draw < (threshold += spec_.wedge_rate)) return ChaosAction::Wedge;
  if (draw < (threshold += spec_.garble_rate)) return ChaosAction::Garble;
  return ChaosAction::None;
}

ShardFault ChaosMonkey::draw_shard_fault(const std::string& shard_key,
                                         int attempt) const {
  if (!spec_.enabled()) return ShardFault::None;
  // Salted differently from the per-sample draw so the two streams are
  // independent for the same seed.
  std::uint64_t h = util::hash_combine(spec_.seed, 0x5d4a12df00d5ULL);
  h = util::hash_combine(h, util::stable_hash(shard_key));
  h = util::hash_combine(h, static_cast<std::uint64_t>(attempt) + 1);
  const double draw =
      static_cast<double>(util::SplitMix64(h).next() >> 11) * 0x1.0p-53;

  double threshold = spec_.kill_rate;
  if (draw < threshold) return ShardFault::KillHolder;
  if (draw < (threshold += spec_.wedge_rate)) return ShardFault::StallHeartbeat;
  if (draw < (threshold += spec_.truncate_rate)) return ShardFault::TruncateStore;
  if (draw < (threshold += spec_.duplicate_rate))
    return ShardFault::DuplicateDelivery;
  return ShardFault::None;
}

double FaultInjectingRunner::run(const apps::Application& app,
                                 const apps::InputSize& input,
                                 const arch::CpuArch& cpu,
                                 const rt::RtConfig& config,
                                 std::uint64_t batch_seed, int repetition,
                                 std::uint64_t sample_index) {
  const std::string sample_id = std::to_string(batch_seed) + "/" +
                                std::to_string(sample_index) + "/" +
                                std::to_string(repetition);
  const int attempt = spec_.sticky ? 0 : attempts_[sample_id]++;

  // One uniform draw decides the fault; the same (sample, attempt) always
  // draws the same value, independent of execution order.
  std::uint64_t h = util::hash_combine(spec_.seed, batch_seed);
  h = util::hash_combine(h, sample_index);
  h = util::hash_combine(h, static_cast<std::uint64_t>(repetition) + 1);
  h = util::hash_combine(h, static_cast<std::uint64_t>(attempt) + 1);
  // hash_combine alone leaves small-integer differences in the low bits;
  // SplitMix64 finalizes with full avalanche so the draw is uniform.
  const double draw =
      static_cast<double>(util::SplitMix64(h).next() >> 11) * 0x1.0p-53;

  double threshold = spec_.crash_rate;
  if (draw < threshold) {
    ++injected_;
    throw util::TransientError("injected crash (sample " + sample_id + ")");
  }
  if (draw < (threshold += spec_.hang_rate)) {
    ++injected_;
    std::this_thread::sleep_for(std::chrono::milliseconds(spec_.hang_ms));
    // Fall through and return the real value: the watchdog has already
    // given up, and a late result from an abandoned attempt must not be
    // mistaken for success.
  } else if (draw < (threshold += spec_.nan_rate)) {
    ++injected_;
    return std::numeric_limits<double>::quiet_NaN();
  }

  double runtime = inner_->run(app, input, cpu, config, batch_seed, repetition,
                               sample_index);

  if (draw >= threshold && draw < (threshold += spec_.negative_rate)) {
    ++injected_;
    return -runtime;
  }
  if (draw >= threshold && draw < (threshold += spec_.spike_rate)) {
    ++injected_;
    runtime *= spec_.spike_factor;
  }

  ++completed_;
  if (spec_.kill_after_runs > 0 && completed_ >= spec_.kill_after_runs) {
    throw util::StudyAbort("simulated process death after " +
                           std::to_string(completed_) + " runs");
  }
  return runtime;
}

}  // namespace omptune::sim
