#pragma once

// sim::StorageChaos — deterministic storage-fault plans for the crash-
// consistency torture framework (DESIGN.md §14).
//
// StorageChaos implements util::IoHooks: installed via
// util::install_io_hooks (or util::ScopedIoHooks), it sees every durability
// operation util/fs performs, numbered 1, 2, 3, ... in program order. A
// StorageFaultPlan then turns one of those indices into a fault:
//
//   crash_at_op = k        SIGKILL the process immediately before op k —
//                          a genuine crash; no destructors, no cleanup.
//                          With torn_crash, a crash landing on a Write
//                          first flushes half the buffer to the fd, the
//                          classic torn write.
//   fail_at_op = k         op k fails with fail_errno (ENOSPC, EIO,
//                          EINTR, ...) instead of executing; everything
//                          else proceeds — the error-path probe.
//   short_write_at_op = k  if op k is a Write, the syscall accepts only
//                          half the offered bytes; the caller's retry
//                          loop must finish the job.
//   bitrot_seed != 0       every whole-file read through util::read_file
//                          has one byte flipped at a position derived from
//                          (seed, path) — at-rest corruption the reader
//                          must catch by validation, never by crashing.
//
// Determinism is the whole point: the same plan against the same workload
// faults the same operation, so the enumeration harness
// (tests/crash_consistency_test) can walk k = 1..N and prove recovery at
// EVERY point. The op counter is process-local; a forked child inherits
// the installed hook and continues its own count, which is what the
// fork-per-crash-point harness relies on.

#include <atomic>
#include <cstdint>
#include <string>

#include "util/io_hooks.hpp"

namespace omptune::sim {

struct StorageFaultPlan {
  /// SIGKILL the process immediately before performing the k-th hooked
  /// operation (1-based). 0 = never.
  std::uint64_t crash_at_op = 0;
  /// When the crash lands on a Write, flush the first half of the buffer
  /// before dying (torn write). Without it the crash is clean: the write
  /// never starts.
  bool torn_crash = false;

  /// Fail the k-th hooked operation (1-based) with `fail_errno` instead of
  /// performing it. 0 = never.
  std::uint64_t fail_at_op = 0;
  int fail_errno = 0;

  /// If the k-th hooked operation is a Write, let the syscall accept only
  /// half the offered bytes. 0 = never.
  std::uint64_t short_write_at_op = 0;

  /// Nonzero: flip one byte of every util::read_file result whose path
  /// contains `bitrot_path_substr` (empty matches all), at a position
  /// derived deterministically from (seed, path).
  std::uint64_t bitrot_seed = 0;
  std::string bitrot_path_substr;
};

class StorageChaos final : public util::IoHooks {
 public:
  explicit StorageChaos(StorageFaultPlan plan = {});

  int before(const util::IoSite& site) override;
  std::size_t max_write_bytes(const util::IoSite& site) override;
  void after_read(const std::string& path, std::string* bytes) override;

  /// Hooked operations seen so far. A fault-free counting pass over a
  /// workload yields the N that crash-point enumeration walks.
  std::uint64_t ops_seen() const {
    return ops_.load(std::memory_order_relaxed);
  }

 private:
  StorageFaultPlan plan_;
  std::atomic<std::uint64_t> ops_{0};
  bool short_write_now_ = false;
};

}  // namespace omptune::sim
