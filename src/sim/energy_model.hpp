#pragma once

// Energy model — an extension grounded in the paper's related work
// (Nornir, OpenMPE, EDP thread-throttling studies): estimates package
// energy for a configuration from the runtime prediction plus the
// wait-policy behaviour. Its headline effect: busy-wait policies
// (turnaround / infinite blocktime) can win time but lose energy, since
// idle threads burn near-active power while spinning — the classic
// performance/energy tension the energy-tuning literature optimizes.

#include "apps/application.hpp"
#include "arch/cpu_arch.hpp"
#include "rt/config.hpp"
#include "sim/perf_model.hpp"

namespace omptune::sim {

struct EnergyEstimate {
  double seconds = 0;        ///< predicted runtime
  double avg_watts = 0;      ///< average package power
  double joules = 0;         ///< energy = power x time
  double edp = 0;            ///< energy-delay product (J*s)
  double spin_watts = 0;     ///< share of power burnt by waiting threads
};

/// Simple package-power model:
///   P = P_idle + P_core * (busy_threads + spin_factor * waiting_threads)
/// where waiting threads burn spin_factor of an active core's power when
/// spinning (turnaround ~0.9, yield-spin ~0.6) and almost nothing when
/// sleeping (~0.05). Thread business is derived from the perf-model
/// breakdown (parallel efficiency of the configuration).
class EnergyModel {
 public:
  explicit EnergyModel(PerfModel perf = PerfModel()) : perf_(perf) {}

  EnergyEstimate estimate(const apps::Application& app,
                          const apps::InputSize& input,
                          const arch::CpuArch& cpu,
                          const rt::RtConfig& config) const;

  const PerfModel& perf() const { return perf_; }

 private:
  PerfModel perf_;
};

/// Idle package power (uncore + fans share attributed to the socket), W.
double idle_watts(const arch::CpuArch& cpu);

/// Active power of one busy core, W.
double core_watts(const arch::CpuArch& cpu);

/// Fraction of an active core's power a *waiting* thread burns under the
/// configuration's wait policy.
double spin_power_factor(const rt::RtConfig& config);

}  // namespace omptune::sim
