#include "sim/storage_chaos.hpp"

#include <signal.h>
#include <unistd.h>

#include <cstdlib>

#include "util/rng.hpp"

namespace omptune::sim {

namespace {

[[noreturn]] void die_like_a_crash() {
  // SIGKILL is uncatchable: no destructor, no stream flush, no cleanup
  // handler runs — the closest an in-process harness gets to pulling the
  // plug. _Exit is the paranoid fallback if the raise somehow returns.
  ::kill(::getpid(), SIGKILL);
  std::_Exit(137);
}

}  // namespace

StorageChaos::StorageChaos(StorageFaultPlan plan) : plan_(std::move(plan)) {}

int StorageChaos::before(const util::IoSite& site) {
  const std::uint64_t op = ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  short_write_now_ =
      plan_.short_write_at_op != 0 && op == plan_.short_write_at_op;

  if (plan_.crash_at_op != 0 && op == plan_.crash_at_op) {
    if (plan_.torn_crash && site.op == util::IoOp::Write && site.size > 1) {
      // Half the buffer reaches the file, then the process dies: the torn
      // write every atomic-replace recipe must make unobservable.
      [[maybe_unused]] const ssize_t n =
          ::write(site.fd, site.data, site.size / 2);
    }
    die_like_a_crash();
  }
  if (plan_.fail_at_op != 0 && op == plan_.fail_at_op) {
    return plan_.fail_errno;
  }
  return 0;
}

std::size_t StorageChaos::max_write_bytes(const util::IoSite& site) {
  if (short_write_now_) {
    short_write_now_ = false;
    return site.size > 1 ? site.size / 2 : site.size;
  }
  return static_cast<std::size_t>(-1);
}

void StorageChaos::after_read(const std::string& path, std::string* bytes) {
  if (plan_.bitrot_seed == 0 || bytes == nullptr || bytes->empty()) return;
  if (!plan_.bitrot_path_substr.empty() &&
      path.find(plan_.bitrot_path_substr) == std::string::npos) {
    return;
  }
  util::SplitMix64 rng(
      util::hash_combine(plan_.bitrot_seed, util::stable_hash(path)));
  const std::size_t pos = rng.next() % bytes->size();
  // Flip at least one bit; 1 + (x % 255) can never be the zero mask.
  (*bytes)[pos] = static_cast<char>(
      static_cast<unsigned char>((*bytes)[pos]) ^
      static_cast<unsigned char>(1 + rng.next() % 255));
}

}  // namespace omptune::sim
