#pragma once

// L2-regularized logistic regression trained by batch gradient descent —
// the paper's analysis workhorse: samples are labelled optimal
// (speedup > 1.01) vs sub-optimal, the model is fitted per grouping, and
// the weight-normalized |coefficients| become the feature-influence heat
// maps (Figs 2, 3, 4).

#include <cstdint>
#include <vector>

#include "ml/linalg.hpp"

namespace omptune::util {
class ThreadPool;
}

namespace omptune::ml {

struct LogisticOptions {
  double learning_rate = 0.5;
  int epochs = 300;
  double l2 = 1e-3;
  /// Stop early when the gradient norm falls below this.
  double tolerance = 1e-7;
};

class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticOptions options = {})
      : options_(options) {}

  /// Fit on features x and binary labels y (0/1). Inputs should be
  /// standardized (see StandardScaler) so coefficients are comparable.
  ///
  /// With a pool, each epoch accumulates per-chunk partial gradients in
  /// parallel and merges them in ascending chunk order; the chunk layout is
  /// fixed by the row count alone, so the fitted weights are bit-identical
  /// at any thread count (including no pool at all). All gradient scratch
  /// is allocated once up front, never per epoch.
  void fit(const Matrix& x, const std::vector<int>& y,
           const util::ThreadPool* pool = nullptr);

  /// P(y=1 | x) into a caller-owned buffer (resized to x.rows()) — the
  /// allocation-free form for callers scoring in a loop.
  void predict_proba_into(const Matrix& x, std::vector<double>& out,
                          const util::ThreadPool* pool = nullptr) const;

  /// P(y=1 | x) per row.
  std::vector<double> predict_proba(const Matrix& x,
                                    const util::ThreadPool* pool = nullptr) const;

  /// Hard predictions at threshold 0.5.
  std::vector<int> predict(const Matrix& x,
                           const util::ThreadPool* pool = nullptr) const;

  /// Classification accuracy on (x, y).
  double accuracy(const Matrix& x, const std::vector<int>& y,
                  const util::ThreadPool* pool = nullptr) const;

  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }
  bool fitted() const { return !coef_.empty(); }

  /// |coefficients|, normalized to sum to 1 — the influence vector the heat
  /// maps display (darker = larger share).
  std::vector<double> normalized_influence() const;

 private:
  LogisticOptions options_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

/// Numerically-stable logistic sigmoid.
double sigmoid(double z);

}  // namespace omptune::ml
