#pragma once

// Ordinary least squares via the (ridge-stabilized) normal equations —
// the first linear technique the paper tries before observing that the
// non-normal runtime distributions fit poorly (low R²) and pivoting to the
// classification formulation.

#include <vector>

#include "ml/linalg.hpp"

namespace omptune::ml {

class LinearRegression {
 public:
  /// `ridge` adds lambda*I to the Gram matrix for numerical stability.
  explicit LinearRegression(double ridge = 1e-8) : ridge_(ridge) {}

  /// Fit y ~ X w + b. Throws on dimension mismatch or singular systems.
  void fit(const Matrix& x, const std::vector<double>& y);

  std::vector<double> predict(const Matrix& x) const;

  /// Coefficient of determination on (x, y).
  double r_squared(const Matrix& x, const std::vector<double>& y) const;

  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }
  bool fitted() const { return !coef_.empty(); }

 private:
  double ridge_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

}  // namespace omptune::ml
