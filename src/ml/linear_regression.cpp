#include "ml/linear_regression.hpp"

#include <stdexcept>

namespace omptune::ml {

void LinearRegression::fit(const Matrix& x, const std::vector<double>& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("LinearRegression::fit: dimension mismatch");
  }
  // Augment with the intercept column by centring: solve on centred data,
  // recover the intercept from the means.
  std::vector<double> x_mean(x.cols(), 0.0);
  double y_mean = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) x_mean[c] += x.at(r, c);
    y_mean += y[r];
  }
  for (double& m : x_mean) m /= static_cast<double>(x.rows());
  y_mean /= static_cast<double>(x.rows());

  Matrix centred(x.rows(), x.cols());
  std::vector<double> y_centred(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      centred.at(r, c) = x.at(r, c) - x_mean[c];
    }
    y_centred[r] = y[r] - y_mean;
  }

  Matrix gram = centred.gram();
  for (std::size_t i = 0; i < gram.rows(); ++i) gram.at(i, i) += ridge_;
  coef_ = solve_linear_system(std::move(gram), centred.transpose_times(y_centred));

  intercept_ = y_mean;
  for (std::size_t c = 0; c < coef_.size(); ++c) {
    intercept_ -= coef_[c] * x_mean[c];
  }
}

std::vector<double> LinearRegression::predict(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("LinearRegression::predict: not fitted");
  std::vector<double> out = x.times(coef_);
  for (double& v : out) v += intercept_;
  return out;
}

double LinearRegression::r_squared(const Matrix& x,
                                   const std::vector<double>& y) const {
  const std::vector<double> pred = predict(x);
  double y_mean = 0.0;
  for (const double v : y) y_mean += v;
  y_mean /= static_cast<double>(y.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    ss_res += (y[i] - pred[i]) * (y[i] - pred[i]);
    ss_tot += (y[i] - y_mean) * (y[i] - y_mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace omptune::ml
