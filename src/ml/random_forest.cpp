#include "ml/random_forest.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace omptune::ml {

void RandomForest::fit(const Matrix& x, const std::vector<int>& y,
                       const util::ThreadPool* pool) {
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("RandomForest::fit: bad dimensions");
  }
  trees_.clear();
  num_features_ = x.cols();

  TreeOptions tree_options = options_.tree;
  if (tree_options.max_features <= 0) {
    tree_options.max_features = std::max(
        1, static_cast<int>(std::sqrt(static_cast<double>(x.cols()))));
  }

  const std::size_t n = x.rows();
  const auto num_trees = static_cast<std::size_t>(
      options_.num_trees > 0 ? options_.num_trees : 0);

  // Each tree's bootstrap comes from its own hash_combine(seed, t+1) RNG —
  // the same stream regardless of which thread draws it — and its out-of-bag
  // evidence lands in a per-tree slot, so trees train fully independently.
  trees_.assign(num_trees, DecisionTree(tree_options));
  std::vector<std::vector<double>> tree_proba(num_trees);
  std::vector<std::vector<char>> tree_in_bag(num_trees);
  util::parallel_for(
      pool, num_trees, 1, [&](std::size_t begin, std::size_t, std::size_t) {
        const std::size_t t = begin;
        const std::uint64_t tree_seed =
            util::hash_combine(options_.seed, static_cast<std::uint64_t>(t) + 1);
        // Distinct stream from the tree's split RNG (which is seeded with
        // tree_seed itself), so bootstrap rows and feature subsets never
        // share draws.
        util::Xoshiro256 rng(util::hash_combine(tree_seed, 0xb007'57a9));
        std::vector<std::size_t> rows(n);
        std::vector<char> in_bag(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
          rows[i] = rng.uniform_index(n);
          in_bag[rows[i]] = 1;
        }
        TreeOptions opts = tree_options;
        opts.seed = tree_seed;
        DecisionTree tree(opts);
        tree.fit_rows(x, y, rows);
        tree_proba[t] = tree.predict_proba(x);
        tree_in_bag[t] = std::move(in_bag);
        trees_[t] = std::move(tree);
      });

  // Merge out-of-bag votes serially in tree order: float accumulation in a
  // fixed association, so the OOB accuracy matches at any thread count.
  std::vector<double> oob_votes(n, 0.0);
  std::vector<int> oob_counts(n, 0);
  for (std::size_t t = 0; t < num_trees; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!tree_in_bag[t][i]) {
        oob_votes[i] += tree_proba[t][i];
        ++oob_counts[i];
      }
    }
  }

  std::size_t correct = 0, scored = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (oob_counts[i] == 0) continue;
    const int pred = oob_votes[i] / oob_counts[i] >= 0.5 ? 1 : 0;
    correct += (pred == y[i]);
    ++scored;
  }
  oob_accuracy_ = scored > 0
                      ? static_cast<double>(correct) / static_cast<double>(scored)
                      : 0.0;
}

std::vector<double> RandomForest::predict_proba(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("RandomForest: not fitted");
  std::vector<double> out(x.rows(), 0.0);
  for (const DecisionTree& tree : trees_) {
    const auto proba = tree.predict_proba(x);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += proba[i];
  }
  for (double& v : out) v /= static_cast<double>(trees_.size());
  return out;
}

std::vector<int> RandomForest::predict(const Matrix& x) const {
  const auto proba = predict_proba(x);
  std::vector<int> out(proba.size());
  for (std::size_t i = 0; i < proba.size(); ++i) out[i] = proba[i] >= 0.5 ? 1 : 0;
  return out;
}

double RandomForest::accuracy(const Matrix& x, const std::vector<int>& y) const {
  const auto pred = predict(x);
  if (pred.size() != y.size() || y.empty()) {
    throw std::invalid_argument("RandomForest::accuracy: size mismatch");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i) correct += (pred[i] == y[i]);
  return static_cast<double>(correct) / static_cast<double>(y.size());
}

std::vector<double> RandomForest::feature_importance() const {
  if (!fitted()) throw std::logic_error("RandomForest: not fitted");
  std::vector<double> out(num_features_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const auto importance = tree.feature_importance();
    for (std::size_t c = 0; c < out.size(); ++c) out[c] += importance[c];
  }
  double total = 0.0;
  for (const double v : out) total += v;
  if (total > 0.0) {
    for (double& v : out) v /= total;
  }
  return out;
}

}  // namespace omptune::ml
