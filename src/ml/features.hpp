#pragma once

// Feature encoding of sweep samples for the linear models.
//
// The paper uses a "naive numeric scheme": every environment variable maps
// to a small integer (its index in the value set), input size and thread
// count enter as numbers, and — when data is grouped across applications or
// architectures — application and architecture become numeric placeholder
// features as well. Standardization happens downstream (StandardScaler).

#include <string>
#include <vector>

#include "ml/linalg.hpp"
#include "sweep/dataset.hpp"

namespace omptune::ml {

struct FeatureOptions {
  bool include_architecture = false;  ///< per-application grouping (Fig 2)
  bool include_application = false;   ///< per-architecture grouping (Fig 3)
  bool include_input_size = true;
  bool include_threads = true;
};

class FeatureEncoder {
 public:
  explicit FeatureEncoder(FeatureOptions options = {});

  /// Column names in encoding order. The environment variables use the
  /// paper's spellings.
  const std::vector<std::string>& names() const { return names_; }
  std::size_t num_features() const { return names_.size(); }

  /// Encode a dataset into a feature matrix (one row per sample).
  Matrix encode(const sweep::Dataset& dataset) const;

  /// Encode one sample.
  std::vector<double> encode_sample(const sweep::Sample& sample) const;

  /// Optimal / sub-optimal labels: speedup > threshold (paper: 1.01).
  static std::vector<int> labels(const sweep::Dataset& dataset,
                                 double threshold = 1.01);

 private:
  FeatureOptions options_;
  std::vector<std::string> names_;
};

/// Numeric encodings of the categorical values (indices into the paper's
/// value sets; exposed for tests).
double encode_places(arch::PlacesKind places);
double encode_bind(arch::BindKind bind);
double encode_schedule(rt::ScheduleKind schedule);
double encode_library(rt::LibraryMode library);
double encode_blocktime(std::int64_t blocktime_ms);
double encode_reduction(rt::ReductionMethod method);
double encode_align(int align_bytes);
double encode_input(const std::string& input_name);
double encode_arch(const std::string& arch_name);
double encode_app(const std::string& app_name);

}  // namespace omptune::ml
