#include "ml/features.hpp"

#include <cmath>

#include "apps/application.hpp"
#include "util/rng.hpp"

namespace omptune::ml {

double encode_places(arch::PlacesKind places) {
  switch (places) {
    case arch::PlacesKind::Unset: return 0;
    case arch::PlacesKind::Threads: return 1;
    case arch::PlacesKind::Cores: return 2;
    case arch::PlacesKind::LLCaches: return 3;
    case arch::PlacesKind::Sockets: return 4;
    case arch::PlacesKind::NumaDomains: return 5;
  }
  return 0;
}

// Ordered from "no binding" through increasingly concentrated placements,
// with master (all threads on the primary's place) at the extreme — the
// naive numeric scheme still needs a roughly monotone axis for a linear
// separating boundary to pick the variable up.
double encode_bind(arch::BindKind bind) {
  switch (bind) {
    case arch::BindKind::Unset: return 0;
    case arch::BindKind::False_: return 1;
    case arch::BindKind::Spread: return 2;
    case arch::BindKind::Close: return 3;
    case arch::BindKind::True_: return 4;
    case arch::BindKind::Master: return 5;
  }
  return 0;
}

double encode_schedule(rt::ScheduleKind schedule) {
  switch (schedule) {
    case rt::ScheduleKind::Static: return 0;
    case rt::ScheduleKind::Dynamic: return 1;
    case rt::ScheduleKind::Guided: return 2;
    case rt::ScheduleKind::Auto: return 3;
  }
  return 0;
}

double encode_library(rt::LibraryMode library) {
  switch (library) {
    case rt::LibraryMode::Serial: return 0;
    case rt::LibraryMode::Throughput: return 1;
    case rt::LibraryMode::Turnaround: return 2;
  }
  return 0;
}

double encode_blocktime(std::int64_t blocktime_ms) {
  if (blocktime_ms == rt::kBlocktimeInfinite) return 2;
  if (blocktime_ms == 0) return 0;
  return 1;  // the default 200 and other finite values
}

double encode_reduction(rt::ReductionMethod method) {
  switch (method) {
    case rt::ReductionMethod::Default: return 0;
    case rt::ReductionMethod::Tree: return 1;
    case rt::ReductionMethod::Critical: return 2;
    case rt::ReductionMethod::Atomic: return 3;
  }
  return 0;
}

double encode_align(int align_bytes) {
  return align_bytes > 0 ? std::log2(static_cast<double>(align_bytes)) : 6.0;
}

double encode_input(const std::string& input_name) {
  // Ordinal by conventional size-name ordering; unknown names hash to a
  // stable small bucket (naive placeholder encoding, as in the paper).
  if (input_name == "S" || input_name == "small") return 0;
  if (input_name == "W" || input_name == "medium" || input_name == "default") return 1;
  if (input_name == "A" || input_name == "large") return 2;
  return static_cast<double>(util::stable_hash(input_name) % 8u) + 3.0;
}

double encode_arch(const std::string& arch_name) {
  if (arch_name == "a64fx") return 0;
  if (arch_name == "skylake") return 1;
  if (arch_name == "milan") return 2;
  return static_cast<double>(util::stable_hash(arch_name) % 8u) + 3.0;
}

double encode_app(const std::string& app_name) {
  const auto& apps = apps::registry();
  for (std::size_t i = 0; i < apps.size(); ++i) {
    if (apps[i]->name() == app_name) return static_cast<double>(i);
  }
  return static_cast<double>(util::stable_hash(app_name) % 16u) +
         static_cast<double>(apps.size());
}

FeatureEncoder::FeatureEncoder(FeatureOptions options) : options_(options) {
  if (options_.include_architecture) names_.push_back("Architecture");
  if (options_.include_application) names_.push_back("Application");
  if (options_.include_input_size) names_.push_back("Input Size");
  if (options_.include_threads) names_.push_back("OMP_NUM_THREADS");
  names_.push_back("OMP_PLACES");
  names_.push_back("OMP_PROC_BIND");
  names_.push_back("OMP_SCHEDULE");
  names_.push_back("KMP_LIBRARY");
  names_.push_back("KMP_BLOCKTIME");
  names_.push_back("KMP_FORCE_REDUCTION");
  names_.push_back("KMP_ALIGN_ALLOC");
}

std::vector<double> FeatureEncoder::encode_sample(const sweep::Sample& s) const {
  std::vector<double> row;
  row.reserve(names_.size());
  if (options_.include_architecture) row.push_back(encode_arch(s.arch));
  if (options_.include_application) row.push_back(encode_app(s.app));
  if (options_.include_input_size) row.push_back(encode_input(s.input));
  if (options_.include_threads) row.push_back(static_cast<double>(s.threads));
  row.push_back(encode_places(s.config.places));
  row.push_back(encode_bind(s.config.bind));
  row.push_back(encode_schedule(s.config.schedule));
  row.push_back(encode_library(s.config.library));
  row.push_back(encode_blocktime(s.config.blocktime_ms));
  row.push_back(encode_reduction(s.config.reduction));
  row.push_back(encode_align(s.config.align_alloc));
  return row;
}

Matrix FeatureEncoder::encode(const sweep::Dataset& dataset) const {
  Matrix x(dataset.size(), num_features());
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    const std::vector<double> row = encode_sample(dataset.samples()[r]);
    for (std::size_t c = 0; c < row.size(); ++c) x.at(r, c) = row[c];
  }
  return x;
}

std::vector<int> FeatureEncoder::labels(const sweep::Dataset& dataset,
                                        double threshold) {
  std::vector<int> y;
  y.reserve(dataset.size());
  for (const sweep::Sample& s : dataset.samples()) {
    y.push_back(s.speedup > threshold ? 1 : 0);
  }
  return y;
}

}  // namespace omptune::ml
