#include "ml/linalg.hpp"

#include <cmath>

namespace omptune::ml {

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* x = row(r);
    for (std::size_t i = 0; i < cols_; ++i) {
      const double xi = x[i];
      if (xi == 0.0) continue;
      for (std::size_t j = i; j < cols_; ++j) {
        g.at(i, j) += xi * x[j];
      }
    }
  }
  // Mirror the upper triangle.
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) g.at(i, j) = g.at(j, i);
  }
  return g;
}

std::vector<double> Matrix::transpose_times(const std::vector<double>& v) const {
  if (v.size() != rows_) {
    throw std::invalid_argument("transpose_times: dimension mismatch");
  }
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* x = row(r);
    const double vr = v[r];
    for (std::size_t c = 0; c < cols_; ++c) out[c] += x[c] * vr;
  }
  return out;
}

std::vector<double> Matrix::times(const std::vector<double>& w) const {
  if (w.size() != cols_) {
    throw std::invalid_argument("times: dimension mismatch");
  }
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* x = row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += x[c] * w[c];
    out[r] = acc;
  }
  return out;
}

std::vector<double> solve_linear_system(Matrix m, std::vector<double> b) {
  const std::size_t n = m.rows();
  if (m.cols() != n || b.size() != n) {
    throw std::invalid_argument("solve_linear_system: need square system");
  }
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(m.at(r, col)) > std::abs(m.at(pivot, col))) pivot = r;
    }
    if (std::abs(m.at(pivot, col)) < 1e-12) {
      throw std::runtime_error("solve_linear_system: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(m.at(col, c), m.at(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / m.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = m.at(r, col) * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) m.at(r, c) -= f * m.at(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= m.at(ri, c) * x[c];
    x[ri] = acc / m.at(ri, ri);
  }
  return x;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace omptune::ml
