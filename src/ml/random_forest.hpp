#pragma once

// Random forest over the CART trees: bootstrap rows + random feature
// subsets per split, probability averaging, aggregated impurity importance,
// and out-of-bag accuracy (the honest generalization estimate the paper's
// future-work section asks for when transferring to unseen data).

#include <cstdint>
#include <vector>

#include "ml/decision_tree.hpp"

namespace omptune::util {
class ThreadPool;
}

namespace omptune::ml {

struct ForestOptions {
  int num_trees = 30;
  TreeOptions tree;     ///< tree.max_features 0 => sqrt(#features)
  std::uint64_t seed = 7;
};

class RandomForest {
 public:
  explicit RandomForest(ForestOptions options = {}) : options_(options) {}

  /// Train the forest. Every tree draws its bootstrap rows from its own
  /// RNG seeded by hash_combine(seed, tree index), so trees are fully
  /// independent and train concurrently on `pool`; out-of-bag votes merge
  /// serially in tree order afterwards. The fitted forest is bit-identical
  /// at any thread count, pool or no pool.
  void fit(const Matrix& x, const std::vector<int>& y,
           const util::ThreadPool* pool = nullptr);

  /// Mean of the trees' leaf probabilities.
  std::vector<double> predict_proba(const Matrix& x) const;
  std::vector<int> predict(const Matrix& x) const;
  double accuracy(const Matrix& x, const std::vector<int>& y) const;

  /// Out-of-bag accuracy computed during fit (rows predicted only by trees
  /// that did not see them). NaN-free: rows never out of bag are skipped.
  double oob_accuracy() const { return oob_accuracy_; }

  /// Mean of the trees' normalized importances; sums to 1.
  std::vector<double> feature_importance() const;

  std::size_t size() const { return trees_.size(); }
  bool fitted() const { return !trees_.empty(); }

 private:
  ForestOptions options_;
  std::vector<DecisionTree> trees_;
  double oob_accuracy_ = 0.0;
  std::size_t num_features_ = 0;
};

}  // namespace omptune::ml
