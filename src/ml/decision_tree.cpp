#include "ml/decision_tree.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace omptune::ml {

/// Small helper wrapping the feature-subset choice per split.
class SplitRng {
 public:
  explicit SplitRng(std::uint64_t seed) : rng_(seed) {}

  /// Candidate features for one split: all of them, or a random subset.
  std::vector<int> candidates(std::size_t num_features, int max_features) {
    std::vector<int> all(num_features);
    std::iota(all.begin(), all.end(), 0);
    if (max_features <= 0 ||
        static_cast<std::size_t>(max_features) >= num_features) {
      return all;
    }
    // Partial Fisher-Yates: first max_features entries are the subset.
    for (int i = 0; i < max_features; ++i) {
      const std::size_t j =
          i + rng_.uniform_index(num_features - static_cast<std::size_t>(i));
      std::swap(all[static_cast<std::size_t>(i)], all[j]);
    }
    all.resize(static_cast<std::size_t>(max_features));
    return all;
  }

 private:
  util::Xoshiro256 rng_;
};

namespace {

double gini(std::size_t positives, std::size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(positives) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

void DecisionTree::fit(const Matrix& x, const std::vector<int>& y) {
  std::vector<std::size_t> rows(x.rows());
  std::iota(rows.begin(), rows.end(), 0);
  fit_rows(x, y, rows);
}

void DecisionTree::fit_rows(const Matrix& x, const std::vector<int>& y,
                            const std::vector<std::size_t>& rows) {
  if (x.rows() != y.size() || rows.empty()) {
    throw std::invalid_argument("DecisionTree::fit: bad dimensions");
  }
  for (const int label : y) {
    if (label != 0 && label != 1) {
      throw std::invalid_argument("DecisionTree::fit: labels must be 0/1");
    }
  }
  nodes_.clear();
  importance_.assign(x.cols(), 0.0);
  depth_ = 0;
  std::vector<std::size_t> working = rows;
  SplitRng rng(options_.seed);
  build(x, y, working, 0, working.size(), 0, rng);
}

int DecisionTree::build(const Matrix& x, const std::vector<int>& y,
                        std::vector<std::size_t>& rows, std::size_t begin,
                        std::size_t end, int depth, SplitRng& rng) {
  const std::size_t n = end - begin;
  std::size_t positives = 0;
  for (std::size_t i = begin; i < end; ++i) positives += static_cast<std::size_t>(y[rows[i]]);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_.back().positive_fraction =
      static_cast<double>(positives) / static_cast<double>(n);
  depth_ = std::max(depth_, depth);

  const bool pure = positives == 0 || positives == n;
  if (pure || depth >= options_.max_depth || n < options_.min_samples_split) {
    return node_index;
  }

  // Best split search over the candidate features.
  const double parent_impurity = gini(positives, n);
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::size_t> order(rows.begin() + static_cast<std::ptrdiff_t>(begin),
                                 rows.begin() + static_cast<std::ptrdiff_t>(end));
  for (const int feature : rng.candidates(x.cols(), options_.max_features)) {
    std::sort(order.begin(), order.end(), [&x, feature](std::size_t a, std::size_t b) {
      return x.at(a, static_cast<std::size_t>(feature)) <
             x.at(b, static_cast<std::size_t>(feature));
    });
    std::size_t left_pos = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left_pos += static_cast<std::size_t>(y[order[i]]);
      const double v = x.at(order[i], static_cast<std::size_t>(feature));
      const double next = x.at(order[i + 1], static_cast<std::size_t>(feature));
      if (v == next) continue;  // can only split between distinct values
      const std::size_t left_n = i + 1;
      const std::size_t right_n = n - left_n;
      if (left_n < options_.min_samples_leaf || right_n < options_.min_samples_leaf) {
        continue;
      }
      const double weighted =
          (static_cast<double>(left_n) * gini(left_pos, left_n) +
           static_cast<double>(right_n) * gini(positives - left_pos, right_n)) /
          static_cast<double>(n);
      const double gain = parent_impurity - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = feature;
        best_threshold = 0.5 * (v + next);
      }
    }
  }

  if (best_feature < 0) return node_index;  // no usable split

  // Partition rows in place around the threshold.
  const auto middle = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end),
      [&x, best_feature, best_threshold](std::size_t r) {
        return x.at(r, static_cast<std::size_t>(best_feature)) <= best_threshold;
      });
  const std::size_t split =
      static_cast<std::size_t>(middle - rows.begin());
  if (split == begin || split == end) return node_index;  // degenerate

  importance_[static_cast<std::size_t>(best_feature)] +=
      best_gain * static_cast<double>(n);

  nodes_[static_cast<std::size_t>(node_index)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_index)].threshold = best_threshold;
  const int left = build(x, y, rows, begin, split, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_index)].left = left;
  const int right = build(x, y, rows, split, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_index)].right = right;
  return node_index;
}

std::vector<double> DecisionTree::predict_proba(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("DecisionTree: not fitted");
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    int node = 0;
    while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
      const Node& current = nodes_[static_cast<std::size_t>(node)];
      node = x.at(r, static_cast<std::size_t>(current.feature)) <= current.threshold
                 ? current.left
                 : current.right;
    }
    out[r] = nodes_[static_cast<std::size_t>(node)].positive_fraction;
  }
  return out;
}

std::vector<int> DecisionTree::predict(const Matrix& x) const {
  const auto proba = predict_proba(x);
  std::vector<int> out(proba.size());
  for (std::size_t i = 0; i < proba.size(); ++i) out[i] = proba[i] >= 0.5 ? 1 : 0;
  return out;
}

double DecisionTree::accuracy(const Matrix& x, const std::vector<int>& y) const {
  const auto pred = predict(x);
  if (pred.size() != y.size() || y.empty()) {
    throw std::invalid_argument("DecisionTree::accuracy: size mismatch");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i) correct += (pred[i] == y[i]);
  return static_cast<double>(correct) / static_cast<double>(y.size());
}

std::vector<double> DecisionTree::feature_importance() const {
  if (!fitted()) throw std::logic_error("DecisionTree: not fitted");
  std::vector<double> out = importance_;
  double total = 0.0;
  for (const double v : out) total += v;
  if (total > 0.0) {
    for (double& v : out) v /= total;
  }
  return out;
}

}  // namespace omptune::ml
