#pragma once

// Minimal dense linear algebra for the linear-model analysis: row-major
// matrices, the handful of BLAS-1/2 operations the solvers need, and a
// partial-pivot Gaussian solve for the normal equations.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace omptune::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Row view as a pointer (contiguous row-major storage).
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }
  double* row(std::size_t r) { return data_.data() + r * cols_; }

  /// A^T * A (for the normal equations).
  Matrix gram() const;

  /// A^T * v.
  std::vector<double> transpose_times(const std::vector<double>& v) const;

  /// A * w.
  std::vector<double> times(const std::vector<double>& w) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve the square system M x = b by Gaussian elimination with partial
/// pivoting; throws std::runtime_error on (near-)singular systems.
std::vector<double> solve_linear_system(Matrix m, std::vector<double> b);

double dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace omptune::ml
