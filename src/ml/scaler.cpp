#include "ml/scaler.hpp"

#include <cmath>
#include <stdexcept>

namespace omptune::ml {

void StandardScaler::fit(const Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("StandardScaler::fit: empty");
  means_.assign(x.cols(), 0.0);
  scales_.assign(x.cols(), 1.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) means_[c] += x.at(r, c);
  }
  for (double& m : means_) m /= static_cast<double>(x.rows());
  std::vector<double> ss(x.cols(), 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const double d = x.at(r, c) - means_[c];
      ss[c] += d * d;
    }
  }
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const double variance = ss[c] / static_cast<double>(x.rows());
    scales_[c] = variance > 1e-24 ? std::sqrt(variance) : 1.0;
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("StandardScaler::transform: not fitted");
  if (x.cols() != means_.size()) {
    throw std::invalid_argument("StandardScaler::transform: width mismatch");
  }
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out.at(r, c) = (x.at(r, c) - means_[c]) / scales_[c];
    }
  }
  return out;
}

}  // namespace omptune::ml
