#pragma once

// Standardization (zero mean, unit variance per column) — applied before
// the linear models so that coefficient magnitudes are comparable across
// features, which is what makes the influence heat maps meaningful.

#include <vector>

#include "ml/linalg.hpp"

namespace omptune::ml {

class StandardScaler {
 public:
  /// Learn per-column mean and standard deviation. Constant columns get
  /// scale 1 (they standardize to zero).
  void fit(const Matrix& x);

  /// Standardize a copy of x. Throws if fit() was not called or widths
  /// mismatch.
  Matrix transform(const Matrix& x) const;

  Matrix fit_transform(const Matrix& x) {
    fit(x);
    return transform(x);
  }

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& scales() const { return scales_; }
  bool fitted() const { return !means_.empty(); }

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

}  // namespace omptune::ml
