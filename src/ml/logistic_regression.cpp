#include "ml/logistic_regression.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace omptune::ml {

namespace {

/// Rows per gradient chunk. Fixed — the chunk layout (and therefore the
/// gradient summation order) must depend only on the row count, never on
/// the thread count, or fits would stop being bit-reproducible.
constexpr std::size_t kRowGrain = 1024;

}  // namespace

double sigmoid(double z) {
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

void LogisticRegression::fit(const Matrix& x, const std::vector<int>& y,
                             const util::ThreadPool* pool) {
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("LogisticRegression::fit: dimension mismatch");
  }
  for (const int label : y) {
    if (label != 0 && label != 1) {
      throw std::invalid_argument("LogisticRegression::fit: labels must be 0/1");
    }
  }

  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  coef_.assign(d, 0.0);
  intercept_ = 0.0;
  const double inv_n = 1.0 / static_cast<double>(n);

  // All scratch for the whole fit, allocated once: one (grad, grad_b) slab
  // per chunk plus the merged gradient. ~300 epochs reuse these buffers.
  const std::size_t chunks = util::ThreadPool::chunk_count(n, kRowGrain);
  const std::size_t stride = d + 1;  // d feature gradients + the intercept's
  std::vector<double> partials(chunks * stride);
  std::vector<double> grad(d, 0.0);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    std::fill(partials.begin(), partials.end(), 0.0);
    util::parallel_for(
        pool, n, kRowGrain,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
          double* p = partials.data() + chunk * stride;
          for (std::size_t r = begin; r < end; ++r) {
            const double* xr = x.row(r);
            double z = intercept_;
            for (std::size_t c = 0; c < d; ++c) z += coef_[c] * xr[c];
            const double err = sigmoid(z) - static_cast<double>(y[r]);
            for (std::size_t c = 0; c < d; ++c) p[c] += err * xr[c];
            p[d] += err;
          }
        });
    // Merge partials in ascending chunk order — the fixed association that
    // keeps the fit independent of how chunks were scheduled.
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      const double* p = partials.data() + chunk * stride;
      for (std::size_t c = 0; c < d; ++c) grad[c] += p[c];
      grad_b += p[d];
    }
    double grad_norm2 = grad_b * inv_n * grad_b * inv_n;
    for (std::size_t c = 0; c < d; ++c) {
      grad[c] = grad[c] * inv_n + options_.l2 * coef_[c];
      grad_norm2 += grad[c] * grad[c];
    }
    grad_b *= inv_n;
    for (std::size_t c = 0; c < d; ++c) {
      coef_[c] -= options_.learning_rate * grad[c];
    }
    intercept_ -= options_.learning_rate * grad_b;
    if (grad_norm2 < options_.tolerance * options_.tolerance) break;
  }
}

void LogisticRegression::predict_proba_into(const Matrix& x,
                                            std::vector<double>& out,
                                            const util::ThreadPool* pool) const {
  if (!fitted()) throw std::logic_error("LogisticRegression: not fitted");
  if (x.cols() != coef_.size()) {
    throw std::invalid_argument("LogisticRegression::predict_proba: width mismatch");
  }
  out.resize(x.rows());
  const std::size_t d = coef_.size();
  util::parallel_for(pool, x.rows(), kRowGrain,
                     [&](std::size_t begin, std::size_t end, std::size_t) {
                       for (std::size_t r = begin; r < end; ++r) {
                         const double* xr = x.row(r);
                         double z = intercept_;
                         for (std::size_t c = 0; c < d; ++c) z += coef_[c] * xr[c];
                         out[r] = sigmoid(z);
                       }
                     });
}

std::vector<double> LogisticRegression::predict_proba(
    const Matrix& x, const util::ThreadPool* pool) const {
  std::vector<double> out;
  predict_proba_into(x, out, pool);
  return out;
}

std::vector<int> LogisticRegression::predict(const Matrix& x,
                                             const util::ThreadPool* pool) const {
  const std::vector<double> proba = predict_proba(x, pool);
  std::vector<int> out(proba.size());
  for (std::size_t i = 0; i < proba.size(); ++i) out[i] = proba[i] >= 0.5 ? 1 : 0;
  return out;
}

double LogisticRegression::accuracy(const Matrix& x, const std::vector<int>& y,
                                    const util::ThreadPool* pool) const {
  const std::vector<int> pred = predict(x, pool);
  if (pred.size() != y.size() || y.empty()) {
    throw std::invalid_argument("LogisticRegression::accuracy: size mismatch");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i) correct += (pred[i] == y[i]);
  return static_cast<double>(correct) / static_cast<double>(y.size());
}

std::vector<double> LogisticRegression::normalized_influence() const {
  if (!fitted()) throw std::logic_error("LogisticRegression: not fitted");
  std::vector<double> influence(coef_.size());
  double total = 0.0;
  for (std::size_t c = 0; c < coef_.size(); ++c) {
    influence[c] = std::abs(coef_[c]);
    total += influence[c];
  }
  if (total > 0.0) {
    for (double& v : influence) v /= total;
  }
  return influence;
}

}  // namespace omptune::ml
