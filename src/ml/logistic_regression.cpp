#include "ml/logistic_regression.hpp"

#include <cmath>
#include <stdexcept>

namespace omptune::ml {

double sigmoid(double z) {
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

void LogisticRegression::fit(const Matrix& x, const std::vector<int>& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("LogisticRegression::fit: dimension mismatch");
  }
  for (const int label : y) {
    if (label != 0 && label != 1) {
      throw std::invalid_argument("LogisticRegression::fit: labels must be 0/1");
    }
  }

  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  coef_.assign(d, 0.0);
  intercept_ = 0.0;
  const double inv_n = 1.0 / static_cast<double>(n);

  std::vector<double> grad(d, 0.0);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double* xr = x.row(r);
      double z = intercept_;
      for (std::size_t c = 0; c < d; ++c) z += coef_[c] * xr[c];
      const double err = sigmoid(z) - static_cast<double>(y[r]);
      for (std::size_t c = 0; c < d; ++c) grad[c] += err * xr[c];
      grad_b += err;
    }
    double grad_norm2 = grad_b * inv_n * grad_b * inv_n;
    for (std::size_t c = 0; c < d; ++c) {
      grad[c] = grad[c] * inv_n + options_.l2 * coef_[c];
      grad_norm2 += grad[c] * grad[c];
    }
    grad_b *= inv_n;
    for (std::size_t c = 0; c < d; ++c) {
      coef_[c] -= options_.learning_rate * grad[c];
    }
    intercept_ -= options_.learning_rate * grad_b;
    if (grad_norm2 < options_.tolerance * options_.tolerance) break;
  }
}

std::vector<double> LogisticRegression::predict_proba(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("LogisticRegression: not fitted");
  if (x.cols() != coef_.size()) {
    throw std::invalid_argument("LogisticRegression::predict_proba: width mismatch");
  }
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double* xr = x.row(r);
    double z = intercept_;
    for (std::size_t c = 0; c < coef_.size(); ++c) z += coef_[c] * xr[c];
    out[r] = sigmoid(z);
  }
  return out;
}

std::vector<int> LogisticRegression::predict(const Matrix& x) const {
  const std::vector<double> proba = predict_proba(x);
  std::vector<int> out(proba.size());
  for (std::size_t i = 0; i < proba.size(); ++i) out[i] = proba[i] >= 0.5 ? 1 : 0;
  return out;
}

double LogisticRegression::accuracy(const Matrix& x,
                                    const std::vector<int>& y) const {
  const std::vector<int> pred = predict(x);
  if (pred.size() != y.size() || y.empty()) {
    throw std::invalid_argument("LogisticRegression::accuracy: size mismatch");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i) correct += (pred[i] == y[i]);
  return static_cast<double>(correct) / static_cast<double>(y.size());
}

std::vector<double> LogisticRegression::normalized_influence() const {
  if (!fitted()) throw std::logic_error("LogisticRegression: not fitted");
  std::vector<double> influence(coef_.size());
  double total = 0.0;
  for (std::size_t c = 0; c < coef_.size(); ++c) {
    influence[c] = std::abs(coef_[c]);
    total += influence[c];
  }
  if (total > 0.0) {
    for (double& v : influence) v /= total;
  }
  return influence;
}

}  // namespace omptune::ml
