#pragma once

// CART decision-tree classifier — the paper's proposed "non-linear
// approaches to model such data" (Section VI future work). Greedy binary
// splits on Gini impurity; feature importance = normalized total impurity
// decrease, the non-linear counterpart of the logistic heat maps.

#include <cstdint>
#include <vector>

#include "ml/linalg.hpp"

namespace omptune::ml {

struct TreeOptions {
  int max_depth = 10;
  std::size_t min_samples_split = 8;
  std::size_t min_samples_leaf = 4;
  /// 0 = consider every feature at each split; otherwise a random subset of
  /// this size (used by the random forest).
  int max_features = 0;
  std::uint64_t seed = 1;
};

class DecisionTree {
 public:
  explicit DecisionTree(TreeOptions options = {}) : options_(options) {}

  /// Fit on features x and binary labels y (0/1).
  void fit(const Matrix& x, const std::vector<int>& y);

  /// Fit on a subset of rows (bootstrap support for the forest).
  void fit_rows(const Matrix& x, const std::vector<int>& y,
                const std::vector<std::size_t>& rows);

  /// P(y=1 | x) per row (leaf positive fraction).
  std::vector<double> predict_proba(const Matrix& x) const;
  std::vector<int> predict(const Matrix& x) const;
  double accuracy(const Matrix& x, const std::vector<int>& y) const;

  /// Per-feature share of the total Gini-impurity decrease; sums to 1
  /// (all zeros if the tree is a single leaf).
  std::vector<double> feature_importance() const;

  std::size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }
  bool fitted() const { return !nodes_.empty(); }

 private:
  struct Node {
    int feature = -1;          ///< -1 = leaf
    double threshold = 0.0;    ///< go left if x[feature] <= threshold
    int left = -1;
    int right = -1;
    double positive_fraction = 0.0;
  };

  int build(const Matrix& x, const std::vector<int>& y,
            std::vector<std::size_t>& rows, std::size_t begin, std::size_t end,
            int depth, class SplitRng& rng);

  TreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;  ///< raw impurity decrease per feature
  int depth_ = 0;
};

}  // namespace omptune::ml
