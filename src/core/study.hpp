#pragma once

// End-to-end study orchestration: the single entry point that reproduces
// the paper — sweep the configuration space per the study plan, validate
// measurement consistency, and derive every analysis artefact (speedup
// ranges, influence heat maps, recommendations, worst trends).

#include <functional>
#include <string>

#include "analysis/influence.hpp"
#include "analysis/recommend.hpp"
#include "analysis/speedup.hpp"
#include "sim/executor.hpp"
#include "sweep/dataset.hpp"
#include "sweep/harness.hpp"
#include "sweep/supervisor.hpp"

namespace omptune::store {
class StoreReader;
}
namespace omptune::util {
class ThreadPool;
}

namespace omptune::core {

struct StudyOptions {
  /// Repetitions per configuration (paper: 4).
  int repetitions = 4;
  /// Master seed for the whole study.
  std::uint64_t seed = 0x0417D5EEDull;
  /// Threshold above which a sample counts as "optimal" (paper: 1.01).
  double label_threshold = 1.01;
};

struct StudyResult {
  sweep::Dataset dataset;
  std::vector<analysis::ArchUpshot> upshot;                    // §V.1
  std::vector<analysis::ArchAppRange> ranges_by_arch;          // Table V
  std::vector<analysis::AppRange> ranges_by_app;               // Table VI
  analysis::InfluenceMap per_app_influence;                    // Fig 2
  analysis::InfluenceMap per_arch_influence;                   // Fig 3
  analysis::InfluenceMap per_arch_app_influence;               // Fig 4
  std::vector<analysis::WorstTrend> worst_trends;              // §V.4
};

class Study {
 public:
  Study(sim::Runner& runner, StudyOptions options = {});

  /// Run the full paper plan (Table II scale; seconds in model mode).
  StudyResult run_paper_study(
      const std::function<void(const std::string&)>& progress = {}) const;

  /// Run an arbitrary plan.
  StudyResult run(const sweep::StudyPlan& plan,
                  const std::function<void(const std::string&)>& progress = {}) const;

  /// Run a plan across a pool of forked worker processes: a sample that
  /// crashes, wedges, or corrupts memory takes down one worker, never the
  /// study (see sweep::StudySupervisor). Repetitions and seed come from
  /// StudyOptions so supervised and single-process datasets are
  /// interchangeable; the supervisor's report is copied into *report when
  /// given (crash/hang/quarantine evidence, interruption state).
  StudyResult run_supervised(const sweep::StudyPlan& plan,
                             const sweep::RunnerFactory& make_runner,
                             sweep::SupervisorOptions supervisor_options,
                             sweep::SupervisorReport* report = nullptr,
                             const util::ThreadPool* pool = nullptr) const;

  /// Derive all analysis artefacts from an existing dataset (e.g. loaded
  /// from the open-sourced CSV files). With a pool, the influence maps'
  /// group fits and the models' gradient/tree loops run on it; every
  /// artefact is bit-identical at any thread count.
  StudyResult analyze(sweep::Dataset dataset,
                      const util::ThreadPool* pool = nullptr) const;

  /// Derive the same artefacts straight from a .omps store. The speedup
  /// artefacts (upshot, Tables V/VI) aggregate zero-copy off the store's
  /// column slices; the sample materialization that the ML artefacts and
  /// result.dataset need runs row-parallel on the pool. Identical output to
  /// analyze(Dataset::load_store(path)) — just faster.
  StudyResult analyze_store(const store::StoreReader& reader,
                            const util::ThreadPool* pool = nullptr) const;

 private:
  sim::Runner* runner_;
  StudyOptions options_;
};

}  // namespace omptune::core
