#include "core/study.hpp"

namespace omptune::core {

Study::Study(sim::Runner& runner, StudyOptions options)
    : runner_(&runner), options_(options) {}

StudyResult Study::run_paper_study(
    const std::function<void(const std::string&)>& progress) const {
  return run(sweep::StudyPlan::paper_plan(), progress);
}

StudyResult Study::run(
    const sweep::StudyPlan& plan,
    const std::function<void(const std::string&)>& progress) const {
  sweep::SweepHarness harness(*runner_, options_.repetitions, options_.seed);
  return analyze(harness.run_study(plan, progress));
}

StudyResult Study::analyze(sweep::Dataset dataset) const {
  StudyResult result;
  result.upshot = analysis::upshot_by_arch(dataset);
  result.ranges_by_arch = analysis::speedup_ranges_by_arch(dataset);
  result.ranges_by_app = analysis::speedup_ranges_by_app(dataset);
  result.per_app_influence = analysis::influence_map(
      dataset, analysis::Grouping::PerApplication, options_.label_threshold);
  result.per_arch_influence = analysis::influence_map(
      dataset, analysis::Grouping::PerArchitecture, options_.label_threshold);
  result.per_arch_app_influence = analysis::influence_map(
      dataset, analysis::Grouping::PerArchApplication, options_.label_threshold);
  result.worst_trends = analysis::worst_trends(dataset);
  result.dataset = std::move(dataset);
  return result;
}

}  // namespace omptune::core
