#include "core/study.hpp"

#include "store/reader.hpp"
#include "util/thread_pool.hpp"

namespace omptune::core {

Study::Study(sim::Runner& runner, StudyOptions options)
    : runner_(&runner), options_(options) {}

StudyResult Study::run_paper_study(
    const std::function<void(const std::string&)>& progress) const {
  return run(sweep::StudyPlan::paper_plan(), progress);
}

StudyResult Study::run(
    const sweep::StudyPlan& plan,
    const std::function<void(const std::string&)>& progress) const {
  sweep::SweepHarness harness(*runner_, options_.repetitions, options_.seed);
  return analyze(harness.run_study(plan, progress));
}

StudyResult Study::run_supervised(const sweep::StudyPlan& plan,
                                  const sweep::RunnerFactory& make_runner,
                                  sweep::SupervisorOptions supervisor_options,
                                  sweep::SupervisorReport* report,
                                  const util::ThreadPool* pool) const {
  supervisor_options.repetitions = options_.repetitions;
  supervisor_options.seed = options_.seed;
  sweep::StudySupervisor supervisor(make_runner,
                                    std::move(supervisor_options));
  sweep::Dataset dataset = supervisor.run(plan);
  if (report != nullptr) *report = supervisor.report();
  return analyze(std::move(dataset), pool);
}

namespace {

/// The ML/trend artefacts shared by both analyze paths: influence heat
/// maps and worst-performance trends over the non-quarantined samples.
void derive_model_artefacts(const sweep::Dataset& analysed,
                            const StudyOptions& options,
                            const util::ThreadPool* pool, StudyResult& result) {
  result.per_app_influence =
      analysis::influence_map(analysed, analysis::Grouping::PerApplication,
                              options.label_threshold, {}, pool);
  result.per_arch_influence =
      analysis::influence_map(analysed, analysis::Grouping::PerArchitecture,
                              options.label_threshold, {}, pool);
  result.per_arch_app_influence =
      analysis::influence_map(analysed, analysis::Grouping::PerArchApplication,
                              options.label_threshold, {}, pool);
  result.worst_trends = analysis::worst_trends(analysed);
}

}  // namespace

StudyResult Study::analyze(sweep::Dataset dataset,
                           const util::ThreadPool* pool) const {
  StudyResult result;
  // Quarantined samples (failed collection, placeholder values) stay in
  // result.dataset for provenance but are excluded from every derived
  // artefact — their zeroed runtimes/speedups are not measurements.
  sweep::Dataset clean_copy;
  const sweep::Dataset* analysed = &dataset;
  if (dataset.quarantined_count() > 0) {
    clean_copy = dataset.ok_samples();
    analysed = &clean_copy;
  }
  result.upshot = analysis::upshot_by_arch(*analysed);
  result.ranges_by_arch = analysis::speedup_ranges_by_arch(*analysed);
  result.ranges_by_app = analysis::speedup_ranges_by_app(*analysed);
  derive_model_artefacts(*analysed, options_, pool, result);
  result.dataset = std::move(dataset);
  return result;
}

StudyResult Study::analyze_store(const store::StoreReader& reader,
                                 const util::ThreadPool* pool) const {
  StudyResult result;
  // The speedup artefacts never materialize a Sample: per-setting bests are
  // aggregated off the store's column slices (quarantined rows skipped, as
  // in analyze()), and the table/upshot reductions reuse those bests.
  const std::vector<analysis::SettingBest> bests =
      analysis::best_per_setting(reader, pool);
  result.upshot = analysis::upshot_by_arch(bests);
  result.ranges_by_arch = analysis::speedup_ranges_by_arch(bests);
  result.ranges_by_app = analysis::speedup_ranges_by_app(bests);

  // The ML artefacts consume Samples; materialize rows in parallel once.
  sweep::Dataset dataset = reader.load(pool);
  sweep::Dataset clean_copy;
  const sweep::Dataset* analysed = &dataset;
  if (dataset.quarantined_count() > 0) {
    clean_copy = dataset.ok_samples();
    analysed = &clean_copy;
  }
  derive_model_artefacts(*analysed, options_, pool, result);
  result.dataset = std::move(dataset);
  return result;
}

}  // namespace omptune::core
