#include "core/study.hpp"

namespace omptune::core {

Study::Study(sim::Runner& runner, StudyOptions options)
    : runner_(&runner), options_(options) {}

StudyResult Study::run_paper_study(
    const std::function<void(const std::string&)>& progress) const {
  return run(sweep::StudyPlan::paper_plan(), progress);
}

StudyResult Study::run(
    const sweep::StudyPlan& plan,
    const std::function<void(const std::string&)>& progress) const {
  sweep::SweepHarness harness(*runner_, options_.repetitions, options_.seed);
  return analyze(harness.run_study(plan, progress));
}

StudyResult Study::run_supervised(const sweep::StudyPlan& plan,
                                  const sweep::RunnerFactory& make_runner,
                                  sweep::SupervisorOptions supervisor_options,
                                  sweep::SupervisorReport* report) const {
  supervisor_options.repetitions = options_.repetitions;
  supervisor_options.seed = options_.seed;
  sweep::StudySupervisor supervisor(make_runner,
                                    std::move(supervisor_options));
  sweep::Dataset dataset = supervisor.run(plan);
  if (report != nullptr) *report = supervisor.report();
  return analyze(std::move(dataset));
}

StudyResult Study::analyze(sweep::Dataset dataset) const {
  StudyResult result;
  // Quarantined samples (failed collection, placeholder values) stay in
  // result.dataset for provenance but are excluded from every derived
  // artefact — their zeroed runtimes/speedups are not measurements.
  sweep::Dataset clean_copy;
  const sweep::Dataset* analysed = &dataset;
  if (dataset.quarantined_count() > 0) {
    clean_copy = dataset.ok_samples();
    analysed = &clean_copy;
  }
  result.upshot = analysis::upshot_by_arch(*analysed);
  result.ranges_by_arch = analysis::speedup_ranges_by_arch(*analysed);
  result.ranges_by_app = analysis::speedup_ranges_by_app(*analysed);
  result.per_app_influence = analysis::influence_map(
      *analysed, analysis::Grouping::PerApplication, options_.label_threshold);
  result.per_arch_influence = analysis::influence_map(
      *analysed, analysis::Grouping::PerArchitecture, options_.label_threshold);
  result.per_arch_app_influence = analysis::influence_map(
      *analysed, analysis::Grouping::PerArchApplication,
      options_.label_threshold);
  result.worst_trends = analysis::worst_trends(*analysed);
  result.dataset = std::move(dataset);
  return result;
}

}  // namespace omptune::core
