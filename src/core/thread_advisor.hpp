#pragma once

// Thread-count recommendation — the paper's acknowledged limitation
// ("reduced exploration of thread counts... we direct the user to other
// studies that can recommend thread counts") filled in: a dense model-based
// thread sweep per (application, architecture) that finds the efficient
// team size, including the bandwidth-saturation plateaus on which extra
// threads only add contention (the Milan/XSBench mechanism).

#include <vector>

#include "apps/application.hpp"
#include "arch/cpu_arch.hpp"
#include "rt/config.hpp"
#include "sim/perf_model.hpp"

namespace omptune::core {

struct ThreadPoint {
  int threads = 0;
  double seconds = 0;
  double speedup_vs_one = 1.0;        ///< t(1) / t(n)
  double parallel_efficiency = 1.0;   ///< speedup / threads
};

struct ThreadAdvice {
  std::vector<ThreadPoint> curve;  ///< dense sweep, ascending thread counts
  int fastest_threads = 1;         ///< argmin runtime
  /// Smallest team within `efficiency_tolerance` of the fastest runtime —
  /// the recommended count (same speed, fewer burnt cores).
  int recommended_threads = 1;
};

/// Sweep thread counts {1, 2, 4, ..., cores} (plus the exact core count)
/// under the given base configuration and derive the recommendation.
/// `efficiency_tolerance` is the acceptable slowdown vs the fastest point
/// (default 5%).
ThreadAdvice advise_threads(const sim::PerfModel& model,
                            const apps::Application& app,
                            const apps::InputSize& input,
                            const arch::CpuArch& cpu,
                            const rt::RtConfig& base_config,
                            double efficiency_tolerance = 0.05);

}  // namespace omptune::core
