#pragma once

// The tuner: what a downstream user adopts.
//
// Two modes:
//  1. Knowledge-based (instant): query the study's dataset/influence maps
//     for the best known configuration and the per-variable influence
//     ordering for an (application, architecture) pair — the paper's
//     "recommendations" and "search-space pruning" contributions.
//  2. Search-based (measured): tune an arbitrary workload with a Runner,
//     using exhaustive, random, or influence-ordered hill-climbing search —
//     the pruned-search strategy the paper's conclusion proposes.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/influence.hpp"
#include "sim/executor.hpp"
#include "sweep/config_space.hpp"
#include "sweep/dataset.hpp"

namespace omptune::store {
class StoreReader;
}
namespace omptune::util {
class ThreadPool;
}

namespace omptune::core {

/// Knowledge-based recommendations backed by a study dataset.
class KnowledgeBase {
 public:
  /// The influence maps behind variable_priority() fit one model per group;
  /// with a pool those fits run concurrently (identical maps either way).
  explicit KnowledgeBase(const sweep::Dataset& dataset,
                         double label_threshold = 1.01,
                         const util::ThreadPool* pool = nullptr);

  /// Build from an indexed .omps store, materializing only `arch`'s slice
  /// of the dataset — the recommend hot path never parses the other
  /// architectures' rows (or any CSV). The slice is owned by the knowledge
  /// base; the reader is only used during construction.
  KnowledgeBase(const store::StoreReader& reader, const std::string& arch,
                double label_threshold = 1.01,
                const util::ThreadPool* pool = nullptr);

  /// Environment variables ordered by decreasing influence for the pair
  /// (falls back to the per-architecture, then global ordering when the
  /// pair was not studied). Names use the paper's spellings.
  std::vector<std::string> variable_priority(const std::string& app,
                                             const std::string& arch) const;

  /// Best known configuration for (app, arch) across the studied settings;
  /// throws std::invalid_argument if the pair has no samples.
  rt::RtConfig best_known_config(const std::string& app,
                                 const std::string& arch) const;

  /// Expected speedup of best_known_config over the default.
  double best_known_speedup(const std::string& app, const std::string& arch) const;

  const analysis::InfluenceMap& pair_influence() const { return pair_influence_; }

 private:
  sweep::Dataset owned_;  ///< store-backed slice; empty for borrowed datasets
  const sweep::Dataset* dataset_;
  analysis::InfluenceMap pair_influence_;
  analysis::InfluenceMap arch_influence_;
};

/// Search-based tuning over a Runner.
class Tuner {
 public:
  struct SearchResult {
    rt::RtConfig best_config;
    double best_seconds = 0;
    double default_seconds = 0;
    double speedup = 1.0;
    std::size_t evaluations = 0;
  };

  Tuner(sim::Runner& runner, const apps::Application& app,
        apps::InputSize input, const arch::CpuArch& cpu,
        std::uint64_t seed = 1);

  /// Evaluate every configuration of the space (ground truth; expensive).
  SearchResult exhaustive(const sweep::ConfigSpace& space, int num_threads);

  /// Evaluate `budget` random configurations (always includes the default).
  SearchResult random_search(const sweep::ConfigSpace& space, int num_threads,
                             std::size_t budget);

  /// One-variable-at-a-time hill climbing in the given variable order
  /// (most influential first — the pruned search of the paper's
  /// conclusion). `variable_order` uses the paper's variable spellings;
  /// unknown names are ignored, omitted variables keep their defaults.
  SearchResult hill_climb(const sweep::ConfigSpace& space, int num_threads,
                          const std::vector<std::string>& variable_order);

  /// Hill climbing repeated with randomly shuffled variable orders — the
  /// paper's suggestion for reducing the local-minimum risk when variable
  /// dependencies are unknown. Returns the best result over all restarts;
  /// evaluation counts accumulate.
  SearchResult hill_climb_restarts(const sweep::ConfigSpace& space,
                                   int num_threads, int restarts);

  /// Simulated annealing over the discrete configuration space (one of the
  /// global strategies the related work compares): random single-variable
  /// mutations, Metropolis acceptance, geometric cooling.
  SearchResult simulated_annealing(const sweep::ConfigSpace& space,
                                   int num_threads, std::size_t budget);

  /// Surrogate-guided search (the Bayesian-optimization-style strategy of
  /// the related-work comparisons, with a k-NN runtime surrogate): after a
  /// small random warm-up, each step scores a random candidate pool with an
  /// inverse-distance-weighted k-NN prediction over the observations and
  /// evaluates the most promising candidate (with epsilon exploration).
  SearchResult surrogate_search(const sweep::ConfigSpace& space,
                                int num_threads, std::size_t budget);

 private:
  double evaluate(const rt::RtConfig& config);

  sim::Runner* runner_;
  const apps::Application* app_;
  apps::InputSize input_;
  const arch::CpuArch* cpu_;
  std::uint64_t seed_;
  std::uint64_t evaluation_index_ = 0;
};

}  // namespace omptune::core
