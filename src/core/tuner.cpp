#include "core/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ml/features.hpp"
#include "store/reader.hpp"
#include "util/rng.hpp"

namespace omptune::core {

namespace {

/// Environment variables, most-influential-first fallback ordering from the
/// paper's Fig. 3 (threads > bind > places > library/blocktime >
/// reduction/align).
const std::vector<std::string>& fig3_fallback_order() {
  static const std::vector<std::string> order = {
      "OMP_NUM_THREADS",   "OMP_PROC_BIND",       "OMP_PLACES",
      "OMP_SCHEDULE",      "KMP_LIBRARY",         "KMP_BLOCKTIME",
      "KMP_FORCE_REDUCTION", "KMP_ALIGN_ALLOC",
  };
  return order;
}

std::vector<std::string> order_from_row(const analysis::InfluenceMap& map,
                                        const analysis::InfluenceRow& row) {
  // Restrict to the tunable environment variables (drop the placeholder
  // Architecture/Application/Input Size columns).
  std::vector<std::pair<double, std::string>> scored;
  for (std::size_t c = 0; c < map.feature_names.size(); ++c) {
    const std::string& name = map.feature_names[c];
    if (name == "Architecture" || name == "Application" || name == "Input Size") {
      continue;
    }
    scored.emplace_back(row.influence[c], name);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> order;
  order.reserve(scored.size());
  for (const auto& [score, name] : scored) order.push_back(name);
  return order;
}

/// The architecture's rows of a store, via the setting index.
sweep::Dataset arch_slice(const store::StoreReader& reader,
                          const std::string& arch) {
  store::StoreQuery query;
  query.arch = arch;
  return reader.query(query);
}

}  // namespace

KnowledgeBase::KnowledgeBase(const sweep::Dataset& dataset,
                             double label_threshold,
                             const util::ThreadPool* pool)
    : dataset_(&dataset),
      pair_influence_(analysis::influence_map(
          dataset, analysis::Grouping::PerArchApplication, label_threshold, {},
          pool)),
      arch_influence_(analysis::influence_map(
          dataset, analysis::Grouping::PerArchitecture, label_threshold, {},
          pool)) {}

KnowledgeBase::KnowledgeBase(const store::StoreReader& reader,
                             const std::string& arch, double label_threshold,
                             const util::ThreadPool* pool)
    : owned_(arch_slice(reader, arch)),
      dataset_(&owned_),
      pair_influence_(analysis::influence_map(
          owned_, analysis::Grouping::PerArchApplication, label_threshold, {},
          pool)),
      arch_influence_(analysis::influence_map(
          owned_, analysis::Grouping::PerArchitecture, label_threshold, {},
          pool)) {}

std::vector<std::string> KnowledgeBase::variable_priority(
    const std::string& app, const std::string& arch) const {
  const std::string pair_key = arch + "/" + app;
  for (const analysis::InfluenceRow& row : pair_influence_.rows) {
    if (row.group == pair_key) return order_from_row(pair_influence_, row);
  }
  for (const analysis::InfluenceRow& row : arch_influence_.rows) {
    if (row.group == arch) return order_from_row(arch_influence_, row);
  }
  return fig3_fallback_order();
}

rt::RtConfig KnowledgeBase::best_known_config(const std::string& app,
                                              const std::string& arch) const {
  const sweep::Sample* best = nullptr;
  for (const sweep::Sample& s : dataset_->samples()) {
    if (s.app != app || s.arch != arch) continue;
    if (best == nullptr || s.speedup > best->speedup) best = &s;
  }
  if (best == nullptr) {
    throw std::invalid_argument("KnowledgeBase: no samples for " + app + " on " + arch);
  }
  return best->config;
}

double KnowledgeBase::best_known_speedup(const std::string& app,
                                         const std::string& arch) const {
  double best = 0.0;
  bool found = false;
  for (const sweep::Sample& s : dataset_->samples()) {
    if (s.app != app || s.arch != arch) continue;
    best = std::max(best, s.speedup);
    found = true;
  }
  if (!found) {
    throw std::invalid_argument("KnowledgeBase: no samples for " + app + " on " + arch);
  }
  return best;
}

Tuner::Tuner(sim::Runner& runner, const apps::Application& app,
             apps::InputSize input, const arch::CpuArch& cpu,
             std::uint64_t seed)
    : runner_(&runner),
      app_(&app),
      input_(std::move(input)),
      cpu_(&cpu),
      seed_(seed) {}

double Tuner::evaluate(const rt::RtConfig& config) {
  return runner_->run(*app_, input_, *cpu_, config, seed_, /*repetition=*/0,
                      evaluation_index_++);
}

Tuner::SearchResult Tuner::exhaustive(const sweep::ConfigSpace& space,
                                      int num_threads) {
  SearchResult result;
  rt::RtConfig default_config;
  default_config.num_threads = num_threads;
  default_config.align_alloc = space.aligns.front();
  result.default_seconds = evaluate(default_config);
  result.best_config = default_config;
  result.best_seconds = result.default_seconds;
  result.evaluations = 1;
  for (const rt::RtConfig& config : space.enumerate(num_threads)) {
    const double seconds = evaluate(config);
    ++result.evaluations;
    if (seconds < result.best_seconds) {
      result.best_seconds = seconds;
      result.best_config = config;
    }
  }
  result.speedup = result.default_seconds / result.best_seconds;
  return result;
}

Tuner::SearchResult Tuner::random_search(const sweep::ConfigSpace& space,
                                         int num_threads, std::size_t budget) {
  SearchResult result;
  const auto configs = space.sample(num_threads, std::max<std::size_t>(budget, 1),
                                    seed_ ^ 0xBADC0FFEEULL);
  // sample() pins the default configuration first.
  result.default_seconds = evaluate(configs.front());
  result.best_config = configs.front();
  result.best_seconds = result.default_seconds;
  result.evaluations = 1;
  for (std::size_t i = 1; i < configs.size(); ++i) {
    const double seconds = evaluate(configs[i]);
    ++result.evaluations;
    if (seconds < result.best_seconds) {
      result.best_seconds = seconds;
      result.best_config = configs[i];
    }
  }
  result.speedup = result.default_seconds / result.best_seconds;
  return result;
}

Tuner::SearchResult Tuner::hill_climb(
    const sweep::ConfigSpace& space, int num_threads,
    const std::vector<std::string>& variable_order) {
  SearchResult result;
  rt::RtConfig current;
  current.num_threads = num_threads;
  current.align_alloc = space.aligns.front();
  result.default_seconds = evaluate(current);
  result.evaluations = 1;
  double current_seconds = result.default_seconds;

  // One pass over the variables in priority order, keeping the best value
  // of each before moving on (the paper's pruned hill climbing).
  for (const std::string& variable : variable_order) {
    auto try_value = [&](const rt::RtConfig& candidate) {
      const double seconds = evaluate(candidate);
      ++result.evaluations;
      if (seconds < current_seconds) {
        current_seconds = seconds;
        current = candidate;
      }
    };
    if (variable == "OMP_PLACES") {
      for (const auto v : space.places) {
        rt::RtConfig c = current;
        c.places = v;
        if (!(c == current)) try_value(c);
      }
    } else if (variable == "OMP_PROC_BIND") {
      for (const auto v : space.binds) {
        rt::RtConfig c = current;
        c.bind = v;
        if (!(c == current)) try_value(c);
      }
    } else if (variable == "OMP_SCHEDULE") {
      for (const auto v : space.schedules) {
        rt::RtConfig c = current;
        c.schedule = v;
        if (!(c == current)) try_value(c);
      }
    } else if (variable == "KMP_LIBRARY") {
      for (const auto v : space.libraries) {
        rt::RtConfig c = current;
        c.library = v;
        if (!(c == current)) try_value(c);
      }
    } else if (variable == "KMP_BLOCKTIME") {
      for (const auto v : space.blocktimes_ms) {
        rt::RtConfig c = current;
        c.blocktime_ms = v;
        if (!(c == current)) try_value(c);
      }
    } else if (variable == "KMP_FORCE_REDUCTION") {
      for (const auto v : space.reductions) {
        rt::RtConfig c = current;
        c.reduction = v;
        if (!(c == current)) try_value(c);
      }
    } else if (variable == "KMP_ALIGN_ALLOC") {
      for (const auto v : space.aligns) {
        rt::RtConfig c = current;
        c.align_alloc = v;
        if (!(c == current)) try_value(c);
      }
    }
    // OMP_NUM_THREADS and unknown names: fixed by the caller / ignored.
  }

  result.best_config = current;
  result.best_seconds = current_seconds;
  result.speedup = result.default_seconds / result.best_seconds;
  return result;
}

Tuner::SearchResult Tuner::hill_climb_restarts(const sweep::ConfigSpace& space,
                                               int num_threads, int restarts) {
  if (restarts <= 0) {
    throw std::invalid_argument("hill_climb_restarts: restarts must be > 0");
  }
  util::Xoshiro256 rng(seed_ ^ 0x8E57A875ULL);
  SearchResult best;
  std::size_t total_evaluations = 0;
  std::vector<std::string> order = fig3_fallback_order();
  for (int attempt = 0; attempt < restarts; ++attempt) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
    SearchResult result = hill_climb(space, num_threads, order);
    total_evaluations += result.evaluations;
    if (attempt == 0 || result.best_seconds < best.best_seconds) {
      const double default_seconds =
          attempt == 0 ? result.default_seconds : best.default_seconds;
      best = result;
      best.default_seconds = default_seconds;
    }
  }
  best.evaluations = total_evaluations;
  best.speedup = best.default_seconds / best.best_seconds;
  return best;
}

Tuner::SearchResult Tuner::simulated_annealing(const sweep::ConfigSpace& space,
                                               int num_threads,
                                               std::size_t budget) {
  if (budget == 0) {
    throw std::invalid_argument("simulated_annealing: budget must be > 0");
  }
  util::Xoshiro256 rng(seed_ ^ 0x5A5A5A5AULL);

  rt::RtConfig current;
  current.num_threads = num_threads;
  current.align_alloc = space.aligns.front();

  SearchResult result;
  result.default_seconds = evaluate(current);
  result.evaluations = 1;
  double current_seconds = result.default_seconds;
  result.best_config = current;
  result.best_seconds = current_seconds;

  // Mutate one random variable to a random in-space value.
  auto mutate = [&space, &rng](rt::RtConfig config) {
    switch (rng.uniform_index(7)) {
      case 0: config.places = space.places[rng.uniform_index(space.places.size())]; break;
      case 1: config.bind = space.binds[rng.uniform_index(space.binds.size())]; break;
      case 2: config.schedule = space.schedules[rng.uniform_index(space.schedules.size())]; break;
      case 3: config.library = space.libraries[rng.uniform_index(space.libraries.size())]; break;
      case 4: config.blocktime_ms = space.blocktimes_ms[rng.uniform_index(space.blocktimes_ms.size())]; break;
      case 5: config.reduction = space.reductions[rng.uniform_index(space.reductions.size())]; break;
      default: config.align_alloc = space.aligns[rng.uniform_index(space.aligns.size())]; break;
    }
    return config;
  };

  // Geometric cooling from a temperature of ~20% relative runtime delta.
  double temperature = 0.2 * result.default_seconds;
  const double cooling =
      std::pow(1e-3, 1.0 / static_cast<double>(budget));  // end near zero
  for (std::size_t step = 0; step < budget; ++step) {
    const rt::RtConfig candidate = mutate(current);
    const double seconds = evaluate(candidate);
    ++result.evaluations;
    const double delta = seconds - current_seconds;
    if (delta <= 0.0 ||
        rng.uniform() < std::exp(-delta / std::max(temperature, 1e-12))) {
      current = candidate;
      current_seconds = seconds;
    }
    if (seconds < result.best_seconds) {
      result.best_seconds = seconds;
      result.best_config = candidate;
    }
    temperature *= cooling;
  }
  result.speedup = result.default_seconds / result.best_seconds;
  return result;
}

Tuner::SearchResult Tuner::surrogate_search(const sweep::ConfigSpace& space,
                                            int num_threads,
                                            std::size_t budget) {
  if (budget == 0) {
    throw std::invalid_argument("surrogate_search: budget must be > 0");
  }
  util::Xoshiro256 rng(seed_ ^ 0x50C0DEULL);

  const ml::FeatureEncoder encoder{ml::FeatureOptions{
      .include_architecture = false,
      .include_application = false,
      .include_input_size = false,
      .include_threads = false,
  }};
  auto features_of = [&encoder, num_threads](const rt::RtConfig& config) {
    sweep::Sample sample;
    sample.config = config;
    sample.threads = num_threads;
    return encoder.encode_sample(sample);
  };

  struct Observation {
    std::vector<double> x;
    double seconds;
  };
  std::vector<Observation> observed;

  SearchResult result;
  auto evaluate_and_record = [&](const rt::RtConfig& config) {
    const double seconds = evaluate(config);
    ++result.evaluations;
    observed.push_back({features_of(config), seconds});
    if (result.evaluations == 1 || seconds < result.best_seconds) {
      result.best_seconds = seconds;
      result.best_config = config;
    }
    return seconds;
  };

  // Warm-up: the default plus a handful of random configurations.
  const std::size_t warmup = std::min<std::size_t>(budget, 8);
  const auto warm_configs =
      space.sample(num_threads, warmup, seed_ ^ 0x17A9ULL);
  result.default_seconds = evaluate_and_record(warm_configs.front());
  for (std::size_t i = 1; i < warm_configs.size(); ++i) {
    evaluate_and_record(warm_configs[i]);
  }

  // k-NN runtime prediction with inverse-distance weights.
  auto predict = [&observed](const std::vector<double>& x) {
    constexpr std::size_t kNeighbours = 5;
    std::vector<std::pair<double, double>> by_distance;  // (dist2, seconds)
    by_distance.reserve(observed.size());
    for (const Observation& o : observed) {
      double dist2 = 0.0;
      for (std::size_t c = 0; c < x.size(); ++c) {
        const double d = x[c] - o.x[c];
        dist2 += d * d;
      }
      by_distance.emplace_back(dist2, o.seconds);
    }
    std::partial_sort(by_distance.begin(),
                      by_distance.begin() +
                          static_cast<std::ptrdiff_t>(
                              std::min(kNeighbours, by_distance.size())),
                      by_distance.end());
    double weight_sum = 0.0, value = 0.0;
    for (std::size_t k = 0; k < std::min(kNeighbours, by_distance.size()); ++k) {
      const double w = 1.0 / (by_distance[k].first + 1e-6);
      weight_sum += w;
      value += w * by_distance[k].second;
    }
    return value / weight_sum;
  };

  const auto pool_source = space.enumerate(num_threads);
  constexpr std::size_t kPool = 64;
  constexpr double kEpsilon = 0.15;  // exploration probability
  while (result.evaluations < budget) {
    rt::RtConfig candidate = pool_source[rng.uniform_index(pool_source.size())];
    if (rng.uniform() >= kEpsilon) {
      // Exploit: best predicted runtime over a random pool.
      double best_predicted = predict(features_of(candidate));
      for (std::size_t p = 1; p < kPool; ++p) {
        const rt::RtConfig& other =
            pool_source[rng.uniform_index(pool_source.size())];
        const double predicted = predict(features_of(other));
        if (predicted < best_predicted) {
          best_predicted = predicted;
          candidate = other;
        }
      }
    }
    evaluate_and_record(candidate);
  }
  result.speedup = result.default_seconds / result.best_seconds;
  return result;
}

}  // namespace omptune::core
