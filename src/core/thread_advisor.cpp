#include "core/thread_advisor.hpp"

#include <algorithm>
#include <stdexcept>

namespace omptune::core {

ThreadAdvice advise_threads(const sim::PerfModel& model,
                            const apps::Application& app,
                            const apps::InputSize& input,
                            const arch::CpuArch& cpu,
                            const rt::RtConfig& base_config,
                            double efficiency_tolerance) {
  if (efficiency_tolerance < 0.0) {
    throw std::invalid_argument("advise_threads: tolerance must be >= 0");
  }
  // Powers of two up to the machine plus the exact core count.
  std::vector<int> counts;
  for (int t = 1; t < cpu.cores; t *= 2) counts.push_back(t);
  counts.push_back(cpu.cores);

  ThreadAdvice advice;
  double t1 = 0.0;
  for (const int threads : counts) {
    rt::RtConfig config = base_config;
    config.num_threads = threads;
    ThreadPoint point;
    point.threads = threads;
    point.seconds = model.predict(app, input, cpu, config);
    if (threads == 1) t1 = point.seconds;
    point.speedup_vs_one = t1 > 0.0 ? t1 / point.seconds : 1.0;
    point.parallel_efficiency = point.speedup_vs_one / threads;
    advice.curve.push_back(point);
  }

  const auto fastest = std::min_element(
      advice.curve.begin(), advice.curve.end(),
      [](const ThreadPoint& a, const ThreadPoint& b) { return a.seconds < b.seconds; });
  advice.fastest_threads = fastest->threads;

  // Smallest team within tolerance of the fastest runtime.
  advice.recommended_threads = fastest->threads;
  for (const ThreadPoint& point : advice.curve) {
    if (point.seconds <= fastest->seconds * (1.0 + efficiency_tolerance)) {
      advice.recommended_threads = point.threads;
      break;
    }
  }
  return advice;
}

}  // namespace omptune::core
