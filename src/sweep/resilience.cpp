#include "sweep/resilience.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "util/errors.hpp"

namespace omptune::sweep {

namespace {

/// Shared between the caller and the (possibly abandoned) worker thread.
struct WatchdogState {
  std::mutex mutex;
  std::condition_variable done_cv;
  bool done = false;
  double result = 0.0;
  std::exception_ptr error;
};

}  // namespace

double run_with_deadline(sim::Runner& runner, const apps::Application& app,
                         const apps::InputSize& input, const arch::CpuArch& cpu,
                         const rt::RtConfig& config, std::uint64_t batch_seed,
                         int repetition, std::uint64_t sample_index,
                         std::int64_t timeout_ms) {
  if (timeout_ms <= 0) {
    return runner.run(app, input, cpu, config, batch_seed, repetition,
                      sample_index);
  }

  auto state = std::make_shared<WatchdogState>();
  std::thread worker([state, &runner, &app, &input, &cpu, config, batch_seed,
                      repetition, sample_index] {
    double result = 0.0;
    std::exception_ptr error;
    try {
      result = runner.run(app, input, cpu, config, batch_seed, repetition,
                          sample_index);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(state->mutex);
    state->result = result;
    state->error = error;
    state->done = true;
    state->done_cv.notify_all();
  });

  std::unique_lock<std::mutex> lock(state->mutex);
  const bool finished = state->done_cv.wait_for(
      lock, std::chrono::milliseconds(timeout_ms),
      [&state] { return state->done; });
  if (!finished) {
    // The worker may be wedged forever; abandon it. It only touches the
    // shared state (kept alive by its copy of the shared_ptr), so the
    // caller-side references (runner, app, ...) must outlive the study —
    // true for all Runner implementations here, whose hangs are bounded
    // sleeps. A real collection daemon would kill the child process
    // instead.
    lock.unlock();
    worker.detach();
    throw util::TransientError("sample exceeded deadline of " +
                               std::to_string(timeout_ms) + " ms");
  }
  lock.unlock();
  worker.join();
  if (state->error) std::rethrow_exception(state->error);
  return state->result;
}

ResiliencePolicy::ResiliencePolicy(ResilienceOptions options)
    : options_(options) {}

std::string ResiliencePolicy::quarantine_key(const arch::CpuArch& cpu,
                                             const apps::Application& app,
                                             const rt::RtConfig& config) {
  return cpu.name + "/" + app.name() + "/" + config.key();
}

MeasureOutcome ResiliencePolicy::measure(
    sim::Runner& runner, const apps::Application& app,
    const apps::InputSize& input, const arch::CpuArch& cpu,
    const rt::RtConfig& config, std::uint64_t batch_seed, int repetition,
    std::uint64_t sample_index) {
  MeasureOutcome outcome;
  // Fast path: no quarantined triples and no watchdog means the only cost
  // over a bare runner call is the finiteness check — the key string is
  // built lazily, only once a failure actually needs it.
  if (!quarantined_.empty() &&
      is_quarantined(quarantine_key(cpu, app, config))) {
    outcome.status = SampleStatus::Quarantined;
    outcome.attempts = 0;
    outcome.error = "already quarantined";
    return outcome;
  }

  const int max_attempts = 1 + std::max(0, options_.max_retries);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1 && options_.backoff_base_ms > 0) {
      // Deterministic exponential backoff: base * 2^(attempt-2).
      const auto delay = options_.backoff_base_ms << (attempt - 2);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    outcome.attempts = attempt;
    try {
      const double runtime = run_with_deadline(
          runner, app, input, cpu, config, batch_seed, repetition,
          sample_index, options_.sample_timeout_ms);
      if (!std::isfinite(runtime) || runtime <= 0.0) {
        throw util::TransientError("non-finite or non-positive runtime " +
                                   std::to_string(runtime));
      }
      outcome.runtime = runtime;
      outcome.status = attempt == 1 ? SampleStatus::Ok : SampleStatus::Retried;
      if (attempt > 1) {
        total_retries_ += static_cast<std::uint64_t>(attempt - 1);
      }
      return outcome;
    } catch (const util::StudyAbort&) {
      throw;  // simulated process death: never absorbed
    } catch (const util::PermanentError& error) {
      outcome.error = error.what();
      break;  // retrying cannot help
    } catch (const std::exception& error) {
      outcome.error = error.what();
      // transient (or unclassified) — retry if budget remains
    }
  }

  total_retries_ += static_cast<std::uint64_t>(outcome.attempts - 1);
  outcome.status = SampleStatus::Quarantined;
  outcome.runtime = 0.0;
  quarantined_.insert(quarantine_key(cpu, app, config));
  return outcome;
}

}  // namespace omptune::sweep
