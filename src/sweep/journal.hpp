#pragma once

// Write-ahead journal for resumable studies.
//
// A study is a sequence of settings; the journal persists each setting's
// samples to its own CSV file the moment the setting completes, via an
// atomic temp-file + fsync + rename write (util::atomic_write_file). A
// crash therefore loses at most the in-flight setting; on resume the
// harness replays completed settings from disk and recollects only the
// rest. Because per-setting RNG seeds derive from the setting key (not the
// global sequence position), a resumed study is bit-identical to an
// uninterrupted one.
//
// Layout: <dir>/<sanitized-key>-<hash16>.csv — human-greppable prefix plus
// a stable 64-bit hash so distinct keys can never collide after
// sanitization. Loading validates the CSV and, when the caller knows it,
// the sample count; every validation failure surfaces as
// util::DataCorruptionError, never as a silently short dataset.

#include <cstddef>
#include <string>
#include <vector>

#include "sweep/dataset.hpp"

namespace omptune::store {
struct CompactReport;
}

namespace omptune::sweep {

class StudyJournal {
 public:
  /// Opens (and creates, if needed) the journal directory.
  explicit StudyJournal(std::string directory);

  const std::string& directory() const { return directory_; }

  /// Whether a completed entry for `key` exists.
  bool contains(const std::string& key) const;

  /// Persist a setting's samples under `key` (atomic replace).
  void record(const std::string& key, const Dataset& dataset) const;

  /// Load the entry for `key`. `expected_samples` > 0 additionally asserts
  /// the stored sample count (a clean-boundary truncation is otherwise
  /// undetectable). Throws util::DataCorruptionError on a missing,
  /// malformed, or short entry.
  Dataset load(const std::string& key, std::size_t expected_samples = 0) const;

  /// Remove the entry for `key` if present (durable: the parent directory
  /// is fsynced, so a discarded entry cannot resurrect after power loss).
  void discard(const std::string& key) const;

  /// Move `key`'s entry from `other` into this journal. On the common path
  /// (no local entry yet) this is a metadata-only rename(2) plus directory
  /// fsyncs — no CSV parse, no rewrite — which is what keeps the process
  /// supervisor's per-worker-journal promotion cheap. If BOTH journals hold
  /// the key (a reassigned shard whose original worker did finish), the two
  /// entries are merged by the Ok > Retried > Quarantined dedupe instead,
  /// so a clean recollection never loses to a quarantined placeholder.
  /// No-op when `other` has no entry for `key`.
  void adopt(const StudyJournal& other, const std::string& key) const;

  /// Keys with completed entries, sorted by file name.
  std::vector<std::string> entry_files() const;

  /// File path backing `key` (exposed for tests that corrupt entries).
  std::string entry_path(const std::string& key) const;

  /// Compact every completed entry (many per-setting CSVs) into one binary
  /// .omps store file at `out_path`. Entries are concatenated in file-name
  /// order and deduplicated by measurement identity — the best-status
  /// occurrence wins (Ok over Retried over Quarantined), so a re-recorded
  /// setting never resurrects a quarantined placeholder. Implemented by the
  /// store subsystem — link omptune_store to use. Throws
  /// util::DataCorruptionError if any entry fails validation.
  store::CompactReport compact(const std::string& out_path) const;

 private:
  std::string directory_;
};

}  // namespace omptune::sweep
