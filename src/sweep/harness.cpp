#include "sweep/harness.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/errors.hpp"
#include "util/rng.hpp"

namespace omptune::sweep {

namespace {

using apps::Application;
using apps::SweepMode;

/// Table II sample totals.
constexpr std::size_t kA64fxSamples = 53822;
constexpr std::size_t kMilanSamples = 99707;
constexpr std::size_t kSkylakeSamples = 90230;

bool app_runs_on(const Application& app, arch::ArchId arch) {
  // Sort and Strassen ran only on A64FX; Skylake additionally lacks one app
  // (12 vs 15) — we drop EP there (see harness.hpp).
  if (app.name() == "sort" || app.name() == "strassen") {
    return arch == arch::ArchId::A64FX;
  }
  if (app.name() == "ep" && arch == arch::ArchId::Skylake) return false;
  return true;
}

std::vector<StudySetting> settings_for(const arch::CpuArch& cpu) {
  std::vector<StudySetting> settings;
  for (const Application* app : apps::registry()) {
    if (!app_runs_on(*app, cpu.id)) continue;
    if (app->sweep_mode() == SweepMode::VaryInputSize) {
      for (const apps::InputSize& input : app->input_sizes()) {
        settings.push_back(StudySetting{app, input, 0});
      }
    } else {
      for (const int threads : thread_sweep(cpu)) {
        settings.push_back(StudySetting{app, app->default_input(), threads});
      }
    }
  }
  return settings;
}

std::vector<std::size_t> distribute(std::size_t total, std::size_t buckets,
                                    std::size_t cap) {
  if (buckets == 0) throw std::invalid_argument("distribute: no buckets");
  const std::size_t base = std::min(cap, total / buckets);
  std::size_t remainder = total - base * buckets;
  std::vector<std::size_t> out(buckets, base);
  for (std::size_t i = 0; i < buckets && remainder > 0; ++i) {
    const std::size_t extra = std::min(remainder, cap - out[i]);
    out[i] += extra;
    remainder -= extra;
  }
  return out;
}

ArchPlan arch_plan(arch::ArchId id, std::size_t total_samples) {
  const arch::CpuArch& cpu = arch::architecture(id);
  ArchPlan plan;
  plan.arch = id;
  plan.settings = settings_for(cpu);
  const std::size_t space = ConfigSpace::paper_space(cpu).size();
  plan.configs_per_setting =
      distribute(total_samples, plan.settings.size(), space);
  return plan;
}

}  // namespace

std::string setting_key(const std::string& arch_name,
                        const StudySetting& setting) {
  return arch_name + "/" + setting.app->name() + "/" + setting.input.name +
         "/" + std::to_string(setting.num_threads);
}

std::uint64_t setting_batch_seed(std::uint64_t study_seed,
                                 const arch::CpuArch& cpu,
                                 const StudySetting& setting) {
  return util::hash_combine(
      util::hash_combine(study_seed, util::stable_hash(cpu.name)),
      util::hash_combine(
          util::stable_hash(setting.app->name()),
          util::hash_combine(util::stable_hash(setting.input.name),
                             static_cast<std::uint64_t>(setting.num_threads))));
}

Dataset quarantined_setting_dataset(const arch::CpuArch& cpu,
                                    const StudySetting& setting,
                                    std::size_t config_count, int repetitions,
                                    std::uint64_t study_seed,
                                    const std::string& error) {
  const ConfigSpace space = ConfigSpace::paper_space(cpu);
  const std::uint64_t batch_seed =
      setting_batch_seed(study_seed, cpu, setting);
  const std::vector<rt::RtConfig> configs =
      space.sample(setting.num_threads, config_count, batch_seed);

  Dataset dataset;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    Sample s;
    s.arch = cpu.name;
    s.app = setting.app->name();
    s.suite = setting.app->suite();
    s.kind = apps::to_string(setting.app->kind());
    s.input = setting.input.name;
    s.config = configs[i];
    s.threads = configs[i].effective_num_threads(cpu);
    s.is_default = (i == 0);
    s.status = SampleStatus::Quarantined;
    s.error = error;
    s.runtimes.assign(static_cast<std::size_t>(repetitions), 0.0);
    dataset.add(std::move(s));
  }
  return dataset;
}

std::size_t ArchPlan::total_samples() const {
  std::size_t total = 0;
  for (const std::size_t c : configs_per_setting) total += c;
  return total;
}

StudyPlan StudyPlan::paper_plan() {
  StudyPlan plan;
  plan.arch_plans.push_back(arch_plan(arch::ArchId::A64FX, kA64fxSamples));
  plan.arch_plans.push_back(arch_plan(arch::ArchId::Milan, kMilanSamples));
  plan.arch_plans.push_back(arch_plan(arch::ArchId::Skylake, kSkylakeSamples));
  return plan;
}

StudyPlan StudyPlan::mini_plan(std::size_t apps_per_arch,
                               std::size_t configs_per_setting) {
  StudyPlan plan;
  for (const arch::ArchId id :
       {arch::ArchId::A64FX, arch::ArchId::Milan, arch::ArchId::Skylake}) {
    const arch::CpuArch& cpu = arch::architecture(id);
    ArchPlan arch_plan;
    arch_plan.arch = id;
    std::size_t taken = 0;
    for (const StudySetting& setting : settings_for(cpu)) {
      // One setting per distinct app.
      const bool seen = std::any_of(
          arch_plan.settings.begin(), arch_plan.settings.end(),
          [&setting](const StudySetting& s) { return s.app == setting.app; });
      if (seen) continue;
      arch_plan.settings.push_back(setting);
      arch_plan.configs_per_setting.push_back(configs_per_setting);
      if (++taken == apps_per_arch) break;
    }
    plan.arch_plans.push_back(std::move(arch_plan));
  }
  return plan;
}

SweepHarness::SweepHarness(sim::Runner& runner, int repetitions,
                           std::uint64_t seed)
    : runner_(&runner), repetitions_(repetitions), seed_(seed) {
  if (repetitions <= 0) {
    throw std::invalid_argument("SweepHarness: repetitions must be > 0");
  }
}

Dataset SweepHarness::run_setting(const arch::CpuArch& cpu,
                                  const StudySetting& setting,
                                  std::size_t config_count,
                                  ResiliencePolicy* policy) {
  const ConfigSpace space = ConfigSpace::paper_space(cpu);
  const std::uint64_t batch_seed = setting_batch_seed(seed_, cpu, setting);

  const std::vector<rt::RtConfig> configs =
      space.sample(setting.num_threads, config_count, batch_seed);

  Dataset dataset;
  // The paper's batching: all configurations of a setting are explored
  // iteratively within the batch, repetition by repetition, preserving
  // relative performance under slow cluster drift.
  std::vector<Sample> samples(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    Sample& s = samples[i];
    s.arch = cpu.name;
    s.app = setting.app->name();
    s.suite = setting.app->suite();
    s.kind = apps::to_string(setting.app->kind());
    s.input = setting.input.name;
    s.config = configs[i];
    s.threads = configs[i].effective_num_threads(cpu);
    s.is_default = (i == 0);  // ConfigSpace::sample pins the default first
  }
  for (int rep = 0; rep < repetitions_; ++rep) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      Sample& s = samples[i];
      if (s.is_quarantined()) continue;  // one bad repetition voids the mean
      if (policy == nullptr) {
        s.runtimes.push_back(runner_->run(*setting.app, setting.input, cpu,
                                          configs[i], batch_seed, rep, i));
        if (sample_observer_) sample_observer_();
        continue;
      }
      const MeasureOutcome outcome =
          policy->measure(*runner_, *setting.app, setting.input, cpu,
                          configs[i], batch_seed, rep, i);
      if (sample_observer_) sample_observer_();
      s.attempts = std::max(s.attempts, outcome.attempts);
      if (outcome.status == SampleStatus::Quarantined) {
        s.status = SampleStatus::Quarantined;
        s.error = outcome.error;
      } else {
        s.runtimes.push_back(outcome.runtime);
        if (outcome.status == SampleStatus::Retried &&
            s.status == SampleStatus::Ok) {
          s.status = SampleStatus::Retried;
          s.error = outcome.error;
        }
      }
    }
  }

  // The paper's speedups are defined against the setting's default
  // configuration: if the default itself quarantined, no sample of the
  // setting can be enriched, so the whole batch is quarantined.
  if (samples.front().is_quarantined()) {
    for (Sample& s : samples) {
      if (!s.is_quarantined()) {
        s.status = SampleStatus::Quarantined;
        s.error = "setting default quarantined: " + samples.front().error;
      }
    }
  }

  // Quarantined samples carry placeholder runtimes so the CSV schema stays
  // rectangular (and loadable: the loader rejects non-finite cells).
  for (Sample& s : samples) {
    if (s.is_quarantined()) {
      s.runtimes.assign(static_cast<std::size_t>(repetitions_), 0.0);
      s.mean_runtime = 0.0;
    }
  }

  // Averaging across repetitions mitigates the measured variation (paper
  // IV-C), then speedup = default mean / config mean.
  for (Sample& s : samples) {
    if (s.is_quarantined()) continue;
    double sum = 0.0;
    for (const double r : s.runtimes) sum += r;
    s.mean_runtime = sum / static_cast<double>(s.runtimes.size());
  }
  const bool default_ok = !samples.front().is_quarantined();
  const double default_mean = default_ok ? samples.front().mean_runtime : 0.0;
  for (Sample& s : samples) {
    s.default_runtime = default_mean;
    s.speedup = s.is_quarantined() ? 0.0 : default_mean / s.mean_runtime;
    dataset.add(std::move(s));
  }
  return dataset;
}

Dataset SweepHarness::run_study(
    const StudyPlan& plan,
    const std::function<void(const std::string&)>& progress) {
  StudyRunOptions options;
  options.progress = progress;
  return run_study(plan, options);
}

Dataset SweepHarness::run_study(const StudyPlan& plan,
                                const StudyRunOptions& options) {
  std::unique_ptr<StudyJournal> journal;
  if (!options.journal_dir.empty()) {
    journal = std::make_unique<StudyJournal>(options.journal_dir);
  }
  ResiliencePolicy* policy = nullptr;
  if (options.resilient) {
    last_policy_ = std::make_unique<ResiliencePolicy>(options.resilience);
    policy = last_policy_.get();
  }

  Dataset dataset;
  for (const ArchPlan& arch_plan : plan.arch_plans) {
    const arch::CpuArch& cpu = arch::architecture(arch_plan.arch);
    for (std::size_t i = 0; i < arch_plan.settings.size(); ++i) {
      const StudySetting& setting = arch_plan.settings[i];
      const std::size_t config_count = arch_plan.configs_per_setting[i];
      const std::string key = setting_key(cpu.name, setting);

      bool resumed = false;
      if (journal && options.resume && journal->contains(key)) {
        try {
          dataset.append(journal->load(key, config_count));
          resumed = true;
        } catch (const util::DataCorruptionError& error) {
          // A garbled or short entry is discarded and the setting
          // recollected — never silently trusted.
          journal->discard(key);
          if (options.progress) {
            options.progress(key + " journal entry invalid, recollecting (" +
                            error.what() + ")");
          }
        }
      }
      if (!resumed) {
        Dataset batch = run_setting(cpu, setting, config_count, policy);
        // Write-ahead: persist before the study depends on the data. A
        // journal append that fails (ENOSPC, EIO...) degrades durability —
        // a later crash would recollect this setting — but the batch is
        // already in memory, so the study itself continues.
        if (journal) {
          try {
            journal->record(key, batch);
          } catch (const util::StorageError& error) {
            ++journal_append_failures_;
            if (options.progress) {
              options.progress(key +
                               " journal append failed, durability degraded "
                               "(study continues): " +
                               error.what());
            }
          }
        }
        dataset.append(std::move(batch));
      }
      if (options.progress) {
        options.progress(key + " -> " + std::to_string(dataset.size()) +
                         " samples" + (resumed ? " (resumed)" : ""));
      }
    }
  }
  return dataset;
}

}  // namespace omptune::sweep
