#pragma once

// Study sharding: the paper collected its 240k samples in cluster batches;
// this utility splits a StudyPlan into independent shards (one per batch
// job) whose datasets merge back into the exact single-run result —
// sharding must not change the collected data, only who collects it.
//
// Invariants:
//  - shard_plan partitions the settings: every setting of `plan` appears in
//    exactly one shard, and shard counts may exceed the number of settings
//    (the surplus shards are simply empty plans — running one yields an
//    empty dataset, and merge_shards tolerates empty shard datasets).
//  - merge_shards reorders samples by the plan's setting order, keyed by
//    setting_key(arch, setting); it validates that every setting is present
//    exactly once with exactly the planned sample count, and throws
//    std::invalid_argument (a caller/plan mismatch, not data corruption)
//    otherwise.
//  - Shards collected under a resilience policy may contain quarantined
//    samples; those merge like any other sample (the quarantine status
//    column survives the merge) and are surfaced through MergeReport
//    instead of invalidating the shard — a flaky batch job loses its bad
//    samples, never its good ones.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sweep/harness.hpp"

namespace omptune::sweep {

/// The `index`-th of `count` shards of `plan`: settings are dealt
/// round-robin across shards (so every shard gets a mix of architectures
/// and cheap/expensive settings). Throws std::invalid_argument on
/// index >= count or count == 0.
StudyPlan shard_plan(const StudyPlan& plan, std::size_t index, std::size_t count);

/// Per-setting quarantine tally surfaced by merge_shards.
struct QuarantinedSetting {
  std::string key;               ///< setting_key(arch, setting)
  std::size_t quarantined = 0;   ///< quarantined samples in the setting
  std::size_t total = 0;         ///< planned samples in the setting
};

/// One setting dropped by a lenient merge: what was skipped, why, and which
/// shards contributed its samples — the raw material of the final skip
/// summary (a reader of warnings scrolled past still gets the full list).
struct SkippedSetting {
  std::string key;     ///< setting_key(arch, setting)
  std::string reason;  ///< "missing from all N shards" / count mismatch
  std::string shards;  ///< contributing shard names, "" when missing
};

struct MergeReport {
  std::vector<QuarantinedSetting> quarantined_settings;
  std::size_t quarantined_samples = 0;
  std::size_t total_samples = 0;
  /// Samples dropped because their (arch, app, setting, config) identity
  /// appeared more than once across the shards; the best-status occurrence
  /// (Ok over Retried over Quarantined) is the one kept.
  std::size_t duplicate_samples = 0;
  /// Settings skipped under MergeOptions::lenient (missing or wrong-sized);
  /// 0 in strict mode, where those conditions throw instead.
  std::size_t skipped_settings = 0;
  /// The skipped settings themselves, in plan order (size equals
  /// skipped_settings), each with its reason and contributing shards.
  std::vector<SkippedSetting> skipped;
};

/// Knobs for the coordinator-facing merge_shards overload.
struct MergeOptions {
  /// Skip (with a warning) settings that are missing or have the wrong
  /// sample count, instead of throwing. The skipped settings are counted in
  /// MergeReport::skipped_settings; the merged dataset simply lacks them.
  bool lenient = false;
  /// One name per shard (typically the shard store path) used to attribute
  /// errors to the shard that contributed the offending samples. May be
  /// empty (shards fall back to "shard <index>") or shorter than `shards`.
  std::vector<std::string> shard_names;
  /// Receives one human-readable line per lenient skip. Null = silent.
  std::function<void(const std::string&)> warn;
};

/// Merge shard datasets (in any order) into one dataset ordered exactly as
/// the unsharded run would produce. Samples whose (arch, app, setting,
/// config) identity appears in multiple shards — overlapping batch jobs,
/// a re-run of a flaky shard — are deduplicated by status preference (an Ok
/// measurement beats a Retried one beats a Quarantined placeholder, never
/// first-wins), and the duplicate count is surfaced through MergeReport.
/// Throws std::invalid_argument if, after dedupe, a setting of the plan is
/// missing or its sample count disagrees with the plan. `report` (optional)
/// receives the quarantine/duplicate tally — quarantined samples are merged
/// and flagged, never dropped.
Dataset merge_shards(const StudyPlan& plan, const std::vector<Dataset>& shards,
                     MergeReport* report = nullptr);

/// Coordinator-facing overload: identical merge semantics, but a missing
/// setting or a sample-count mismatch throws util::DataCorruptionError
/// naming the shard(s) that contributed the offending setting's samples
/// (the `offset` field carries the first offending sample's index within
/// its shard) — a mismatch here means a shard store lied, not that the
/// caller passed the wrong plan. Under options.lenient the offending
/// setting is skipped with a warning instead and the merge continues.
Dataset merge_shards(const StudyPlan& plan, const std::vector<Dataset>& shards,
                     MergeReport* report, const MergeOptions& options);

}  // namespace omptune::sweep
