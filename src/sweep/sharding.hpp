#pragma once

// Study sharding: the paper collected its 240k samples in cluster batches;
// this utility splits a StudyPlan into independent shards (one per batch
// job) whose datasets merge back into the exact single-run result —
// sharding must not change the collected data, only who collects it.

#include <cstddef>

#include "sweep/harness.hpp"

namespace omptune::sweep {

/// The `index`-th of `count` shards of `plan`: settings are dealt
/// round-robin across shards (so every shard gets a mix of architectures
/// and cheap/expensive settings). Throws std::invalid_argument on
/// index >= count or count == 0.
StudyPlan shard_plan(const StudyPlan& plan, std::size_t index, std::size_t count);

/// Merge shard datasets (in any order) into one dataset ordered exactly as
/// the unsharded run would produce: samples are keyed by
/// (arch, app, input, threads) setting in `plan` order. Throws
/// std::invalid_argument if a setting of the plan is missing from the
/// shards or appears twice.
Dataset merge_shards(const StudyPlan& plan, const std::vector<Dataset>& shards);

}  // namespace omptune::sweep
