#pragma once

// The data-collection harness (paper IV-B): batches repeated runs of every
// configuration for each (architecture, application, setting), averages the
// repetitions, and enriches samples with the speedup over the setting's
// default configuration.
//
// StudyPlan::paper_plan() reproduces the paper's roster exactly:
//  - NPB and BOTS apps sweep the input sizes at the architecture's full
//    thread count;
//  - proxy apps sweep the thread counts at the default input;
//  - Sort and Strassen run only on A64FX (cluster traffic kept them off the
//    X86 machines), and one further app is absent from Skylake (the paper
//    reports 12 apps there without naming the third omission; this
//    reproduction drops EP, the app with the least tuning potential);
//  - per-setting configuration counts are chosen so the per-architecture
//    dataset sizes match Table II exactly (53822 / 99707 / 90230).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/application.hpp"
#include "arch/cpu_arch.hpp"
#include "sim/executor.hpp"
#include "sweep/config_space.hpp"
#include "sweep/dataset.hpp"
#include "sweep/journal.hpp"
#include "sweep/resilience.hpp"

namespace omptune::sweep {

/// One experiment setting: a fixed (app, input, thread count) whose whole
/// configuration space is explored iteratively in one batch (preserving
/// relative performance within the batch, per the paper).
struct StudySetting {
  const apps::Application* app = nullptr;
  apps::InputSize input;
  int num_threads = 0;  ///< 0 = architecture default (all cores)
};

/// Canonical identity of a setting: "arch/app/input/threads". Used as the
/// journal key and the sharding merge key — and, crucially, as the basis of
/// the per-setting RNG seed, so a setting collects identical samples
/// regardless of where in a (possibly resumed or sharded) study it runs.
std::string setting_key(const std::string& arch_name,
                        const StudySetting& setting);

/// The deterministic per-setting batch seed derived from the study seed and
/// the setting identity. Shared by collection (run_setting) and by the
/// supervisor's quarantine synthesis, which must enumerate the exact
/// configurations the setting would have sampled.
std::uint64_t setting_batch_seed(std::uint64_t study_seed,
                                 const arch::CpuArch& cpu,
                                 const StudySetting& setting);

/// The all-quarantined placeholder dataset for a setting whose collection
/// cannot proceed at all — e.g. one that keeps killing its worker process.
/// Shape-compatible with run_setting's output (same configurations, sample
/// count and CSV schema), carrying `error` as the quarantine evidence on
/// every sample.
Dataset quarantined_setting_dataset(const arch::CpuArch& cpu,
                                    const StudySetting& setting,
                                    std::size_t config_count, int repetitions,
                                    std::uint64_t study_seed,
                                    const std::string& error);

/// Per-architecture slice of the study.
struct ArchPlan {
  arch::ArchId arch;
  std::vector<StudySetting> settings;
  /// Configurations sampled per setting (front-loaded remainder so the
  /// total matches the Table II sample count exactly).
  std::vector<std::size_t> configs_per_setting;

  std::size_t total_samples() const;
};

struct StudyPlan {
  std::vector<ArchPlan> arch_plans;

  /// The paper's plan (Table II totals).
  static StudyPlan paper_plan();

  /// A miniature plan for tests/examples: `apps_per_arch` applications,
  /// `configs_per_setting` configurations, first input size / smallest
  /// thread count only.
  static StudyPlan mini_plan(std::size_t apps_per_arch,
                             std::size_t configs_per_setting);
};

/// Fault-tolerance knobs for run_study. Default-constructed options behave
/// exactly like the bare overload: no journal, no resume, direct runner
/// calls.
struct StudyRunOptions {
  /// Journal directory; empty disables journaling. With a journal, each
  /// completed setting is persisted via an atomic write before the study
  /// moves on (write-ahead: a crash loses at most the in-flight setting).
  std::string journal_dir;
  /// Replay settings already completed in the journal instead of
  /// recollecting them. Because per-setting seeds derive from setting_key,
  /// the resumed dataset is bit-identical to an uninterrupted run.
  bool resume = false;
  /// Guard every Runner call with retry/timeout/quarantine handling. When
  /// false, runner exceptions propagate (the seed behaviour).
  bool resilient = false;
  ResilienceOptions resilience;
  std::function<void(const std::string&)> progress;
};

/// Runs a plan against a Runner and produces the dataset.
class SweepHarness {
 public:
  /// `repetitions`: runtimes collected per configuration (paper: 4, paired
  /// R0..R3 in the Wilcoxon analysis).
  explicit SweepHarness(sim::Runner& runner, int repetitions = 4,
                        std::uint64_t seed = 0x0417D5EEDull);

  /// Sweep one setting: every sampled configuration, `repetitions` times.
  /// With a `policy`, failed measurements are retried and finally
  /// quarantined (status column) rather than thrown; if the setting's
  /// default configuration quarantines, the whole setting is quarantined,
  /// since the paper's speedups are defined against that default.
  Dataset run_setting(const arch::CpuArch& cpu, const StudySetting& setting,
                      std::size_t config_count,
                      ResiliencePolicy* policy = nullptr);

  /// Run a whole plan. `progress` (optional) is called after each setting.
  Dataset run_study(const StudyPlan& plan,
                    const std::function<void(const std::string&)>& progress = {});

  /// Run a whole plan with fault tolerance (journaling / resume /
  /// retry+quarantine). With `options.resilient`, no runner failure escapes:
  /// exhausted samples are quarantined and the study completes
  /// (util::StudyAbort — simulated process death — still escapes, by
  /// design). A journal entry that fails validation on resume is discarded
  /// and its setting recollected.
  Dataset run_study(const StudyPlan& plan, const StudyRunOptions& options);

  /// The policy of the last resilient run_study (quarantine list, retry
  /// totals); nullptr before the first resilient run.
  const ResiliencePolicy* last_policy() const { return last_policy_.get(); }

  /// Journal appends that failed with a util::StorageError across every
  /// run_study on this harness. Each one means the affected setting lost
  /// write-ahead durability (a crash would recollect it) but the study
  /// continued with the batch held in memory.
  std::size_t journal_append_failures() const {
    return journal_append_failures_;
  }

  /// Observer invoked after every completed measurement (every Runner call
  /// that produced a sample value, successful or quarantined). The process
  /// worker uses it to emit liveness heartbeats mid-setting and as the
  /// deterministic injection point for process-level chaos; the observer
  /// may therefore never return (a wedged worker IS the observer not
  /// returning). Pass an empty function to remove.
  void set_sample_observer(std::function<void()> observer) {
    sample_observer_ = std::move(observer);
  }

  int repetitions() const { return repetitions_; }

 private:
  sim::Runner* runner_;
  int repetitions_;
  std::uint64_t seed_;
  std::unique_ptr<ResiliencePolicy> last_policy_;
  std::function<void()> sample_observer_;
  std::size_t journal_append_failures_ = 0;
};

}  // namespace omptune::sweep
