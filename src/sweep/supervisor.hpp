#pragma once

// Process-isolated study supervisor (DESIGN.md §9).
//
// The single-process harness executes every sample in its own address
// space, so one crashing or wedged sample kills the whole journaled study.
// StudySupervisor contains faults at the process boundary instead: it
// forks a pool of workers, leases each one a shard of the plan's settings,
// and watches three liveness signals —
//
//   - crashes:   waitpid status (exit code / termination signal),
//   - hangs:     progress heartbeats missed past heartbeat_timeout_ms,
//   - stalls:    lease deadlines expired without the shard completing —
//
// reclaiming and reassigning the shard on any of them. A setting whose
// collection has crashed max_setting_crashes workers is declared poisonous
// and quarantined with its evidence (signal number, timeout) recorded on
// every placeholder sample, so the study still completes and the report
// says why the data is missing. Completed settings travel through
// per-worker crash-safe journals that the supervisor adopts into the main
// journal (a same-filesystem rename) the moment `done` arrives — the study
// is therefore resumable across supervisor death exactly like the
// single-process journaled run, and the assembled dataset is byte-identical
// to an undisturbed one: process death can duplicate work, never samples.
//
// SIGINT/SIGTERM drain gracefully: leases stop, workers finish their
// in-flight setting and exit, journals are already flushed (write-ahead),
// and the report carries a resume hint.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/fault_runner.hpp"
#include "sweep/harness.hpp"
#include "sweep/lease.hpp"
#include "sweep/worker.hpp"

namespace omptune::sweep {

struct SupervisorOptions {
  /// Worker processes; clamped to the number of settings.
  int workers = 2;
  /// Journal directory; empty uses a private temp directory (removed after
  /// a completed run — resumability then only spans worker deaths, not
  /// supervisor deaths).
  std::string journal_dir;
  /// Skip settings already completed in the journal.
  bool resume = false;
  int repetitions = 4;
  std::uint64_t seed = 0x0417D5EEDull;
  /// Guard worker measurements with the retry/quarantine policy.
  bool resilient = true;
  ResilienceOptions resilience;
  /// A worker that produced no progress signal for this long is presumed
  /// wedged and killed. Must exceed the slowest single sample plus worker
  /// startup. 0 disables the check.
  std::int64_t heartbeat_timeout_ms = 10000;
  /// How often workers emit progress heartbeats (throttle, not a timer:
  /// heartbeats ride on sample completion).
  std::int64_t heartbeat_interval_ms = 25;
  /// Wall-clock budget for one leased shard, renewed on every completed
  /// setting. 0 disables lease expiry.
  std::int64_t lease_ms = 300000;
  /// Settings per lease. Larger shards amortize supervisor round-trips;
  /// smaller shards rebalance faster after a reclaim.
  std::size_t shard_size = 2;
  /// Crashes a single setting may cause before it is quarantined as
  /// poisonous. Raise for chaos/identity runs where kills are environmental
  /// and no setting is actually at fault.
  int max_setting_crashes = 3;
  /// Process-level fault injection executed inside the workers.
  sim::ChaosSpec chaos;
  /// Respawn pacing after a worker death: each slot's consecutive-death
  /// streak gates its replacement behind exponential backoff with
  /// decorrelated jitter (deterministic per seed/slot/streak), so a
  /// persistently crashing environment cannot hot-loop fork(). The streak
  /// resets on a successful `ready` handshake. Shared with the coordinator.
  BackoffPolicy respawn_backoff;
  std::function<void(const std::string&)> progress;
};

/// Evidence trail of a setting quarantined by the supervisor.
struct SupervisedQuarantine {
  std::string key;
  int crashes = 0;
  std::string evidence;  ///< last exit status / timeout description
};

struct SupervisorReport {
  std::size_t settings_total = 0;
  std::size_t settings_completed = 0;  ///< includes resumed + quarantined
  std::size_t settings_resumed = 0;
  std::size_t worker_crashes = 0;    ///< unexpected worker deaths
  std::size_t hang_kills = 0;        ///< heartbeat-timeout reclaims
  std::size_t lease_expiries = 0;    ///< lease-deadline reclaims
  std::size_t protocol_errors = 0;   ///< garbled result streams
  std::size_t respawns = 0;          ///< workers spawned beyond the pool
  std::size_t respawn_waits = 0;     ///< respawns gated behind backoff
  std::int64_t respawn_backoff_ms = 0;  ///< total scheduled backoff delay
  std::size_t reassigned_settings = 0;
  std::vector<SupervisedQuarantine> quarantined_settings;
  bool interrupted = false;          ///< stopped by signal / request_stop
  std::string journal_dir;           ///< where completed work lives
};

/// Runs a StudyPlan across a pool of forked worker processes. Single-shot:
/// construct, run(), read report().
class StudySupervisor {
 public:
  /// `make_runner` is invoked inside each worker child after fork.
  StudySupervisor(RunnerFactory make_runner, SupervisorOptions options);

  /// Collect the plan. Returns the assembled dataset (partial when
  /// interrupted — see report().interrupted). Throws std::runtime_error if
  /// workers cannot be spawned or fail repeatedly before becoming ready.
  Dataset run(const StudyPlan& plan);

  const SupervisorReport& report() const { return report_; }
  const SupervisorOptions& options() const { return options_; }

  /// Ask a running run() to stop as a SIGINT would (drain in-flight
  /// settings, keep the journal, report interrupted). Safe to call from
  /// another thread; latency is one poll interval.
  void request_stop() { stop_requested_.store(true); }

 private:
  RunnerFactory make_runner_;
  SupervisorOptions options_;
  SupervisorReport report_;
  std::atomic<bool> stop_requested_{false};
};

}  // namespace omptune::sweep
