#include "sweep/journal.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

#include "util/errors.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"

namespace omptune::sweep {

namespace {

/// Filesystem-safe rendering of a setting key; uniqueness comes from the
/// appended hash, the prefix only keeps the files greppable.
std::string sanitize(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (const char c : key) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  if (out.size() > 80) out.resize(80);
  return out;
}

std::string hash16(const std::string& key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(util::stable_hash(key)));
  return buf;
}

}  // namespace

StudyJournal::StudyJournal(std::string directory)
    : directory_(std::move(directory)) {
  util::create_directories(directory_);
  // Writers SIGKILLed between temp-file open and rename leave droppings
  // behind; the journal owns its directory exclusively, so they are always
  // stale here and must not accumulate across crash/resume cycles.
  util::remove_stale_temp_files(directory_);
}

std::string StudyJournal::entry_path(const std::string& key) const {
  return util::path_join(directory_, sanitize(key) + "-" + hash16(key) + ".csv");
}

bool StudyJournal::contains(const std::string& key) const {
  return util::file_exists(entry_path(key));
}

void StudyJournal::record(const std::string& key, const Dataset& dataset) const {
  std::ostringstream os;
  dataset.to_csv().write(os);
  util::atomic_write_file(entry_path(key), os.str());
}

Dataset StudyJournal::load(const std::string& key,
                           std::size_t expected_samples) const {
  const std::string path = entry_path(key);
  if (!util::file_exists(path)) {
    throw util::DataCorruptionError("journal entry '" + key +
                                    "' missing from " + directory_);
  }
  Dataset dataset = Dataset::load_csv_file(path);
  if (expected_samples > 0 && dataset.size() != expected_samples) {
    throw util::DataCorruptionError(
        path + ": journal entry for '" + key + "' holds " +
        std::to_string(dataset.size()) + " samples, expected " +
        std::to_string(expected_samples));
  }
  return dataset;
}

void StudyJournal::discard(const std::string& key) const {
  util::remove_file_durable(entry_path(key));
}

void StudyJournal::adopt(const StudyJournal& other, const std::string& key) const {
  if (!other.contains(key)) return;
  if (!contains(key)) {
    util::rename_file(other.entry_path(key), entry_path(key));
    return;
  }
  // Both sides hold the key: merge by measurement identity, best status
  // wins. Deterministic collection makes the common duplicate identical,
  // but a quarantined placeholder must never shadow a clean recollection.
  Dataset combined = load(key);
  combined.append(other.load(key));
  record(key, combined.deduped());
  other.discard(key);
}

std::vector<std::string> StudyJournal::entry_files() const {
  std::vector<std::string> out;
  for (const std::string& name : util::list_files(directory_)) {
    if (name.size() > 4 && name.substr(name.size() - 4) == ".csv") {
      out.push_back(name);
    }
  }
  return out;
}

}  // namespace omptune::sweep
