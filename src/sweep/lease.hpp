#pragma once

// Shard leases and backoff for the multi-host sweep coordinator
// (DESIGN.md §11), shared with the supervisor's worker-respawn path.
//
// A shard lease is the coordinator's unit of trust: exactly one host may
// hold a shard at a time, the hold expires (lease TTL) or is revoked
// (missed heartbeats), and every failed attempt gates the next re-lease
// behind util::BackoffPolicy (exponential backoff with decorrelated
// jitter, see util/backoff.hpp) — a persistently failing shard (or a
// persistently crashing environment) must never hot-loop the fork/retry
// path, and N coordinators recovering from the same outage must not
// thundering-herd their retries in lockstep.
//
// LeaseTable is the coordinator's write-ahead state: serialize() renders
// the table to a stable text form that is atomically persisted before the
// coordinator acts on a transition, and parse() restores it on --resume.
// A lease never survives its coordinator: Leased serializes as Pending
// (the holder is dead by definition when the state is re-read).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/backoff.hpp"

namespace omptune::sweep {

/// The shared decorrelated-jitter policy (extracted to util/backoff.hpp;
/// the alias keeps the coordinator/supervisor spelling stable).
using BackoffPolicy = util::BackoffPolicy;

/// Lifecycle of one shard manifest.
enum class ShardState {
  Pending,      ///< waiting for a host (possibly behind a backoff gate)
  Leased,       ///< exactly one host is collecting it
  Completed,    ///< shard store delivered and validated
  Quarantined,  ///< attempt cap exhausted; placeholder store synthesized
};

const char* to_string(ShardState state);

/// One row of the coordinator's lease table.
struct ShardLease {
  std::size_t shard = 0;
  ShardState state = ShardState::Pending;
  int attempts = 0;   ///< failed collection attempts so far
  int holder = -1;    ///< host slot while Leased, -1 otherwise
  std::string evidence;  ///< last failure description (persisted)

  // Volatile scheduling state (monotonic clock; never persisted).
  std::int64_t lease_deadline_ms = 0;  ///< TTL expiry while Leased; 0 = none
  std::int64_t eligible_at_ms = 0;     ///< backoff gate for the next lease
  std::int64_t prev_delay_ms = 0;      ///< decorrelated-jitter state
};

/// The coordinator's shard ledger. Indexed by shard number; persisted via
/// serialize()/parse() as the write-ahead state behind --resume.
class LeaseTable {
 public:
  LeaseTable() = default;
  explicit LeaseTable(std::size_t shard_count);

  std::size_t size() const { return shards_.size(); }
  ShardLease& at(std::size_t shard) { return shards_.at(shard); }
  const ShardLease& at(std::size_t shard) const { return shards_.at(shard); }

  std::size_t count(ShardState state) const;

  /// Every shard Completed or Quarantined — nothing left to lease.
  bool all_settled() const;

  /// Lowest-numbered Pending shard whose backoff gate has passed at `now`;
  /// nullopt when nothing is leasable right now (all settled, all leased,
  /// or all gated).
  std::optional<std::size_t> next_leasable(std::int64_t now) const;

  /// Stable text form: one "shard <i> <state> <attempts> [evidence]" line
  /// per shard, closed by an "end <count>" sentinel (rows lost to a merged
  /// or truncated line are structurally detectable). Leased shards render
  /// as pending (a lease does not survive the coordinator that granted it).
  std::string serialize() const;

  /// Inverse of serialize(). Throws util::DataCorruptionError on any
  /// malformed line — corrupt coordinator state must be surfaced, never
  /// guessed about.
  static LeaseTable parse(const std::string& text);

 private:
  std::vector<ShardLease> shards_;
};

}  // namespace omptune::sweep
