#pragma once

// The swept configuration space — exactly the per-variable value sets of the
// paper's Section III:
//
//   OMP_PLACES          unset, cores, ll_caches, sockets
//                       (threads skipped: no SMT; numa_domains skipped:
//                        needs hwloc — both per the paper)
//   OMP_PROC_BIND       unset, false, true, master, close, spread
//   OMP_SCHEDULE        static, dynamic, guided, auto (no chunk sizes)
//   KMP_LIBRARY         throughput, turnaround (serial excluded)
//   KMP_BLOCKTIME       0, 200, infinite
//   KMP_FORCE_REDUCTION unset, tree, critical, atomic
//   KMP_ALIGN_ALLOC     A64FX: 256, 512; X86: 64, 128, 256, 512
//
// Full cross product: 9216 configurations on X86, 4608 on A64FX, per
// (application, setting).

#include <cstdint>
#include <vector>

#include "arch/cpu_arch.hpp"
#include "rt/config.hpp"

namespace omptune::sweep {

struct ConfigSpace {
  std::vector<arch::PlacesKind> places;
  std::vector<arch::BindKind> binds;
  std::vector<rt::ScheduleKind> schedules;
  std::vector<rt::LibraryMode> libraries;
  std::vector<std::int64_t> blocktimes_ms;  ///< rt::kBlocktimeInfinite allowed
  std::vector<rt::ReductionMethod> reductions;
  std::vector<int> aligns;

  /// The paper's value sets for one architecture (align set depends on the
  /// cache-line size).
  static ConfigSpace paper_space(const arch::CpuArch& cpu);

  /// Number of configurations in the cross product.
  std::size_t size() const;

  /// Enumerate the full cross product. Every config carries `num_threads`
  /// (0 = architecture default). Deterministic order.
  std::vector<rt::RtConfig> enumerate(int num_threads) const;

  /// Deterministically subsample `count` configurations (seeded shuffle of
  /// the full enumeration). The architecture-default configuration is always
  /// included as the first element — the sweep needs it as the speedup
  /// baseline. `count` is clamped to size().
  std::vector<rt::RtConfig> sample(int num_threads, std::size_t count,
                                   std::uint64_t seed) const;
};

/// Thread counts swept for VaryThreads applications on one architecture
/// (paper IV-B; the reduced thread exploration it acknowledges).
std::vector<int> thread_sweep(const arch::CpuArch& cpu);

}  // namespace omptune::sweep
