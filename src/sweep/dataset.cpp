#include "sweep/dataset.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace omptune::sweep {

namespace {

std::string blocktime_to_string(std::int64_t ms) {
  return ms == rt::kBlocktimeInfinite ? "infinite" : std::to_string(ms);
}

std::int64_t blocktime_from_string(const std::string& text) {
  if (text == "infinite") return rt::kBlocktimeInfinite;
  const auto value = util::parse_int(text);
  if (!value) throw std::invalid_argument("bad blocktime '" + text + "'");
  return *value;
}

}  // namespace

void Dataset::append(Dataset other) {
  samples_.reserve(samples_.size() + other.samples_.size());
  for (Sample& s : other.samples_) samples_.push_back(std::move(s));
}

util::CsvTable Dataset::to_csv() const {
  // Fixed repetition count across a dataset.
  std::size_t reps = 0;
  for (const Sample& s : samples_) reps = std::max(reps, s.runtimes.size());

  std::vector<std::string> header = {
      "arch",   "app",      "suite",     "kind",      "input",
      "threads", "places",  "proc_bind", "schedule",  "library",
      "blocktime", "reduction", "align", "mean_runtime", "default_runtime",
      "speedup", "is_default"};
  for (std::size_t r = 0; r < reps; ++r) {
    header.push_back("runtime_" + std::to_string(r));
  }

  util::CsvTable table(std::move(header));
  for (const Sample& s : samples_) {
    std::vector<std::string> row = {
        s.arch,
        s.app,
        s.suite,
        s.kind,
        s.input,
        std::to_string(s.threads),
        arch::to_string(s.config.places),
        arch::to_string(s.config.bind),
        rt::to_string(s.config.schedule),
        rt::to_string(s.config.library),
        blocktime_to_string(s.config.blocktime_ms),
        rt::to_string(s.config.reduction),
        std::to_string(s.config.align_alloc),
        util::format_double(s.mean_runtime, 9),
        util::format_double(s.default_runtime, 9),
        util::format_double(s.speedup, 6),
        s.is_default ? "1" : "0",
    };
    for (std::size_t r = 0; r < reps; ++r) {
      row.push_back(r < s.runtimes.size()
                        ? util::format_double(s.runtimes[r], 9)
                        : std::string("0"));
    }
    table.add_row(std::move(row));
  }
  return table;
}

Dataset Dataset::from_csv(const util::CsvTable& table) {
  Dataset out;
  // Repetition columns are the trailing runtime_N columns.
  std::vector<std::size_t> rep_cols;
  for (std::size_t c = 0; c < table.header().size(); ++c) {
    if (util::starts_with(table.header()[c], "runtime_")) rep_cols.push_back(c);
  }
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    Sample s;
    s.arch = table.cell(i, "arch");
    s.app = table.cell(i, "app");
    s.suite = table.cell(i, "suite");
    s.kind = table.cell(i, "kind");
    s.input = table.cell(i, "input");
    s.threads = static_cast<int>(table.cell_as_double(i, "threads"));
    s.config.num_threads = s.threads;
    s.config.places = arch::places_from_string(table.cell(i, "places"));
    s.config.bind = arch::bind_from_string(table.cell(i, "proc_bind"));
    s.config.schedule = rt::schedule_from_string(table.cell(i, "schedule"));
    s.config.library = rt::library_from_string(table.cell(i, "library"));
    s.config.blocktime_ms = blocktime_from_string(table.cell(i, "blocktime"));
    s.config.reduction = rt::reduction_from_string(table.cell(i, "reduction"));
    s.config.align_alloc = static_cast<int>(table.cell_as_double(i, "align"));
    s.mean_runtime = table.cell_as_double(i, "mean_runtime");
    s.default_runtime = table.cell_as_double(i, "default_runtime");
    s.speedup = table.cell_as_double(i, "speedup");
    s.is_default = table.cell(i, "is_default") == "1";
    for (const std::size_t c : rep_cols) {
      s.runtimes.push_back(table.cell_as_double(i, table.header()[c]));
    }
    out.add(std::move(s));
  }
  return out;
}

}  // namespace omptune::sweep
