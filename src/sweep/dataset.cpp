#include "sweep/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "util/errors.hpp"
#include "util/strings.hpp"

namespace omptune::sweep {

namespace {

std::string blocktime_to_string(std::int64_t ms) {
  return ms == rt::kBlocktimeInfinite ? "infinite" : std::to_string(ms);
}

std::int64_t blocktime_from_string(const std::string& text) {
  if (text == "infinite") return rt::kBlocktimeInfinite;
  const auto value = util::parse_int(text);
  if (!value) throw std::invalid_argument("bad blocktime '" + text + "'");
  return *value;
}

/// Numeric field that must be finite (runtime/speedup columns).
double finite_cell(const util::CsvTable& table, std::size_t row,
                   const std::string& col) {
  const double value = table.cell_as_double(row, col);
  if (!std::isfinite(value)) {
    throw std::invalid_argument("column '" + col + "' has non-finite value '" +
                                table.cell(row, col) + "'");
  }
  return value;
}

}  // namespace

std::string to_string(SampleStatus status) {
  switch (status) {
    case SampleStatus::Ok: return "ok";
    case SampleStatus::Retried: return "retried";
    case SampleStatus::Quarantined: return "quarantined";
  }
  return "ok";
}

SampleStatus sample_status_from_string(const std::string& text) {
  if (text == "ok" || text.empty()) return SampleStatus::Ok;
  if (text == "retried") return SampleStatus::Retried;
  if (text == "quarantined") return SampleStatus::Quarantined;
  throw std::invalid_argument("bad sample status '" + text + "'");
}

int status_preference(SampleStatus status) {
  switch (status) {
    case SampleStatus::Ok: return 0;
    case SampleStatus::Retried: return 1;
    case SampleStatus::Quarantined: return 2;
  }
  return 2;
}

std::string sample_identity(const Sample& sample) {
  return sample.arch + "/" + sample.app + "/" + sample.input + "/" +
         std::to_string(sample.threads) + "/" + sample.config.key();
}

void Dataset::append(Dataset other) {
  samples_.reserve(samples_.size() + other.samples_.size());
  for (Sample& s : other.samples_) samples_.push_back(std::move(s));
}

Dataset Dataset::deduped(DedupeReport* report) const {
  if (report) *report = DedupeReport{};
  Dataset out;
  std::map<std::string, std::size_t> first_position;  // identity -> out index
  for (const Sample& s : samples_) {
    const std::string identity = sample_identity(s);
    const auto [it, inserted] =
        first_position.emplace(identity, out.samples_.size());
    if (inserted) {
      out.add(s);
      continue;
    }
    if (report) ++report->duplicates;
    Sample& kept = out.samples_[it->second];
    if (status_preference(s.status) < status_preference(kept.status)) {
      kept = s;
      if (report) ++report->replaced;
    }
  }
  return out;
}

std::size_t Dataset::quarantined_count() const {
  return static_cast<std::size_t>(
      std::count_if(samples_.begin(), samples_.end(),
                    [](const Sample& s) { return s.is_quarantined(); }));
}

util::CsvTable Dataset::to_csv() const {
  // Fixed repetition count across a dataset.
  std::size_t reps = 0;
  for (const Sample& s : samples_) reps = std::max(reps, s.runtimes.size());

  std::vector<std::string> header = {
      "arch",   "app",      "suite",     "kind",      "input",
      "threads", "places",  "proc_bind", "schedule",  "library",
      "blocktime", "reduction", "align", "mean_runtime", "default_runtime",
      "speedup", "is_default", "status", "attempts", "error"};
  for (std::size_t r = 0; r < reps; ++r) {
    header.push_back("runtime_" + std::to_string(r));
  }

  util::CsvTable table(std::move(header));
  for (const Sample& s : samples_) {
    std::vector<std::string> row = {
        s.arch,
        s.app,
        s.suite,
        s.kind,
        s.input,
        std::to_string(s.threads),
        arch::to_string(s.config.places),
        arch::to_string(s.config.bind),
        rt::to_string(s.config.schedule),
        rt::to_string(s.config.library),
        blocktime_to_string(s.config.blocktime_ms),
        rt::to_string(s.config.reduction),
        std::to_string(s.config.align_alloc),
        util::format_double(s.mean_runtime, 9),
        util::format_double(s.default_runtime, 9),
        util::format_double(s.speedup, 6),
        s.is_default ? "1" : "0",
        to_string(s.status),
        std::to_string(s.attempts),
        s.error,
    };
    for (std::size_t r = 0; r < reps; ++r) {
      row.push_back(r < s.runtimes.size()
                        ? util::format_double(s.runtimes[r], 9)
                        : std::string("0"));
    }
    table.add_row(std::move(row));
  }
  return table;
}

Dataset Dataset::from_csv(const util::CsvTable& table,
                          const std::string& source) {
  Dataset out;
  const auto has_col = [&table](const std::string& name) {
    const auto& header = table.header();
    return std::find(header.begin(), header.end(), name) != header.end();
  };
  // Datasets written before the resilience layer lack the status columns;
  // default those to a clean first-try measurement.
  const bool has_status = has_col("status");
  const bool has_attempts = has_col("attempts");
  const bool has_error = has_col("error");

  // Repetition columns are the trailing runtime_N columns. The block must be
  // exactly runtime_0..runtime_{k-1}, contiguous, at the end of the header:
  // a garbled column name used to silently shrink the block and every row
  // lost a repetition without any error (the short-read path) — now the
  // whole file is rejected as corrupt instead.
  const std::string label =
      source.empty() ? std::string("<dataset>") : source;
  std::vector<std::size_t> rep_cols;
  for (std::size_t c = 0; c < table.header().size(); ++c) {
    if (util::starts_with(table.header()[c], "runtime_")) rep_cols.push_back(c);
  }
  if (!rep_cols.empty()) {
    const std::size_t first = rep_cols.front();
    if (first + rep_cols.size() != table.header().size()) {
      throw util::DataCorruptionError(
          label + ": runtime column block is not contiguous at the end of "
                  "the header (a repetition column would be silently dropped)");
    }
    for (std::size_t r = 0; r < rep_cols.size(); ++r) {
      const std::string expected = "runtime_" + std::to_string(r);
      if (table.header()[first + r] != expected) {
        throw util::DataCorruptionError(
            label + ": runtime column " + std::to_string(r) + " is named '" +
            table.header()[first + r] + "', expected '" + expected + "'");
      }
    }
  }
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    try {
      Sample s;
      s.arch = table.cell(i, "arch");
      s.app = table.cell(i, "app");
      s.suite = table.cell(i, "suite");
      s.kind = table.cell(i, "kind");
      s.input = table.cell(i, "input");
      s.threads = static_cast<int>(table.cell_as_double(i, "threads"));
      s.config.num_threads = s.threads;
      s.config.places = arch::places_from_string(table.cell(i, "places"));
      s.config.bind = arch::bind_from_string(table.cell(i, "proc_bind"));
      s.config.schedule = rt::schedule_from_string(table.cell(i, "schedule"));
      s.config.library = rt::library_from_string(table.cell(i, "library"));
      s.config.blocktime_ms = blocktime_from_string(table.cell(i, "blocktime"));
      s.config.reduction = rt::reduction_from_string(table.cell(i, "reduction"));
      s.config.align_alloc = static_cast<int>(table.cell_as_double(i, "align"));
      s.mean_runtime = finite_cell(table, i, "mean_runtime");
      s.default_runtime = finite_cell(table, i, "default_runtime");
      s.speedup = finite_cell(table, i, "speedup");
      s.is_default = table.cell(i, "is_default") == "1";
      s.status = has_status ? sample_status_from_string(table.cell(i, "status"))
                            : SampleStatus::Ok;
      s.attempts = has_attempts
                       ? static_cast<int>(table.cell_as_double(i, "attempts"))
                       : 1;
      s.error = has_error ? table.cell(i, "error") : std::string();
      for (const std::size_t c : rep_cols) {
        s.runtimes.push_back(finite_cell(table, i, table.header()[c]));
      }
      out.add(std::move(s));
    } catch (const util::DataCorruptionError&) {
      throw;
    } catch (const std::exception& error) {
      throw util::DataCorruptionError(label + " row " + std::to_string(i + 1) +
                                      ": " + error.what());
    }
  }
  return out;
}

Dataset Dataset::load_csv_file(const std::string& path) {
  try {
    return from_csv(util::CsvTable::read_file(path), path);
  } catch (const util::DataCorruptionError&) {
    throw;
  } catch (const std::exception& error) {
    throw util::DataCorruptionError(path + ": " + error.what());
  }
}

}  // namespace omptune::sweep
