#include "sweep/config_space.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace omptune::sweep {

ConfigSpace ConfigSpace::paper_space(const arch::CpuArch& cpu) {
  ConfigSpace space;
  space.places = {arch::PlacesKind::Unset, arch::PlacesKind::Cores,
                  arch::PlacesKind::LLCaches, arch::PlacesKind::Sockets};
  space.binds = {arch::BindKind::Unset,  arch::BindKind::False_,
                 arch::BindKind::True_,  arch::BindKind::Master,
                 arch::BindKind::Close,  arch::BindKind::Spread};
  space.schedules = {rt::ScheduleKind::Static, rt::ScheduleKind::Dynamic,
                     rt::ScheduleKind::Guided, rt::ScheduleKind::Auto};
  space.libraries = {rt::LibraryMode::Throughput, rt::LibraryMode::Turnaround};
  space.blocktimes_ms = {0, 200, rt::kBlocktimeInfinite};
  space.reductions = {rt::ReductionMethod::Default, rt::ReductionMethod::Tree,
                      rt::ReductionMethod::Critical, rt::ReductionMethod::Atomic};
  if (cpu.cacheline_bytes >= 256) {
    space.aligns = {256, 512};
  } else {
    space.aligns = {64, 128, 256, 512};
  }
  return space;
}

std::size_t ConfigSpace::size() const {
  return places.size() * binds.size() * schedules.size() * libraries.size() *
         blocktimes_ms.size() * reductions.size() * aligns.size();
}

std::vector<rt::RtConfig> ConfigSpace::enumerate(int num_threads) const {
  std::vector<rt::RtConfig> configs;
  configs.reserve(size());
  for (const auto p : places) {
    for (const auto b : binds) {
      for (const auto s : schedules) {
        for (const auto l : libraries) {
          for (const auto bt : blocktimes_ms) {
            for (const auto r : reductions) {
              for (const auto a : aligns) {
                rt::RtConfig config;
                config.num_threads = num_threads;
                config.places = p;
                config.bind = b;
                config.schedule = s;
                config.library = l;
                config.blocktime_ms = bt;
                config.reduction = r;
                config.align_alloc = a;
                configs.push_back(config);
              }
            }
          }
        }
      }
    }
  }
  return configs;
}

std::vector<rt::RtConfig> ConfigSpace::sample(int num_threads, std::size_t count,
                                              std::uint64_t seed) const {
  std::vector<rt::RtConfig> all = enumerate(num_threads);
  count = std::min(count, all.size());

  // Fisher-Yates with a seeded generator: deterministic subsample.
  util::Xoshiro256 rng(seed);
  for (std::size_t i = all.size() - 1; i > 0; --i) {
    std::swap(all[i], all[rng.uniform_index(i + 1)]);
  }
  all.resize(count);

  // The default configuration anchors the speedup computation; pin it to
  // the front (replacing the first sampled config if it was absent). The
  // sweep enumerates explicit alignments, so the derived cache-line default
  // appears as the smallest value of the align set.
  rt::RtConfig anchor;
  anchor.num_threads = num_threads;
  anchor.align_alloc = aligns.front();
  const auto found = std::find(all.begin(), all.end(), anchor);
  if (found != all.end()) {
    std::iter_swap(all.begin(), found);
  } else if (!all.empty()) {
    all.front() = anchor;
  } else {
    all.push_back(anchor);
  }
  return all;
}

std::vector<int> thread_sweep(const arch::CpuArch& cpu) {
  // Quarter steps up to the full machine, matching the paper's reduced
  // thread-count exploration.
  return {cpu.cores / 4, cpu.cores / 2, (3 * cpu.cores) / 4, cpu.cores};
}

}  // namespace omptune::sweep
