#include "sweep/lease.hpp"

#include <algorithm>
#include <sstream>

#include "util/errors.hpp"

namespace omptune::sweep {

const char* to_string(ShardState state) {
  switch (state) {
    case ShardState::Pending:
      return "pending";
    case ShardState::Leased:
      return "leased";
    case ShardState::Completed:
      return "completed";
    case ShardState::Quarantined:
      return "quarantined";
  }
  return "unknown";
}

namespace {

ShardState state_from_string(const std::string& text, const std::string& file,
                             std::size_t line_no) {
  if (text == "pending") return ShardState::Pending;
  if (text == "leased") return ShardState::Leased;
  if (text == "completed") return ShardState::Completed;
  if (text == "quarantined") return ShardState::Quarantined;
  throw util::DataCorruptionError(file, line_no,
                                  "unknown shard state '" + text + "'");
}

}  // namespace

LeaseTable::LeaseTable(std::size_t shard_count) : shards_(shard_count) {
  for (std::size_t i = 0; i < shard_count; ++i) shards_[i].shard = i;
}

std::size_t LeaseTable::count(ShardState state) const {
  return static_cast<std::size_t>(
      std::count_if(shards_.begin(), shards_.end(),
                    [&](const ShardLease& s) { return s.state == state; }));
}

bool LeaseTable::all_settled() const {
  return std::all_of(shards_.begin(), shards_.end(), [](const ShardLease& s) {
    return s.state == ShardState::Completed ||
           s.state == ShardState::Quarantined;
  });
}

std::optional<std::size_t> LeaseTable::next_leasable(std::int64_t now) const {
  for (const ShardLease& s : shards_) {
    if (s.state == ShardState::Pending && s.eligible_at_ms <= now) {
      return s.shard;
    }
  }
  return std::nullopt;
}

std::string LeaseTable::serialize() const {
  std::ostringstream out;
  for (const ShardLease& s : shards_) {
    // A lease is held by a live process of THIS coordinator; by the time the
    // serialized table is read back, that process is gone.
    const ShardState persisted =
        s.state == ShardState::Leased ? ShardState::Pending : s.state;
    out << "shard " << s.shard << ' ' << to_string(persisted) << ' '
        << s.attempts;
    if (!s.evidence.empty()) {
      std::string evidence = s.evidence;
      std::replace(evidence.begin(), evidence.end(), '\n', ' ');
      out << ' ' << evidence;
    }
    out << '\n';
  }
  // Count sentinel: a flipped byte can merge a "shard ..." line into the
  // previous line's free-text evidence field without breaking the index
  // sequence — the row count is the only structural witness. parse()
  // requires it, so a table missing rows can never be silently adopted.
  out << "end " << shards_.size() << '\n';
  return out.str();
}

LeaseTable LeaseTable::parse(const std::string& text) {
  static const std::string kFile = "coordinator.state";
  std::vector<ShardLease> shards;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_end = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (saw_end) {
      throw util::DataCorruptionError(
          kFile, line_no, "content after the end sentinel: '" + line + "'");
    }
    if (line.rfind("end ", 0) == 0) {
      std::size_t declared = 0;
      std::istringstream end_fields(line.substr(4));
      if (!(end_fields >> declared) || declared != shards.size()) {
        throw util::DataCorruptionError(
            kFile, line_no,
            "end sentinel declares " + line.substr(4) + " shards, parsed " +
                std::to_string(shards.size()));
      }
      saw_end = true;
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    std::size_t index = 0;
    std::string state_text;
    int attempts = 0;
    if (!(fields >> tag >> index >> state_text >> attempts) || tag != "shard") {
      throw util::DataCorruptionError(kFile, line_no,
                                      "malformed lease line '" + line + "'");
    }
    if (index != shards.size()) {
      throw util::DataCorruptionError(
          kFile, line_no,
          "shard index " + std::to_string(index) + " out of order (expected " +
              std::to_string(shards.size()) + ")");
    }
    if (attempts < 0) {
      throw util::DataCorruptionError(kFile, line_no,
                                      "negative attempt count in '" + line +
                                          "'");
    }
    ShardLease lease;
    lease.shard = index;
    lease.state = state_from_string(state_text, kFile, line_no);
    if (lease.state == ShardState::Leased) lease.state = ShardState::Pending;
    lease.attempts = attempts;
    std::string evidence;
    std::getline(fields, evidence);
    if (!evidence.empty() && evidence.front() == ' ') evidence.erase(0, 1);
    lease.evidence = evidence;
    shards.push_back(std::move(lease));
  }
  if (!saw_end) {
    throw util::DataCorruptionError(
        kFile, line_no, "missing end sentinel (truncated or merged line)");
  }
  LeaseTable table;
  table.shards_ = std::move(shards);
  return table;
}

}  // namespace omptune::sweep
