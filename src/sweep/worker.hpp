#pragma once

// Worker side of the process-isolated study supervisor.
//
// A worker is a forked child of the supervisor that executes leased
// settings in its own address space: a sample that segfaults, wedges, or
// corrupts memory takes down one worker, never the study. The two sides
// speak a line-oriented pipe protocol:
//
//   supervisor -> worker      worker -> supervisor
//   ------------------        -----------------------
//   lease N i:a i:a ...       ready
//   exit                      hb <total-samples>
//                             start <task-index>
//                             done <task-index> <samples>
//                             bye
//
// Each lease item is "<task index>:<attempt>", attempt being the number of
// workers this setting has already crashed — the chaos monkey keys its
// deterministic draws on it, so a reassigned setting does not replay the
// exact fault that killed its previous owner. The worker journals every
// completed setting into its private journal directory BEFORE reporting
// `done`; results therefore travel through the crash-safe journal (atomic
// rename, directory fsync), and the pipe carries only control traffic.
// Heartbeats are progress signals emitted from the harness's sample
// observer, not from a timer thread: a wedged measurement stops the
// heartbeat stream, which is exactly what lets the supervisor tell a hung
// worker from a slow one.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/executor.hpp"
#include "sim/fault_runner.hpp"
#include "sweep/harness.hpp"
#include "sweep/resilience.hpp"

namespace omptune::sweep {

/// One unit of leasable work: a (architecture, setting) pair of the plan.
struct SettingTask {
  arch::ArchId arch;
  StudySetting setting;
  std::size_t config_count = 0;
  std::string key;  ///< setting_key(arch, setting) — journal + merge identity
};

/// The plan flattened to the supervisor's work-queue order (identical to
/// the single-process run_study iteration order, which is what makes the
/// assembled dataset byte-identical).
std::vector<SettingTask> flatten_plan(const StudyPlan& plan);

/// Creates the runner a worker measures with. Invoked in the CHILD after
/// fork, so stateful runners are never shared across processes.
using RunnerFactory = std::function<std::unique_ptr<sim::Runner>()>;

/// Everything a forked worker needs; plain data so fork inheritance is the
/// only transport required.
struct WorkerConfig {
  int command_fd = -1;  ///< read end: supervisor commands
  int result_fd = -1;   ///< write end: ready/hb/start/done/bye
  int slot = 0;         ///< stable pool slot (names the journal directory)
  std::string journal_dir;  ///< this worker's private journal directory
  int repetitions = 4;
  std::uint64_t seed = 0;
  bool resilient = true;
  ResilienceOptions resilience;
  sim::ChaosSpec chaos;
  std::int64_t heartbeat_interval_ms = 25;
};

/// Worker entry point; never returns (terminates with _exit so the child
/// skips the supervisor's atexit/leak machinery it inherited via fork).
[[noreturn]] void worker_main(const WorkerConfig& config,
                              const std::vector<SettingTask>& tasks,
                              const RunnerFactory& make_runner);

// ---- wire protocol ----------------------------------------------------------
// Exposed (rather than buried in worker.cpp) so the supervisor and the
// tests parse/format messages with the same code, and so garbled-input
// handling is unit-testable without forking anything.

namespace protocol {

struct LeaseItem {
  std::size_t task_index = 0;
  int attempt = 0;  ///< prior crash count of this setting
};

struct Command {
  enum class Kind { Lease, Exit };
  Kind kind = Kind::Exit;
  std::vector<LeaseItem> items;  ///< Lease only
};

struct WorkerMessage {
  enum class Kind { Ready, Heartbeat, Start, Done, Bye };
  Kind kind = Kind::Ready;
  std::size_t task_index = 0;  ///< Start/Done
  std::uint64_t count = 0;     ///< Heartbeat: total samples; Done: samples
};

std::string format_lease(const std::vector<LeaseItem>& items);
std::string format_exit();
std::string format_ready();
std::string format_heartbeat(std::uint64_t total_samples);
std::string format_start(std::size_t task_index);
std::string format_done(std::size_t task_index, std::uint64_t samples);
std::string format_bye();

/// nullopt on anything that is not a well-formed message — the caller
/// treats that as a protocol violation, never as something to guess about.
std::optional<Command> parse_command(const std::string& line,
                                     std::size_t task_count);
std::optional<WorkerMessage> parse_worker_message(const std::string& line,
                                                  std::size_t task_count);

}  // namespace protocol

}  // namespace omptune::sweep
