#pragma once

// The study dataset: one Sample per unique (architecture, application,
// input/threads setting, configuration), carrying all repetition runtimes
// and the derived speedup over the setting's default configuration — the
// tabular files the paper open-sources.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "rt/config.hpp"
#include "util/csv.hpp"

namespace omptune::sweep {

/// Collection status of one sample. Anything other than Ok means the
/// measurement pipeline intervened; Quarantined samples carry no valid
/// runtime and MUST be excluded from speedup enrichment and downstream
/// statistics/ML (see analysis::best_per_setting, core::Study::analyze).
enum class SampleStatus {
  Ok,          ///< measured first try
  Retried,     ///< measured after >= 1 transient failure
  Quarantined  ///< all attempts failed; runtimes are placeholders (0)
};

std::string to_string(SampleStatus status);
SampleStatus sample_status_from_string(const std::string& text);

/// Duplicate-resolution rank: lower is better. When the same measurement
/// key appears in multiple shards or journal entries, the sample with the
/// lowest rank wins (Ok over Retried over Quarantined) — a re-collected
/// clean measurement must beat a quarantined placeholder, never lose to it
/// by arrival order.
int status_preference(SampleStatus status);

struct Sample {
  std::string arch;
  std::string app;
  std::string suite;
  std::string kind;        ///< "loop" or "task"
  std::string input;       ///< input-size name
  int threads = 0;         ///< resolved team size
  rt::RtConfig config;
  std::vector<double> runtimes;  ///< R0..Rk
  double mean_runtime = 0.0;
  double default_runtime = 0.0;  ///< mean runtime of the setting's default
  double speedup = 0.0;          ///< default_runtime / mean_runtime
  bool is_default = false;
  SampleStatus status = SampleStatus::Ok;
  int attempts = 1;        ///< measurement attempts consumed (max over reps)
  std::string error;       ///< last failure message when status != Ok

  bool is_quarantined() const { return status == SampleStatus::Quarantined; }
};

/// Measurement identity of a sample: "arch/app/input/threads/<config key>".
/// Two samples with equal identity are the same measurement collected twice
/// (overlapping shards, re-recorded journal entries) and must be deduplicated
/// by status_preference, not by arrival order.
std::string sample_identity(const Sample& sample);

/// Column-stable dataset container.
class Dataset {
 public:
  Dataset() = default;

  /// Adopt an already-built sample vector (parallel materialization paths
  /// fill a pre-sized vector by index, then wrap it).
  explicit Dataset(std::vector<Sample> samples)
      : samples_(std::move(samples)) {}

  void add(Sample sample) { samples_.push_back(std::move(sample)); }
  void append(Dataset other);
  void reserve(std::size_t n) { samples_.reserve(n); }

  const std::vector<Sample>& samples() const { return samples_; }
  std::size_t size() const { return samples_.size(); }

  /// Samples matching a predicate, by value (grouping helper).
  template <typename Pred>
  Dataset filter(Pred&& pred) const {
    Dataset out;
    for (const Sample& s : samples_) {
      if (pred(s)) out.add(s);
    }
    return out;
  }

  /// Distinct values of a string field selector across the dataset,
  /// in first-appearance order.
  template <typename Selector>
  std::vector<std::string> distinct(Selector&& sel) const {
    std::vector<std::string> out;
    for (const Sample& s : samples_) {
      const std::string value = sel(s);
      if (std::find(out.begin(), out.end(), value) == out.end()) {
        out.push_back(value);
      }
    }
    return out;
  }

  /// Samples whose status is not Quarantined — the only rows statistics and
  /// ML paths may consume.
  Dataset ok_samples() const {
    return filter([](const Sample& s) { return !s.is_quarantined(); });
  }

  /// Number of quarantined samples.
  std::size_t quarantined_count() const;

  /// Outcome tally of a dedupe pass (see deduped()).
  struct DedupeReport {
    std::size_t duplicates = 0;  ///< samples dropped as duplicate identities
    std::size_t replaced = 0;    ///< kept samples upgraded by a better status
  };

  /// Collapse samples sharing a sample_identity into one, keeping the
  /// best-status occurrence (Ok over Retried over Quarantined; first wins on
  /// ties) at the position of the identity's first appearance. Used by the
  /// shard merger and the journal compactor, where overlapping collection
  /// legitimately produces the same measurement more than once.
  Dataset deduped(DedupeReport* report = nullptr) const;

  /// Serialize to the open-data CSV schema (one row per sample, one column
  /// per variable plus all repetition runtimes).
  util::CsvTable to_csv() const;

  /// Parse a dataset back from its CSV form. `source` names the origin
  /// (file name) for error messages. Malformed rows raise
  /// util::DataCorruptionError carrying `source` and the 1-based data row
  /// number; non-finite runtime/speedup fields are rejected the same way.
  static Dataset from_csv(const util::CsvTable& table,
                          const std::string& source = "");

  /// Load a dataset CSV file. Every failure mode — unreadable file, broken
  /// quoting, short rows, non-numeric or non-finite fields, a garbled
  /// runtime_N column block — surfaces as util::DataCorruptionError; this
  /// never returns a silently truncated dataset.
  static Dataset load_csv_file(const std::string& path);

  /// Serialize to the binary columnar store format (.omps): dictionary-coded
  /// string columns, packed config fields, contiguous runtime blocks and an
  /// embedded (arch, app, input, threads) index. Implemented by the store
  /// subsystem — link omptune_store to use. Atomic replace, like the
  /// journal's CSV writes.
  void save_store(const std::string& path) const;

  /// Load a .omps store file (full materialization, every section checksum
  /// verified). Implemented by the store subsystem — link omptune_store.
  /// Throws util::DataCorruptionError naming file and offset on any
  /// corruption. For indexed partial reads, use store::StoreReader directly.
  static Dataset load_store(const std::string& path);

 private:
  std::vector<Sample> samples_;
};

}  // namespace omptune::sweep
