#pragma once

// The study dataset: one Sample per unique (architecture, application,
// input/threads setting, configuration), carrying all repetition runtimes
// and the derived speedup over the setting's default configuration — the
// tabular files the paper open-sources.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "rt/config.hpp"
#include "util/csv.hpp"

namespace omptune::sweep {

struct Sample {
  std::string arch;
  std::string app;
  std::string suite;
  std::string kind;        ///< "loop" or "task"
  std::string input;       ///< input-size name
  int threads = 0;         ///< resolved team size
  rt::RtConfig config;
  std::vector<double> runtimes;  ///< R0..Rk
  double mean_runtime = 0.0;
  double default_runtime = 0.0;  ///< mean runtime of the setting's default
  double speedup = 0.0;          ///< default_runtime / mean_runtime
  bool is_default = false;
};

/// Column-stable dataset container.
class Dataset {
 public:
  Dataset() = default;

  void add(Sample sample) { samples_.push_back(std::move(sample)); }
  void append(Dataset other);

  const std::vector<Sample>& samples() const { return samples_; }
  std::size_t size() const { return samples_.size(); }

  /// Samples matching a predicate, by value (grouping helper).
  template <typename Pred>
  Dataset filter(Pred&& pred) const {
    Dataset out;
    for (const Sample& s : samples_) {
      if (pred(s)) out.add(s);
    }
    return out;
  }

  /// Distinct values of a string field selector across the dataset,
  /// in first-appearance order.
  template <typename Selector>
  std::vector<std::string> distinct(Selector&& sel) const {
    std::vector<std::string> out;
    for (const Sample& s : samples_) {
      const std::string value = sel(s);
      if (std::find(out.begin(), out.end(), value) == out.end()) {
        out.push_back(value);
      }
    }
    return out;
  }

  /// Serialize to the open-data CSV schema (one row per sample, one column
  /// per variable plus all repetition runtimes).
  util::CsvTable to_csv() const;

  /// Parse a dataset back from its CSV form.
  static Dataset from_csv(const util::CsvTable& table);

 private:
  std::vector<Sample> samples_;
};

}  // namespace omptune::sweep
