#include "sweep/sharding.hpp"

#include <map>
#include <stdexcept>

namespace omptune::sweep {

StudyPlan shard_plan(const StudyPlan& plan, std::size_t index, std::size_t count) {
  if (count == 0 || index >= count) {
    throw std::invalid_argument("shard_plan: need index < count, count > 0");
  }
  StudyPlan shard;
  std::size_t position = 0;  // global setting position across architectures
  for (const ArchPlan& arch_plan : plan.arch_plans) {
    ArchPlan kept;
    kept.arch = arch_plan.arch;
    for (std::size_t i = 0; i < arch_plan.settings.size(); ++i, ++position) {
      if (position % count != index) continue;
      kept.settings.push_back(arch_plan.settings[i]);
      kept.configs_per_setting.push_back(arch_plan.configs_per_setting[i]);
    }
    if (!kept.settings.empty()) shard.arch_plans.push_back(std::move(kept));
  }
  return shard;
}

namespace {

std::string sample_key(const Sample& sample) {
  // The sample stores the resolved team size; recover the plan's
  // num_threads: VaryInputSize settings use 0 (all cores).
  const auto& cpu = arch::architecture(arch::arch_from_string(sample.arch));
  const int plan_threads = sample.threads == cpu.cores &&
                                   apps::find_application(sample.app).sweep_mode() ==
                                       apps::SweepMode::VaryInputSize
                               ? 0
                               : sample.threads;
  return sample.arch + "/" + sample.app + "/" + sample.input + "/" +
         std::to_string(plan_threads);
}

std::size_t dedupe_bucket(std::vector<const Sample*>& bucket) {
  // Collapse repeated (config) identities within one setting's bucket,
  // keeping the best-status occurrence at the first occurrence's position —
  // Ok over Retried over Quarantined, never first-wins.
  std::map<std::string, std::size_t> first_position;
  std::vector<const Sample*> kept;
  std::size_t duplicates = 0;
  for (const Sample* sample : bucket) {
    const auto [it, inserted] =
        first_position.emplace(sample->config.key(), kept.size());
    if (inserted) {
      kept.push_back(sample);
      continue;
    }
    ++duplicates;
    if (status_preference(sample->status) <
        status_preference(kept[it->second]->status)) {
      kept[it->second] = sample;
    }
  }
  bucket = std::move(kept);
  return duplicates;
}

}  // namespace

Dataset merge_shards(const StudyPlan& plan, const std::vector<Dataset>& shards,
                     MergeReport* report) {
  // Bucket every shard's samples by setting.
  std::map<std::string, std::vector<const Sample*>> buckets;
  for (const Dataset& shard : shards) {
    for (const Sample& sample : shard.samples()) {
      buckets[sample_key(sample)].push_back(&sample);
    }
  }

  if (report) *report = MergeReport{};
  Dataset merged;
  for (const ArchPlan& arch_plan : plan.arch_plans) {
    const std::string arch_name = arch::architecture(arch_plan.arch).name;
    for (std::size_t i = 0; i < arch_plan.settings.size(); ++i) {
      const std::string key = setting_key(arch_name, arch_plan.settings[i]);
      const auto it = buckets.find(key);
      if (it == buckets.end()) {
        throw std::invalid_argument("merge_shards: setting '" + key +
                                    "' missing from the shards");
      }
      const std::size_t duplicates = dedupe_bucket(it->second);
      if (report) report->duplicate_samples += duplicates;
      // A partially-duplicated setting (extra configs the plan never asked
      // for, or missing ones) still fails the size check below.
      if (it->second.size() != arch_plan.configs_per_setting[i]) {
        throw std::invalid_argument(
            "merge_shards: setting '" + key + "' has " +
            std::to_string(it->second.size()) + " samples, plan expects " +
            std::to_string(arch_plan.configs_per_setting[i]));
      }
      std::size_t quarantined = 0;
      for (const Sample* sample : it->second) {
        if (sample->is_quarantined()) ++quarantined;
        merged.add(*sample);
      }
      if (report) {
        report->total_samples += it->second.size();
        report->quarantined_samples += quarantined;
        if (quarantined > 0) {
          report->quarantined_settings.push_back(
              QuarantinedSetting{key, quarantined, it->second.size()});
        }
      }
    }
  }
  return merged;
}

}  // namespace omptune::sweep
