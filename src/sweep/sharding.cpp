#include "sweep/sharding.hpp"

#include <map>
#include <set>
#include <stdexcept>

#include "util/errors.hpp"

namespace omptune::sweep {

StudyPlan shard_plan(const StudyPlan& plan, std::size_t index, std::size_t count) {
  if (count == 0 || index >= count) {
    throw std::invalid_argument("shard_plan: need index < count, count > 0");
  }
  StudyPlan shard;
  std::size_t position = 0;  // global setting position across architectures
  for (const ArchPlan& arch_plan : plan.arch_plans) {
    ArchPlan kept;
    kept.arch = arch_plan.arch;
    for (std::size_t i = 0; i < arch_plan.settings.size(); ++i, ++position) {
      if (position % count != index) continue;
      kept.settings.push_back(arch_plan.settings[i]);
      kept.configs_per_setting.push_back(arch_plan.configs_per_setting[i]);
    }
    if (!kept.settings.empty()) shard.arch_plans.push_back(std::move(kept));
  }
  return shard;
}

namespace {

std::string sample_key(const Sample& sample) {
  // The sample stores the resolved team size; recover the plan's
  // num_threads: VaryInputSize settings use 0 (all cores).
  const auto& cpu = arch::architecture(arch::arch_from_string(sample.arch));
  const int plan_threads = sample.threads == cpu.cores &&
                                   apps::find_application(sample.app).sweep_mode() ==
                                       apps::SweepMode::VaryInputSize
                               ? 0
                               : sample.threads;
  return sample.arch + "/" + sample.app + "/" + sample.input + "/" +
         std::to_string(plan_threads);
}

/// One shard sample plus where it came from, so merge errors can name the
/// shard and the offending sample's position within it.
struct Contribution {
  const Sample* sample = nullptr;
  std::size_t shard = 0;   ///< index into `shards`
  std::size_t offset = 0;  ///< sample index within its shard dataset
};

std::size_t dedupe_bucket(std::vector<Contribution>& bucket) {
  // Collapse repeated (config) identities within one setting's bucket,
  // keeping the best-status occurrence at the first occurrence's position —
  // Ok over Retried over Quarantined, never first-wins.
  std::map<std::string, std::size_t> first_position;
  std::vector<Contribution> kept;
  std::size_t duplicates = 0;
  for (const Contribution& entry : bucket) {
    const auto [it, inserted] =
        first_position.emplace(entry.sample->config.key(), kept.size());
    if (inserted) {
      kept.push_back(entry);
      continue;
    }
    ++duplicates;
    if (status_preference(entry.sample->status) <
        status_preference(kept[it->second].sample->status)) {
      kept[it->second] = entry;
    }
  }
  bucket = std::move(kept);
  return duplicates;
}

std::string shard_label(const MergeOptions& options, std::size_t shard) {
  if (shard < options.shard_names.size() && !options.shard_names[shard].empty()) {
    return options.shard_names[shard];
  }
  return "shard " + std::to_string(shard);
}

std::string contributors(const MergeOptions& options,
                         const std::vector<Contribution>& bucket) {
  std::set<std::size_t> seen;
  std::string out;
  for (const Contribution& entry : bucket) {
    if (!seen.insert(entry.shard).second) continue;
    if (!out.empty()) out += ", ";
    out += shard_label(options, entry.shard);
  }
  return out;
}

Dataset merge_shards_impl(const StudyPlan& plan,
                          const std::vector<Dataset>& shards,
                          MergeReport* report, const MergeOptions* options) {
  // Bucket every shard's samples by setting, remembering provenance.
  std::map<std::string, std::vector<Contribution>> buckets;
  for (std::size_t shard = 0; shard < shards.size(); ++shard) {
    const auto& samples = shards[shard].samples();
    for (std::size_t offset = 0; offset < samples.size(); ++offset) {
      buckets[sample_key(samples[offset])].push_back(
          Contribution{&samples[offset], shard, offset});
    }
  }

  if (report) *report = MergeReport{};
  Dataset merged;
  for (const ArchPlan& arch_plan : plan.arch_plans) {
    const std::string arch_name = arch::architecture(arch_plan.arch).name;
    for (std::size_t i = 0; i < arch_plan.settings.size(); ++i) {
      const std::string key = setting_key(arch_name, arch_plan.settings[i]);
      const auto it = buckets.find(key);
      if (it == buckets.end()) {
        const std::string message = "merge_shards: setting '" + key +
                                    "' missing from all " +
                                    std::to_string(shards.size()) + " shards";
        if (!options) throw std::invalid_argument(message);
        if (options->lenient) {
          if (options->warn) options->warn(message + " — skipped");
          if (report) {
            ++report->skipped_settings;
            report->skipped.push_back(SkippedSetting{
                key,
                "missing from all " + std::to_string(shards.size()) + " shards",
                ""});
          }
          continue;
        }
        throw util::DataCorruptionError("<shard merge>", 0, message);
      }
      const std::size_t duplicates = dedupe_bucket(it->second);
      if (report) report->duplicate_samples += duplicates;
      // A partially-duplicated setting (extra configs the plan never asked
      // for, or missing ones) still fails the size check below.
      if (it->second.size() != arch_plan.configs_per_setting[i]) {
        const std::string message =
            "merge_shards: setting '" + key + "' has " +
            std::to_string(it->second.size()) + " samples, plan expects " +
            std::to_string(arch_plan.configs_per_setting[i]);
        if (!options) throw std::invalid_argument(message);
        if (options->lenient) {
          if (options->warn) {
            options->warn(message + " (from " + contributors(*options, it->second) +
                          ") — skipped");
          }
          if (report) {
            ++report->skipped_settings;
            report->skipped.push_back(SkippedSetting{
                key,
                std::to_string(it->second.size()) + " samples, plan expects " +
                    std::to_string(arch_plan.configs_per_setting[i]),
                contributors(*options, it->second)});
          }
          continue;
        }
        const Contribution& first = it->second.front();
        throw util::DataCorruptionError(
            shard_label(*options, first.shard), first.offset,
            message + " (contributed by " + contributors(*options, it->second) +
                ")");
      }
      std::size_t quarantined = 0;
      for (const Contribution& entry : it->second) {
        if (entry.sample->is_quarantined()) ++quarantined;
        merged.add(*entry.sample);
      }
      if (report) {
        report->total_samples += it->second.size();
        report->quarantined_samples += quarantined;
        if (quarantined > 0) {
          report->quarantined_settings.push_back(
              QuarantinedSetting{key, quarantined, it->second.size()});
        }
      }
    }
  }
  return merged;
}

}  // namespace

Dataset merge_shards(const StudyPlan& plan, const std::vector<Dataset>& shards,
                     MergeReport* report) {
  return merge_shards_impl(plan, shards, report, nullptr);
}

Dataset merge_shards(const StudyPlan& plan, const std::vector<Dataset>& shards,
                     MergeReport* report, const MergeOptions& options) {
  return merge_shards_impl(plan, shards, report, &options);
}

}  // namespace omptune::sweep
