#include "sweep/supervisor.hpp"

#include <dirent.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>

#include "arch/cpu_arch.hpp"
#include "sweep/journal.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"
#include "util/process.hpp"

namespace omptune::sweep {

namespace {

constexpr int kPollIntervalMs = 25;
/// Workers dying repeatedly before their `ready` handshake indicate a broken
/// environment (fork bomb guard), not a poisonous setting.
constexpr int kMaxSpawnFailures = 5;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

std::string make_private_temp_dir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr && *base != '\0' ? base : "/tmp");
  tmpl += "/omptune-supervisor-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    throw_errno("StudySupervisor: mkdtemp(" + tmpl + ")");
  }
  return std::string(buf.data());
}

std::vector<std::string> list_subdirs(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st{};
    const std::string path = util::path_join(dir, name);
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      out.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

/// Remove a directory containing only regular files (a journal directory).
void remove_flat_dir(const std::string& dir) {
  for (const std::string& name : util::list_files(dir)) {
    util::remove_file(util::path_join(dir, name));
  }
  ::rmdir(dir.c_str());
}

enum class TaskState { Queued, Done };

/// Parent-side handle on one forked worker.
struct WorkerProc {
  pid_t pid = -1;
  int slot = 0;
  util::Pipe cmd;  ///< parent keeps write_fd
  util::Pipe res;  ///< parent keeps read_fd
  util::LineReader reader{-1};
  std::unique_ptr<StudyJournal> journal;
  bool ready = false;
  bool exit_sent = false;
  bool saw_bye = false;
  std::deque<std::size_t> leased;        ///< assigned, not yet done
  std::optional<std::size_t> inflight;   ///< `start` seen, `done` not yet
  std::int64_t last_signal = 0;          ///< monotonic_ms of last message
  std::int64_t lease_deadline = 0;       ///< 0 = no outstanding lease clock
  std::string kill_reason;  ///< set when the supervisor killed on purpose

  bool alive() const { return pid >= 0; }
};

/// Per-slot respawn pacing: consecutive deaths grow the backoff window,
/// a completed `ready` handshake resets it.
struct RespawnGate {
  std::int64_t eligible_at = 0;  ///< monotonic_ms before which no respawn
  std::int64_t prev_delay = 0;   ///< decorrelated-jitter state
  int streak = 0;                ///< consecutive deaths without a handshake
};

}  // namespace

StudySupervisor::StudySupervisor(RunnerFactory make_runner,
                                 SupervisorOptions options)
    : make_runner_(std::move(make_runner)), options_(std::move(options)) {
  if (!make_runner_) {
    throw std::invalid_argument("StudySupervisor: runner factory required");
  }
  if (options_.workers < 1) {
    throw std::invalid_argument("StudySupervisor: workers must be >= 1");
  }
  if (options_.shard_size == 0) options_.shard_size = 1;
}

Dataset StudySupervisor::run(const StudyPlan& plan) {
  report_ = SupervisorReport{};
  stop_requested_.store(false);

  const std::vector<SettingTask> tasks = flatten_plan(plan);
  report_.settings_total = tasks.size();
  if (tasks.empty()) return Dataset{};

  std::string journal_dir = options_.journal_dir;
  const bool private_dir = journal_dir.empty();
  if (private_dir) journal_dir = make_private_temp_dir();
  report_.journal_dir = journal_dir;
  StudyJournal journal(journal_dir);
  const std::string workers_root = util::path_join(journal_dir, "workers");
  util::create_directories(workers_root);

  const auto say = [&](const std::string& message) {
    if (options_.progress) options_.progress(message);
  };

  // -- startup: reconcile leftovers of a previous (possibly killed) run -------
  // A worker SIGKILLed between journal.record and its `done` report leaves a
  // completed entry in its private directory; on resume that work is adopted,
  // otherwise every stale entry is cleared so it can never pollute this run.
  for (const std::string& sub : list_subdirs(workers_root)) {
    const StudyJournal leftover(util::path_join(workers_root, sub));
    for (const SettingTask& task : tasks) {
      if (!leftover.contains(task.key)) continue;
      if (options_.resume) {
        journal.adopt(leftover, task.key);
      } else {
        leftover.discard(task.key);
      }
    }
  }

  std::vector<TaskState> state(tasks.size(), TaskState::Queued);
  std::vector<int> crashes(tasks.size(), 0);
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const SettingTask& task = tasks[i];
    if (options_.resume && journal.contains(task.key)) {
      try {
        journal.load(task.key, task.config_count);  // validate before trusting
        state[i] = TaskState::Done;
        ++report_.settings_resumed;
        ++report_.settings_completed;
        say(task.key + " resumed from journal");
        continue;
      } catch (const util::DataCorruptionError& error) {
        journal.discard(task.key);
        say(task.key + " journal entry invalid, recollecting (" + error.what() +
            ")");
      }
    } else if (!options_.resume) {
      journal.discard(task.key);  // a stale entry must not merge into this run
    }
    queue.push_back(i);
  }

  const auto mark_done = [&](std::size_t idx) {
    state[idx] = TaskState::Done;
    ++report_.settings_completed;
  };

  const auto quarantine_task = [&](std::size_t idx,
                                   const std::string& evidence) {
    const SettingTask& task = tasks[idx];
    const std::string full = "crashed " + std::to_string(crashes[idx]) +
                             " worker processes; last evidence: " + evidence;
    const Dataset placeholder = quarantined_setting_dataset(
        arch::architecture(task.arch), task.setting, task.config_count,
        options_.repetitions, options_.seed, full);
    journal.record(task.key, placeholder);
    mark_done(idx);
    report_.quarantined_settings.push_back(
        SupervisedQuarantine{task.key, crashes[idx], evidence});
    say(task.key + " quarantined: " + full);
  };

  // -- worker pool ------------------------------------------------------------
  if (!queue.empty()) {
    util::ShutdownSignalGuard guard;
    std::vector<WorkerProc> pool;
    std::vector<RespawnGate> gates(static_cast<std::size_t>(options_.workers));
    int spawn_failures = 0;

    const auto spawn = [&](int slot) -> WorkerProc {
      WorkerProc w;
      w.slot = slot;
      const std::string dir =
          util::path_join(workers_root, "w" + std::to_string(slot));
      // Construct the parent-side journal (creates the directory, clears
      // stale temp files) BEFORE forking, so cleanup can never race the
      // child's first write.
      w.journal = std::make_unique<StudyJournal>(dir);

      WorkerConfig config;
      config.command_fd = w.cmd.read_fd;
      config.result_fd = w.res.write_fd;
      config.slot = slot;
      config.journal_dir = dir;
      config.repetitions = options_.repetitions;
      config.seed = options_.seed;
      config.resilient = options_.resilient;
      config.resilience = options_.resilience;
      config.chaos = options_.chaos;
      config.heartbeat_interval_ms = options_.heartbeat_interval_ms;

      const pid_t pid = ::fork();
      if (pid < 0) throw_errno("StudySupervisor: fork()");
      if (pid == 0) {
        // Child: drop every parent-side fd inherited from the pool, so a
        // sibling holding a pipe end can never mask a peer's EOF.
        for (WorkerProc& other : pool) {
          other.cmd.close_read();
          other.cmd.close_write();
          other.res.close_read();
          other.res.close_write();
        }
        w.cmd.close_write();
        w.res.close_read();
        worker_main(config, tasks, make_runner_);  // [[noreturn]]
      }
      w.pid = pid;
      w.cmd.close_read();
      w.res.close_write();
      util::set_nonblocking(w.res.read_fd);
      w.reader = util::LineReader(w.res.read_fd);
      w.last_signal = util::monotonic_ms();
      return w;
    };

    const auto kill_worker = [&](WorkerProc& w, const std::string& reason) {
      if (!w.alive()) return;
      if (w.kill_reason.empty()) w.kill_reason = reason;
      ::kill(w.pid, SIGKILL);
    };

    const auto grant_lease = [&](WorkerProc& w) {
      std::vector<protocol::LeaseItem> items;
      while (!queue.empty() && items.size() < options_.shard_size) {
        const std::size_t idx = queue.front();
        queue.pop_front();
        if (state[idx] == TaskState::Done) continue;
        items.push_back(protocol::LeaseItem{idx, crashes[idx]});
        w.leased.push_back(idx);
      }
      if (items.empty()) return;
      if (!util::write_all(w.cmd.write_fd, protocol::format_lease(items))) {
        // The worker died under us; give the shard back, the reaper will
        // sort out the corpse.
        for (auto it = items.rbegin(); it != items.rend(); ++it) {
          queue.push_front(it->task_index);
        }
        w.leased.clear();
        return;
      }
      const std::int64_t now = util::monotonic_ms();
      w.last_signal = now;
      w.lease_deadline = options_.lease_ms > 0 ? now + options_.lease_ms : 0;
    };

    /// Drain and apply every pending message; false on a protocol violation.
    const auto process_lines = [&](WorkerProc& w) -> bool {
      for (const std::string& line : w.reader.drain()) {
        const std::optional<protocol::WorkerMessage> msg =
            protocol::parse_worker_message(line, tasks.size());
        if (!msg) return false;
        w.last_signal = util::monotonic_ms();
        switch (msg->kind) {
          case protocol::WorkerMessage::Kind::Ready:
            w.ready = true;
            spawn_failures = 0;
            gates[static_cast<std::size_t>(w.slot)] = RespawnGate{};
            break;
          case protocol::WorkerMessage::Kind::Heartbeat:
            break;  // liveness is the timestamp update above
          case protocol::WorkerMessage::Kind::Start:
            w.inflight = msg->task_index;
            break;
          case protocol::WorkerMessage::Kind::Done: {
            const std::size_t idx = msg->task_index;
            journal.adopt(*w.journal, tasks[idx].key);
            if (state[idx] != TaskState::Done) mark_done(idx);
            if (w.inflight == idx) w.inflight.reset();
            const auto it =
                std::find(w.leased.begin(), w.leased.end(), idx);
            if (it != w.leased.end()) w.leased.erase(it);
            w.lease_deadline = options_.lease_ms > 0
                                   ? w.last_signal + options_.lease_ms
                                   : 0;
            say(tasks[idx].key + " -> " + std::to_string(msg->count) +
                " samples (w" + std::to_string(w.slot) + ")");
            break;
          }
          case protocol::WorkerMessage::Kind::Bye:
            w.saw_bye = true;
            break;
        }
      }
      return !w.reader.garbled();
    };

    const auto handle_death = [&](WorkerProc& w,
                                  const util::ExitStatus& status) {
      // Salvage first: the pipe may still hold `done` lines written before
      // death, and the worker's journal may hold a completed entry whose
      // `done` never made it out (killed between record and report).
      process_lines(w);
      for (auto it = w.leased.begin(); it != w.leased.end();) {
        const std::size_t idx = *it;
        if (state[idx] != TaskState::Done &&
            w.journal->contains(tasks[idx].key)) {
          journal.adopt(*w.journal, tasks[idx].key);
          mark_done(idx);
          say(tasks[idx].key + " salvaged from dead worker w" +
              std::to_string(w.slot));
          if (w.inflight == idx) w.inflight.reset();
          it = w.leased.erase(it);
        } else if (state[idx] == TaskState::Done) {
          it = w.leased.erase(it);
        } else {
          ++it;
        }
      }

      const bool clean =
          w.saw_bye || (w.exit_sent && status.exited && status.exit_code == 0);
      const std::string evidence =
          !w.kill_reason.empty() ? w.kill_reason : status.describe();
      if (!clean && w.kill_reason.empty()) ++report_.worker_crashes;
      if (!clean && !w.ready && ++spawn_failures > kMaxSpawnFailures) {
        throw std::runtime_error(
            "StudySupervisor: " + std::to_string(spawn_failures) +
            " consecutive workers died before becoming ready (last: " +
            evidence + ")");
      }

      // Blame only the in-flight setting; the untouched rest of the lease
      // goes back to the queue without a strike.
      std::optional<std::size_t> blamed;
      if (!clean && w.inflight && state[*w.inflight] != TaskState::Done) {
        blamed = *w.inflight;
        const auto it =
            std::find(w.leased.begin(), w.leased.end(), *blamed);
        if (it != w.leased.end()) w.leased.erase(it);
      }
      for (auto it = w.leased.rbegin(); it != w.leased.rend(); ++it) {
        queue.push_front(*it);
        ++report_.reassigned_settings;
      }
      w.leased.clear();
      if (blamed) {
        ++crashes[*blamed];
        if (crashes[*blamed] >= options_.max_setting_crashes) {
          quarantine_task(*blamed, evidence);
        } else {
          queue.push_front(*blamed);
          ++report_.reassigned_settings;
          say(tasks[*blamed].key + " reassigned (attempt " +
              std::to_string(crashes[*blamed]) + "): " + evidence);
        }
      }
      w.pid = -1;
      w.inflight.reset();
      w.lease_deadline = 0;
    };

    const auto kill_everything = [&] {
      for (WorkerProc& w : pool) {
        if (!w.alive()) continue;
        ::kill(w.pid, SIGKILL);
        util::wait_for(w.pid);
        w.pid = -1;
      }
    };

    try {
      const std::size_t pool_size = std::min<std::size_t>(
          static_cast<std::size_t>(options_.workers), queue.size());
      pool.reserve(pool_size);
      for (std::size_t slot = 0; slot < pool_size; ++slot) {
        pool.push_back(spawn(static_cast<int>(slot)));
      }

      const std::int64_t grace_ms = options_.heartbeat_timeout_ms > 0
                                        ? std::max<std::int64_t>(
                                              options_.heartbeat_timeout_ms,
                                              1000)
                                        : 10000;
      bool shutting_down = false;
      std::int64_t drain_deadline = 0;

      for (;;) {
        const bool all_done =
            report_.settings_completed == report_.settings_total;
        if (!shutting_down &&
            (all_done || guard.triggered() || stop_requested_.load())) {
          shutting_down = true;
          report_.interrupted = !all_done;
          queue.clear();
          for (WorkerProc& w : pool) {
            if (!w.alive()) continue;
            w.exit_sent = true;
            util::write_all(w.cmd.write_fd, protocol::format_exit());
          }
          drain_deadline = util::monotonic_ms() + grace_ms;
          if (report_.interrupted) {
            say("study interrupted: draining workers (completed " +
                std::to_string(report_.settings_completed) + "/" +
                std::to_string(report_.settings_total) + ")");
          }
        }
        if (shutting_down &&
            std::none_of(pool.begin(), pool.end(),
                         [](const WorkerProc& w) { return w.alive(); })) {
          break;
        }

        if (!shutting_down) {
          for (WorkerProc& w : pool) {
            if (w.alive() && w.ready && !w.exit_sent && w.leased.empty()) {
              grant_lease(w);
            }
          }
        }

        std::vector<struct pollfd> fds;
        fds.push_back({guard.wake_fd(), POLLIN, 0});
        for (const WorkerProc& w : pool) {
          if (w.alive() && !w.reader.eof()) {
            fds.push_back({w.reader.fd(), POLLIN, 0});
          }
        }
        ::poll(fds.data(), fds.size(), kPollIntervalMs);
        // Drain the wake pipe so a delivered signal does not turn the poll
        // loop into a busy spin (the triggered() flag is authoritative).
        char sink[64];
        while (::read(guard.wake_fd(), sink, sizeof(sink)) > 0) {
        }

        for (WorkerProc& w : pool) {
          if (!w.alive()) continue;
          if (!process_lines(w)) {
            ++report_.protocol_errors;
            kill_worker(w, "garbled result stream (protocol violation)");
          }
        }

        for (WorkerProc& w : pool) {
          if (!w.alive()) continue;
          if (const std::optional<util::ExitStatus> status =
                  util::try_wait(w.pid)) {
            const std::size_t slot = static_cast<std::size_t>(w.slot);
            handle_death(w, *status);
            if (!shutting_down) {
              // Do NOT respawn immediately: a persistently crashing
              // environment would hot-loop fork(). Schedule the replacement
              // behind the slot's backoff gate instead.
              RespawnGate& gate = gates[slot];
              ++gate.streak;
              const std::int64_t delay =
                  options_.respawn_backoff.next_delay_ms(
                      options_.seed, "w" + std::to_string(slot), gate.streak,
                      gate.prev_delay);
              gate.prev_delay = delay;
              gate.eligible_at = util::monotonic_ms() + delay;
              ++report_.respawn_waits;
              report_.respawn_backoff_ms += delay;
            }
          }
        }

        if (!shutting_down && !queue.empty()) {
          const std::int64_t spawn_now = util::monotonic_ms();
          for (std::size_t slot = 0; slot < pool.size(); ++slot) {
            if (pool[slot].alive()) continue;
            if (spawn_now < gates[slot].eligible_at) continue;
            pool[slot] = spawn(static_cast<int>(slot));
            ++report_.respawns;
          }
        }

        const std::int64_t now = util::monotonic_ms();
        for (WorkerProc& w : pool) {
          if (!w.alive()) continue;
          // Idle ready workers are parked on a blocking command read; only
          // a worker that owes us progress is held to the heartbeat clock.
          const bool owes_progress =
              !w.ready || !w.leased.empty() || w.exit_sent;
          if (options_.heartbeat_timeout_ms > 0 && owes_progress &&
              now - w.last_signal > options_.heartbeat_timeout_ms &&
              w.kill_reason.empty()) {
            ++report_.hang_kills;
            kill_worker(w, "no heartbeat for " +
                               std::to_string(now - w.last_signal) +
                               "ms (hung)");
            continue;
          }
          if (w.lease_deadline > 0 && !w.leased.empty() &&
              now > w.lease_deadline && w.kill_reason.empty()) {
            ++report_.lease_expiries;
            kill_worker(w, "lease expired after " +
                               std::to_string(options_.lease_ms) + "ms");
            continue;
          }
          if (shutting_down && now > drain_deadline &&
              w.kill_reason.empty()) {
            kill_worker(w, "shutdown grace period expired");
          }
        }
      }
    } catch (...) {
      kill_everything();
      throw;
    }
  } else {
    report_.interrupted = false;
  }

  // -- assembly ---------------------------------------------------------------
  // Tasks are loaded in flatten_plan order — the single-process run_study
  // iteration order — which is what makes the assembled dataset (and any
  // compacted store built from the journal) byte-identical to an
  // undisturbed run.
  Dataset dataset;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (state[i] != TaskState::Done) continue;
    dataset.append(journal.load(tasks[i].key, tasks[i].config_count));
  }

  if (report_.interrupted) {
    say("resume with --journal=" + journal_dir + " --resume");
  } else {
    // Worker directories are empty after adoption; clear the scaffolding so
    // a completed journal holds exactly one entry per setting.
    for (const std::string& sub : list_subdirs(workers_root)) {
      remove_flat_dir(util::path_join(workers_root, sub));
    }
    ::rmdir(workers_root.c_str());
    if (private_dir) {
      remove_flat_dir(journal_dir);
      report_.journal_dir.clear();
    }
  }
  return dataset;
}

}  // namespace omptune::sweep
