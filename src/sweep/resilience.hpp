#pragma once

// Retry / timeout / quarantine policy for sample collection.
//
// Cluster measurement campaigns routinely hit preempted jobs, hung kernels
// and garbage readings; the paper's 240k-sample dataset was collected in
// exactly such batches. This layer makes one sample measurement robust:
//
//  - a watchdog enforces a per-sample deadline around sim::Runner::run
//    (hangs surface as util::TransientError instead of wedging the study);
//  - failed or non-finite measurements are retried a bounded number of
//    times with deterministic exponential backoff;
//  - (arch, app, config) triples that exhaust their retries land on a
//    quarantine list: the sample is recorded with
//    SampleStatus::Quarantined and placeholder runtimes, later samples of
//    the same triple fail fast, and the study carries on.
//
// util::StudyAbort (simulated process death) is never absorbed — it always
// escapes, so interrupted studies stop exactly where a crash would.

#include <cstdint>
#include <set>
#include <string>

#include "apps/application.hpp"
#include "arch/cpu_arch.hpp"
#include "rt/config.hpp"
#include "sim/executor.hpp"
#include "sweep/dataset.hpp"

namespace omptune::sweep {

struct ResilienceOptions {
  /// Additional attempts after the first failure (0 = fail straight to
  /// quarantine).
  int max_retries = 2;
  /// Per-sample deadline in milliseconds; 0 disables the watchdog (no
  /// per-call thread, zero overhead).
  std::int64_t sample_timeout_ms = 0;
  /// Base of the deterministic exponential backoff between retries
  /// (base * 2^(attempt-1) ms); 0 disables sleeping (tests, model mode).
  std::int64_t backoff_base_ms = 0;
};

/// Outcome of measuring one (setting, config, repetition) sample.
struct MeasureOutcome {
  double runtime = 0.0;  ///< valid only when status != Quarantined
  SampleStatus status = SampleStatus::Ok;
  int attempts = 1;      ///< attempts consumed, including the successful one
  std::string error;     ///< last failure message when attempts > 1 or failed
};

/// Stateful policy applied around every Runner call of a study. Keeps the
/// quarantine list across settings so persistently failing triples stop
/// burning retry budget.
class ResiliencePolicy {
 public:
  explicit ResiliencePolicy(ResilienceOptions options = {});

  /// One guarded measurement. Never throws for runner failures — those are
  /// retried and finally quarantined. util::StudyAbort always propagates.
  MeasureOutcome measure(sim::Runner& runner, const apps::Application& app,
                         const apps::InputSize& input, const arch::CpuArch& cpu,
                         const rt::RtConfig& config, std::uint64_t batch_seed,
                         int repetition, std::uint64_t sample_index);

  /// Quarantine key for a sample triple.
  static std::string quarantine_key(const arch::CpuArch& cpu,
                                    const apps::Application& app,
                                    const rt::RtConfig& config);

  bool is_quarantined(const std::string& key) const {
    return quarantined_.count(key) > 0;
  }
  const std::set<std::string>& quarantined() const { return quarantined_; }

  const ResilienceOptions& options() const { return options_; }

  /// Total retries performed across the study (observability/bench).
  std::uint64_t total_retries() const { return total_retries_; }

 private:
  ResilienceOptions options_;
  std::set<std::string> quarantined_;
  std::uint64_t total_retries_ = 0;
};

/// Run `runner.run(...)` under a deadline. `timeout_ms <= 0` calls through
/// directly. On overrun the worker thread is abandoned (detached) and
/// util::TransientError is thrown; runner exceptions are rethrown as-is.
double run_with_deadline(sim::Runner& runner, const apps::Application& app,
                         const apps::InputSize& input, const arch::CpuArch& cpu,
                         const rt::RtConfig& config, std::uint64_t batch_seed,
                         int repetition, std::uint64_t sample_index,
                         std::int64_t timeout_ms);

}  // namespace omptune::sweep
