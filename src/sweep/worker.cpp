#include "sweep/worker.hpp"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>

#include "arch/cpu_arch.hpp"
#include "sweep/journal.hpp"
#include "util/process.hpp"

namespace omptune::sweep {

// ---- protocol ---------------------------------------------------------------

namespace protocol {

namespace {

/// Parse a non-negative integer token; nullopt on anything else (garbled
/// bytes must fail parsing, not wrap around or stop early).
std::optional<std::uint64_t> parse_u64(const std::string& token) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos ||
      token.size() > 19) {
    return std::nullopt;
  }
  return std::stoull(token);
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) out.emplace_back(line, start, i - start);
  }
  return out;
}

}  // namespace

std::string format_lease(const std::vector<LeaseItem>& items) {
  std::string out = "lease " + std::to_string(items.size());
  for (const LeaseItem& item : items) {
    out += " " + std::to_string(item.task_index) + ":" +
           std::to_string(item.attempt);
  }
  out += "\n";
  return out;
}

std::string format_exit() { return "exit\n"; }
std::string format_ready() { return "ready\n"; }

std::string format_heartbeat(std::uint64_t total_samples) {
  return "hb " + std::to_string(total_samples) + "\n";
}

std::string format_start(std::size_t task_index) {
  return "start " + std::to_string(task_index) + "\n";
}

std::string format_done(std::size_t task_index, std::uint64_t samples) {
  return "done " + std::to_string(task_index) + " " +
         std::to_string(samples) + "\n";
}

std::string format_bye() { return "bye\n"; }

std::optional<Command> parse_command(const std::string& line,
                                     std::size_t task_count) {
  const std::vector<std::string> tokens = split_ws(line);
  if (tokens.empty()) return std::nullopt;
  if (tokens[0] == "exit") {
    if (tokens.size() != 1) return std::nullopt;
    return Command{Command::Kind::Exit, {}};
  }
  if (tokens[0] != "lease" || tokens.size() < 2) return std::nullopt;
  const std::optional<std::uint64_t> count = parse_u64(tokens[1]);
  if (!count || *count == 0 || tokens.size() != 2 + *count) return std::nullopt;
  Command command{Command::Kind::Lease, {}};
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const std::size_t colon = tokens[i].find(':');
    if (colon == std::string::npos) return std::nullopt;
    const std::optional<std::uint64_t> index =
        parse_u64(tokens[i].substr(0, colon));
    const std::optional<std::uint64_t> attempt =
        parse_u64(tokens[i].substr(colon + 1));
    if (!index || !attempt || *index >= task_count) return std::nullopt;
    command.items.push_back(
        LeaseItem{static_cast<std::size_t>(*index), static_cast<int>(*attempt)});
  }
  return command;
}

std::optional<WorkerMessage> parse_worker_message(const std::string& line,
                                                  std::size_t task_count) {
  const std::vector<std::string> tokens = split_ws(line);
  if (tokens.empty()) return std::nullopt;
  WorkerMessage msg;
  if (tokens[0] == "ready" && tokens.size() == 1) {
    msg.kind = WorkerMessage::Kind::Ready;
    return msg;
  }
  if (tokens[0] == "bye" && tokens.size() == 1) {
    msg.kind = WorkerMessage::Kind::Bye;
    return msg;
  }
  if (tokens[0] == "hb" && tokens.size() == 2) {
    const std::optional<std::uint64_t> count = parse_u64(tokens[1]);
    if (!count) return std::nullopt;
    msg.kind = WorkerMessage::Kind::Heartbeat;
    msg.count = *count;
    return msg;
  }
  if (tokens[0] == "start" && tokens.size() == 2) {
    const std::optional<std::uint64_t> index = parse_u64(tokens[1]);
    if (!index || *index >= task_count) return std::nullopt;
    msg.kind = WorkerMessage::Kind::Start;
    msg.task_index = static_cast<std::size_t>(*index);
    return msg;
  }
  if (tokens[0] == "done" && tokens.size() == 3) {
    const std::optional<std::uint64_t> index = parse_u64(tokens[1]);
    const std::optional<std::uint64_t> samples = parse_u64(tokens[2]);
    if (!index || !samples || *index >= task_count) return std::nullopt;
    msg.kind = WorkerMessage::Kind::Done;
    msg.task_index = static_cast<std::size_t>(*index);
    msg.count = *samples;
    return msg;
  }
  return std::nullopt;
}

}  // namespace protocol

// ---- plan flattening --------------------------------------------------------

std::vector<SettingTask> flatten_plan(const StudyPlan& plan) {
  std::vector<SettingTask> tasks;
  for (const ArchPlan& arch_plan : plan.arch_plans) {
    const arch::CpuArch& cpu = arch::architecture(arch_plan.arch);
    for (std::size_t i = 0; i < arch_plan.settings.size(); ++i) {
      SettingTask task;
      task.arch = arch_plan.arch;
      task.setting = arch_plan.settings[i];
      task.config_count = arch_plan.configs_per_setting[i];
      task.key = setting_key(cpu.name, task.setting);
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

// ---- worker main ------------------------------------------------------------

namespace {

[[noreturn]] void apply_chaos(sim::ChaosAction action, int result_fd) {
  switch (action) {
    case sim::ChaosAction::Kill:
      ::raise(SIGKILL);
      break;
    case sim::ChaosAction::Segv:
      ::raise(SIGSEGV);
      break;
    case sim::ChaosAction::Wedge:
      // Stop making progress but stay alive: heartbeats cease, the pipe
      // stays open — only the supervisor's liveness checks can reap us.
      for (;;) ::pause();
    case sim::ChaosAction::Garble: {
      util::write_all(result_fd, "\x01\x02 this is not the protocol \xff\n");
      // Keep "working": the supervisor must kill us on the garbage, we
      // must not conveniently exit on our own.
      for (;;) ::pause();
    }
    case sim::ChaosAction::None:
      break;
  }
  // raise(SIGKILL/SIGSEGV) does not return control here under normal
  // delivery; if a sanitizer or blocked signal interferes, die loudly.
  ::_exit(13);
}

}  // namespace

void worker_main(const WorkerConfig& config,
                 const std::vector<SettingTask>& tasks,
                 const RunnerFactory& make_runner) {
  util::die_with_parent();
  // Shutdown is coordinated over the command pipe; a terminal SIGINT aimed
  // at the process group must not take workers down mid-journal-write.
  ::signal(SIGINT, SIG_IGN);
  ::signal(SIGTERM, SIG_IGN);
  ::signal(SIGPIPE, SIG_IGN);

  try {
    StudyJournal journal(config.journal_dir);
    std::unique_ptr<sim::Runner> runner = make_runner();
    SweepHarness harness(*runner, config.repetitions, config.seed);
    std::unique_ptr<ResiliencePolicy> policy;
    if (config.resilient) {
      policy = std::make_unique<ResiliencePolicy>(config.resilience);
    }
    const sim::ChaosMonkey monkey(config.chaos);
    util::BlockingLineReader commands(config.command_fd);

    // Observer state: which setting is in flight and how far along it is,
    // for heartbeats and deterministic chaos draws.
    std::string current_key;
    int current_attempt = 0;
    std::uint64_t samples_in_setting = 0;
    std::uint64_t total_samples = 0;
    std::int64_t last_heartbeat = util::monotonic_ms();

    harness.set_sample_observer([&] {
      ++samples_in_setting;
      ++total_samples;
      const sim::ChaosAction action =
          monkey.draw(current_key, current_attempt, samples_in_setting);
      if (action != sim::ChaosAction::None) {
        apply_chaos(action, config.result_fd);
      }
      const std::int64_t now = util::monotonic_ms();
      if (now - last_heartbeat >= config.heartbeat_interval_ms) {
        last_heartbeat = now;
        if (!util::write_all(config.result_fd,
                             protocol::format_heartbeat(total_samples))) {
          ::_exit(0);  // supervisor gone; nothing left to report to
        }
      }
    });

    if (!util::write_all(config.result_fd, protocol::format_ready())) {
      ::_exit(0);
    }

    for (;;) {
      const std::optional<std::string> line = commands.next();
      if (!line) ::_exit(0);  // command pipe EOF: supervisor is gone
      const std::optional<protocol::Command> command =
          protocol::parse_command(*line, tasks.size());
      if (!command) ::_exit(12);  // a garbled supervisor is unrecoverable
      if (command->kind == protocol::Command::Kind::Exit) {
        util::write_all(config.result_fd, protocol::format_bye());
        ::_exit(0);
      }
      for (const protocol::LeaseItem& item : command->items) {
        // Drain: between settings, a pending `exit` abandons the rest of
        // the lease (the supervisor requeues it) so shutdown never waits
        // for a whole shard.
        if (const std::optional<std::string> pending = commands.poll_line()) {
          const std::optional<protocol::Command> interrupt =
              protocol::parse_command(*pending, tasks.size());
          if (interrupt && interrupt->kind == protocol::Command::Kind::Exit) {
            util::write_all(config.result_fd, protocol::format_bye());
            ::_exit(0);
          }
          ::_exit(12);  // a second lease mid-lease is a supervisor bug
        }
        if (commands.eof()) ::_exit(0);

        const SettingTask& task = tasks[item.task_index];
        current_key = task.key;
        current_attempt = item.attempt;
        samples_in_setting = 0;
        if (!util::write_all(config.result_fd,
                             protocol::format_start(item.task_index))) {
          ::_exit(0);
        }
        const arch::CpuArch& cpu = arch::architecture(task.arch);
        const Dataset batch = harness.run_setting(
            cpu, task.setting, task.config_count, policy.get());
        // Journal BEFORE reporting: `done` is a promise that the entry is
        // durably on disk in this worker's journal.
        journal.record(task.key, batch);
        if (!util::write_all(
                config.result_fd,
                protocol::format_done(item.task_index, batch.size()))) {
          ::_exit(0);
        }
      }
    }
  } catch (const std::exception&) {
    // Anything escaping the measurement stack (runner construction, journal
    // I/O) is a worker casualty: die with a distinct code, the supervisor
    // requeues the lease and blames the in-flight setting.
    ::_exit(11);
  }
  ::_exit(0);
}

}  // namespace omptune::sweep
