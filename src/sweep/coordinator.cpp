#include "sweep/coordinator.hpp"

#include <dirent.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>

#include "arch/cpu_arch.hpp"
#include "store/compact.hpp"
#include "sweep/journal.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"
#include "util/process.hpp"
#include "util/rng.hpp"

namespace omptune::sweep {

namespace {

constexpr int kPollIntervalMs = 25;
/// Agents dying repeatedly before their `ready` handshake indicate a broken
/// environment, not a poisonous shard.
constexpr int kMaxSpawnFailures = 5;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

std::string make_private_temp_dir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr && *base != '\0' ? base : "/tmp");
  tmpl += "/omptune-coordinator-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    throw_errno("Coordinator: mkdtemp(" + tmpl + ")");
  }
  return std::string(buf.data());
}

std::vector<std::string> list_subdirs(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st{};
    const std::string path = util::path_join(dir, name);
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      out.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

/// Remove a directory containing only regular files.
void remove_flat_dir(const std::string& dir) {
  for (const std::string& name : util::list_files(dir)) {
    util::remove_file(util::path_join(dir, name));
  }
  ::rmdir(dir.c_str());
}

std::string hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

std::size_t plan_sample_count(const StudyPlan& plan) {
  std::size_t total = 0;
  for (const ArchPlan& arch_plan : plan.arch_plans) {
    total += arch_plan.total_samples();
  }
  return total;
}

std::string shard_key_name(std::size_t shard) {
  return "shard-" + std::to_string(shard);
}

// ---- host agent (child process) ---------------------------------------------

/// Everything a forked host agent needs; plain data so fork inheritance is
/// the only transport required.
struct AgentConfig {
  int command_fd = -1;
  int result_fd = -1;
  int slot = 0;
  std::size_t shard_count = 0;
  std::string shardwork_root;  ///< per-shard journals live under here
  std::string shards_dir;      ///< per-shard .omps stores land here
  int repetitions = 4;
  std::uint64_t seed = 0;
  bool resilient = true;
  ResilienceOptions resilience;
  sim::ChaosSpec chaos;
  std::int64_t heartbeat_interval_ms = 25;
};

/// Shave the tail off a published shard store: the "lying host" fault —
/// the store is torn on disk, yet the agent still reports `done`.
void truncate_store_tail(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return;
  const off_t new_size = st.st_size / 2;
  [[maybe_unused]] const int rc = ::truncate(path.c_str(), new_size);
}

/// One collection pass over a leased shard. Runs the journaled resilient
/// study for the shard's slice of the plan (resuming whatever a previous
/// holder journaled), compacts the journal into the shard's .omps store
/// (atomic replace), and applies the shard-level chaos fault drawn for this
/// (shard, attempt).
void agent_collect_shard(const AgentConfig& config, const StudyPlan& plan,
                         const RunnerFactory& make_runner, std::size_t shard,
                         int attempt, std::uint64_t& total_samples,
                         std::int64_t& last_heartbeat) {
  const StudyPlan slice = shard_plan(plan, shard, config.shard_count);
  const sim::ChaosMonkey monkey(config.chaos);

  sim::ShardFault fault =
      monkey.draw_shard_fault(shard_key_name(shard), attempt);
  bool sticky = false;
  if (!config.chaos.sticky_kill_substr.empty()) {
    // A shard holding a poisonous setting kills its holder on EVERY
    // attempt — the deterministic path that must end in shard quarantine.
    for (const SettingTask& task : flatten_plan(slice)) {
      if (task.key.find(config.chaos.sticky_kill_substr) != std::string::npos) {
        fault = sim::ShardFault::KillHolder;
        sticky = true;
        break;
      }
    }
  }

  // Kill/stall faults fire at a deterministic position in the shard's
  // sample stream, so a fault schedule reproduces exactly across runs. A
  // sticky (poisonous-shard) kill fires on the FIRST measured sample of
  // every attempt: journal progress must never let the shard slip past the
  // poison, or the attempt cap would not be reached.
  std::uint64_t trigger = sticky ? 1 : 0;
  if (!sticky && (fault == sim::ShardFault::KillHolder ||
                  fault == sim::ShardFault::StallHeartbeat)) {
    std::uint64_t h = util::hash_combine(
        config.chaos.seed, util::stable_hash("trigger/" + shard_key_name(shard)));
    h = util::hash_combine(h, static_cast<std::uint64_t>(attempt) + 1);
    const std::uint64_t span =
        std::max<std::uint64_t>(plan_sample_count(slice), 1);
    trigger = 1 + util::SplitMix64(h).next() % span;
  }

  std::unique_ptr<sim::Runner> runner = make_runner();
  SweepHarness harness(*runner, config.repetitions, config.seed);
  std::uint64_t samples_in_shard = 0;
  harness.set_sample_observer([&] {
    ++samples_in_shard;
    ++total_samples;
    if (trigger != 0 && samples_in_shard == trigger) {
      if (fault == sim::ShardFault::KillHolder) ::raise(SIGKILL);
      // StallHeartbeat: stay alive, stop all progress — only the
      // coordinator's liveness checks can reclaim the lease.
      for (;;) ::pause();
    }
    const std::int64_t now = util::monotonic_ms();
    if (now - last_heartbeat >= config.heartbeat_interval_ms) {
      last_heartbeat = now;
      if (!util::write_all(config.result_fd,
                           protocol::format_heartbeat(total_samples))) {
        ::_exit(0);  // coordinator gone; nothing left to report to
      }
    }
  });

  StudyRunOptions run_options;
  run_options.journal_dir =
      util::path_join(config.shardwork_root, "s" + std::to_string(shard));
  // Always resume: a re-leased shard continues where its previous holder's
  // journal ends, never recollects finished settings.
  run_options.resume = true;
  run_options.resilient = config.resilient;
  run_options.resilience = config.resilience;
  const Dataset batch = harness.run_study(slice, run_options);

  const std::string store_path = util::path_join(
      config.shards_dir, shard_key_name(shard) + ".omps");
  StudyJournal(run_options.journal_dir).compact(store_path);
  if (fault == sim::ShardFault::TruncateStore) {
    truncate_store_tail(store_path);
  }

  if (!util::write_all(config.result_fd,
                       protocol::format_done(shard, batch.size()))) {
    ::_exit(0);
  }
  if (fault == sim::ShardFault::DuplicateDelivery) {
    util::write_all(config.result_fd,
                    protocol::format_done(shard, batch.size()));
  }
}

/// Host agent entry point; never returns. Speaks the worker protocol with
/// task_index = shard index: the agent is to a shard what a supervisor
/// worker is to a setting.
[[noreturn]] void agent_main(const AgentConfig& config, const StudyPlan& plan,
                             const RunnerFactory& make_runner) {
  util::die_with_parent();
  ::signal(SIGINT, SIG_IGN);
  ::signal(SIGTERM, SIG_IGN);
  ::signal(SIGPIPE, SIG_IGN);

  try {
    util::BlockingLineReader commands(config.command_fd);
    std::uint64_t total_samples = 0;
    std::int64_t last_heartbeat = util::monotonic_ms();

    if (!util::write_all(config.result_fd, protocol::format_ready())) {
      ::_exit(0);
    }
    for (;;) {
      const std::optional<std::string> line = commands.next();
      if (!line) ::_exit(0);  // command pipe EOF: coordinator is gone
      const std::optional<protocol::Command> command =
          protocol::parse_command(*line, config.shard_count);
      if (!command) ::_exit(12);  // a garbled coordinator is unrecoverable
      if (command->kind == protocol::Command::Kind::Exit) {
        util::write_all(config.result_fd, protocol::format_bye());
        ::_exit(0);
      }
      for (const protocol::LeaseItem& item : command->items) {
        if (!util::write_all(config.result_fd,
                             protocol::format_start(item.task_index))) {
          ::_exit(0);
        }
        agent_collect_shard(config, plan, make_runner, item.task_index,
                            item.attempt, total_samples, last_heartbeat);
      }
    }
  } catch (const std::exception&) {
    // Anything escaping the collection stack is a host casualty: die with a
    // distinct code; the coordinator strikes the leased shard.
    ::_exit(11);
  }
  ::_exit(0);
}

// ---- coordinator (parent) side ----------------------------------------------

/// Parent-side handle on one forked host agent.
struct AgentProc {
  pid_t pid = -1;
  int slot = 0;
  util::Pipe cmd;  ///< parent keeps write_fd
  util::Pipe res;  ///< parent keeps read_fd
  util::LineReader reader{-1};
  bool ready = false;
  bool exit_sent = false;
  bool saw_bye = false;
  std::optional<std::size_t> shard;  ///< leased shard, `done` not yet seen
  std::int64_t last_signal = 0;
  std::string kill_reason;

  bool alive() const { return pid >= 0; }
};

}  // namespace

Coordinator::Coordinator(RunnerFactory make_runner, CoordinatorOptions options)
    : make_runner_(std::move(make_runner)), options_(std::move(options)) {
  if (!make_runner_) {
    throw std::invalid_argument("Coordinator: runner factory required");
  }
  if (options_.hosts < 1) {
    throw std::invalid_argument("Coordinator: hosts must be >= 1");
  }
  if (options_.max_shard_attempts < 1) {
    throw std::invalid_argument("Coordinator: max_shard_attempts must be >= 1");
  }
  if (options_.resume && options_.work_dir.empty()) {
    throw std::invalid_argument(
        "Coordinator: --resume requires a persistent work directory");
  }
  options_.compaction_fan_in = std::max<std::size_t>(options_.compaction_fan_in, 2);
}

Dataset Coordinator::run(const StudyPlan& plan, const std::string& store_path) {
  report_ = CoordinatorReport{};
  stop_requested_.store(false);

  const std::vector<SettingTask> tasks = flatten_plan(plan);
  if (tasks.empty()) {
    Dataset empty;
    empty.save_store(store_path);
    report_.store_path = store_path;
    return empty;
  }

  std::size_t shard_count = options_.shards != 0
                                ? options_.shards
                                : 2 * static_cast<std::size_t>(options_.hosts);
  shard_count = std::min(std::max<std::size_t>(shard_count, 1), tasks.size());
  report_.shards_total = shard_count;

  std::string work_dir = options_.work_dir;
  const bool private_dir = work_dir.empty();
  if (private_dir) work_dir = make_private_temp_dir();
  report_.work_dir = work_dir;
  const std::string state_path = util::path_join(work_dir, "coordinator.state");
  const std::string shards_dir = util::path_join(work_dir, "shards");
  const std::string shardwork_root = util::path_join(work_dir, "shardwork");
  util::create_directories(shards_dir);
  util::create_directories(shardwork_root);

  const auto say = [&](const std::string& message) {
    if (options_.progress) options_.progress(message);
  };
  const auto shard_store_path = [&](std::size_t shard) {
    return util::path_join(shards_dir, shard_key_name(shard) + ".omps");
  };

  // Per-shard expected sample counts (validation of delivered stores) and
  // the plan fingerprint guarding --resume against a mismatched plan.
  std::vector<std::size_t> expected(shard_count, 0);
  for (std::size_t i = 0; i < shard_count; ++i) {
    expected[i] = plan_sample_count(shard_plan(plan, i, shard_count));
  }
  std::uint64_t plan_hash = 0x0c00d1a7e5eedULL;
  for (const SettingTask& task : tasks) {
    plan_hash = util::hash_combine(plan_hash, util::stable_hash(task.key));
    plan_hash = util::hash_combine(plan_hash, task.config_count);
  }
  const std::string header =
      "omptune-coordinator v1 plan=" + hex16(plan_hash) +
      " shards=" + std::to_string(shard_count) +
      " reps=" + std::to_string(options_.repetitions) +
      " seed=" + std::to_string(options_.seed);

  LeaseTable table(shard_count);
  bool wal_degraded_warned = false;
  const auto save_state = [&] {
    // Write-ahead: the state file always reflects the table BEFORE the
    // coordinator acts on a transition, so a kill at any point resumes to a
    // consistent view (atomic replace + dir fsync). A checkpoint lost to a
    // storage fault only degrades resume granularity (reconciliation
    // re-validates shard stores against an older table), so the run
    // continues; say so once.
    try {
      util::atomic_write_file(state_path, header + "\n" + table.serialize());
    } catch (const util::StorageError& error) {
      ++report_.wal_write_failures;
      if (!wal_degraded_warned) {
        wal_degraded_warned = true;
        say("coordinator WAL unwritable, continuing with degraded resume: " +
            std::string(error.what()));
      }
    }
  };

  /// nullopt when shard `i`'s store is a valid, complete delivery;
  /// otherwise a human-readable reason.
  const auto validate_shard = [&](std::size_t i) -> std::optional<std::string> {
    try {
      const Dataset delivered = Dataset::load_store(shard_store_path(i));
      if (delivered.size() != expected[i]) {
        return "store has " + std::to_string(delivered.size()) +
               " samples, shard plan expects " + std::to_string(expected[i]);
      }
      return std::nullopt;
    } catch (const std::exception& error) {
      return std::string(error.what());
    }
  };

  /// Deterministic all-quarantined placeholder store for a shard that
  /// exhausted its attempts; also the resume path for a Quarantined shard
  /// whose store did not survive.
  const auto write_quarantine_store = [&](std::size_t i) {
    const ShardLease& lease = table.at(i);
    const std::string full = shard_key_name(i) + " failed " +
                             std::to_string(lease.attempts) +
                             " collection attempts; last evidence: " +
                             lease.evidence;
    Dataset placeholder;
    for (const SettingTask& task :
         flatten_plan(shard_plan(plan, i, shard_count))) {
      placeholder.append(quarantined_setting_dataset(
          arch::architecture(task.arch), task.setting, task.config_count,
          options_.repetitions, options_.seed, full));
    }
    try {
      placeholder.save_store(shard_store_path(i));
    } catch (const util::StorageError& error) {
      // The shard stays parked as Quarantined in the lease table; lenient
      // assembly skips the missing store and a resume re-synthesizes it.
      ++report_.quarantine_store_failures;
      say(shard_key_name(i) +
          " quarantine store unwritable (shard stays parked): " +
          std::string(error.what()));
    }
  };

  // -- startup: fresh wipe or resume reconciliation ---------------------------
  if (!options_.resume) {
    util::remove_file(state_path);
    for (const std::string& name : util::list_files(shards_dir)) {
      util::remove_file(util::path_join(shards_dir, name));
    }
    for (const std::string& sub : list_subdirs(shardwork_root)) {
      remove_flat_dir(util::path_join(shardwork_root, sub));
    }
  } else if (const std::optional<std::string> text = util::read_file(state_path)) {
    // A kill mid-atomic-write leaves "<target>.tmp.<pid>" orphans behind;
    // sweep them before reconciliation so they can never be mistaken for
    // deliveries and never accumulate across crash/resume cycles.
    util::remove_stale_temp_files(work_dir);
    util::remove_stale_temp_files(shards_dir);
    const std::size_t nl = text->find('\n');
    const std::string found_header =
        nl == std::string::npos ? *text : text->substr(0, nl);
    if (found_header != header) {
      throw std::invalid_argument(
          "Coordinator: " + state_path +
          " was written for a different plan/configuration (found '" +
          found_header + "', expected '" + header + "')");
    }
    LeaseTable persisted =
        LeaseTable::parse(nl == std::string::npos ? "" : text->substr(nl + 1));
    if (persisted.size() != shard_count) {
      throw std::invalid_argument(
          "Coordinator: " + state_path + " holds " +
          std::to_string(persisted.size()) + " shards, expected " +
          std::to_string(shard_count));
    }
    table = std::move(persisted);
    for (std::size_t i = 0; i < shard_count; ++i) {
      ShardLease& lease = table.at(i);
      if (lease.state == ShardState::Completed) {
        if (validate_shard(i)) {
          // The WAL promised a validated store but it does not hold up —
          // recollect, keeping the attempt history.
          lease.state = ShardState::Pending;
        } else {
          ++report_.shards_resumed;
          say(shard_key_name(i) + " resumed (completed)");
        }
      } else if (lease.state == ShardState::Quarantined) {
        if (validate_shard(i)) write_quarantine_store(i);
        ++report_.shards_resumed;
        say(shard_key_name(i) + " resumed (quarantined)");
      } else if (!validate_shard(i)) {
        // The agent published a full valid store but died (or the
        // coordinator did) before the WAL recorded the completion.
        lease.state = ShardState::Completed;
        ++report_.shards_resumed;
        say(shard_key_name(i) + " resumed (store adopted)");
      }
    }
    // Shardwork of settled shards is dead weight from an interrupted
    // completion; clear it so a fresh lease can never adopt stale entries.
    for (std::size_t i = 0; i < shard_count; ++i) {
      const ShardState state = table.at(i).state;
      if (state == ShardState::Completed || state == ShardState::Quarantined) {
        remove_flat_dir(util::path_join(shardwork_root, "s" + std::to_string(i)));
      }
    }
  }
  save_state();

  // -- agent pool -------------------------------------------------------------
  const auto settled = [&] {
    return table.count(ShardState::Completed) +
           table.count(ShardState::Quarantined);
  };

  if (!table.all_settled()) {
    util::ShutdownSignalGuard guard;
    std::vector<AgentProc> pool;
    int spawn_failures = 0;

    const auto spawn = [&](int slot) -> AgentProc {
      AgentProc a;
      a.slot = slot;

      AgentConfig config;
      config.command_fd = a.cmd.read_fd;
      config.result_fd = a.res.write_fd;
      config.slot = slot;
      config.shard_count = shard_count;
      config.shardwork_root = shardwork_root;
      config.shards_dir = shards_dir;
      config.repetitions = options_.repetitions;
      config.seed = options_.seed;
      config.resilient = options_.resilient;
      config.resilience = options_.resilience;
      config.chaos = options_.chaos;
      config.heartbeat_interval_ms = options_.heartbeat_interval_ms;

      const pid_t pid = ::fork();
      if (pid < 0) throw_errno("Coordinator: fork()");
      if (pid == 0) {
        for (AgentProc& other : pool) {
          other.cmd.close_read();
          other.cmd.close_write();
          other.res.close_read();
          other.res.close_write();
        }
        a.cmd.close_write();
        a.res.close_read();
        agent_main(config, plan, make_runner_);  // [[noreturn]]
      }
      a.pid = pid;
      a.cmd.close_read();
      a.res.close_write();
      util::set_nonblocking(a.res.read_fd);
      a.reader = util::LineReader(a.res.read_fd);
      a.last_signal = util::monotonic_ms();
      return a;
    };

    const auto kill_agent = [&](AgentProc& a, const std::string& reason) {
      if (!a.alive()) return;
      if (a.kill_reason.empty()) a.kill_reason = reason;
      ::kill(a.pid, SIGKILL);
    };

    const auto complete_shard = [&](std::size_t i, const std::string& how) {
      ShardLease& lease = table.at(i);
      lease.state = ShardState::Completed;
      lease.holder = -1;
      lease.lease_deadline_ms = 0;
      save_state();
      remove_flat_dir(util::path_join(shardwork_root, "s" + std::to_string(i)));
      say(shard_key_name(i) + " completed (" + how + ", " +
          std::to_string(expected[i]) + " samples)");
    };

    const auto strike_shard = [&](std::size_t i, const std::string& evidence) {
      ShardLease& lease = table.at(i);
      lease.state = ShardState::Pending;
      lease.holder = -1;
      lease.lease_deadline_ms = 0;
      ++lease.attempts;
      lease.evidence = evidence;
      if (lease.attempts >= options_.max_shard_attempts) {
        // WAL first, store second: a kill between the two resumes as
        // Quarantined-with-bad-store and re-synthesizes deterministically.
        lease.state = ShardState::Quarantined;
        save_state();
        write_quarantine_store(i);
        remove_flat_dir(
            util::path_join(shardwork_root, "s" + std::to_string(i)));
        say(shard_key_name(i) + " quarantined after " +
            std::to_string(lease.attempts) + " attempts: " + evidence);
      } else {
        const std::int64_t delay = options_.backoff.next_delay_ms(
            options_.seed, shard_key_name(i), lease.attempts,
            lease.prev_delay_ms);
        lease.prev_delay_ms = delay;
        lease.eligible_at_ms = util::monotonic_ms() + delay;
        ++report_.re_leases;
        report_.backoff_ms_total += delay;
        save_state();
        say(shard_key_name(i) + " re-lease in " + std::to_string(delay) +
            "ms (attempt " + std::to_string(lease.attempts) + "): " + evidence);
      }
    };

    const auto handle_done = [&](AgentProc& a, std::size_t i) {
      if (a.shard == i) a.shard.reset();
      ShardLease& lease = table.at(i);
      if (lease.state == ShardState::Completed ||
          lease.state == ShardState::Quarantined) {
        ++report_.duplicate_deliveries;
        say(shard_key_name(i) + " duplicate delivery ignored (h" +
            std::to_string(a.slot) + ")");
        return;
      }
      if (const std::optional<std::string> flaw = validate_shard(i)) {
        ++report_.truncated_stores;
        strike_shard(i, "delivered store failed validation: " + *flaw);
        return;
      }
      complete_shard(i, "delivered by h" + std::to_string(a.slot));
    };

    const auto grant_leases = [&] {
      const std::int64_t now = util::monotonic_ms();
      for (AgentProc& a : pool) {
        if (!a.alive() || !a.ready || a.exit_sent || a.shard) continue;
        const std::optional<std::size_t> next = table.next_leasable(now);
        if (!next) break;
        ShardLease& lease = table.at(*next);
        const std::vector<protocol::LeaseItem> items = {
            protocol::LeaseItem{*next, lease.attempts}};
        if (!util::write_all(a.cmd.write_fd, protocol::format_lease(items))) {
          continue;  // agent died under us; the reaper sorts out the corpse
        }
        lease.state = ShardState::Leased;
        lease.holder = a.slot;
        lease.lease_deadline_ms =
            options_.lease_ttl_ms > 0 ? now + options_.lease_ttl_ms : 0;
        a.shard = *next;
        a.last_signal = now;
        say(shard_key_name(*next) + " leased to h" + std::to_string(a.slot) +
            " (attempt " + std::to_string(lease.attempts) + ")");
      }
    };

    /// Drain and apply every pending message; false on a protocol violation.
    const auto process_lines = [&](AgentProc& a) -> bool {
      for (const std::string& line : a.reader.drain()) {
        const std::optional<protocol::WorkerMessage> msg =
            protocol::parse_worker_message(line, shard_count);
        if (!msg) return false;
        a.last_signal = util::monotonic_ms();
        switch (msg->kind) {
          case protocol::WorkerMessage::Kind::Ready:
            a.ready = true;
            spawn_failures = 0;
            break;
          case protocol::WorkerMessage::Kind::Heartbeat:
            break;  // liveness is the timestamp update above
          case protocol::WorkerMessage::Kind::Start:
            break;  // the lease already tracks the shard
          case protocol::WorkerMessage::Kind::Done:
            handle_done(a, msg->task_index);
            break;
          case protocol::WorkerMessage::Kind::Bye:
            a.saw_bye = true;
            break;
        }
      }
      return !a.reader.garbled();
    };

    const auto handle_death = [&](AgentProc& a,
                                  const util::ExitStatus& status) {
      // Salvage first: the pipe may still hold a `done` written before
      // death, and the shard store may be fully published even though the
      // `done` never made it out.
      process_lines(a);
      const bool clean =
          a.saw_bye || (a.exit_sent && status.exited && status.exit_code == 0);
      const std::string evidence =
          !a.kill_reason.empty() ? a.kill_reason : status.describe();
      if (!clean && a.kill_reason.empty()) ++report_.host_crashes;
      if (!clean && !a.ready && ++spawn_failures > kMaxSpawnFailures) {
        throw std::runtime_error(
            "Coordinator: " + std::to_string(spawn_failures) +
            " consecutive agents died before becoming ready (last: " +
            evidence + ")");
      }
      if (a.shard) {
        const std::size_t i = *a.shard;
        a.shard.reset();
        if (table.at(i).state == ShardState::Leased) {
          if (!validate_shard(i)) {
            // Killed between store publish and `done`: the work is on disk
            // and valid — adopt it, exactly like the supervisor salvaging a
            // dead worker's journal.
            complete_shard(i, "salvaged from dead h" + std::to_string(a.slot));
          } else {
            strike_shard(i, evidence);
          }
        }
      }
      a.pid = -1;
    };

    const auto kill_everything = [&] {
      for (AgentProc& a : pool) {
        if (!a.alive()) continue;
        ::kill(a.pid, SIGKILL);
        util::wait_for(a.pid);
        a.pid = -1;
      }
    };

    try {
      const std::size_t pool_size =
          std::min<std::size_t>(static_cast<std::size_t>(options_.hosts),
                                shard_count - settled());
      pool.reserve(pool_size);
      for (std::size_t slot = 0; slot < pool_size; ++slot) {
        pool.push_back(spawn(static_cast<int>(slot)));
      }

      const std::int64_t grace_ms =
          options_.heartbeat_timeout_ms > 0
              ? std::max<std::int64_t>(options_.heartbeat_timeout_ms, 1000)
              : 10000;
      bool shutting_down = false;
      std::int64_t drain_deadline = 0;

      for (;;) {
        const bool all_done = table.all_settled();
        if (!shutting_down &&
            (all_done || guard.triggered() || stop_requested_.load())) {
          shutting_down = true;
          report_.interrupted = !all_done;
          for (AgentProc& a : pool) {
            if (!a.alive()) continue;
            a.exit_sent = true;
            util::write_all(a.cmd.write_fd, protocol::format_exit());
          }
          drain_deadline = util::monotonic_ms() + grace_ms;
          if (report_.interrupted) {
            say("coordinator interrupted: draining agents (settled " +
                std::to_string(settled()) + "/" + std::to_string(shard_count) +
                " shards)");
          }
        }
        if (shutting_down &&
            std::none_of(pool.begin(), pool.end(),
                         [](const AgentProc& a) { return a.alive(); })) {
          break;
        }

        if (!shutting_down) grant_leases();

        std::vector<struct pollfd> fds;
        fds.push_back({guard.wake_fd(), POLLIN, 0});
        for (const AgentProc& a : pool) {
          if (a.alive() && !a.reader.eof()) {
            fds.push_back({a.reader.fd(), POLLIN, 0});
          }
        }
        ::poll(fds.data(), fds.size(), kPollIntervalMs);
        char sink[64];
        while (::read(guard.wake_fd(), sink, sizeof(sink)) > 0) {
        }

        for (AgentProc& a : pool) {
          if (!a.alive()) continue;
          if (!process_lines(a)) {
            ++report_.protocol_errors;
            kill_agent(a, "garbled result stream (protocol violation)");
          }
        }

        for (AgentProc& a : pool) {
          if (!a.alive()) continue;
          if (const std::optional<util::ExitStatus> status =
                  util::try_wait(a.pid)) {
            const int slot = a.slot;
            handle_death(a, *status);
            if (!shutting_down && !table.all_settled()) {
              // Agent respawn is immediate — re-lease pacing lives on the
              // SHARD backoff gates, and an environment where agents die
              // before `ready` hits the spawn-failure cap instead.
              pool[static_cast<std::size_t>(slot)] = spawn(slot);
              ++report_.respawns;
            }
          }
        }

        const std::int64_t now = util::monotonic_ms();
        for (AgentProc& a : pool) {
          if (!a.alive()) continue;
          const bool owes_progress =
              !a.ready || a.shard.has_value() || a.exit_sent;
          if (options_.heartbeat_timeout_ms > 0 && owes_progress &&
              now - a.last_signal > options_.heartbeat_timeout_ms &&
              a.kill_reason.empty()) {
            ++report_.hang_kills;
            kill_agent(a, "no heartbeat for " +
                              std::to_string(now - a.last_signal) +
                              "ms (hung)");
            continue;
          }
          if (a.shard && a.kill_reason.empty()) {
            const ShardLease& lease = table.at(*a.shard);
            if (lease.lease_deadline_ms > 0 && now > lease.lease_deadline_ms) {
              ++report_.lease_expiries;
              kill_agent(a, "lease expired after " +
                                std::to_string(options_.lease_ttl_ms) + "ms");
              continue;
            }
          }
          if (shutting_down && now > drain_deadline && a.kill_reason.empty()) {
            kill_agent(a, "shutdown grace period expired");
          }
        }
      }
    } catch (...) {
      kill_everything();
      throw;
    }
  }

  // -- report + assembly ------------------------------------------------------
  report_.shards_completed = settled();
  for (std::size_t i = 0; i < shard_count; ++i) {
    const ShardLease& lease = table.at(i);
    if (lease.state != ShardState::Quarantined) continue;
    QuarantinedShard entry;
    entry.shard = i;
    entry.attempts = lease.attempts;
    entry.evidence = lease.evidence;
    for (const SettingTask& task :
         flatten_plan(shard_plan(plan, i, shard_count))) {
      entry.setting_keys.push_back(task.key);
    }
    report_.quarantined_shards.push_back(std::move(entry));
  }

  if (report_.interrupted) {
    // Partial result: whatever is settled, in shard order. The store is NOT
    // published — an interrupted run must never overwrite a complete one.
    Dataset partial;
    for (std::size_t i = 0; i < shard_count; ++i) {
      const ShardState state = table.at(i).state;
      if (state != ShardState::Completed && state != ShardState::Quarantined) {
        continue;
      }
      partial.append(Dataset::load_store(shard_store_path(i)));
    }
    say("resume with --dir=" + work_dir + " --resume");
    return partial;
  }

  // Merge in plan order (the dataset a single-process run would return),
  // attributing any shard-store lie to the shard that told it.
  std::vector<std::string> shard_paths;
  std::vector<Dataset> shard_data;
  shard_paths.reserve(shard_count);
  shard_data.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shard_paths.push_back(shard_store_path(i));
    try {
      shard_data.push_back(Dataset::load_store(shard_paths.back()));
    } catch (const util::DataCorruptionError& error) {
      if (!options_.lenient) throw;
      shard_data.emplace_back();
      report_.skipped_shard_stores.push_back(
          SkippedShardStore{i, shard_paths.back(), error.what()});
      say(shard_key_name(i) + " unreadable at assembly — skipped (lenient)");
    }
  }
  MergeOptions merge_options;
  merge_options.lenient = options_.lenient;
  merge_options.shard_names = shard_paths;
  merge_options.warn = say;
  Dataset merged = merge_shards(plan, shard_data, &report_.merge, merge_options);

  // The lenient summary: per-skip warnings scroll by mid-run, so the final
  // tally restates every skipped shard store (path + reason) and setting.
  if (!report_.skipped_shard_stores.empty() || !report_.merge.skipped.empty()) {
    say("lenient assembly skipped " +
        std::to_string(report_.skipped_shard_stores.size()) +
        " shard store(s) and " + std::to_string(report_.merge.skipped.size()) +
        " setting(s):");
    for (const SkippedShardStore& s : report_.skipped_shard_stores) {
      say("  store " + s.path + ": " + s.reason);
    }
    for (const SkippedSetting& s : report_.merge.skipped) {
      say("  setting " + s.key + ": " + s.reason +
          (s.shards.empty() ? std::string() : " (from " + s.shards + ")"));
    }
  }

  store::TieredOptions tiered;
  tiered.fan_in = options_.compaction_fan_in;
  tiered.lenient = options_.lenient;
  tiered.scratch_dir = util::path_join(work_dir, "compact");
  tiered.progress = options_.progress;
  report_.compaction = store::tiered_compact(shard_paths, store_path, tiered);
  report_.store_path = store_path;

  if (private_dir) {
    util::remove_file(state_path);
    remove_flat_dir(shards_dir);
    for (const std::string& sub : list_subdirs(shardwork_root)) {
      remove_flat_dir(util::path_join(shardwork_root, sub));
    }
    ::rmdir(shardwork_root.c_str());
    ::rmdir(work_dir.c_str());
    report_.work_dir.clear();
  }
  return merged;
}

}  // namespace omptune::sweep
