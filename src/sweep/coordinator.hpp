#pragma once

// Fault-tolerant multi-host sweep coordinator (DESIGN.md §11).
//
// The supervisor (§9) contains faults at the worker-process boundary on ONE
// machine; the coordinator contains them at the HOST boundary: it partitions
// the setting lattice into shard manifests (sweep/sharding), leases one
// manifest at a time to each of N host agents — forked processes standing in
// for cluster nodes, speaking the same line protocol as supervisor workers
// with task_index = shard index — and watches the same three liveness
// signals (death, missed heartbeats, lease-TTL expiry). A reclaimed shard is
// re-leased under exponential backoff with decorrelated jitter
// (sweep/lease), with an attempt cap after which the shard's settings are
// quarantined via the resilience taxonomy, exactly like a poisonous setting
// under the supervisor.
//
// Durability model, end to end:
//   - Agents collect through per-shard write-ahead journals (sweep/journal)
//     that survive agent death; a re-leased shard RESUMES, never restarts.
//   - A finished shard is published as a per-shard .omps store (atomic
//     replace), validated by the coordinator before the shard is marked
//     Completed — a truncated or garbled store is a strike, not a result.
//   - The coordinator persists its own write-ahead state (lease table +
//     shard status, atomic_write_file) before acting on any transition, so
//     a coordinator killed at ANY point resumes with --resume.
//   - Completed shard stores merge LSM-style through store/tiered with
//     crash-safe intermediates and an atomic final publish.
// Because per-setting RNG seeds derive from setting identity, the final
// compacted store of a chaos-ridden, killed-and-resumed run is BYTE
// IDENTICAL to a fault-free run's — the property the tests and CI cmp.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/fault_runner.hpp"
#include "store/tiered.hpp"
#include "sweep/harness.hpp"
#include "sweep/lease.hpp"
#include "sweep/sharding.hpp"
#include "sweep/worker.hpp"

namespace omptune::sweep {

struct CoordinatorOptions {
  /// Host agent processes; clamped to the shard count.
  int hosts = 2;
  /// Shard manifests to partition the plan into; 0 = 2 * hosts. Clamped to
  /// the number of settings. NOTE: the tier structure of the final
  /// compaction depends only on this count, so runs that must produce
  /// byte-identical stores must agree on it (host count is free to differ).
  std::size_t shards = 0;
  /// Coordinator working directory (write-ahead state, per-shard journals
  /// and stores, compaction scratch). Empty = private temp directory,
  /// removed after a completed run — resumability then only spans agent
  /// deaths, not coordinator death.
  std::string work_dir;
  /// Resume from work_dir's write-ahead state (requires work_dir).
  bool resume = false;
  int repetitions = 4;
  std::uint64_t seed = 0x0417D5EEDull;
  /// Guard agent measurements with the retry/quarantine policy.
  bool resilient = true;
  ResilienceOptions resilience;
  /// Wall-clock budget for one leased shard. 0 disables lease expiry.
  std::int64_t lease_ttl_ms = 300000;
  /// An agent silent for this long is presumed wedged and killed. 0
  /// disables the check.
  std::int64_t heartbeat_timeout_ms = 10000;
  /// Agent heartbeat throttle (rides on sample completion).
  std::int64_t heartbeat_interval_ms = 25;
  /// Re-lease pacing for failed shards (decorrelated jitter).
  BackoffPolicy backoff;
  /// Failed collection attempts before a shard's settings are quarantined.
  int max_shard_attempts = 5;
  /// Tolerate corrupt shard stores at final assembly (skip-with-warning)
  /// instead of aborting; also forwarded to the tiered compactor.
  bool lenient = false;
  /// Host-level fault injection executed inside the agents.
  sim::ChaosSpec chaos;
  /// Shard stores merged per group per compaction tier.
  std::size_t compaction_fan_in = 8;
  std::function<void(const std::string&)> progress;
};

/// Evidence trail of a shard that exhausted its attempt cap.
struct QuarantinedShard {
  std::size_t shard = 0;
  int attempts = 0;
  std::string evidence;                   ///< last failure description
  std::vector<std::string> setting_keys;  ///< settings quarantined with it
};

/// One shard store dropped at lenient assembly: its path and why it could
/// not be read (the summary a post-mortem needs without replaying logs).
struct SkippedShardStore {
  std::size_t shard = 0;
  std::string path;
  std::string reason;
};

struct CoordinatorReport {
  std::size_t shards_total = 0;
  std::size_t shards_completed = 0;  ///< includes resumed + quarantined
  std::size_t shards_resumed = 0;    ///< adopted from a previous run's state
  std::size_t host_crashes = 0;      ///< unexpected agent deaths
  std::size_t hang_kills = 0;        ///< heartbeat-timeout reclaims
  std::size_t lease_expiries = 0;    ///< lease-TTL reclaims
  std::size_t protocol_errors = 0;   ///< garbled agent result streams
  std::size_t truncated_stores = 0;  ///< delivered stores failing validation
  std::size_t duplicate_deliveries = 0;  ///< done reports for settled shards
  std::size_t re_leases = 0;         ///< shards re-leased after a strike
  std::size_t respawns = 0;          ///< agents spawned beyond the pool
  std::int64_t backoff_ms_total = 0; ///< re-lease delay scheduled in total
  /// WAL checkpoints lost to storage faults (ENOSPC, EIO...). The run
  /// continues — a later --resume simply reconciles from an older
  /// checkpoint, re-validating shard stores — but resume granularity is
  /// degraded; warned once per run.
  std::size_t wal_write_failures = 0;
  /// Quarantine placeholder stores that could not be written. The shard
  /// stays quarantined in the report; lenient assembly skips it, and a
  /// resume re-synthesizes the placeholder.
  std::size_t quarantine_store_failures = 0;
  std::vector<QuarantinedShard> quarantined_shards;
  MergeReport merge;                 ///< final shard-merge tally
  /// Shard stores skipped at lenient assembly (unreadable/corrupt), with
  /// path and reason; empty in strict mode, which throws instead.
  std::vector<SkippedShardStore> skipped_shard_stores;
  store::TieredReport compaction;    ///< final tiered-compaction tally
  bool interrupted = false;          ///< stopped by signal / request_stop
  std::string work_dir;              ///< where coordinator state lives
  std::string store_path;            ///< the published compacted store
};

/// Runs a StudyPlan across a pool of forked host agents and publishes the
/// tiered-compacted .omps store at `store_path`. Single-shot: construct,
/// run(), read report().
class Coordinator {
 public:
  /// `make_runner` is invoked inside each host agent after fork.
  Coordinator(RunnerFactory make_runner, CoordinatorOptions options);

  /// Collect the plan and publish the compacted store. Returns the merged
  /// dataset in plan order (partial when interrupted — see
  /// report().interrupted; the store is only published on completion).
  /// Throws std::runtime_error if agents cannot be spawned or fail
  /// repeatedly before becoming ready; std::invalid_argument on option
  /// misuse or a resume-state fingerprint mismatch.
  Dataset run(const StudyPlan& plan, const std::string& store_path);

  const CoordinatorReport& report() const { return report_; }
  const CoordinatorOptions& options() const { return options_; }

  /// Ask a running run() to stop as a SIGINT would (reclaim leases, keep
  /// all state, report interrupted). Safe to call from another thread.
  void request_stop() { stop_requested_.store(true); }

 private:
  RunnerFactory make_runner_;
  CoordinatorOptions options_;
  CoordinatorReport report_;
  std::atomic<bool> stop_requested_{false};
};

}  // namespace omptune::sweep
