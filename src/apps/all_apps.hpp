#pragma once

// Accessors for the 15 study applications. Each returns a singleton with
// static storage duration.

#include "apps/application.hpp"

namespace omptune::apps {

// NAS Parallel Benchmarks (loop parallel; input-size sweep).
const Application& bt_app();
const Application& cg_app();
const Application& ep_app();
const Application& ft_app();
const Application& lu_app();
const Application& mg_app();

// BSC OpenMP Tasking Suite (task parallel; input-size sweep).
const Application& alignment_app();
const Application& health_app();
const Application& nqueens_app();
const Application& sort_app();
const Application& strassen_app();

// Proxy applications (loop parallel; thread-count sweep).
const Application& rsbench_app();
const Application& xsbench_app();
const Application& su3bench_app();
const Application& lulesh_app();

}  // namespace omptune::apps
