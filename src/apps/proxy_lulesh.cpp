// LULESH — the Livermore unstructured Lagrangian explicit shock
// hydrodynamics proxy, miniaturized to a structured hex mesh: per timestep,
// element-centred stress/"hourglass" force evaluation, a node-centred force
// gather (each node reads its eight adjacent elements — no scatter races),
// kinematic updates, and a global min-reduction for the stable timestep.
// Many distinct parallel regions per step but a well-balanced mesh: the
// default configuration is already near-optimal (Table VI: 1.004 - 1.062).

#include <array>
#include <cmath>
#include <vector>

#include "apps/all_apps.hpp"
#include "apps/kernel_utils.hpp"

namespace omptune::apps {
namespace {

constexpr std::uint64_t kSeed = 0x1B1E5ULL;

struct Mesh {
  std::int64_t n = 0;       // elements per edge; nodes per edge = n+1
  std::vector<double> pressure, energy, volume;   // element centred
  std::vector<double> fx, fy, fz;                 // node centred forces
  std::vector<double> vx, vy, vz;                 // node velocities
  std::vector<double> px, py, pz;                 // node positions

  explicit Mesh(std::int64_t edge) : n(edge) {
    const std::int64_t elems = n * n * n;
    const std::int64_t nodes = (n + 1) * (n + 1) * (n + 1);
    pressure.assign(static_cast<std::size_t>(elems), 0.0);
    energy.assign(static_cast<std::size_t>(elems), 0.0);
    volume.assign(static_cast<std::size_t>(elems), 1.0);
    for (std::int64_t e = 0; e < elems; ++e) {
      energy[static_cast<std::size_t>(e)] =
          counter_u01(kSeed, static_cast<std::uint64_t>(e));
    }
    fx.assign(static_cast<std::size_t>(nodes), 0.0);
    fy.assign(static_cast<std::size_t>(nodes), 0.0);
    fz.assign(static_cast<std::size_t>(nodes), 0.0);
    vx.assign(static_cast<std::size_t>(nodes), 0.0);
    vy.assign(static_cast<std::size_t>(nodes), 0.0);
    vz.assign(static_cast<std::size_t>(nodes), 0.0);
    px.resize(static_cast<std::size_t>(nodes));
    py.resize(static_cast<std::size_t>(nodes));
    pz.resize(static_cast<std::size_t>(nodes));
    for (std::int64_t i = 0; i <= n; ++i) {
      for (std::int64_t j = 0; j <= n; ++j) {
        for (std::int64_t k = 0; k <= n; ++k) {
          const std::int64_t node = node_idx(i, j, k);
          px[static_cast<std::size_t>(node)] = static_cast<double>(i);
          py[static_cast<std::size_t>(node)] = static_cast<double>(j);
          pz[static_cast<std::size_t>(node)] = static_cast<double>(k);
        }
      }
    }
  }

  std::int64_t elem_idx(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return (i * n + j) * n + k;
  }
  std::int64_t node_idx(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return (i * (n + 1) + j) * (n + 1) + k;
  }
  std::int64_t num_elems() const { return n * n * n; }
  std::int64_t num_nodes() const { return (n + 1) * (n + 1) * (n + 1); }
};

/// EOS + stress update for elements [lo, hi) (element-centred, independent).
void update_stress(Mesh& mesh, std::int64_t lo, std::int64_t hi) {
  for (std::int64_t e = lo; e < hi; ++e) {
    const double v = mesh.volume[static_cast<std::size_t>(e)];
    const double en = mesh.energy[static_cast<std::size_t>(e)];
    // Ideal-gas-like EOS with an artificial-viscosity flavoured term.
    const double q = 0.1 * std::abs(1.0 - v);
    mesh.pressure[static_cast<std::size_t>(e)] = (0.4 * en) / std::max(v, 0.1) + q;
  }
}

/// Node force gather: each node averages the pressure of its adjacent
/// elements and derives a force along the position gradient.
void gather_forces(Mesh& mesh, std::int64_t lo, std::int64_t hi) {
  const std::int64_t n = mesh.n;
  for (std::int64_t node = lo; node < hi; ++node) {
    const std::int64_t i = node / ((n + 1) * (n + 1));
    const std::int64_t j = (node / (n + 1)) % (n + 1);
    const std::int64_t k = node % (n + 1);
    double p_sum = 0.0;
    int count = 0;
    for (std::int64_t di = -1; di <= 0; ++di) {
      for (std::int64_t dj = -1; dj <= 0; ++dj) {
        for (std::int64_t dk = -1; dk <= 0; ++dk) {
          const std::int64_t ei = i + di, ej = j + dj, ek = k + dk;
          if (ei < 0 || ei >= n || ej < 0 || ej >= n || ek < 0 || ek >= n) continue;
          p_sum += mesh.pressure[static_cast<std::size_t>(mesh.elem_idx(ei, ej, ek))];
          ++count;
        }
      }
    }
    const double p = count > 0 ? p_sum / count : 0.0;
    // Push nodes away from the mesh centre in proportion to local pressure.
    const double cx = static_cast<double>(n) / 2.0;
    mesh.fx[static_cast<std::size_t>(node)] = p * (mesh.px[static_cast<std::size_t>(node)] - cx) * 1e-3;
    mesh.fy[static_cast<std::size_t>(node)] = p * (mesh.py[static_cast<std::size_t>(node)] - cx) * 1e-3;
    mesh.fz[static_cast<std::size_t>(node)] = p * (mesh.pz[static_cast<std::size_t>(node)] - cx) * 1e-3;
  }
}

void update_kinematics(Mesh& mesh, double dt, std::int64_t lo, std::int64_t hi) {
  for (std::int64_t node = lo; node < hi; ++node) {
    mesh.vx[static_cast<std::size_t>(node)] += dt * mesh.fx[static_cast<std::size_t>(node)];
    mesh.vy[static_cast<std::size_t>(node)] += dt * mesh.fy[static_cast<std::size_t>(node)];
    mesh.vz[static_cast<std::size_t>(node)] += dt * mesh.fz[static_cast<std::size_t>(node)];
    mesh.px[static_cast<std::size_t>(node)] += dt * mesh.vx[static_cast<std::size_t>(node)];
    mesh.py[static_cast<std::size_t>(node)] += dt * mesh.vy[static_cast<std::size_t>(node)];
    mesh.pz[static_cast<std::size_t>(node)] += dt * mesh.vz[static_cast<std::size_t>(node)];
  }
}

/// Element volume/energy update from the nodal motion (element-centred).
void update_volumes(Mesh& mesh, double dt, std::int64_t lo, std::int64_t hi) {
  const std::int64_t n = mesh.n;
  for (std::int64_t e = lo; e < hi; ++e) {
    const std::int64_t i = e / (n * n);
    const std::int64_t j = (e / n) % n;
    const std::int64_t k = e % n;
    // Approximate volume by the diagonal span of the hex.
    const std::int64_t n000 = mesh.node_idx(i, j, k);
    const std::int64_t n111 = mesh.node_idx(i + 1, j + 1, k + 1);
    const double dx = mesh.px[static_cast<std::size_t>(n111)] - mesh.px[static_cast<std::size_t>(n000)];
    const double dy = mesh.py[static_cast<std::size_t>(n111)] - mesh.py[static_cast<std::size_t>(n000)];
    const double dz = mesh.pz[static_cast<std::size_t>(n111)] - mesh.pz[static_cast<std::size_t>(n000)];
    const double v = std::abs(dx * dy * dz);
    const double dv = v - mesh.volume[static_cast<std::size_t>(e)];
    mesh.volume[static_cast<std::size_t>(e)] = v;
    // pdV work moves energy.
    mesh.energy[static_cast<std::size_t>(e)] = std::max(
        0.0, mesh.energy[static_cast<std::size_t>(e)] -
                 mesh.pressure[static_cast<std::size_t>(e)] * dv * dt);
  }
}

/// Courant-style timestep bound for elements [lo, hi): min over elements.
double courant_min(const Mesh& mesh, std::int64_t lo, std::int64_t hi) {
  double dt = 1e9;
  for (std::int64_t e = lo; e < hi; ++e) {
    const double c = std::sqrt(0.4 * std::max(mesh.energy[static_cast<std::size_t>(e)], 1e-12));
    dt = std::min(dt, 0.3 * std::cbrt(std::max(mesh.volume[static_cast<std::size_t>(e)], 1e-9)) / c);
  }
  return dt;
}

class LuleshApp final : public Application {
 public:
  std::string name() const override { return "lulesh"; }
  std::string suite() const override { return "proxy"; }
  ParallelismKind kind() const override { return ParallelismKind::Loop; }
  SweepMode sweep_mode() const override { return SweepMode::VaryThreads; }

  std::vector<InputSize> input_sizes() const override {
    return {{"small", 0.5}, {"default", 1.0}};
  }

  AppCharacteristics characteristics(const InputSize& input) const override {
    AppCharacteristics c;
    c.base_seconds = 32.0 * input.scale;
    c.serial_fraction = 0.02;
    c.mem_intensity = 0.6;
    c.numa_sensitivity = 0.02;  // contiguous partitions keep pages local
    c.load_imbalance = 0.015;    // structured mesh, balanced
    c.region_rate = 150.0;       // five regions per timestep
    c.iteration_rate = 1.2e6;  // element/node loops
    c.reduction_rate = 30.0;     // dt min-reduction every step
    c.working_set_mb = 1400.0 * input.scale;
    c.alloc_intensity = 0.2;
    return c;
  }

  double run_native(rt::ThreadTeam& team, const InputSize& input,
                    double native_scale) const override {
    Mesh mesh(edge(input, native_scale));
    const int steps = 8;
    team.parallel([&](rt::TeamContext& ctx) {
      double dt = 1e-3;
      for (int step = 0; step < steps; ++step) {
        ctx.parallel_for(0, mesh.num_elems(), [&](std::int64_t lo, std::int64_t hi) {
          update_stress(mesh, lo, hi);
        });
        ctx.parallel_for(0, mesh.num_nodes(), [&](std::int64_t lo, std::int64_t hi) {
          gather_forces(mesh, lo, hi);
        });
        const double dt_local = dt;
        ctx.parallel_for(0, mesh.num_nodes(), [&](std::int64_t lo, std::int64_t hi) {
          update_kinematics(mesh, dt_local, lo, hi);
        });
        ctx.parallel_for(0, mesh.num_elems(), [&](std::int64_t lo, std::int64_t hi) {
          update_volumes(mesh, dt_local, lo, hi);
        });
        const double dt_courant = ctx.parallel_for_reduce(
            0, mesh.num_elems(), rt::ReduceOp::Min,
            [&](std::int64_t lo, std::int64_t hi) { return courant_min(mesh, lo, hi); });
        dt = std::min(1.05 * dt, std::max(1e-6, 0.5 * dt_courant));
      }
    });
    return checksum(mesh);
  }

  double run_reference(const InputSize& input, double native_scale) const override {
    Mesh mesh(edge(input, native_scale));
    const int steps = 8;
    double dt = 1e-3;
    for (int step = 0; step < steps; ++step) {
      update_stress(mesh, 0, mesh.num_elems());
      gather_forces(mesh, 0, mesh.num_nodes());
      update_kinematics(mesh, dt, 0, mesh.num_nodes());
      update_volumes(mesh, dt, 0, mesh.num_elems());
      const double dt_courant = courant_min(mesh, 0, mesh.num_elems());
      dt = std::min(1.05 * dt, std::max(1e-6, 0.5 * dt_courant));
    }
    return checksum(mesh);
  }

  bool deterministic_checksum() const override { return true; }

 private:
  static std::int64_t edge(const InputSize& input, double native_scale) {
    return scaled_dim(30, std::cbrt(input.scale * native_scale), 6);
  }

  static double checksum(const Mesh& mesh) {
    double acc = 0.0;
    for (std::int64_t e = 0; e < mesh.num_elems(); ++e) {
      acc += mesh.energy[static_cast<std::size_t>(e)];
    }
    for (std::int64_t node = 0; node < mesh.num_nodes(); ++node) {
      acc += 0.1 * mesh.px[static_cast<std::size_t>(node)];
    }
    return acc;
  }
};

}  // namespace

const Application& lulesh_app() {
  static const LuleshApp app;
  return app;
}

}  // namespace omptune::apps
