// LU — the NPB SSOR solver, modelled here as red-black successive
// over-relaxation on a 3D 7-point Poisson stencil. The two-colour sweep
// keeps every phase embarrassingly parallel and bit-deterministic while
// preserving the Gauss-Seidel data-flow flavour of SSOR. Many small regions
// per sweep; limited tuning headroom (Table VI: 1.020 - 1.121).

#include <cmath>
#include <vector>

#include "apps/all_apps.hpp"
#include "apps/kernel_utils.hpp"

namespace omptune::apps {
namespace {

constexpr std::uint64_t kSeed = 0x10101u;
constexpr double kOmega = 1.2;  // over-relaxation factor
constexpr int kSweeps = 6;

class LuGrid {
 public:
  explicit LuGrid(std::int64_t n)
      : n_(n),
        u_(static_cast<std::size_t>(n * n * n)),
        f_(static_cast<std::size_t>(n * n * n)) {
    for (std::int64_t i = 0; i < n * n * n; ++i) {
      u_[static_cast<std::size_t>(i)] = counter_u01(kSeed, static_cast<std::uint64_t>(i));
      f_[static_cast<std::size_t>(i)] =
          counter_u01(kSeed ^ 0xFF, static_cast<std::uint64_t>(i)) - 0.5;
    }
  }

  std::int64_t n() const { return n_; }

  std::int64_t idx(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return (i * n_ + j) * n_ + k;
  }

  /// Relax all interior cells of colour `colour` within i-planes [lo, hi).
  void relax_planes(std::int64_t lo, std::int64_t hi, int colour) {
    for (std::int64_t i = std::max<std::int64_t>(lo, 1);
         i < std::min(hi, n_ - 1); ++i) {
      for (std::int64_t j = 1; j < n_ - 1; ++j) {
        for (std::int64_t k = 1; k < n_ - 1; ++k) {
          if (((i + j + k) & 1) != colour) continue;
          const double neighbours =
              u_[static_cast<std::size_t>(idx(i - 1, j, k))] +
              u_[static_cast<std::size_t>(idx(i + 1, j, k))] +
              u_[static_cast<std::size_t>(idx(i, j - 1, k))] +
              u_[static_cast<std::size_t>(idx(i, j + 1, k))] +
              u_[static_cast<std::size_t>(idx(i, j, k - 1))] +
              u_[static_cast<std::size_t>(idx(i, j, k + 1))];
          const double gs =
              (f_[static_cast<std::size_t>(idx(i, j, k))] + neighbours) / 6.0;
          double& cell = u_[static_cast<std::size_t>(idx(i, j, k))];
          cell = (1.0 - kOmega) * cell + kOmega * gs;
        }
      }
    }
  }

  double norm_range(std::int64_t lo, std::int64_t hi) const {
    double acc = 0.0;
    for (std::int64_t i = lo; i < hi; ++i) {
      acc += u_[static_cast<std::size_t>(i)] * u_[static_cast<std::size_t>(i)];
    }
    return acc;
  }

  std::int64_t total() const { return n_ * n_ * n_; }

 private:
  std::int64_t n_;
  std::vector<double> u_;
  std::vector<double> f_;
};

class LuApp final : public Application {
 public:
  std::string name() const override { return "lu"; }
  std::string suite() const override { return "npb"; }
  ParallelismKind kind() const override { return ParallelismKind::Loop; }
  SweepMode sweep_mode() const override { return SweepMode::VaryInputSize; }

  std::vector<InputSize> input_sizes() const override {
    return {{"S", 0.125}, {"W", 0.5}, {"A", 1.0}};
  }

  AppCharacteristics characteristics(const InputSize& input) const override {
    AppCharacteristics c;
    c.base_seconds = 30.0 * input.scale;
    c.serial_fraction = 0.04;    // colour phases serialize at the seams
    c.mem_intensity = 0.7;
    c.numa_sensitivity = 0.08;
    c.load_imbalance = 0.04;     // boundary planes carry less work
    c.region_rate = 120.0 / input.scale;  // two colours x sweeps x norm
    c.iteration_rate = 8.0e4;  // one plane per iteration
    c.reduction_rate = 6.0;
    c.working_set_mb = 1800.0 * input.scale;
    c.alloc_intensity = 0.2;
    return c;
  }

  double run_native(rt::ThreadTeam& team, const InputSize& input,
                    double native_scale) const override {
    LuGrid grid(grid_size(input, native_scale));
    double norm = 0.0;
    team.parallel([&](rt::TeamContext& ctx) {
      for (int sweep = 0; sweep < kSweeps; ++sweep) {
        for (int colour = 0; colour < 2; ++colour) {
          ctx.parallel_for(0, grid.n(), [&](std::int64_t lo, std::int64_t hi) {
            grid.relax_planes(lo, hi, colour);
          });
        }
      }
      const double got = ctx.parallel_for_reduce(
          0, grid.total(), rt::ReduceOp::Sum,
          [&](std::int64_t lo, std::int64_t hi) {
            return grid.norm_range(lo, hi);
          });
      if (ctx.tid() == 0) norm = std::sqrt(got);
    });
    return norm;
  }

  double run_reference(const InputSize& input, double native_scale) const override {
    LuGrid grid(grid_size(input, native_scale));
    for (int sweep = 0; sweep < kSweeps; ++sweep) {
      for (int colour = 0; colour < 2; ++colour) {
        grid.relax_planes(0, grid.n(), colour);
      }
    }
    return std::sqrt(grid.norm_range(0, grid.total()));
  }

 private:
  static std::int64_t grid_size(const InputSize& input, double native_scale) {
    return scaled_dim(64, std::cbrt(input.scale * native_scale), 8);
  }
};

}  // namespace

const Application& lu_app() {
  static const LuApp app;
  return app;
}

}  // namespace omptune::apps
