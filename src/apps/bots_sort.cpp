// Sort — the BOTS parallel mergesort: recursive task decomposition down to
// an insertion/std::sort leaf cutoff, then pairwise merges on the way up.
// Bandwidth-bound with well-balanced halves; modest, architecture-stable
// tuning potential (Table VI: 1.174 - 1.180; paper ran it on A64FX only).

#include <algorithm>
#include <cstdint>
#include <vector>

#include "apps/all_apps.hpp"
#include "apps/kernel_utils.hpp"

namespace omptune::apps {
namespace {

constexpr std::uint64_t kSeed = 0x50F750F7u;
constexpr std::int64_t kBaseElements = 1 << 19;
constexpr std::int64_t kLeafCutoff = 2048;

std::vector<std::uint32_t> make_input(std::int64_t n) {
  std::vector<std::uint32_t> data(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    data[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(
        counter_index(kSeed, static_cast<std::uint64_t>(i), 0xFFFFFFFFull));
  }
  return data;
}

void merge_halves(std::uint32_t* data, std::uint32_t* scratch, std::int64_t lo,
                  std::int64_t mid, std::int64_t hi) {
  std::merge(data + lo, data + mid, data + mid, data + hi, scratch + lo);
  std::copy(scratch + lo, scratch + hi, data + lo);
}

void sort_tasks(rt::TeamContext& ctx, std::uint32_t* data, std::uint32_t* scratch,
                std::int64_t lo, std::int64_t hi) {
  if (hi - lo <= kLeafCutoff) {
    std::sort(data + lo, data + hi);
    return;
  }
  const std::int64_t mid = lo + (hi - lo) / 2;
  ctx.spawn([&ctx, data, scratch, lo, mid] { sort_tasks(ctx, data, scratch, lo, mid); });
  ctx.spawn([&ctx, data, scratch, mid, hi] { sort_tasks(ctx, data, scratch, mid, hi); });
  ctx.taskwait();
  merge_halves(data, scratch, lo, mid, hi);
}

double sample_checksum(const std::vector<std::uint32_t>& data) {
  // Deterministic reduced signature: strided samples + sortedness count.
  double acc = 0.0;
  const std::int64_t n = static_cast<std::int64_t>(data.size());
  const std::int64_t stride = std::max<std::int64_t>(1, n / 977);
  for (std::int64_t i = 0; i < n; i += stride) {
    acc += static_cast<double>(data[static_cast<std::size_t>(i)] % 100003);
  }
  return acc;
}

class SortApp final : public Application {
 public:
  std::string name() const override { return "sort"; }
  std::string suite() const override { return "bots"; }
  ParallelismKind kind() const override { return ParallelismKind::Task; }
  SweepMode sweep_mode() const override { return SweepMode::VaryInputSize; }

  std::vector<InputSize> input_sizes() const override {
    return {{"small", 0.25}, {"medium", 0.5}, {"large", 1.0}};
  }

  AppCharacteristics characteristics(const InputSize& input) const override {
    AppCharacteristics c;
    c.base_seconds = 12.0 * input.scale;
    c.serial_fraction = 0.03;      // the top merges serialize
    c.mem_intensity = 0.75;
    c.numa_sensitivity = 0.3;
    c.load_imbalance = 0.05;       // halves are balanced by construction
    c.region_rate = 2.0;
    c.reduction_rate = 0.0;
    c.task_granularity_us = 7.5;   // fine leaf/merge tasks
    c.iteration_rate = 0.0;
    c.working_set_mb = 512.0 * input.scale;
    c.alloc_intensity = 0.35;
    return c;
  }

  double run_native(rt::ThreadTeam& team, const InputSize& input,
                    double native_scale) const override {
    const std::int64_t n = scaled_dim(kBaseElements, input.scale * native_scale, 4096);
    std::vector<std::uint32_t> data = make_input(n);
    std::vector<std::uint32_t> scratch(static_cast<std::size_t>(n));
    team.parallel([&](rt::TeamContext& ctx) {
      ctx.run_task_root([&ctx, &data, &scratch, n] {
        sort_tasks(ctx, data.data(), scratch.data(), 0, n);
      });
    });
    return sample_checksum(data);
  }

  double run_reference(const InputSize& input, double native_scale) const override {
    const std::int64_t n = scaled_dim(kBaseElements, input.scale * native_scale, 4096);
    std::vector<std::uint32_t> data = make_input(n);
    std::sort(data.begin(), data.end());
    return sample_checksum(data);
  }

  bool deterministic_checksum() const override { return true; }
};

}  // namespace

const Application& sort_app() {
  static const SortApp app;
  return app;
}

}  // namespace omptune::apps
