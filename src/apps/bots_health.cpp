// Health — the BOTS health-care simulation: a hierarchy of villages, each
// timestep processing its patient queue and bubbling referrals up the tree.
// One task per sub-village per step; patient loads are random so the tree
// is strongly imbalanced. Among the strongest tuning responders of the
// study (Table VI: 1.282 - 2.218).

#include <atomic>
#include <vector>

#include "apps/all_apps.hpp"
#include "apps/kernel_utils.hpp"

namespace omptune::apps {
namespace {

constexpr std::uint64_t kSeed = 0x4EA174u;
constexpr int kBranching = 4;
constexpr int kTimesteps = 4;

/// Process one village for one timestep: simulate its patient queue.
/// Returns (patients_treated, severity_accumulator).
std::pair<long, long> process_village(std::uint64_t village_id, int step,
                                      std::int64_t mean_patients) {
  const std::uint64_t tag =
      util::hash_combine(village_id, static_cast<std::uint64_t>(step));
  // Long-tailed patient count: the imbalance source.
  const double u = counter_u01(kSeed, tag);
  const auto patients =
      static_cast<std::int64_t>(static_cast<double>(mean_patients) * (0.2 + 3.6 * u * u));
  long treated = 0;
  long severity = 0;
  for (std::int64_t p = 0; p < patients; ++p) {
    // A small diagnosis state machine per patient.
    std::uint64_t state = util::hash_combine(tag, static_cast<std::uint64_t>(p));
    int visits = 0;
    while ((state & 7u) != 0 && visits < 12) {
      util::SplitMix64 sm(state);
      state = sm.next();
      ++visits;
    }
    treated += 1;
    severity += visits;
  }
  return {treated, severity};
}

void simulate_subtree(rt::TeamContext& ctx, std::uint64_t village_id, int depth,
                      int step, std::int64_t mean_patients,
                      std::atomic<long>& treated, std::atomic<long>& severity) {
  if (depth > 0) {
    for (int child = 0; child < kBranching; ++child) {
      const std::uint64_t child_id = village_id * kBranching + 1 + static_cast<std::uint64_t>(child);
      ctx.spawn([&ctx, child_id, depth, step, mean_patients, &treated, &severity] {
        simulate_subtree(ctx, child_id, depth - 1, step, mean_patients, treated,
                         severity);
      });
    }
  }
  const auto [t, s] = process_village(village_id, step, mean_patients);
  treated.fetch_add(t, std::memory_order_relaxed);
  severity.fetch_add(s, std::memory_order_relaxed);
  if (depth > 0) ctx.taskwait();
}

void simulate_subtree_serial(std::uint64_t village_id, int depth, int step,
                             std::int64_t mean_patients, long& treated,
                             long& severity) {
  if (depth > 0) {
    for (int child = 0; child < kBranching; ++child) {
      simulate_subtree_serial(village_id * kBranching + 1 + static_cast<std::uint64_t>(child),
                              depth - 1, step, mean_patients, treated, severity);
    }
  }
  const auto [t, s] = process_village(village_id, step, mean_patients);
  treated += t;
  severity += s;
}

class HealthApp final : public Application {
 public:
  std::string name() const override { return "health"; }
  std::string suite() const override { return "bots"; }
  ParallelismKind kind() const override { return ParallelismKind::Task; }
  SweepMode sweep_mode() const override { return SweepMode::VaryInputSize; }

  std::vector<InputSize> input_sizes() const override {
    return {{"small", 0.2}, {"medium", 0.5}, {"large", 1.0}};
  }

  AppCharacteristics characteristics(const InputSize& input) const override {
    AppCharacteristics c;
    c.base_seconds = 13.0 * input.scale;
    c.serial_fraction = 0.03;     // per-step joins at the root
    c.mem_intensity = 0.45;       // pointer-ish queue traffic
    c.numa_sensitivity = 0.15;
    c.load_imbalance = 0.7;       // long-tailed patient counts
    c.region_rate = 8.0;          // one region per timestep
    c.reduction_rate = 0.5;
    c.task_granularity_us = 3.6;  // per-village micro tasks
    c.iteration_rate = 0.0;
    c.working_set_mb = 120.0 * input.scale;
    c.alloc_intensity = 0.5;
    return c;
  }

  double run_native(rt::ThreadTeam& team, const InputSize& input,
                    double native_scale) const override {
    const auto [depth, mean_patients] = problem(input, native_scale);
    std::atomic<long> treated{0}, severity{0};
    team.parallel([&](rt::TeamContext& ctx) {
      for (int step = 0; step < kTimesteps; ++step) {
        ctx.run_task_root([&ctx, step, depth = depth,
                           mean_patients = mean_patients, &treated, &severity] {
          simulate_subtree(ctx, 0, depth, step, mean_patients, treated, severity);
        });
      }
    });
    return static_cast<double>(treated.load()) +
           0.25 * static_cast<double>(severity.load());
  }

  double run_reference(const InputSize& input, double native_scale) const override {
    const auto [depth, mean_patients] = problem(input, native_scale);
    long treated = 0, severity = 0;
    for (int step = 0; step < kTimesteps; ++step) {
      simulate_subtree_serial(0, depth, step, mean_patients, treated, severity);
    }
    return static_cast<double>(treated) + 0.25 * static_cast<double>(severity);
  }

  bool deterministic_checksum() const override { return true; }

 private:
  static std::pair<int, std::int64_t> problem(const InputSize& input,
                                              double native_scale) {
    const double scale = input.scale * native_scale;
    const int depth = scale >= 0.5 ? 5 : (scale >= 0.1 ? 4 : 3);
    return {depth, scaled_dim(200, scale, 8)};
  }
};

}  // namespace

const Application& health_app() {
  static const HealthApp app;
  return app;
}

}  // namespace omptune::apps
