// Strassen — the BOTS Strassen matrix multiplication: seven recursive
// sub-multiplications spawned as tasks, with a naive kernel below the
// cutoff. Coarse-grained, compute-bound tasks — almost insensitive to the
// runtime knobs (Table VI: 1.023 - 1.025; paper ran it on A64FX only).

#include <vector>

#include "apps/all_apps.hpp"
#include "apps/kernel_utils.hpp"

namespace omptune::apps {
namespace {

constexpr std::uint64_t kSeed = 0x57A557A5u;
constexpr std::int64_t kCutoff = 32;

/// Dense row-major matrix view with leading dimension.
struct MatView {
  double* data;
  std::int64_t ld;
  double& at(std::int64_t r, std::int64_t c) const { return data[r * ld + c]; }
};

struct ConstMatView {
  const double* data;
  std::int64_t ld;
  double at(std::int64_t r, std::int64_t c) const { return data[r * ld + c]; }
};

void naive_multiply(ConstMatView a, ConstMatView b, MatView c, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) c.at(i, j) = 0.0;
    for (std::int64_t k = 0; k < n; ++k) {
      const double aik = a.at(i, k);
      for (std::int64_t j = 0; j < n; ++j) c.at(i, j) += aik * b.at(k, j);
    }
  }
}

void add(ConstMatView a, ConstMatView b, MatView out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) out.at(i, j) = a.at(i, j) + b.at(i, j);
  }
}

void sub(ConstMatView a, ConstMatView b, MatView out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) out.at(i, j) = a.at(i, j) - b.at(i, j);
  }
}

ConstMatView as_const(MatView m) { return ConstMatView{m.data, m.ld}; }

/// C = A * B by Strassen recursion; spawns the seven products as tasks.
void strassen(rt::TeamContext* ctx, ConstMatView a, ConstMatView b, MatView c,
              std::int64_t n) {
  if (n <= kCutoff) {
    naive_multiply(a, b, c, n);
    return;
  }
  const std::int64_t h = n / 2;
  auto quad = [h](auto m, std::int64_t qr, std::int64_t qc) {
    return decltype(m){m.data + qr * h * m.ld + qc * h, m.ld};
  };
  const ConstMatView a11 = quad(a, 0, 0), a12 = quad(a, 0, 1),
                     a21 = quad(a, 1, 0), a22 = quad(a, 1, 1);
  const ConstMatView b11 = quad(b, 0, 0), b12 = quad(b, 0, 1),
                     b21 = quad(b, 1, 0), b22 = quad(b, 1, 1);

  std::vector<double> products(static_cast<std::size_t>(7 * h * h));
  auto prod = [&products, h](int p) {
    return MatView{products.data() + p * h * h, h};
  };

  auto spawn_product = [&](int p, auto&& compute) {
    if (ctx != nullptr) {
      ctx->spawn([compute, p]() mutable { compute(p); });
    } else {
      compute(p);
    }
  };

  // The temporaries for each product must be private; allocate pairwise.
  std::vector<double> op_storage(static_cast<std::size_t>(14 * h * h));
  auto op = [&op_storage, h](int slot) {
    return MatView{op_storage.data() + slot * h * h, h};
  };

  spawn_product(0, [&, h](int p) {  // M1 = (A11 + A22)(B11 + B22)
    add(a11, a22, op(0), h);
    add(b11, b22, op(1), h);
    strassen(ctx, as_const(op(0)), as_const(op(1)), prod(p), h);
  });
  spawn_product(1, [&, h](int p) {  // M2 = (A21 + A22) B11
    add(a21, a22, op(2), h);
    strassen(ctx, as_const(op(2)), b11, prod(p), h);
  });
  spawn_product(2, [&, h](int p) {  // M3 = A11 (B12 - B22)
    sub(b12, b22, op(3), h);
    strassen(ctx, a11, as_const(op(3)), prod(p), h);
  });
  spawn_product(3, [&, h](int p) {  // M4 = A22 (B21 - B11)
    sub(b21, b11, op(4), h);
    strassen(ctx, a22, as_const(op(4)), prod(p), h);
  });
  spawn_product(4, [&, h](int p) {  // M5 = (A11 + A12) B22
    add(a11, a12, op(5), h);
    strassen(ctx, as_const(op(5)), b22, prod(p), h);
  });
  spawn_product(5, [&, h](int p) {  // M6 = (A21 - A11)(B11 + B12)
    sub(a21, a11, op(6), h);
    add(b11, b12, op(7), h);
    strassen(ctx, as_const(op(6)), as_const(op(7)), prod(p), h);
  });
  spawn_product(6, [&, h](int p) {  // M7 = (A12 - A22)(B21 + B22)
    sub(a12, a22, op(8), h);
    add(b21, b22, op(9), h);
    strassen(ctx, as_const(op(8)), as_const(op(9)), prod(p), h);
  });
  if (ctx != nullptr) ctx->taskwait();

  const MatView c11 = quad(MatView{c.data, c.ld}, 0, 0);
  const MatView c12 = quad(MatView{c.data, c.ld}, 0, 1);
  const MatView c21 = quad(MatView{c.data, c.ld}, 1, 0);
  const MatView c22 = quad(MatView{c.data, c.ld}, 1, 1);
  for (std::int64_t i = 0; i < h; ++i) {
    for (std::int64_t j = 0; j < h; ++j) {
      const double m1 = prod(0).at(i, j), m2 = prod(1).at(i, j),
                   m3 = prod(2).at(i, j), m4 = prod(3).at(i, j),
                   m5 = prod(4).at(i, j), m6 = prod(5).at(i, j),
                   m7 = prod(6).at(i, j);
      c11.at(i, j) = m1 + m4 - m5 + m7;
      c12.at(i, j) = m3 + m5;
      c21.at(i, j) = m2 + m4;
      c22.at(i, j) = m1 - m2 + m3 + m6;
    }
  }
}

std::vector<double> make_matrix(std::int64_t n, std::uint64_t tag) {
  std::vector<double> m(static_cast<std::size_t>(n * n));
  for (std::int64_t i = 0; i < n * n; ++i) {
    m[static_cast<std::size_t>(i)] =
        counter_u01(kSeed ^ tag, static_cast<std::uint64_t>(i)) - 0.5;
  }
  return m;
}

double matrix_checksum(const std::vector<double>& m) {
  double acc = 0.0;
  for (const double v : m) acc += v;
  return acc;
}

class StrassenApp final : public Application {
 public:
  std::string name() const override { return "strassen"; }
  std::string suite() const override { return "bots"; }
  ParallelismKind kind() const override { return ParallelismKind::Task; }
  SweepMode sweep_mode() const override { return SweepMode::VaryInputSize; }

  std::vector<InputSize> input_sizes() const override {
    return {{"small", 0.25}, {"medium", 0.5}, {"large", 1.0}};
  }

  AppCharacteristics characteristics(const InputSize& input) const override {
    AppCharacteristics c;
    c.base_seconds = 22.0 * input.scale;
    c.serial_fraction = 0.03;       // the combine loops on the way up
    c.mem_intensity = 0.35;
    c.numa_sensitivity = 0.15;
    c.load_imbalance = 0.1;         // recursion depths differ slightly
    c.region_rate = 1.0;
    c.reduction_rate = 0.0;
    c.task_granularity_us = 65.0;  // cutoff-level products (~32^3 flops)
    c.iteration_rate = 0.0;
    c.working_set_mb = 600.0 * input.scale;
    c.alloc_intensity = 0.1;
    return c;
  }

  double run_native(rt::ThreadTeam& team, const InputSize& input,
                    double native_scale) const override {
    const std::int64_t n = matrix_size(input, native_scale);
    const std::vector<double> a = make_matrix(n, 0xA);
    const std::vector<double> b = make_matrix(n, 0xB);
    std::vector<double> c(static_cast<std::size_t>(n * n), 0.0);
    team.parallel([&](rt::TeamContext& ctx) {
      ctx.run_task_root([&] {
        strassen(&ctx, ConstMatView{a.data(), n}, ConstMatView{b.data(), n},
                 MatView{c.data(), n}, n);
      });
    });
    return matrix_checksum(c);
  }

  double run_reference(const InputSize& input, double native_scale) const override {
    const std::int64_t n = matrix_size(input, native_scale);
    const std::vector<double> a = make_matrix(n, 0xA);
    const std::vector<double> b = make_matrix(n, 0xB);
    std::vector<double> c(static_cast<std::size_t>(n * n), 0.0);
    strassen(nullptr, ConstMatView{a.data(), n}, ConstMatView{b.data(), n},
             MatView{c.data(), n}, n);
    return matrix_checksum(c);
  }

  bool deterministic_checksum() const override { return true; }

 private:
  static std::int64_t matrix_size(const InputSize& input, double native_scale) {
    return next_pow2(scaled_dim(256, std::sqrt(input.scale * native_scale), 32));
  }
};

}  // namespace

const Application& strassen_app() {
  static const StrassenApp app;
  return app;
}

}  // namespace omptune::apps
