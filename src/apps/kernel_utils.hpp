#pragma once

// Shared helpers for the benchmark kernels: counter-based random numbers
// (order-independent, so parallel and serial runs generate identical data),
// and small numeric utilities.

#include <cmath>
#include <complex>
#include <cstdint>

#include "util/rng.hpp"

namespace omptune::apps {

/// Stateless counter-based uniform in [0,1): hash(seed, index) -> double.
/// Any iteration can compute its own randomness independent of execution
/// order, which keeps parallel kernels deterministic.
inline double counter_u01(std::uint64_t seed, std::uint64_t index) {
  util::SplitMix64 sm(util::hash_combine(seed, index));
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

/// Counter-based uniform integer in [0, n).
inline std::uint64_t counter_index(std::uint64_t seed, std::uint64_t index,
                                   std::uint64_t n) {
  util::SplitMix64 sm(util::hash_combine(seed, index));
  return sm.next() % n;
}

/// Round up to the next power of two (>= 2).
inline std::int64_t next_pow2(std::int64_t n) {
  std::int64_t p = 2;
  while (p < n) p *= 2;
  return p;
}

/// Scale a base dimension by `scale`, with a floor.
inline std::int64_t scaled_dim(std::int64_t base, double scale,
                               std::int64_t floor_value) {
  const auto scaled = static_cast<std::int64_t>(std::llround(base * scale));
  return scaled < floor_value ? floor_value : scaled;
}

using Complex = std::complex<double>;

}  // namespace omptune::apps
