#include <stdexcept>

#include "apps/all_apps.hpp"
#include "apps/application.hpp"

namespace omptune::apps {

std::string to_string(ParallelismKind kind) {
  switch (kind) {
    case ParallelismKind::Loop: return "loop";
    case ParallelismKind::Task: return "task";
  }
  throw std::invalid_argument("to_string: bad ParallelismKind");
}

InputSize Application::default_input() const {
  const auto sizes = input_sizes();
  if (sizes.empty()) {
    throw std::logic_error("Application::default_input: no input sizes");
  }
  return sizes[sizes.size() / 2];
}

const std::vector<const Application*>& registry() {
  // Paper Table VI order (alphabetical by application name).
  static const std::vector<const Application*> apps = {
      &alignment_app(), &bt_app(),      &cg_app(),     &ep_app(),
      &ft_app(),        &health_app(),  &lu_app(),     &lulesh_app(),
      &mg_app(),        &nqueens_app(), &rsbench_app(), &sort_app(),
      &strassen_app(),  &su3bench_app(), &xsbench_app(),
  };
  return apps;
}

const Application& find_application(const std::string& name) {
  for (const Application* app : registry()) {
    if (app->name() == name) return *app;
  }
  throw std::invalid_argument("find_application: unknown application '" + name + "'");
}

}  // namespace omptune::apps
