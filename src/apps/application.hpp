#pragma once

// Benchmark application interface.
//
// Every application of the paper's study (NPB: BT CG EP FT LU MG; BOTS:
// Alignment Health NQueens Sort Strassen; proxies: XSBench RSBench SU3Bench
// LULESH) is implemented twice over:
//
//  - `run_native` executes the real (miniaturized) kernel through the
//    runtime substrate (src/rt), so the algorithms genuinely exercise the
//    schedulers, reductions, tasking and wait policies being tuned;
//  - `characteristics` exports the workload signature (memory-boundness,
//    imbalance, task granularity, region/reduction rates, ...) that the
//    performance model (src/sim) uses to reproduce the paper's full-scale
//    three-architecture sweep on a single host.
//
// `run_reference` is the serial gold version used by tests to verify the
// parallel kernels are computing the right answer.

#include <string>
#include <vector>

#include "rt/thread_team.hpp"

namespace omptune::apps {

/// Dominant parallelism style (paper: NPB + proxies are loop-parallel, BOTS
/// is task-parallel).
enum class ParallelismKind { Loop, Task };

std::string to_string(ParallelismKind kind);

/// Which study dimension is swept for this app (paper IV-B: NPB and BOTS
/// vary the input size at a fixed thread count; the proxy apps vary the
/// thread count at the default input).
enum class SweepMode { VaryInputSize, VaryThreads };

/// Named input size. `scale` multiplies the nominal work of the default
/// input (1.0); native runs additionally apply the harness' native scale so
/// kernels stay test-sized.
struct InputSize {
  std::string name;
  double scale = 1.0;
};

/// Workload signature consumed by the performance model. All rates are per
/// second of serial work; fractions are in [0, 1].
struct AppCharacteristics {
  /// Nominal serial runtime (seconds) of the default input on the Skylake
  /// reference machine; other architectures scale by their speed.
  double base_seconds = 1.0;
  /// Amdahl serial fraction.
  double serial_fraction = 0.02;
  /// 0 = compute bound, 1 = fully memory-bandwidth bound.
  double mem_intensity = 0.5;
  /// Weight of data-locality penalties (thread migration, remote NUMA
  /// accesses). High for irregular-access kernels like XSBench.
  double numa_sensitivity = 0.3;
  /// Relative variance of per-iteration work (0 = perfectly balanced).
  double load_imbalance = 0.0;
  /// Parallel-region transitions per second of work: exposure to the
  /// fork/join wake-up cost the wait policy controls.
  double region_rate = 50.0;
  /// Worksharing iterations per second of work: exposure to the per-chunk
  /// coordination cost of dynamic/guided scheduling.
  double iteration_rate = 2.0e5;
  /// Reductions per second of work: exposure to KMP_FORCE_REDUCTION.
  double reduction_rate = 0.0;
  /// Mean task size in microseconds (task apps; 0 for loop apps).
  double task_granularity_us = 0.0;
  /// Working set in MB (vs. LLC and memory capacity).
  double working_set_mb = 100.0;
  /// Runtime-internal allocation pressure: exposure to KMP_ALIGN_ALLOC.
  double alloc_intensity = 0.1;
};

/// A benchmark application.
class Application {
 public:
  virtual ~Application() = default;

  /// Dataset identifier, e.g. "cg", "nqueens", "xsbench".
  virtual std::string name() const = 0;
  /// Suite label: "npb", "bots" or "proxy".
  virtual std::string suite() const = 0;
  virtual ParallelismKind kind() const = 0;
  virtual SweepMode sweep_mode() const = 0;

  /// Input sizes in increasing order; the first is the smallest.
  virtual std::vector<InputSize> input_sizes() const = 0;
  /// The input used when sweeping threads (default: the middle size).
  InputSize default_input() const;

  /// Workload signature for the performance model at the given input.
  virtual AppCharacteristics characteristics(const InputSize& input) const = 0;

  /// Execute the real kernel through the runtime substrate. `native_scale`
  /// in (0, 1] shrinks the problem for test hosts. Returns a checksum.
  virtual double run_native(rt::ThreadTeam& team, const InputSize& input,
                            double native_scale) const = 0;

  /// Serial gold version; same checksum contract as run_native.
  virtual double run_reference(const InputSize& input, double native_scale) const = 0;

  /// True when the checksums of run_native/run_reference must match exactly
  /// (deterministic kernels); false allows a small relative tolerance
  /// (floating-point reassociation under reductions).
  virtual bool deterministic_checksum() const { return false; }
};

/// All 15 applications, in the paper's Table VI order.
const std::vector<const Application*>& registry();

/// Find by dataset identifier; throws std::invalid_argument if unknown.
const Application& find_application(const std::string& name);

}  // namespace omptune::apps
