// SU3Bench — the MILC lattice-QCD SU(3) matrix-matrix multiply kernel
// (mult_su3_nn): c = a * b for 3x3 complex matrices at every lattice site.
// Pure streaming with a fixed arithmetic intensity (~1 flop/byte): memory
// bandwidth and thread placement decide everything (Table VI: up to 2.279).

#include <vector>

#include "apps/all_apps.hpp"
#include "apps/kernel_utils.hpp"

namespace omptune::apps {
namespace {

constexpr std::uint64_t kSeed = 0x503503u;
constexpr std::int64_t kBaseSites = 30000;
constexpr int kIterations = 4;

struct Su3Matrix {
  Complex e[3][3];
};

Su3Matrix random_matrix(std::uint64_t tag) {
  Su3Matrix m;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      m.e[r][c] = Complex(
          counter_u01(kSeed, util::hash_combine(tag, static_cast<std::uint64_t>(2 * (3 * r + c)))) - 0.5,
          counter_u01(kSeed, util::hash_combine(tag, static_cast<std::uint64_t>(2 * (3 * r + c) + 1))) - 0.5);
    }
  }
  return m;
}

/// c = a * b (mult_su3_nn).
void mult_su3_nn(const Su3Matrix& a, const Su3Matrix& b, Su3Matrix& c) {
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      Complex acc(0.0, 0.0);
      for (int k = 0; k < 3; ++k) acc += a.e[i][k] * b.e[k][j];
      c.e[i][j] = acc;
    }
  }
}

double trace_re(const Su3Matrix& m) {
  return m.e[0][0].real() + m.e[1][1].real() + m.e[2][2].real();
}

class Su3BenchApp final : public Application {
 public:
  std::string name() const override { return "su3bench"; }
  std::string suite() const override { return "proxy"; }
  ParallelismKind kind() const override { return ParallelismKind::Loop; }
  SweepMode sweep_mode() const override { return SweepMode::VaryThreads; }

  std::vector<InputSize> input_sizes() const override {
    return {{"small", 0.5}, {"default", 1.0}};
  }

  AppCharacteristics characteristics(const InputSize& input) const override {
    AppCharacteristics c;
    c.base_seconds = 15.0 * input.scale;
    c.serial_fraction = 0.005;
    c.mem_intensity = 0.9;       // streaming, low arithmetic intensity
    c.numa_sensitivity = 0.85;   // first-touch placement decides bandwidth
    c.load_imbalance = 0.01;
    c.region_rate = 4.0;
    c.iteration_rate = 2.0e6;  // one 3x3 multiply per site
    c.reduction_rate = 1.0;
    c.working_set_mb = 3000.0 * input.scale;
    c.alloc_intensity = 0.05;
    return c;
  }

  double run_native(rt::ThreadTeam& team, const InputSize& input,
                    double native_scale) const override {
    const std::int64_t sites =
        scaled_dim(kBaseSites, input.scale * native_scale, 256);
    std::vector<Su3Matrix> a(static_cast<std::size_t>(sites));
    std::vector<Su3Matrix> b(static_cast<std::size_t>(sites));
    std::vector<Su3Matrix> c(static_cast<std::size_t>(sites));
    for (std::int64_t s = 0; s < sites; ++s) {
      a[static_cast<std::size_t>(s)] = random_matrix(static_cast<std::uint64_t>(2 * s));
      b[static_cast<std::size_t>(s)] = random_matrix(static_cast<std::uint64_t>(2 * s + 1));
    }
    double total = 0.0;
    team.parallel([&](rt::TeamContext& ctx) {
      for (int iter = 0; iter < kIterations; ++iter) {
        ctx.parallel_for(0, sites, [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t s = lo; s < hi; ++s) {
            mult_su3_nn(a[static_cast<std::size_t>(s)], b[static_cast<std::size_t>(s)],
                        c[static_cast<std::size_t>(s)]);
          }
        });
      }
      const double got = ctx.parallel_for_reduce(
          0, sites, rt::ReduceOp::Sum, [&c](std::int64_t lo, std::int64_t hi) {
            double acc = 0.0;
            for (std::int64_t s = lo; s < hi; ++s) {
              acc += trace_re(c[static_cast<std::size_t>(s)]);
            }
            return acc;
          });
      if (ctx.tid() == 0) total = got;
    });
    return total;
  }

  double run_reference(const InputSize& input, double native_scale) const override {
    const std::int64_t sites =
        scaled_dim(kBaseSites, input.scale * native_scale, 256);
    double total = 0.0;
    for (std::int64_t s = 0; s < sites; ++s) {
      const Su3Matrix a = random_matrix(static_cast<std::uint64_t>(2 * s));
      const Su3Matrix b = random_matrix(static_cast<std::uint64_t>(2 * s + 1));
      Su3Matrix c;
      mult_su3_nn(a, b, c);
      total += trace_re(c);
    }
    return total;
  }
};

}  // namespace

const Application& su3bench_app() {
  static const Su3BenchApp app;
  return app;
}

}  // namespace omptune::apps
