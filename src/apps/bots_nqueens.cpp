// NQueens — the BOTS n-queens solution counter: a deep, extremely
// fine-grained task tree (one task per partial placement above a cutoff
// depth). Threads exhaust their deques constantly, so the idle/wake policy
// dominates: this is the application where KMP_LIBRARY=turnaround wins on
// every architecture in the paper (Table VII), with the study's largest
// speedups (Table VI: 2.342 - 4.851).

#include <atomic>
#include <vector>

#include "apps/all_apps.hpp"
#include "apps/kernel_utils.hpp"

namespace omptune::apps {
namespace {

constexpr int kTaskDepthCutoff = 3;

/// Board state for the first `row` rows; columns/diagonals as bitmasks.
struct BoardState {
  int row = 0;
  std::uint32_t cols = 0;
  std::uint32_t diag1 = 0;
  std::uint32_t diag2 = 0;
};

long count_serial(int n, BoardState s) {
  if (s.row == n) return 1;
  long count = 0;
  const std::uint32_t mask = (1u << n) - 1;
  std::uint32_t free_cells = mask & ~(s.cols | s.diag1 | s.diag2);
  while (free_cells != 0) {
    const std::uint32_t cell = free_cells & (~free_cells + 1);  // lowest bit
    free_cells ^= cell;
    count += count_serial(
        n, BoardState{s.row + 1, s.cols | cell, ((s.diag1 | cell) << 1) & mask,
                      (s.diag2 | cell) >> 1});
  }
  return count;
}

void count_tasks(rt::TeamContext& ctx, int n, BoardState s,
                 std::atomic<long>& total) {
  if (s.row >= kTaskDepthCutoff || s.row == n) {
    total.fetch_add(count_serial(n, s), std::memory_order_relaxed);
    return;
  }
  const std::uint32_t mask = (1u << n) - 1;
  std::uint32_t free_cells = mask & ~(s.cols | s.diag1 | s.diag2);
  while (free_cells != 0) {
    const std::uint32_t cell = free_cells & (~free_cells + 1);
    free_cells ^= cell;
    const BoardState child{s.row + 1, s.cols | cell,
                           ((s.diag1 | cell) << 1) & mask, (s.diag2 | cell) >> 1};
    ctx.spawn([&ctx, n, child, &total] { count_tasks(ctx, n, child, total); });
  }
  ctx.taskwait();
}

class NqueensApp final : public Application {
 public:
  std::string name() const override { return "nqueens"; }
  std::string suite() const override { return "bots"; }
  ParallelismKind kind() const override { return ParallelismKind::Task; }
  SweepMode sweep_mode() const override { return SweepMode::VaryInputSize; }

  std::vector<InputSize> input_sizes() const override {
    // Board sizes 10/12/13; work grows super-exponentially, captured by the
    // model scale factors.
    return {{"small", 0.05}, {"medium", 0.4}, {"large", 1.0}};
  }

  AppCharacteristics characteristics(const InputSize& input) const override {
    AppCharacteristics c;
    c.base_seconds = 25.0 * input.scale;
    c.serial_fraction = 0.01;
    c.mem_intensity = 0.02;        // bitboards live in registers/L1
    c.numa_sensitivity = 0.05;
    c.load_imbalance = 0.6;        // subtree sizes vary wildly
    c.region_rate = 2.0;
    c.reduction_rate = 0.1;
    c.task_granularity_us = 1.45;   // very fine tasks: idle/wake dominated
    c.iteration_rate = 0.0;
    c.working_set_mb = 1.0;
    c.alloc_intensity = 0.6;       // one runtime task record per node
    return c;
  }

  double run_native(rt::ThreadTeam& team, const InputSize& input,
                    double native_scale) const override {
    const int n = board_size(input, native_scale);
    std::atomic<long> total{0};
    team.parallel([&](rt::TeamContext& ctx) {
      ctx.run_task_root([&ctx, n, &total] {
        count_tasks(ctx, n, BoardState{}, total);
      });
    });
    return static_cast<double>(total.load());
  }

  double run_reference(const InputSize& input, double native_scale) const override {
    return static_cast<double>(count_serial(board_size(input, native_scale), BoardState{}));
  }

  bool deterministic_checksum() const override { return true; }

 private:
  static int board_size(const InputSize& input, double native_scale) {
    const double scale = input.scale * native_scale;
    if (scale >= 0.4) return 12;
    if (scale >= 0.04) return 10;
    return 8;
  }
};

}  // namespace

const Application& nqueens_app() {
  static const NqueensApp app;
  return app;
}

}  // namespace omptune::apps
