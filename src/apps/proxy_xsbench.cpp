// XSBench — the Monte Carlo macroscopic cross-section lookup kernel:
// each lookup binary-searches a unionized energy grid and gathers
// interpolated cross sections for every nuclide of a random material.
// Essentially pure random memory access — the most NUMA-sensitive workload
// of the study. Table V: tuning barely helps on A64FX (HBM) and Skylake
// (2 NUMA domains), but exceeds 2.6x on Milan (8 domains, expensive remote
// accesses) once threads are placed and bound.

#include <algorithm>
#include <vector>

#include "apps/all_apps.hpp"
#include "apps/kernel_utils.hpp"

namespace omptune::apps {
namespace {

constexpr std::uint64_t kSeed = 0x55BE4C4u;
constexpr int kNuclides = 68;          // "large" H-M has 355; scaled down
constexpr int kXsChannels = 5;         // total/elastic/absorption/fission/nu-fission
constexpr std::int64_t kBaseGrid = 4096;
constexpr std::int64_t kBaseLookups = 40000;
constexpr int kMaterials = 12;
constexpr int kMaxNuclidesPerMaterial = 16;

struct XsData {
  std::vector<double> energy_grid;              // sorted, size G
  std::vector<double> xs;                       // [nuclide][grid][channel]
  std::vector<std::vector<int>> material_nuclides;
  std::int64_t grid_points = 0;

  double xs_at(int nuclide, std::int64_t g, int channel) const {
    return xs[static_cast<std::size_t>(
        (static_cast<std::int64_t>(nuclide) * grid_points + g) * kXsChannels +
        channel)];
  }
};

XsData build_data(std::int64_t grid_points) {
  XsData data;
  data.grid_points = grid_points;
  data.energy_grid.resize(static_cast<std::size_t>(grid_points));
  double e = 0.0;
  for (std::int64_t g = 0; g < grid_points; ++g) {
    e += counter_u01(kSeed, static_cast<std::uint64_t>(g)) + 1e-6;
    data.energy_grid[static_cast<std::size_t>(g)] = e;
  }
  data.xs.resize(static_cast<std::size_t>(kNuclides * grid_points * kXsChannels));
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(data.xs.size()); ++i) {
    data.xs[static_cast<std::size_t>(i)] =
        counter_u01(kSeed ^ 0x1234, static_cast<std::uint64_t>(i));
  }
  data.material_nuclides.resize(kMaterials);
  for (int m = 0; m < kMaterials; ++m) {
    const int count = 2 + static_cast<int>(counter_index(
                              kSeed ^ 0x99, static_cast<std::uint64_t>(m),
                              kMaxNuclidesPerMaterial - 2));
    for (int k = 0; k < count; ++k) {
      data.material_nuclides[static_cast<std::size_t>(m)].push_back(
          static_cast<int>(counter_index(
              kSeed ^ 0xAB, static_cast<std::uint64_t>(m * 100 + k), kNuclides)));
    }
  }
  return data;
}

/// One macroscopic lookup: random energy + material, gather over nuclides.
double lookup(const XsData& data, std::int64_t id) {
  const double max_e = data.energy_grid.back();
  const double e = counter_u01(kSeed ^ 0xE, static_cast<std::uint64_t>(id)) * max_e;
  const int material = static_cast<int>(
      counter_index(kSeed ^ 0xF, static_cast<std::uint64_t>(id), kMaterials));

  const auto it = std::lower_bound(data.energy_grid.begin(),
                                   data.energy_grid.end(), e);
  std::int64_t hi = std::distance(data.energy_grid.begin(), it);
  hi = std::clamp<std::int64_t>(hi, 1, data.grid_points - 1);
  const std::int64_t lo = hi - 1;
  const double e_lo = data.energy_grid[static_cast<std::size_t>(lo)];
  const double e_hi = data.energy_grid[static_cast<std::size_t>(hi)];
  const double f = (e - e_lo) / (e_hi - e_lo);

  double macro = 0.0;
  for (const int nuclide : data.material_nuclides[static_cast<std::size_t>(material)]) {
    for (int c = 0; c < kXsChannels; ++c) {
      const double v_lo = data.xs_at(nuclide, lo, c);
      const double v_hi = data.xs_at(nuclide, hi, c);
      macro += v_lo + f * (v_hi - v_lo);
    }
  }
  return macro;
}

class XsBenchApp final : public Application {
 public:
  std::string name() const override { return "xsbench"; }
  std::string suite() const override { return "proxy"; }
  ParallelismKind kind() const override { return ParallelismKind::Loop; }
  SweepMode sweep_mode() const override { return SweepMode::VaryThreads; }

  std::vector<InputSize> input_sizes() const override {
    return {{"small", 0.5}, {"default", 1.0}};
  }

  AppCharacteristics characteristics(const InputSize& input) const override {
    AppCharacteristics c;
    c.base_seconds = 28.0 * input.scale;
    c.serial_fraction = 0.01;
    c.mem_intensity = 0.95;      // random gathers, no reuse
    c.numa_sensitivity = 0.95;   // every access may be remote
    c.load_imbalance = 0.015;    // lookups are uniform
    c.region_rate = 0.5;         // one big lookup loop
    c.iteration_rate = 8.0e5;  // one lookup per iteration
    c.reduction_rate = 0.5;
    c.working_set_mb = 5600.0 * input.scale;  // grid >> LLC
    c.alloc_intensity = 0.05;
    return c;
  }

  double run_native(rt::ThreadTeam& team, const InputSize& input,
                    double native_scale) const override {
    const XsData data = build_data(scaled_dim(kBaseGrid, input.scale * native_scale, 256));
    const std::int64_t lookups = scaled_dim(kBaseLookups, input.scale * native_scale, 512);
    double total = 0.0;
    team.parallel([&](rt::TeamContext& ctx) {
      const double got = ctx.parallel_for_reduce(
          0, lookups, rt::ReduceOp::Sum,
          [&data](std::int64_t lo, std::int64_t hi) {
            double acc = 0.0;
            for (std::int64_t i = lo; i < hi; ++i) acc += lookup(data, i);
            return acc;
          });
      if (ctx.tid() == 0) total = got;
    });
    return total;
  }

  double run_reference(const InputSize& input, double native_scale) const override {
    const XsData data = build_data(scaled_dim(kBaseGrid, input.scale * native_scale, 256));
    const std::int64_t lookups = scaled_dim(kBaseLookups, input.scale * native_scale, 512);
    double total = 0.0;
    for (std::int64_t i = 0; i < lookups; ++i) total += lookup(data, i);
    return total;
  }
};

}  // namespace

const Application& xsbench_app() {
  static const XsBenchApp app;
  return app;
}

}  // namespace omptune::apps
