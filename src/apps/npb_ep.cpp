// EP — the NPB "embarrassingly parallel" kernel. Generates pairs of uniform
// deviates, applies the Marsaglia polar acceptance test, and tallies
// Gaussian deviates into concentric square annuli. Nearly zero
// communication: only the final global sums are reduced, which makes EP the
// study's lower bound on tuning potential (Table VI: 1.000 - 1.090).

#include <cmath>

#include "apps/all_apps.hpp"
#include "apps/kernel_utils.hpp"

namespace omptune::apps {
namespace {

constexpr std::uint64_t kSeed = 0xEE11EE11u;
constexpr std::int64_t kBasePairs = 1 << 18;

struct EpSums {
  double sx = 0.0;
  double sy = 0.0;
  double accepted = 0.0;
};

EpSums ep_block(std::int64_t lo, std::int64_t hi) {
  EpSums sums;
  for (std::int64_t i = lo; i < hi; ++i) {
    const double u1 = 2.0 * counter_u01(kSeed, 2 * static_cast<std::uint64_t>(i)) - 1.0;
    const double u2 =
        2.0 * counter_u01(kSeed, 2 * static_cast<std::uint64_t>(i) + 1) - 1.0;
    const double t = u1 * u1 + u2 * u2;
    if (t <= 1.0 && t > 0.0) {
      const double factor = std::sqrt(-2.0 * std::log(t) / t);
      sums.sx += u1 * factor;
      sums.sy += u2 * factor;
      sums.accepted += 1.0;
    }
  }
  return sums;
}

class EpApp final : public Application {
 public:
  std::string name() const override { return "ep"; }
  std::string suite() const override { return "npb"; }
  ParallelismKind kind() const override { return ParallelismKind::Loop; }
  SweepMode sweep_mode() const override { return SweepMode::VaryInputSize; }

  std::vector<InputSize> input_sizes() const override {
    return {{"S", 0.25}, {"W", 0.5}, {"A", 1.0}};
  }

  AppCharacteristics characteristics(const InputSize& input) const override {
    AppCharacteristics c;
    c.base_seconds = 14.0 * input.scale;
    c.serial_fraction = 0.002;   // nothing but the final sums is serial
    c.mem_intensity = 0.05;      // pure compute, tiny working set
    c.numa_sensitivity = 0.05;
    c.load_imbalance = 0.02;     // acceptance test varies slightly per block
    c.region_rate = 0.4 / input.scale;  // a handful of regions total
    c.iteration_rate = 2.0e4;  // coarse blocks
    c.reduction_rate = 0.4 / input.scale;
    c.working_set_mb = 1.0;
    c.alloc_intensity = 0.02;
    return c;
  }

  double run_native(rt::ThreadTeam& team, const InputSize& input,
                    double native_scale) const override {
    const std::int64_t pairs =
        scaled_dim(kBasePairs, input.scale * native_scale, 1024);
    double sx = 0.0, sy = 0.0, accepted = 0.0;
    team.parallel([&](rt::TeamContext& ctx) {
      // Three global sums, reduced separately (EP reports sx, sy and the
      // ring counts); each pass re-derives its deviates from the counters.
      const double got_sx = ctx.parallel_for_reduce(
          0, pairs, rt::ReduceOp::Sum,
          [](std::int64_t lo, std::int64_t hi) { return ep_block(lo, hi).sx; });
      const double got_sy = ctx.parallel_for_reduce(
          0, pairs, rt::ReduceOp::Sum,
          [](std::int64_t lo, std::int64_t hi) { return ep_block(lo, hi).sy; });
      const double got_acc = ctx.parallel_for_reduce(
          0, pairs, rt::ReduceOp::Sum, [](std::int64_t lo, std::int64_t hi) {
            return ep_block(lo, hi).accepted;
          });
      if (ctx.tid() == 0) {
        sx = got_sx;
        sy = got_sy;
        accepted = got_acc;
      }
    });
    return sx + 2.0 * sy + 0.5 * accepted;
  }

  double run_reference(const InputSize& input, double native_scale) const override {
    const std::int64_t pairs =
        scaled_dim(kBasePairs, input.scale * native_scale, 1024);
    const EpSums sums = ep_block(0, pairs);
    return sums.sx + 2.0 * sums.sy + 0.5 * sums.accepted;
  }
};

}  // namespace

const Application& ep_app() {
  static const EpApp app;
  return app;
}

}  // namespace omptune::apps
