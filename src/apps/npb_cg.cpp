// CG — the NPB conjugate-gradient kernel: repeated sparse matrix-vector
// products with two dot-product reductions per iteration on an irregular
// (random) sparsity pattern. Memory bound, reduction heavy, and
// NUMA-sensitive — the app for which the paper's Table VII highlights
// KMP_FORCE_REDUCTION / KMP_ALIGN_ALLOC on Skylake.

#include <cmath>
#include <vector>

#include "apps/all_apps.hpp"
#include "apps/kernel_utils.hpp"

namespace omptune::apps {
namespace {

constexpr std::uint64_t kSeed = 0xC6C6C6u;
constexpr std::int64_t kBaseRows = 6000;
constexpr int kNonzerosPerRow = 8;
constexpr int kIterations = 12;

/// Symmetric-structured diagonally dominant sparse matrix in CSR form.
struct CsrMatrix {
  std::int64_t n = 0;
  std::vector<std::int64_t> row_ptr;
  std::vector<std::int64_t> col;
  std::vector<double> val;
};

CsrMatrix build_matrix(std::int64_t n) {
  CsrMatrix m;
  m.n = n;
  m.row_ptr.resize(static_cast<std::size_t>(n) + 1);
  m.row_ptr[0] = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    double offdiag_sum = 0.0;
    // Deterministic pseudo-random off-diagonal pattern.
    for (int k = 0; k < kNonzerosPerRow - 1; ++k) {
      const auto j = static_cast<std::int64_t>(counter_index(
          kSeed, static_cast<std::uint64_t>(i * kNonzerosPerRow + k),
          static_cast<std::uint64_t>(n)));
      const double v =
          counter_u01(kSeed ^ 0x5555, static_cast<std::uint64_t>(i * kNonzerosPerRow + k)) -
          0.5;
      m.col.push_back(j);
      m.val.push_back(v);
      offdiag_sum += std::abs(v);
    }
    // Dominant diagonal keeps the iteration well conditioned.
    m.col.push_back(i);
    m.val.push_back(offdiag_sum + 1.0);
    m.row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(m.col.size());
  }
  return m;
}

double spmv_row_range(const CsrMatrix& m, const std::vector<double>& x,
                      std::vector<double>& y, std::int64_t lo, std::int64_t hi) {
  double local_dot = 0.0;
  for (std::int64_t i = lo; i < hi; ++i) {
    double acc = 0.0;
    for (std::int64_t k = m.row_ptr[static_cast<std::size_t>(i)];
         k < m.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      acc += m.val[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(m.col[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(i)] = acc;
    local_dot += acc * x[static_cast<std::size_t>(i)];
  }
  return local_dot;
}

double cg_reference(std::int64_t n) {
  const CsrMatrix m = build_matrix(n);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  std::vector<double> r(static_cast<std::size_t>(n));
  std::vector<double> p(static_cast<std::size_t>(n));
  std::vector<double> q(static_cast<std::size_t>(n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    r[static_cast<std::size_t>(i)] = counter_u01(kSeed ^ 0xB, static_cast<std::uint64_t>(i));
    p[static_cast<std::size_t>(i)] = r[static_cast<std::size_t>(i)];
  }
  double rho = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    rho += r[static_cast<std::size_t>(i)] * r[static_cast<std::size_t>(i)];
  }
  for (int iter = 0; iter < kIterations; ++iter) {
    const double pq = spmv_row_range(m, p, q, 0, n);
    const double alpha = rho / pq;
    double rho_next = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] += alpha * p[static_cast<std::size_t>(i)];
      r[static_cast<std::size_t>(i)] -= alpha * q[static_cast<std::size_t>(i)];
      rho_next += r[static_cast<std::size_t>(i)] * r[static_cast<std::size_t>(i)];
    }
    const double beta = rho_next / rho;
    rho = rho_next;
    for (std::int64_t i = 0; i < n; ++i) {
      p[static_cast<std::size_t>(i)] =
          r[static_cast<std::size_t>(i)] + beta * p[static_cast<std::size_t>(i)];
    }
  }
  double norm = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    norm += x[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
  }
  return std::sqrt(norm);
}

class CgApp final : public Application {
 public:
  std::string name() const override { return "cg"; }
  std::string suite() const override { return "npb"; }
  ParallelismKind kind() const override { return ParallelismKind::Loop; }
  SweepMode sweep_mode() const override { return SweepMode::VaryInputSize; }

  std::vector<InputSize> input_sizes() const override {
    return {{"S", 0.3}, {"W", 0.6}, {"A", 1.0}};
  }

  AppCharacteristics characteristics(const InputSize& input) const override {
    AppCharacteristics c;
    c.base_seconds = 20.0 * input.scale;
    c.serial_fraction = 0.015;
    c.mem_intensity = 0.85;      // irregular gather, bandwidth bound
    c.numa_sensitivity = 0.68;   // random column accesses cross domains
    c.load_imbalance = 0.05;
    c.region_rate = 90.0 / input.scale;  // fixed iterations, shrinking work
    c.iteration_rate = 3.0e5 / input.scale;  // one row per iteration
    c.reduction_rate = 45.0;     // two dots + norm per iteration
    c.working_set_mb = 2600.0 * input.scale;
    c.alloc_intensity = 0.5;     // reduction scratch is on the hot path
    return c;
  }

  double run_native(rt::ThreadTeam& team, const InputSize& input,
                    double native_scale) const override {
    const std::int64_t n = scaled_dim(kBaseRows, input.scale * native_scale, 64);
    const CsrMatrix m = build_matrix(n);
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    std::vector<double> r(static_cast<std::size_t>(n));
    std::vector<double> p(static_cast<std::size_t>(n));
    std::vector<double> q(static_cast<std::size_t>(n), 0.0);
    for (std::int64_t i = 0; i < n; ++i) {
      r[static_cast<std::size_t>(i)] = counter_u01(kSeed ^ 0xB, static_cast<std::uint64_t>(i));
      p[static_cast<std::size_t>(i)] = r[static_cast<std::size_t>(i)];
    }

    double norm = 0.0;
    team.parallel([&](rt::TeamContext& ctx) {
      double rho = ctx.parallel_for_reduce(
          0, n, rt::ReduceOp::Sum, [&](std::int64_t lo, std::int64_t hi) {
            double acc = 0.0;
            for (std::int64_t i = lo; i < hi; ++i) {
              acc += r[static_cast<std::size_t>(i)] * r[static_cast<std::size_t>(i)];
            }
            return acc;
          });
      for (int iter = 0; iter < kIterations; ++iter) {
        const double pq = ctx.parallel_for_reduce(
            0, n, rt::ReduceOp::Sum, [&](std::int64_t lo, std::int64_t hi) {
              return spmv_row_range(m, p, q, lo, hi);
            });
        const double alpha = rho / pq;
        const double rho_next = ctx.parallel_for_reduce(
            0, n, rt::ReduceOp::Sum, [&](std::int64_t lo, std::int64_t hi) {
              double acc = 0.0;
              for (std::int64_t i = lo; i < hi; ++i) {
                x[static_cast<std::size_t>(i)] += alpha * p[static_cast<std::size_t>(i)];
                r[static_cast<std::size_t>(i)] -= alpha * q[static_cast<std::size_t>(i)];
                acc += r[static_cast<std::size_t>(i)] * r[static_cast<std::size_t>(i)];
              }
              return acc;
            });
        const double beta = rho_next / rho;
        rho = rho_next;
        ctx.parallel_for(0, n, [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            p[static_cast<std::size_t>(i)] =
                r[static_cast<std::size_t>(i)] + beta * p[static_cast<std::size_t>(i)];
          }
        });
      }
      const double got = ctx.parallel_for_reduce(
          0, n, rt::ReduceOp::Sum, [&](std::int64_t lo, std::int64_t hi) {
            double acc = 0.0;
            for (std::int64_t i = lo; i < hi; ++i) {
              acc += x[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
            }
            return acc;
          });
      if (ctx.tid() == 0) norm = std::sqrt(got);
    });
    return norm;
  }

  double run_reference(const InputSize& input, double native_scale) const override {
    return cg_reference(scaled_dim(kBaseRows, input.scale * native_scale, 64));
  }
};

}  // namespace

const Application& cg_app() {
  static const CgApp app;
  return app;
}

}  // namespace omptune::apps
