// RSBench — the multipole-method cross-section kernel: instead of table
// lookups (XSBench), each lookup evaluates a sum over complex resonance
// poles via the windowed multipole representation. Compute-heavy complex
// arithmetic with small tables — far less memory pressure than XSBench,
// hence the smaller tuning headroom (Table VI: 1.004 - 1.213).

#include <vector>

#include "apps/all_apps.hpp"
#include "apps/kernel_utils.hpp"

namespace omptune::apps {
namespace {

constexpr std::uint64_t kSeed = 0x25BE4C4u;
constexpr int kNuclides = 32;
constexpr int kPolesPerNuclide = 48;
constexpr int kWindows = 8;
constexpr std::int64_t kBaseLookups = 24000;
constexpr int kMaterials = 12;
constexpr int kNuclidesPerMaterial = 6;

struct Pole {
  Complex position;   // complex resonance energy
  Complex residue_t;  // total-xs residue
  Complex residue_a;  // absorption residue
};

struct RsData {
  std::vector<Pole> poles;  // [nuclide][pole]
  std::vector<double> pseudo_k0rs;  // per nuclide background
  std::vector<std::vector<int>> material_nuclides;

  const Pole& pole(int nuclide, int p) const {
    return poles[static_cast<std::size_t>(nuclide * kPolesPerNuclide + p)];
  }
};

RsData build_data() {
  RsData data;
  data.poles.resize(kNuclides * kPolesPerNuclide);
  for (int n = 0; n < kNuclides; ++n) {
    for (int p = 0; p < kPolesPerNuclide; ++p) {
      const auto tag = static_cast<std::uint64_t>(n * kPolesPerNuclide + p);
      data.poles[static_cast<std::size_t>(n * kPolesPerNuclide + p)] = Pole{
          Complex(counter_u01(kSeed, 4 * tag) * 100.0,
                  0.1 + counter_u01(kSeed, 4 * tag + 1)),
          Complex(counter_u01(kSeed, 4 * tag + 2) - 0.5,
                  counter_u01(kSeed, 4 * tag + 3) - 0.5),
          Complex(counter_u01(kSeed ^ 0xA, 4 * tag) - 0.5,
                  counter_u01(kSeed ^ 0xA, 4 * tag + 1) - 0.5),
      };
    }
    data.pseudo_k0rs.push_back(counter_u01(kSeed ^ 0xB, static_cast<std::uint64_t>(n)));
  }
  data.material_nuclides.resize(kMaterials);
  for (int m = 0; m < kMaterials; ++m) {
    for (int k = 0; k < kNuclidesPerMaterial; ++k) {
      data.material_nuclides[static_cast<std::size_t>(m)].push_back(
          static_cast<int>(counter_index(
              kSeed ^ 0xC, static_cast<std::uint64_t>(m * 100 + k), kNuclides)));
    }
  }
  return data;
}

/// Windowed multipole evaluation for one nuclide at energy e.
double evaluate_nuclide(const RsData& data, int nuclide, double e) {
  // Select the pole window for this energy; evaluate only its poles.
  const int window = static_cast<int>(e / 100.0 * kWindows) % kWindows;
  const int per_window = kPolesPerNuclide / kWindows;
  const Complex sqrt_e(std::sqrt(e), 0.0);
  Complex sigma_t(0.0, 0.0);
  Complex sigma_a(0.0, 0.0);
  for (int p = window * per_window; p < (window + 1) * per_window; ++p) {
    const Pole& pole = data.pole(nuclide, p);
    const Complex psi = Complex(1.0, 0.0) / (pole.position - sqrt_e);
    sigma_t += pole.residue_t * psi;
    sigma_a += pole.residue_a * psi;
  }
  // Background polynomial (curve-fit term of the real kernel).
  const double k0rs = data.pseudo_k0rs[static_cast<std::size_t>(nuclide)];
  const double background = k0rs * (1.0 + 0.1 * e + 0.01 * e * e) / (1.0 + e);
  return sigma_t.real() + 0.5 * sigma_a.real() + background;
}

double lookup(const RsData& data, std::int64_t id) {
  const double e =
      counter_u01(kSeed ^ 0xE, static_cast<std::uint64_t>(id)) * 99.0 + 0.5;
  const int material = static_cast<int>(
      counter_index(kSeed ^ 0xF, static_cast<std::uint64_t>(id), kMaterials));
  double macro = 0.0;
  for (const int nuclide : data.material_nuclides[static_cast<std::size_t>(material)]) {
    macro += evaluate_nuclide(data, nuclide, e);
  }
  return macro;
}

class RsBenchApp final : public Application {
 public:
  std::string name() const override { return "rsbench"; }
  std::string suite() const override { return "proxy"; }
  ParallelismKind kind() const override { return ParallelismKind::Loop; }
  SweepMode sweep_mode() const override { return SweepMode::VaryThreads; }

  std::vector<InputSize> input_sizes() const override {
    return {{"small", 0.5}, {"default", 1.0}};
  }

  AppCharacteristics characteristics(const InputSize& input) const override {
    AppCharacteristics c;
    c.base_seconds = 24.0 * input.scale;
    c.serial_fraction = 0.01;
    c.mem_intensity = 0.25;      // pole tables are compact
    c.numa_sensitivity = 0.35;
    c.load_imbalance = 0.03;
    c.region_rate = 0.5;
    c.iteration_rate = 3.0e5;
    c.reduction_rate = 0.5;
    c.working_set_mb = 900.0;  // pole windows stream at scale
    c.alloc_intensity = 0.05;
    return c;
  }

  double run_native(rt::ThreadTeam& team, const InputSize& input,
                    double native_scale) const override {
    const RsData data = build_data();
    const std::int64_t lookups =
        scaled_dim(kBaseLookups, input.scale * native_scale, 512);
    double total = 0.0;
    team.parallel([&](rt::TeamContext& ctx) {
      const double got = ctx.parallel_for_reduce(
          0, lookups, rt::ReduceOp::Sum,
          [&data](std::int64_t lo, std::int64_t hi) {
            double acc = 0.0;
            for (std::int64_t i = lo; i < hi; ++i) acc += lookup(data, i);
            return acc;
          });
      if (ctx.tid() == 0) total = got;
    });
    return total;
  }

  double run_reference(const InputSize& input, double native_scale) const override {
    const RsData data = build_data();
    const std::int64_t lookups =
        scaled_dim(kBaseLookups, input.scale * native_scale, 512);
    double total = 0.0;
    for (std::int64_t i = 0; i < lookups; ++i) total += lookup(data, i);
    return total;
  }
};

}  // namespace

const Application& rsbench_app() {
  static const RsBenchApp app;
  return app;
}

}  // namespace omptune::apps
