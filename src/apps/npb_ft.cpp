// FT — the NPB 3D FFT kernel: radix-2 Cooley-Tukey transforms applied along
// each dimension of a 3D complex array, followed by a spectral evolution
// step. The dimension passes stream the whole array with strided access —
// bandwidth hungry and placement sensitive (Table VI: 1.010 - 1.545).

#include <cmath>
#include <vector>

#include "apps/all_apps.hpp"
#include "apps/kernel_utils.hpp"

namespace omptune::apps {
namespace {

constexpr std::uint64_t kSeed = 0xF7F7F7u;

struct Dims {
  std::int64_t nx, ny, nz;
};

Dims dims_for(double scale) {
  // Base W-class-like grid 64x32x32, scaled by cbrt in each dimension and
  // rounded to powers of two (radix-2 FFT requirement).
  const double f = std::cbrt(scale);
  return Dims{next_pow2(scaled_dim(64, f, 4)), next_pow2(scaled_dim(32, f, 4)),
              next_pow2(scaled_dim(32, f, 4))};
}

/// In-place radix-2 FFT of a length-n (power of two) buffer.
void fft1d(Complex* a, std::int64_t n) {
  // Bit-reversal permutation.
  for (std::int64_t i = 1, j = 0; i < n; ++i) {
    std::int64_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::int64_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * M_PI / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::int64_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::int64_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

class FtGrid {
 public:
  explicit FtGrid(Dims d)
      : d_(d), data_(static_cast<std::size_t>(d.nx * d.ny * d.nz)) {
    for (std::int64_t i = 0; i < d.nx * d.ny * d.nz; ++i) {
      data_[static_cast<std::size_t>(i)] =
          Complex(counter_u01(kSeed, static_cast<std::uint64_t>(2 * i)),
                  counter_u01(kSeed, static_cast<std::uint64_t>(2 * i + 1)));
    }
  }

  std::int64_t index(std::int64_t x, std::int64_t y, std::int64_t z) const {
    return (z * d_.ny + y) * d_.nx + x;
  }

  /// FFT along x for pencil p in [0, ny*nz).
  void fft_x_pencil(std::int64_t p) {
    Complex* row = data_.data() + p * d_.nx;
    fft1d(row, d_.nx);
  }

  /// FFT along y for pencil p in [0, nx*nz): gather-scatter via a local
  /// buffer (the NPB work-array idiom).
  void fft_y_pencil(std::int64_t p, std::vector<Complex>& scratch) {
    const std::int64_t x = p % d_.nx;
    const std::int64_t z = p / d_.nx;
    scratch.resize(static_cast<std::size_t>(d_.ny));
    for (std::int64_t y = 0; y < d_.ny; ++y) {
      scratch[static_cast<std::size_t>(y)] = data_[static_cast<std::size_t>(index(x, y, z))];
    }
    fft1d(scratch.data(), d_.ny);
    for (std::int64_t y = 0; y < d_.ny; ++y) {
      data_[static_cast<std::size_t>(index(x, y, z))] = scratch[static_cast<std::size_t>(y)];
    }
  }

  void fft_z_pencil(std::int64_t p, std::vector<Complex>& scratch) {
    const std::int64_t x = p % d_.nx;
    const std::int64_t y = p / d_.nx;
    scratch.resize(static_cast<std::size_t>(d_.nz));
    for (std::int64_t z = 0; z < d_.nz; ++z) {
      scratch[static_cast<std::size_t>(z)] = data_[static_cast<std::size_t>(index(x, y, z))];
    }
    fft1d(scratch.data(), d_.nz);
    for (std::int64_t z = 0; z < d_.nz; ++z) {
      data_[static_cast<std::size_t>(index(x, y, z))] = scratch[static_cast<std::size_t>(z)];
    }
  }

  /// Spectral evolution: scale each mode by exp(-alpha * k^2)-style factor.
  void evolve(std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const double k2 = static_cast<double>(i % 97);
      data_[static_cast<std::size_t>(i)] *= std::exp(-1e-4 * k2);
    }
  }

  double checksum_range(std::int64_t lo, std::int64_t hi) const {
    double acc = 0.0;
    for (std::int64_t i = lo; i < hi; ++i) {
      acc += data_[static_cast<std::size_t>(i)].real() +
             0.5 * data_[static_cast<std::size_t>(i)].imag();
    }
    return acc;
  }

  const Dims& dims() const { return d_; }
  std::int64_t total() const { return d_.nx * d_.ny * d_.nz; }

 private:
  Dims d_;
  std::vector<Complex> data_;
};

class FtApp final : public Application {
 public:
  std::string name() const override { return "ft"; }
  std::string suite() const override { return "npb"; }
  ParallelismKind kind() const override { return ParallelismKind::Loop; }
  SweepMode sweep_mode() const override { return SweepMode::VaryInputSize; }

  std::vector<InputSize> input_sizes() const override {
    return {{"S", 0.125}, {"W", 0.5}, {"A", 1.0}};
  }

  AppCharacteristics characteristics(const InputSize& input) const override {
    AppCharacteristics c;
    c.base_seconds = 18.0 * input.scale;
    c.serial_fraction = 0.03;
    c.mem_intensity = 0.8;       // strided whole-array passes
    c.numa_sensitivity = 0.55;   // transposed access order across passes
    c.load_imbalance = 0.01;
    c.region_rate = 30.0 / input.scale;
    c.iteration_rate = 1.5e5;  // one pencil per iteration
    c.reduction_rate = 3.0;
    c.working_set_mb = 2600.0 * input.scale;
    c.alloc_intensity = 0.25;
    return c;
  }

  double run_native(rt::ThreadTeam& team, const InputSize& input,
                    double native_scale) const override {
    FtGrid grid(dims_for(input.scale * native_scale));
    const Dims& d = grid.dims();
    double checksum = 0.0;
    team.parallel([&](rt::TeamContext& ctx) {
      ctx.parallel_for(0, d.ny * d.nz, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t p = lo; p < hi; ++p) grid.fft_x_pencil(p);
      });
      ctx.parallel_for(0, d.nx * d.nz, [&](std::int64_t lo, std::int64_t hi) {
        std::vector<Complex> scratch;
        for (std::int64_t p = lo; p < hi; ++p) grid.fft_y_pencil(p, scratch);
      });
      ctx.parallel_for(0, d.nx * d.ny, [&](std::int64_t lo, std::int64_t hi) {
        std::vector<Complex> scratch;
        for (std::int64_t p = lo; p < hi; ++p) grid.fft_z_pencil(p, scratch);
      });
      ctx.parallel_for(0, grid.total(), [&](std::int64_t lo, std::int64_t hi) {
        grid.evolve(lo, hi);
      });
      const double got = ctx.parallel_for_reduce(
          0, grid.total(), rt::ReduceOp::Sum,
          [&](std::int64_t lo, std::int64_t hi) {
            return grid.checksum_range(lo, hi);
          });
      if (ctx.tid() == 0) checksum = got;
    });
    return checksum;
  }

  double run_reference(const InputSize& input, double native_scale) const override {
    FtGrid grid(dims_for(input.scale * native_scale));
    const Dims& d = grid.dims();
    std::vector<Complex> scratch;
    for (std::int64_t p = 0; p < d.ny * d.nz; ++p) grid.fft_x_pencil(p);
    for (std::int64_t p = 0; p < d.nx * d.nz; ++p) grid.fft_y_pencil(p, scratch);
    for (std::int64_t p = 0; p < d.nx * d.ny; ++p) grid.fft_z_pencil(p, scratch);
    grid.evolve(0, grid.total());
    return grid.checksum_range(0, grid.total());
  }
};

}  // namespace

const Application& ft_app() {
  static const FtApp app;
  return app;
}

}  // namespace omptune::apps
