// MG — the NPB multigrid kernel: V-cycles on a 3D Poisson problem with
// Jacobi smoothing (double buffered, so every phase is deterministic and
// race free), residual computation, injection restriction and trilinear-ish
// prolongation. The coarse levels run tiny loops, so the fork/join and
// worksharing overheads the environment variables control are a large
// fraction of runtime (Table VI: 1.011 - 2.167).

#include <cmath>
#include <functional>
#include <vector>

#include "apps/all_apps.hpp"
#include "apps/kernel_utils.hpp"

namespace omptune::apps {
namespace {

constexpr std::uint64_t kSeed = 0x316316u;
constexpr int kVCycles = 2;
constexpr int kPreSmooth = 2;
constexpr int kPostSmooth = 1;
constexpr int kCoarseSmooth = 8;

/// One grid level: solution u, right-hand side f, and a scratch buffer.
struct Level {
  std::int64_t n = 0;
  std::vector<double> u, f, scratch;

  explicit Level(std::int64_t size)
      : n(size),
        u(static_cast<std::size_t>(size * size * size), 0.0),
        f(static_cast<std::size_t>(size * size * size), 0.0),
        scratch(static_cast<std::size_t>(size * size * size), 0.0) {}

  std::int64_t idx(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return (i * n + j) * n + k;
  }
  std::int64_t total() const { return n * n * n; }
};

/// Weighted-Jacobi smoothing of planes [lo, hi): scratch <- relax(u).
void smooth_planes(Level& lvl, std::int64_t lo, std::int64_t hi) {
  constexpr double kWeight = 0.8;
  for (std::int64_t i = std::max<std::int64_t>(lo, 1);
       i < std::min(hi, lvl.n - 1); ++i) {
    for (std::int64_t j = 1; j < lvl.n - 1; ++j) {
      for (std::int64_t k = 1; k < lvl.n - 1; ++k) {
        const double neighbours = lvl.u[static_cast<std::size_t>(lvl.idx(i - 1, j, k))] +
                                  lvl.u[static_cast<std::size_t>(lvl.idx(i + 1, j, k))] +
                                  lvl.u[static_cast<std::size_t>(lvl.idx(i, j - 1, k))] +
                                  lvl.u[static_cast<std::size_t>(lvl.idx(i, j + 1, k))] +
                                  lvl.u[static_cast<std::size_t>(lvl.idx(i, j, k - 1))] +
                                  lvl.u[static_cast<std::size_t>(lvl.idx(i, j, k + 1))];
        const double jac = (lvl.f[static_cast<std::size_t>(lvl.idx(i, j, k))] + neighbours) / 6.0;
        lvl.scratch[static_cast<std::size_t>(lvl.idx(i, j, k))] =
            (1.0 - kWeight) * lvl.u[static_cast<std::size_t>(lvl.idx(i, j, k))] + kWeight * jac;
      }
    }
  }
}

/// residual r = f - A u, into scratch of the same level, planes [lo, hi).
void residual_planes(Level& lvl, std::int64_t lo, std::int64_t hi) {
  for (std::int64_t i = std::max<std::int64_t>(lo, 1);
       i < std::min(hi, lvl.n - 1); ++i) {
    for (std::int64_t j = 1; j < lvl.n - 1; ++j) {
      for (std::int64_t k = 1; k < lvl.n - 1; ++k) {
        const double au = 6.0 * lvl.u[static_cast<std::size_t>(lvl.idx(i, j, k))] -
                          lvl.u[static_cast<std::size_t>(lvl.idx(i - 1, j, k))] -
                          lvl.u[static_cast<std::size_t>(lvl.idx(i + 1, j, k))] -
                          lvl.u[static_cast<std::size_t>(lvl.idx(i, j - 1, k))] -
                          lvl.u[static_cast<std::size_t>(lvl.idx(i, j + 1, k))] -
                          lvl.u[static_cast<std::size_t>(lvl.idx(i, j, k - 1))] -
                          lvl.u[static_cast<std::size_t>(lvl.idx(i, j, k + 1))];
        lvl.scratch[static_cast<std::size_t>(lvl.idx(i, j, k))] =
            lvl.f[static_cast<std::size_t>(lvl.idx(i, j, k))] - au;
      }
    }
  }
}

/// Restrict fine.scratch (residual) to coarse.f by 2x injection averaging.
void restrict_planes(const Level& fine, Level& coarse, std::int64_t lo,
                     std::int64_t hi) {
  for (std::int64_t i = std::max<std::int64_t>(lo, 1);
       i < std::min(hi, coarse.n - 1); ++i) {
    for (std::int64_t j = 1; j < coarse.n - 1; ++j) {
      for (std::int64_t k = 1; k < coarse.n - 1; ++k) {
        coarse.f[static_cast<std::size_t>(coarse.idx(i, j, k))] =
            fine.scratch[static_cast<std::size_t>(fine.idx(2 * i, 2 * j, 2 * k))];
      }
    }
  }
}

/// Prolong coarse.u onto fine.u (nearest-neighbour correction).
void prolong_planes(Level& fine, const Level& coarse, std::int64_t lo,
                    std::int64_t hi) {
  for (std::int64_t i = std::max<std::int64_t>(lo, 1);
       i < std::min(hi, fine.n - 1); ++i) {
    for (std::int64_t j = 1; j < fine.n - 1; ++j) {
      for (std::int64_t k = 1; k < fine.n - 1; ++k) {
        const std::int64_t ci = std::min(i / 2, coarse.n - 2);
        const std::int64_t cj = std::min(j / 2, coarse.n - 2);
        const std::int64_t ck = std::min(k / 2, coarse.n - 2);
        fine.u[static_cast<std::size_t>(fine.idx(i, j, k))] +=
            coarse.u[static_cast<std::size_t>(coarse.idx(ci, cj, ck))];
      }
    }
  }
}

/// Execution policy for the solver:
///  - planes(level, phase_fn): apply phase_fn(lo, hi) across the level's
///    plane range (serially or via the team's worksharing loop, ending in a
///    team-aligned state), and
///  - once(fn): run fn exactly once (on one thread, fenced), used for the
///    serial control-flow mutations (buffer swaps, coarse-grid clears).
/// When driven by a team, every thread executes the same deterministic
/// recursion and the collective calls keep them in lockstep.
struct MgExec {
  std::function<void(Level&, const std::function<void(std::int64_t, std::int64_t)>&)>
      planes;
  std::function<void(const std::function<void()>&)> once;
};

class MgSolver {
 public:
  MgSolver(std::int64_t finest, int levels) {
    std::int64_t n = finest;
    for (int l = 0; l < levels && n >= 4; ++l, n /= 2) levels_.emplace_back(n);
    Level& top = levels_.front();
    for (std::int64_t i = 0; i < top.total(); ++i) {
      top.f[static_cast<std::size_t>(i)] =
          counter_u01(kSeed, static_cast<std::uint64_t>(i)) - 0.5;
    }
  }

  void run(const MgExec& exec) {
    for (int cycle = 0; cycle < kVCycles; ++cycle) {
      v_cycle(0, exec);
    }
  }

  void v_cycle(std::size_t level, const MgExec& exec) {
    Level& lvl = levels_[level];
    if (level + 1 == levels_.size()) {
      smooth_level(lvl, kCoarseSmooth, exec);
      return;
    }
    Level& next = levels_[level + 1];
    smooth_level(lvl, kPreSmooth, exec);
    exec.planes(lvl, [&lvl](std::int64_t lo, std::int64_t hi) {
      residual_planes(lvl, lo, hi);
    });
    exec.planes(next, [&lvl, &next](std::int64_t lo, std::int64_t hi) {
      restrict_planes(lvl, next, lo, hi);
    });
    exec.once([&next] { std::fill(next.u.begin(), next.u.end(), 0.0); });
    v_cycle(level + 1, exec);
    exec.planes(lvl, [&lvl, &next](std::int64_t lo, std::int64_t hi) {
      prolong_planes(lvl, next, lo, hi);
    });
    smooth_level(lvl, kPostSmooth, exec);
  }

  void smooth_level(Level& lvl, int count, const MgExec& exec) {
    for (int s = 0; s < count; ++s) {
      exec.planes(lvl, [&lvl](std::int64_t lo, std::int64_t hi) {
        smooth_planes(lvl, lo, hi);
      });
      exec.once([&lvl] { std::swap(lvl.u, lvl.scratch); });
    }
  }

  double norm() const {
    const Level& top = levels_.front();
    double acc = 0.0;
    for (std::int64_t i = 0; i < top.total(); ++i) {
      acc += top.u[static_cast<std::size_t>(i)] * top.u[static_cast<std::size_t>(i)];
    }
    return std::sqrt(acc);
  }

 private:
  std::vector<Level> levels_;
};

class MgApp final : public Application {
 public:
  std::string name() const override { return "mg"; }
  std::string suite() const override { return "npb"; }
  ParallelismKind kind() const override { return ParallelismKind::Loop; }
  SweepMode sweep_mode() const override { return SweepMode::VaryInputSize; }

  std::vector<InputSize> input_sizes() const override {
    return {{"S", 0.125}, {"W", 0.5}, {"A", 1.0}};
  }

  AppCharacteristics characteristics(const InputSize& input) const override {
    AppCharacteristics c;
    c.base_seconds = 16.0 * input.scale;
    c.serial_fraction = 0.035;   // coarse grids barely parallelize
    c.mem_intensity = 0.82;
    c.numa_sensitivity = 0.95;
    c.load_imbalance = 0.08;     // plane decomposition on small levels
    c.region_rate = 320.0 / input.scale;  // many tiny regions per V-cycle
    c.iteration_rate = 2.5e5;  // planes across all levels, mostly tiny
    c.reduction_rate = 2.0;
    c.working_set_mb = 2400.0 * input.scale;
    c.alloc_intensity = 0.3;
    return c;
  }

  double run_native(rt::ThreadTeam& team, const InputSize& input,
                    double native_scale) const override {
    MgSolver solver(grid_size(input, native_scale), 4);
    team.parallel([&](rt::TeamContext& ctx) {
      const MgExec exec{
          .planes = [&ctx](Level& lvl, const std::function<void(std::int64_t, std::int64_t)>& phase) {
            ctx.parallel_for(0, lvl.n, phase);
          },
          // parallel_for's trailing barrier aligned the team; run the serial
          // mutation on thread 0 and fence before anyone reads the result.
          .once = [&ctx](const std::function<void()>& fn) {
            if (ctx.tid() == 0) fn();
            ctx.barrier();
          },
      };
      solver.run(exec);
    });
    return solver.norm();
  }

  double run_reference(const InputSize& input, double native_scale) const override {
    MgSolver solver(grid_size(input, native_scale), 4);
    const MgExec exec{
        .planes = [](Level& lvl, const std::function<void(std::int64_t, std::int64_t)>& phase) {
          phase(0, lvl.n);
        },
        .once = [](const std::function<void()>& fn) { fn(); },
    };
    solver.run(exec);
    return solver.norm();
  }

  bool deterministic_checksum() const override { return true; }

 private:
  static std::int64_t grid_size(const InputSize& input, double native_scale) {
    return next_pow2(scaled_dim(64, std::cbrt(input.scale * native_scale), 8));
  }
};

}  // namespace

const Application& mg_app() {
  static const MgApp app;
  return app;
}

}  // namespace omptune::apps
