// BT — the NPB block-tridiagonal kernel: independent lines of 5x5 block
// tridiagonal systems solved with the Thomas algorithm (block forward
// elimination via small dense LU, then back substitution). Compute heavy
// with regular access; moderate tuning potential (Table VI: 1.027 - 1.185).

#include <array>
#include <cmath>
#include <vector>

#include "apps/all_apps.hpp"
#include "apps/kernel_utils.hpp"

namespace omptune::apps {
namespace {

constexpr std::uint64_t kSeed = 0xB7B7B7u;
constexpr int kB = 5;  // block size
constexpr std::int64_t kBaseLines = 600;
constexpr std::int64_t kLineLength = 24;

using Block = std::array<double, kB * kB>;
using Vec5 = std::array<double, kB>;

double& at(Block& m, int r, int c) { return m[static_cast<std::size_t>(r * kB + c)]; }
double at(const Block& m, int r, int c) { return m[static_cast<std::size_t>(r * kB + c)]; }

/// Solve M * x = rhs for one 5x5 system in place (Gaussian elimination with
/// partial pivoting). M and rhs are clobbered; x is returned in rhs.
void solve5(Block m, Vec5& rhs) {
  for (int col = 0; col < kB; ++col) {
    int pivot = col;
    for (int r = col + 1; r < kB; ++r) {
      if (std::abs(at(m, r, col)) > std::abs(at(m, pivot, col))) pivot = r;
    }
    if (pivot != col) {
      for (int c = 0; c < kB; ++c) std::swap(at(m, col, c), at(m, pivot, c));
      std::swap(rhs[static_cast<std::size_t>(col)], rhs[static_cast<std::size_t>(pivot)]);
    }
    const double inv = 1.0 / at(m, col, col);
    for (int r = col + 1; r < kB; ++r) {
      const double f = at(m, r, col) * inv;
      for (int c = col; c < kB; ++c) at(m, r, c) -= f * at(m, col, c);
      rhs[static_cast<std::size_t>(r)] -= f * rhs[static_cast<std::size_t>(col)];
    }
  }
  for (int r = kB - 1; r >= 0; --r) {
    double acc = rhs[static_cast<std::size_t>(r)];
    for (int c = r + 1; c < kB; ++c) acc -= at(m, r, c) * rhs[static_cast<std::size_t>(c)];
    rhs[static_cast<std::size_t>(r)] = acc / at(m, r, r);
  }
}

/// M -= A * B (5x5).
void gemm_sub(Block& m, const Block& a, const Block& b) {
  for (int r = 0; r < kB; ++r) {
    for (int c = 0; c < kB; ++c) {
      double acc = 0.0;
      for (int k = 0; k < kB; ++k) acc += at(a, r, k) * at(b, k, c);
      at(m, r, c) -= acc;
    }
  }
}

/// rhs -= A * v.
void gemv_sub(Vec5& rhs, const Block& a, const Vec5& v) {
  for (int r = 0; r < kB; ++r) {
    double acc = 0.0;
    for (int k = 0; k < kB; ++k) acc += at(a, r, k) * v[static_cast<std::size_t>(k)];
    rhs[static_cast<std::size_t>(r)] -= acc;
  }
}

/// X = M^{-1} * B, column by column via solve5.
Block solve5_matrix(const Block& m, const Block& b) {
  Block x{};
  for (int c = 0; c < kB; ++c) {
    Vec5 col{};
    for (int r = 0; r < kB; ++r) col[static_cast<std::size_t>(r)] = at(b, r, c);
    solve5(m, col);
    for (int r = 0; r < kB; ++r) at(x, r, c) = col[static_cast<std::size_t>(r)];
  }
  return x;
}

Block random_block(std::uint64_t tag, double diag_boost) {
  Block b{};
  for (int r = 0; r < kB; ++r) {
    for (int c = 0; c < kB; ++c) {
      at(b, r, c) = counter_u01(kSeed, util::hash_combine(tag, static_cast<std::uint64_t>(r * kB + c))) - 0.5;
    }
    at(b, r, r) += diag_boost;
  }
  return b;
}

/// Solve one block-tridiagonal line; returns the sum of the solution.
double solve_line(std::int64_t line, std::int64_t length) {
  // Build the per-cell blocks (sub/diag/super) and rhs on the fly.
  std::vector<Block> diag(static_cast<std::size_t>(length));
  std::vector<Block> super(static_cast<std::size_t>(length));
  std::vector<Vec5> rhs(static_cast<std::size_t>(length));
  Block sub{};

  auto tag = [line](std::int64_t cell, int which) {
    return util::hash_combine(static_cast<std::uint64_t>(line) * 1315423911ULL,
                              static_cast<std::uint64_t>(cell * 4 + which));
  };

  for (std::int64_t i = 0; i < length; ++i) {
    diag[static_cast<std::size_t>(i)] = random_block(tag(i, 0), 6.0);
    super[static_cast<std::size_t>(i)] = random_block(tag(i, 1), 0.0);
    for (int r = 0; r < kB; ++r) {
      rhs[static_cast<std::size_t>(i)][static_cast<std::size_t>(r)] =
          counter_u01(kSeed ^ 0xF00D, tag(i, 2) + static_cast<std::uint64_t>(r));
    }
  }

  // Forward elimination (Thomas): diag[i] -= sub * D^{-1} * super[i-1].
  for (std::int64_t i = 1; i < length; ++i) {
    sub = random_block(tag(i, 3), 0.0);
    const Block factor = solve5_matrix(diag[static_cast<std::size_t>(i) - 1], super[static_cast<std::size_t>(i) - 1]);
    Vec5 prev_rhs = rhs[static_cast<std::size_t>(i) - 1];
    solve5(diag[static_cast<std::size_t>(i) - 1], prev_rhs);
    gemm_sub(diag[static_cast<std::size_t>(i)], sub, factor);
    gemv_sub(rhs[static_cast<std::size_t>(i)], sub, prev_rhs);
  }

  // Back substitution.
  Vec5 x_next{};
  double line_sum = 0.0;
  for (std::int64_t i = length - 1; i >= 0; --i) {
    Vec5 b = rhs[static_cast<std::size_t>(i)];
    if (i != length - 1) gemv_sub(b, super[static_cast<std::size_t>(i)], x_next);
    solve5(diag[static_cast<std::size_t>(i)], b);
    x_next = b;
    for (int r = 0; r < kB; ++r) line_sum += b[static_cast<std::size_t>(r)];
  }
  return line_sum;
}

class BtApp final : public Application {
 public:
  std::string name() const override { return "bt"; }
  std::string suite() const override { return "npb"; }
  ParallelismKind kind() const override { return ParallelismKind::Loop; }
  SweepMode sweep_mode() const override { return SweepMode::VaryInputSize; }

  std::vector<InputSize> input_sizes() const override {
    return {{"S", 0.25}, {"W", 0.5}, {"A", 1.0}};
  }

  AppCharacteristics characteristics(const InputSize& input) const override {
    AppCharacteristics c;
    c.base_seconds = 35.0 * input.scale;
    c.serial_fraction = 0.02;
    c.mem_intensity = 0.45;
    c.numa_sensitivity = 0.26;
    c.load_imbalance = 0.06;
    c.region_rate = 25.0 / input.scale;
    c.iteration_rate = 4.0e4;  // one block line per iteration, chunky
    c.reduction_rate = 2.0;
    c.working_set_mb = 1900.0 * input.scale;
    c.alloc_intensity = 0.15;
    return c;
  }

  double run_native(rt::ThreadTeam& team, const InputSize& input,
                    double native_scale) const override {
    const std::int64_t lines =
        scaled_dim(kBaseLines, input.scale * native_scale, 8);
    double total = 0.0;
    team.parallel([&](rt::TeamContext& ctx) {
      const double got = ctx.parallel_for_reduce(
          0, lines, rt::ReduceOp::Sum, [](std::int64_t lo, std::int64_t hi) {
            double acc = 0.0;
            for (std::int64_t line = lo; line < hi; ++line) {
              acc += solve_line(line, kLineLength);
            }
            return acc;
          });
      if (ctx.tid() == 0) total = got;
    });
    return total;
  }

  double run_reference(const InputSize& input, double native_scale) const override {
    const std::int64_t lines =
        scaled_dim(kBaseLines, input.scale * native_scale, 8);
    double total = 0.0;
    for (std::int64_t line = 0; line < lines; ++line) {
      total += solve_line(line, kLineLength);
    }
    return total;
  }
};

}  // namespace

const Application& bt_app() {
  static const BtApp app;
  return app;
}

}  // namespace omptune::apps
