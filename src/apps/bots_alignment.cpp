// Alignment — the BOTS protein alignment benchmark: pairwise
// Smith-Waterman-style local alignment of every sequence pair, one task per
// pair. Sequence lengths vary widely, so task sizes are irregular; the
// paper's Fig. 1 headline benchmark, with modest but architecture-portable
// tuning potential (Table VI: 1.022 - 1.186).

#include <algorithm>
#include <atomic>
#include <vector>

#include "apps/all_apps.hpp"
#include "apps/kernel_utils.hpp"

namespace omptune::apps {
namespace {

constexpr std::uint64_t kSeed = 0xA11A11u;
constexpr int kAlphabet = 20;  // amino acids
constexpr int kMatch = 5;
constexpr int kMismatch = -2;
constexpr int kGap = -4;

std::vector<std::uint8_t> make_sequence(std::uint64_t id, std::int64_t length) {
  std::vector<std::uint8_t> seq(static_cast<std::size_t>(length));
  for (std::int64_t i = 0; i < length; ++i) {
    seq[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
        counter_index(kSeed ^ id, static_cast<std::uint64_t>(i), kAlphabet));
  }
  return seq;
}

/// Smith-Waterman local alignment score with linear gap penalty, two-row DP.
long align_pair(const std::vector<std::uint8_t>& a,
                const std::vector<std::uint8_t>& b) {
  const std::size_t m = b.size();
  std::vector<long> prev(m + 1, 0), curr(m + 1, 0);
  long best = 0;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    curr[0] = 0;
    for (std::size_t j = 1; j <= m; ++j) {
      const long score = a[i - 1] == b[j - 1] ? kMatch : kMismatch;
      const long diag = prev[j - 1] + score;
      const long up = prev[j] + kGap;
      const long left = curr[j - 1] + kGap;
      curr[j] = std::max({0L, diag, up, left});
      best = std::max(best, curr[j]);
    }
    std::swap(prev, curr);
  }
  return best;
}

/// Sequence lengths are drawn from a long-tailed distribution: most short,
/// a few long — the source of the benchmark's load imbalance.
std::int64_t sequence_length(std::uint64_t id, std::int64_t base) {
  const double u = counter_u01(kSeed ^ 0x7777, id);
  const double factor = 0.3 + 2.7 * u * u * u;  // cubic tail
  return std::max<std::int64_t>(8, static_cast<std::int64_t>(base * factor));
}

class AlignmentApp final : public Application {
 public:
  std::string name() const override { return "alignment"; }
  std::string suite() const override { return "bots"; }
  ParallelismKind kind() const override { return ParallelismKind::Task; }
  SweepMode sweep_mode() const override { return SweepMode::VaryInputSize; }

  std::vector<InputSize> input_sizes() const override {
    return {{"small", 0.2}, {"medium", 0.5}, {"large", 1.0}};
  }

  AppCharacteristics characteristics(const InputSize& input) const override {
    AppCharacteristics c;
    c.base_seconds = 10.0 * input.scale;
    c.serial_fraction = 0.02;
    c.mem_intensity = 0.3;         // DP rows fit in cache
    c.numa_sensitivity = 0.15;     // low architecture reliance (Fig. 2)
    c.load_imbalance = 0.45;       // long-tailed pair costs
    c.region_rate = 2.0;
    c.reduction_rate = 0.2;
    c.task_granularity_us = 36.0;
    c.iteration_rate = 0.0;
    c.working_set_mb = 40.0 * input.scale;
    c.alloc_intensity = 0.3;
    return c;
  }

  double run_native(rt::ThreadTeam& team, const InputSize& input,
                    double native_scale) const override {
    const auto [count, base_len] = problem(input, native_scale);
    const std::vector<std::vector<std::uint8_t>> seqs = make_all(count, base_len);
    std::atomic<long> total{0};
    team.parallel([&](rt::TeamContext& ctx) {
      ctx.run_task_root([&ctx, &seqs, &total] {
        const std::size_t n = seqs.size();
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = i + 1; j < n; ++j) {
            ctx.spawn([&seqs, &total, i, j] {
              total.fetch_add(align_pair(seqs[i], seqs[j]),
                              std::memory_order_relaxed);
            });
          }
        }
      });
    });
    return static_cast<double>(total.load());
  }

  double run_reference(const InputSize& input, double native_scale) const override {
    const auto [count, base_len] = problem(input, native_scale);
    const std::vector<std::vector<std::uint8_t>> seqs = make_all(count, base_len);
    long total = 0;
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      for (std::size_t j = i + 1; j < seqs.size(); ++j) {
        total += align_pair(seqs[i], seqs[j]);
      }
    }
    return static_cast<double>(total);
  }

  bool deterministic_checksum() const override { return true; }

 private:
  static std::pair<std::int64_t, std::int64_t> problem(const InputSize& input,
                                                       double native_scale) {
    const double scale = input.scale * native_scale;
    return {scaled_dim(40, std::sqrt(scale), 6), scaled_dim(160, std::sqrt(scale), 16)};
  }

  static std::vector<std::vector<std::uint8_t>> make_all(std::int64_t count,
                                                         std::int64_t base_len) {
    std::vector<std::vector<std::uint8_t>> seqs;
    seqs.reserve(static_cast<std::size_t>(count));
    for (std::int64_t s = 0; s < count; ++s) {
      seqs.push_back(make_sequence(static_cast<std::uint64_t>(s),
                                   sequence_length(static_cast<std::uint64_t>(s), base_len)));
    }
    return seqs;
  }
};

}  // namespace

const Application& alignment_app() {
  static const AlignmentApp app;
  return app;
}

}  // namespace omptune::apps
