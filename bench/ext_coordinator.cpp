// EXT — coordinator overhead and chaos recovery: what does multi-host
// fault tolerance cost, and how does it degrade under host kills?
//
// Part 1 (native runner, acceptance target): the same fault-free mini-plan
// collected by the StudySupervisor with 4 workers vs the Coordinator with
// 4 host agents. The coordinator adds shard stores, a write-ahead lease
// table and tiered final compaction on top of the same fork pipeline; at
// 0% chaos it must stay within 10% of plain supervision.
//
// Part 2 (model runner, determinism check): the coordinated collection
// re-run under increasing host-kill rates (0%, 5%, 20%), reporting
// throughput, re-leases, and mean scheduled recovery latency (backoff per
// re-lease). The model runner is deterministic, so the published store is
// required to stay byte-identical at every kill rate — a recovery that
// changes the data is not a recovery. (The native runner measures real
// kernels, so its bytes are honest wall-clock noise and are not compared.)

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "bench_common.hpp"
#include "sim/executor.hpp"
#include "sim/fault_runner.hpp"
#include "sweep/coordinator.hpp"
#include "sweep/harness.hpp"
#include "sweep/supervisor.hpp"
#include "util/fs.hpp"

namespace {

using namespace omptune;

constexpr int kHosts = 4;
constexpr std::size_t kShards = 2 * kHosts;
constexpr int kReps = 2;
constexpr std::uint64_t kSeed = 0x0417D5EEDull;

/// Lowest chaos seed whose attempt-1 draws fire at least one host kill at
/// `rate` — faults draw from (seed, shard, attempt) alone, so the probe is
/// exact for the run itself. A rate ladder probed at its lowest rung fires
/// at every higher rung too (the kill threshold only widens).
std::uint64_t probe_kill_seed(double rate, std::size_t shard_count) {
  for (std::uint64_t seed = 1; seed < 4096; ++seed) {
    const sim::ChaosMonkey monkey(sim::ChaosSpec::parse(
        "seed=" + std::to_string(seed) + ",kill=" + std::to_string(rate)));
    for (std::size_t i = 0; i < shard_count; ++i) {
      // The first lease carries attempt 0 (the count of prior failures).
      if (monkey.draw_shard_fault("shard-" + std::to_string(i), 0) ==
          sim::ShardFault::KillHolder) {
        return seed;
      }
    }
  }
  return 1;
}

struct CoordRun {
  double seconds = 0;
  std::size_t samples = 0;
  sweep::CoordinatorReport report;
};

CoordRun run_coordinated(const sweep::RunnerFactory& make,
                         const sweep::StudyPlan& plan, double kill_rate,
                         std::uint64_t chaos_seed, const std::string& out) {
  sweep::CoordinatorOptions options;
  options.hosts = kHosts;
  options.shards = kShards;  // identical tier structure at every rate
  options.repetitions = kReps;
  options.seed = kSeed;
  options.heartbeat_timeout_ms = 2000;
  options.backoff.base_ms = 5;
  options.backoff.max_ms = 200;
  if (kill_rate > 0) {
    options.chaos = sim::ChaosSpec::parse(
        "seed=" + std::to_string(chaos_seed) +
        ",kill=" + std::to_string(kill_rate));
    options.max_shard_attempts = 1000;  // chaos must never quarantine
  }

  CoordRun run;
  const auto start = std::chrono::steady_clock::now();
  sweep::Coordinator coordinator(make, options);
  run.samples = coordinator.run(plan, out).size();
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  run.report = coordinator.report();
  return run;
}

}  // namespace

int main() {
  bench::print_header("EXT-COORDINATOR",
                      "multi-host lease/compaction overhead + chaos recovery");

  const std::string scratch =
      (std::filesystem::temp_directory_path() /
       ("omptune_bench_coord_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);

  // Warm-up (page in code/data so the first timed run is not penalized).
  {
    sim::ModelRunner runner;
    sweep::SweepHarness harness(runner, 2, 1);
    harness.run_study(sweep::StudyPlan::mini_plan(1, 20));
  }

  // ---- part 1: overhead vs the supervisor, native kernels ------------------
  const sweep::RunnerFactory native = [] {
    return std::unique_ptr<sim::Runner>(std::make_unique<sim::NativeRunner>(
        /*native_scale=*/0.02, /*max_threads=*/4));
  };
  const sweep::StudyPlan native_plan = sweep::StudyPlan::mini_plan(2, 10);

  double supervised_s = 0;
  std::size_t supervised_samples = 0;
  {
    sweep::SupervisorOptions options;
    options.workers = kHosts;
    options.repetitions = kReps;
    options.seed = kSeed;
    const auto start = std::chrono::steady_clock::now();
    sweep::StudySupervisor supervisor(native, options);
    supervised_samples = supervisor.run(native_plan).size();
    supervised_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
  const CoordRun coordinated = run_coordinated(
      native, native_plan, 0.0, 0, util::path_join(scratch, "native.omps"));
  if (coordinated.samples != supervised_samples) {
    std::printf("SAMPLE COUNT MISMATCH — runs are not comparable\n");
    return 1;
  }
  std::printf("\nnative runner, fault-free, %zu samples per run:\n",
              supervised_samples);
  std::printf("  %-28s %8.3f s\n", "supervised (4 workers)", supervised_s);
  std::printf("  %-28s %8.3f s  (%+.2f%%)\n", "coordinated (4 hosts)",
              coordinated.seconds,
              100.0 * (coordinated.seconds - supervised_s) / supervised_s);

  // ---- part 2: recovery under host kills, deterministic model samples ------
  const sweep::RunnerFactory model = [] {
    return std::unique_ptr<sim::Runner>(std::make_unique<sim::ModelRunner>());
  };
  const sweep::StudyPlan model_plan = sweep::StudyPlan::mini_plan(4, 300);
  const double kill_rates[] = {0.0, 0.05, 0.20};
  // Probe within the run's ACTUAL shard count (clamped to the settings),
  // so the lowest rung of the rate ladder provably fires at least one kill.
  const std::size_t shard_count =
      std::min(kShards, sweep::flatten_plan(model_plan).size());
  const std::uint64_t chaos_seed = probe_kill_seed(0.05, shard_count);
  std::string reference_store;
  bool stores_identical = true;

  std::printf("\nmodel runner, host kills injected (chaos seed %llu):\n",
              static_cast<unsigned long long>(chaos_seed));
  std::printf("  %-18s %9s %11s %10s %9s %14s\n", "kill rate", "time",
              "samples/s", "re-leases", "crashes", "backoff/lease");
  for (const double rate : kill_rates) {
    const std::string out = util::path_join(
        scratch,
        "kill" + std::to_string(static_cast<int>(rate * 100)) + ".omps");
    const CoordRun run =
        run_coordinated(model, model_plan, rate, chaos_seed, out);
    const double mean_backoff =
        run.report.re_leases > 0
            ? static_cast<double>(run.report.backoff_ms_total) /
                  static_cast<double>(run.report.re_leases)
            : 0.0;
    std::printf("  %16.0f%% %7.3f s %11.0f %10zu %9zu %11.1f ms\n",
                rate * 100, run.seconds, run.samples / run.seconds,
                run.report.re_leases, run.report.host_crashes, mean_backoff);
    const std::optional<std::string> bytes = util::read_file(out);
    if (rate == 0.0) {
      reference_store = bytes.value_or("");
    } else if (!bytes || *bytes != reference_store) {
      stores_identical = false;
    }
  }
  std::filesystem::remove_all(scratch);

  const double overhead =
      100.0 * (coordinated.seconds - supervised_s) / supervised_s;
  std::printf("\ncoordinator vs supervised at 0%% chaos: %+.2f%% "
              "(target < 10%%) — %s\n",
              overhead, overhead < 10.0 ? "PASS" : "WARN");
  std::printf("stores byte-identical across kill rates: %s\n",
              stores_identical ? "PASS" : "FAIL");
  return stores_identical && overhead < 10.0 ? 0 : 1;
}
