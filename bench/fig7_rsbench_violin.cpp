// Reproduces Fig. 7: performance distributions of the full configuration
// sweep for the RSBench proxy application (thread-count sweep) on all
// architectures.

#include <map>

#include "bench_common.hpp"
#include "stats/descriptive.hpp"
#include "stats/kde.hpp"

int main() {
  using namespace omptune;
  bench::print_header("FIGURE 7",
                      "Full-space runtime distributions, RSBench proxy application");

  const sweep::Dataset dataset = bench::run_app_study("rsbench");
  std::map<std::string, std::vector<double>> groups;
  for (const auto& s : dataset.samples()) {
    groups[s.arch + "/threads=" + std::to_string(s.threads)].push_back(s.mean_runtime);
  }
  for (const auto& [key, runtimes] : groups) {
    const auto summary = stats::summarize(runtimes);
    std::printf("\n--- %s (%zu configs)  median %.3fs  IQR [%.3f, %.3f] ---\n",
                key.c_str(), runtimes.size(), summary.median, summary.q25,
                summary.q75);
    std::printf("%s", stats::render_ascii_violin(runtimes, 10, 44).c_str());
  }
  return 0;
}
