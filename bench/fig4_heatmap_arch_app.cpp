// Reproduces Fig. 4: influence heat map with data grouped by
// (architecture, application) pair — the finest grouping of the paper's
// hierarchical modelling style.

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("FIGURE 4",
                      "Feature influence, data grouped by architecture-application");

  const auto result = bench::run_full_study();
  const auto& map = result.per_arch_app_influence;

  util::HeatMapRenderer heat("", map.feature_names);
  for (const auto& row : map.rows) heat.add_row(row.group, row.influence);
  std::printf("%s\n", heat.render().c_str());
  std::printf("(%zu (architecture, application) groups with a usable decision\n"
              "boundary; single-class groups are skipped, as in the paper's\n"
              "treatment of apps that were not run on a machine.)\n",
              map.rows.size());
  return 0;
}
