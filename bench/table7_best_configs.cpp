// Reproduces Table VII: best performing environment variables and values
// for the paper's two example applications (NQueens and CG), extracted by
// lift analysis over near-best configurations.

#include "analysis/recommend.hpp"
#include "bench_common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("TABLE VII", "Best performing environment variables and values");

  const auto result = bench::run_full_study();

  util::TextTable table("", {"App", "Arch", "Variable", "Value", "lift", "share"});
  for (const char* app : {"nqueens", "cg"}) {
    const auto recs = analysis::recommend_for_app(result.dataset, app);
    int shown = 0;
    for (const auto& rec : recs) {
      // Keep the table compact: the strongest few rows per scope.
      if (rec.lift < 1.5 && rec.arch != "all") continue;
      if (++shown > 12) break;
      table.add_row({app, rec.arch, rec.variable, rec.value,
                     util::format_double(rec.lift, 2),
                     util::format_double(rec.share_in_best, 2)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper Table VII: NQueens -> KMP_LIBRARY=turnaround on ALL architectures;\n"
              "CG on Skylake -> KMP_FORCE_REDUCTION=tree/atomic (+KMP_ALIGN_ALLOC).\n");
  return 0;
}
