// Reproduces Fig. 2: influence heat map with data grouped by APPLICATION
// (architectures pooled; the Architecture column shows how
// architecture-dependent each app's tuning is).

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("FIGURE 2",
                      "Feature influence, data grouped by application (darker = more influence)");

  const auto result = bench::run_full_study();
  const auto& map = result.per_app_influence;

  util::HeatMapRenderer heat("", map.feature_names);
  for (const auto& row : map.rows) heat.add_row(row.group, row.influence);
  std::printf("%s\n", heat.render().c_str());

  std::printf("Shape checks vs the paper:\n"
              " - BOTS task apps (alignment/health/nqueens) show LOW Architecture\n"
              "   reliance: tuning once transfers across machines.\n"
              " - Sort and Strassen show NO Architecture reliance (A64FX-only data).\n"
              " - Classifier accuracies per row:\n");
  for (const auto& row : map.rows) {
    std::printf("     %-10s accuracy %.2f  optimal share %.2f  (n=%zu)\n",
                row.group.c_str(), row.model_accuracy, row.positive_share,
                row.samples);
  }
  return 0;
}
