// Reproduces Table III: Wilcoxon signed-rank tests across repetition pairs
// of the Alignment benchmark per architecture. High p-values = consistent
// measurements (A64FX); low p-values = significant run-to-run differences
// (the shared-cluster X86 machines).

#include "bench_common.hpp"
#include "stats/wilcoxon.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("TABLE III",
                      "Wilcoxon test results for runtime comparisons across architectures");

  const sweep::Dataset dataset = bench::run_app_study("alignment");

  util::TextTable table(
      "", {"Architecture-Benchmark", "Pair", "Test Stat", "p-value", "paper p"});
  const char* paper_p[3][3] = {
      {"0.73", "0.86", "0.72"},          // a64fx: consistent
      {"3.2e-12", "~0", "~0"},           // milan: significant differences
      {"0.19", "4.2e-154", "1.8e-140"},  // skylake
  };
  const char* archs[] = {"a64fx", "milan", "skylake"};

  for (int a = 0; a < 3; ++a) {
    // The paper tests the "small" input setting.
    std::vector<std::vector<double>> reps(4);
    for (const auto& s : dataset.samples()) {
      if (s.arch != archs[a] || s.input != "small") continue;
      for (int r = 0; r < 4; ++r) {
        reps[static_cast<std::size_t>(r)].push_back(s.runtimes[static_cast<std::size_t>(r)]);
      }
    }
    for (int pair = 0; pair < 3; ++pair) {
      const auto result = stats::wilcoxon_signed_rank(
          reps[static_cast<std::size_t>(pair)], reps[static_cast<std::size_t>(pair) + 1]);
      table.add_row({
          std::string(archs[a]) + "-alignment-small",
          "R" + std::to_string(pair) + ", R" + std::to_string(pair + 1),
          util::format_double(result.statistic, 1),
          result.p_value < 1e-4 ? "<1e-4" : util::format_double(result.p_value, 3),
          paper_p[a][static_cast<std::size_t>(pair)],
      });
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Shape check: A64FX pairs consistent (high p); X86 pairs show\n"
              "statistically significant drift (low p) — as in the paper.\n");
  return 0;
}
