// EXT — tuning-as-a-service: what does the long-running server buy over
// the one-shot CLI path, and does it hold its service-level floor?
//
// Boots a serve::Server on a unix socket over a CI-sized study store, then
// measures three client shapes:
//   one-shot          the `omptune query` cost model: open the store, fit
//                     the knowledge base, recommend — per query;
//   sustained load    a heavy-traffic client pipelining warm-cache
//                     recommendation batches (the QPS headline), plus a
//                     single-request phase for honest p50/p99 latency;
//   iterative tuner   a PipeTune-style loop: fetch the variable priority,
//                     then walk it querying per-value marginals to refine
//                     a configuration — many small dependent round trips.
//
// Acceptance gates (exit code 1 on miss):
//   - sustained warm-cache recommendation throughput >= 50,000 QPS;
//   - single-request p99 latency < 1 ms;
//   - zero shed replies and zero errors under the load (the bound is not
//     hit by a well-behaved client), and a clean drain at the end;
//   - the RetryingClient on a healthy wire stays within 10% of the plain
//     client's warm-cache QPS with zero retries (the resilience layer is
//     free when nothing is failing).
//
// The measured QPS / p50 / p99 and the comparison numbers are recorded in
// BENCH_serve.json next to the working directory for trend tracking.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "analysis/recommend.hpp"
#include "core/tuner.hpp"
#include "serve/client.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "util/fs.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace omptune;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

serve::Request recommend_request(const std::string& app,
                                 const std::string& arch) {
  serve::Request request;
  request.type = serve::MsgType::Recommend;
  request.app = app;
  request.arch = arch;
  return request;
}

}  // namespace

int main() {
  bench::print_header("EXT-SERVE",
                      "high-QPS recommendation service vs one-shot queries");

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("omptune_bench_serve_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  util::create_directories(dir);
  const std::string store_path = util::path_join(dir, "study.omps");
  const std::string socket_path = util::path_join(dir, "s.sock");

  // CI-sized store: the same scale the store-pipeline smoke exercises.
  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner, 3);
  const sweep::Dataset dataset =
      harness.run_study(sweep::StudyPlan::mini_plan(4, 50));
  store::write_store(store_path, dataset);

  // The query population: every (app, arch) pair the store covers.
  std::vector<serve::Request> pairs;
  {
    const store::StoreReader reader(store_path);
    for (const store::SettingEntry& entry : reader.settings()) {
      const bool seen = std::any_of(
          pairs.begin(), pairs.end(), [&](const serve::Request& r) {
            return r.app == entry.app && r.arch == entry.arch;
          });
      if (!seen) pairs.push_back(recommend_request(entry.app, entry.arch));
    }
  }
  std::printf("\nstore: %zu samples, %zu (app, arch) pairs\n", dataset.size(),
              pairs.size());

  // -- one-shot baseline: what `omptune query` pays per invocation --------
  double one_shot_seconds = 1e300;
  for (int i = 0; i < 3; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const store::StoreReader reader(store_path);
    const core::KnowledgeBase kb(reader, pairs[0].arch, 1.01);
    (void)kb.best_known_config(pairs[0].app, pairs[0].arch);
    (void)kb.variable_priority(pairs[0].app, pairs[0].arch);
    one_shot_seconds = std::min(one_shot_seconds, seconds_since(start));
  }
  std::printf("one-shot CLI path (open + fit + recommend): %.3f ms/query\n",
              one_shot_seconds * 1e3);

  // -- the server ---------------------------------------------------------
  serve::ServerOptions options;
  options.socket_path = socket_path;
  options.handle_signals = false;
  serve::Server server({store_path}, std::move(options));
  std::thread server_thread([&server] { server.run(); });
  while (!server.ready()) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  serve::Client client = serve::Client::connect_unix(socket_path);

  // Warm the reply cache: one pass over the whole query population.
  (void)client.call(pairs);

  // -- sustained throughput: pipelined warm-cache batches -----------------
  constexpr std::size_t kBatch = 64;
  std::vector<serve::Request> batch;
  batch.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) batch.push_back(pairs[i % pairs.size()]);
  std::uint64_t sustained_requests = 0;
  const auto load_start = std::chrono::steady_clock::now();
  while (seconds_since(load_start) < 2.0) {
    const std::vector<serve::Response> replies = client.call(batch);
    for (const serve::Response& reply : replies) {
      if (reply.type != serve::MsgType::RecommendReply) {
        std::fprintf(stderr, "unexpected reply type under load\n");
        return 1;
      }
    }
    sustained_requests += replies.size();
  }
  const double load_seconds = seconds_since(load_start);
  const double qps = static_cast<double>(sustained_requests) / load_seconds;

  // -- resilience tax: the same load through the retrying client ----------
  // On a healthy wire the RetryingClient must be nearly free: one dialed
  // connection, zero retries, just per-reply plausibility checks on top of
  // the plain client. Gate: within 10% of the plain warm-cache QPS.
  serve::RetryPolicy retry_policy;
  retry_policy.breaker_threshold = 0;
  serve::RetryingClient retry_client =
      serve::RetryingClient::over_unix(socket_path, retry_policy);
  std::uint64_t retry_requests = 0;
  const auto retry_start = std::chrono::steady_clock::now();
  while (seconds_since(retry_start) < 2.0) {
    const std::vector<serve::Response> replies = retry_client.call(batch);
    for (const serve::Response& reply : replies) {
      if (reply.type != serve::MsgType::RecommendReply) {
        std::fprintf(stderr, "unexpected reply type under retrying load\n");
        return 1;
      }
    }
    retry_requests += replies.size();
  }
  const double retry_seconds = seconds_since(retry_start);
  const double retry_qps =
      static_cast<double>(retry_requests) / retry_seconds;
  const double retry_tax = qps > 0.0 ? 1.0 - retry_qps / qps : 1.0;

  // -- single-request latency distribution --------------------------------
  constexpr std::size_t kLatencyProbes = 20000;
  std::vector<double> latencies_us;
  latencies_us.reserve(kLatencyProbes);
  for (std::size_t i = 0; i < kLatencyProbes; ++i) {
    const auto start = std::chrono::steady_clock::now();
    (void)client.call_one(pairs[i % pairs.size()]);
    latencies_us.push_back(seconds_since(start) * 1e6);
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  const double p50 = latencies_us[latencies_us.size() / 2];
  const double p99 = latencies_us[latencies_us.size() * 99 / 100];

  // -- PipeTune-style iterative tuner loop --------------------------------
  // Fetch the influence-ordered priority once, then walk it: for every
  // variable, probe each observed value's marginal and keep the best by
  // median speedup — dependent round trips, the opposite shape of the
  // pipelined load above.
  const char* kValues[] = {"throughput", "turnaround", "passive",
                           "cores",      "sockets",    "threads",
                           "spread",     "close",      "static",
                           "dynamic",    "guided",     "auto"};
  std::uint64_t tuner_round_trips = 0;
  const auto tuner_start = std::chrono::steady_clock::now();
  constexpr int kTunerLoops = 50;
  for (int loop = 0; loop < kTunerLoops; ++loop) {
    const serve::Request& pair = pairs[loop % pairs.size()];
    const serve::Response seed_reply = client.call_one(pair);
    ++tuner_round_trips;
    for (const std::string& variable : seed_reply.variable_priority) {
      double best_median = 0.0;
      for (const char* value : kValues) {
        serve::Request probe;
        probe.type = serve::MsgType::Marginal;
        probe.arch = "all";
        probe.variable = variable;
        probe.value = value;
        const serve::Response marginal = client.call_one(probe);
        ++tuner_round_trips;
        if (marginal.found) {
          best_median = std::max(best_median, marginal.median_speedup);
        }
      }
    }
  }
  const double tuner_seconds = seconds_since(tuner_start);
  const double tuner_rps = static_cast<double>(tuner_round_trips) / tuner_seconds;

  // -- drain + counters ----------------------------------------------------
  client.close();
  server.request_stop();
  server_thread.join();
  const serve::ServerCounters counters = server.counters();
  const double hit_rate =
      counters.cache_hits + counters.cache_misses == 0
          ? 0.0
          : static_cast<double>(counters.cache_hits) /
                static_cast<double>(counters.cache_hits + counters.cache_misses);

  std::printf("\nsustained pipelined load (batch %zu, warm cache):\n", kBatch);
  std::printf("  %9.0f QPS over %.2f s (%llu requests)\n", qps, load_seconds,
              static_cast<unsigned long long>(sustained_requests));
  std::printf("retrying client, same load, healthy wire:\n");
  std::printf("  %9.0f QPS (%.1f%% tax, %llu retries, %llu reconnects)\n",
              retry_qps, retry_tax * 100.0,
              static_cast<unsigned long long>(retry_client.counters().retries),
              static_cast<unsigned long long>(
                  retry_client.counters().reconnects));
  std::printf("single-request latency (%zu probes):\n", kLatencyProbes);
  std::printf("  p50 %8.1f us   p99 %8.1f us\n", p50, p99);
  std::printf("iterative tuner loop (%d refinements):\n", kTunerLoops);
  std::printf("  %9.0f round-trips/s (%llu dependent queries)\n", tuner_rps,
              static_cast<unsigned long long>(tuner_round_trips));
  std::printf("server counters: served %llu, batches %llu, cache hit rate "
              "%.3f, shed %llu\n",
              static_cast<unsigned long long>(counters.served),
              static_cast<unsigned long long>(counters.batches), hit_rate,
              static_cast<unsigned long long>(counters.shed));
  std::printf("vs one-shot: %.0fx more queries per second than re-opening "
              "the store per query\n",
              qps * one_shot_seconds);

  // Record the headline numbers for trend tracking.
  {
    FILE* json = std::fopen("BENCH_serve.json", "w");
    if (json != nullptr) {
      std::fprintf(json,
                   "{\n"
                   "  \"qps_warm_cache\": %.0f,\n"
                   "  \"latency_p50_us\": %.1f,\n"
                   "  \"latency_p99_us\": %.1f,\n"
                   "  \"batch_size\": %zu,\n"
                   "  \"requests_measured\": %llu,\n"
                   "  \"one_shot_ms_per_query\": %.3f,\n"
                   "  \"tuner_round_trips_per_s\": %.0f,\n"
                   "  \"cache_hit_rate\": %.3f,\n"
                   "  \"retrying_client_qps\": %.0f,\n"
                   "  \"retrying_client_tax\": %.3f,\n"
                   "  \"store_samples\": %zu\n"
                   "}\n",
                   qps, p50, p99, kBatch,
                   static_cast<unsigned long long>(sustained_requests),
                   one_shot_seconds * 1e3, tuner_rps, hit_rate, retry_qps,
                   retry_tax, dataset.size());
      std::fclose(json);
      std::printf("recorded BENCH_serve.json\n");
    }
  }

  const bool qps_ok = qps >= 50000.0;
  const bool p99_ok = p99 < 1000.0;
  const bool clean = counters.shed == 0 && counters.wire_errors == 0 &&
                     counters.protocol_errors == 0 && counters.drained_cleanly;
  const bool retry_ok =
      retry_qps >= 0.9 * qps && retry_client.counters().retries == 0;
  std::printf("\nsustained >= 50k QPS warm-cache: %s\n",
              qps_ok ? "PASS" : "FAIL");
  std::printf("p99 < 1 ms: %s\n", p99_ok ? "PASS" : "FAIL");
  std::printf("no shed / no errors / clean drain: %s\n",
              clean ? "PASS" : "FAIL");
  std::printf("retrying client within 10%% of plain QPS, zero retries: %s\n",
              retry_ok ? "PASS" : "FAIL");

  std::filesystem::remove_all(dir);
  return qps_ok && p99_ok && clean && retry_ok ? 0 : 1;
}
