// EXT — parallel analytics engine: what does the thread pool buy on the
// end-to-end analysis path (zero-copy store aggregation + influence-map
// model fits), and does parallelism cost any determinism?
//
// Builds a synthetic study-scale dataset, persists it as a .omps store, and
// times three ways of deriving every analysis artefact:
//   legacy serial   Dataset::load_store + Study::analyze   (pre-pool path)
//   pool(1)         Study::analyze_store on a 1-lane pool  (inline chunks)
//   pool(8)         Study::analyze_store on an 8-lane pool
//
// Acceptance gates (exit code 1 on miss):
//   - pool(8) artefacts byte-identical to pool(1) artefacts — parallelism
//     must never change a single bit of any table, heat map, or trend;
//   - pool(1) within 10% of the legacy serial path (no serial regression);
//   - pool(8) at least 3x faster than pool(1) end-to-end — enforced only
//     when the machine actually has >= 8 hardware threads.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "core/study.hpp"
#include "store/reader.hpp"
#include "sweep/dataset.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace omptune;

/// Synthetic study-shaped dataset: realistic dictionaries and cardinalities
/// (a few archs/apps/inputs, hundreds of configs per setting), sized to
/// `target` samples. Runtimes correlate with a few config choices so the
/// influence fits have real structure to find.
sweep::Dataset synthetic_dataset(std::size_t target) {
  const char* archs[] = {"a64fx", "milan", "skylake"};
  const char* apps[] = {"alignment", "bt", "cg", "ep", "ft", "health",
                        "lu", "lulesh", "mg", "nqueens", "rsbench", "xsbench"};
  const char* inputs[] = {"small", "medium", "large"};
  const std::size_t settings = 3 * 12 * 3;
  const std::size_t configs = (target + settings - 1) / settings;

  util::Xoshiro256 rng(42);
  sweep::Dataset dataset;
  for (const char* arch : archs) {
    for (const char* app : apps) {
      for (const char* input : inputs) {
        for (std::size_t c = 0; c < configs; ++c) {
          sweep::Sample s;
          s.arch = arch;
          s.app = app;
          s.suite = "synthetic";
          s.kind = c % 2 == 0 ? "loop" : "task";
          s.input = input;
          s.threads = 48;
          s.config.num_threads = 48;
          s.config.places = static_cast<arch::PlacesKind>(rng.uniform_index(6));
          s.config.bind = static_cast<arch::BindKind>(rng.uniform_index(6));
          s.config.schedule = static_cast<rt::ScheduleKind>(rng.uniform_index(4));
          s.config.chunk = static_cast<int>(rng.uniform_index(4)) * 8;
          s.config.library = static_cast<rt::LibraryMode>(rng.uniform_index(3));
          s.config.blocktime_ms =
              static_cast<std::int64_t>(rng.uniform_index(5)) * 100;
          s.config.reduction =
              static_cast<rt::ReductionMethod>(rng.uniform_index(4));
          s.config.align_alloc = 64 << rng.uniform_index(4);
          // Structured runtimes: passive library and spread binding help, so
          // the logistic fits converge on non-trivial coefficients.
          const double base =
              1.7 * (s.config.library == rt::LibraryMode::Throughput ? 0.8 : 1.1) *
              (s.config.bind == arch::BindKind::Spread ? 0.9 : 1.0);
          for (int r = 0; r < 4; ++r) {
            s.runtimes.push_back(base * rng.uniform(0.85, 1.15));
          }
          s.mean_runtime = (s.runtimes[0] + s.runtimes[1] + s.runtimes[2] +
                            s.runtimes[3]) / 4.0;
          s.default_runtime = 1.7;
          s.speedup = s.default_runtime / s.mean_runtime;
          s.is_default = c == 0;
          dataset.add(std::move(s));
          if (dataset.size() == target) return dataset;
        }
      }
    }
  }
  return dataset;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

void append(std::string& out, const char* fmt, ...) {
  char buffer[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  out += buffer;
}

/// Every derived artefact rendered at full double precision: two results
/// digest equal iff every table row, influence cell, and trend is
/// bit-identical (%.17g round-trips doubles exactly).
std::string digest(const core::StudyResult& result) {
  std::string out;
  append(out, "dataset %zu\n", result.dataset.size());
  for (const auto& u : result.upshot) {
    append(out, "upshot %s %.17g %.17g %.17g\n", u.arch.c_str(), u.min_best,
           u.median_best, u.max_best);
  }
  for (const auto& r : result.ranges_by_arch) {
    append(out, "range_arch %s %s %.17g %.17g\n", r.app.c_str(), r.arch.c_str(),
           r.lo, r.hi);
  }
  for (const auto& r : result.ranges_by_app) {
    append(out, "range_app %s %.17g %.17g\n", r.app.c_str(), r.lo, r.hi);
  }
  for (const analysis::InfluenceMap* map :
       {&result.per_app_influence, &result.per_arch_influence,
        &result.per_arch_app_influence}) {
    for (const auto& name : map->feature_names) append(out, "%s ", name.c_str());
    out += "\n";
    for (const auto& row : map->rows) {
      append(out, "row %s acc=%.17g pos=%.17g n=%zu:", row.group.c_str(),
             row.model_accuracy, row.positive_share, row.samples);
      for (double v : row.influence) append(out, " %.17g", v);
      out += "\n";
    }
  }
  for (const auto& t : result.worst_trends) {
    append(out, "trend %s %.17g %.17g %.17g\n", t.condition.c_str(),
           t.share_in_worst, t.share_overall, t.lift);
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header("EXT-PARALLEL-ANALYSIS",
                      "thread-pooled store aggregation + model training");

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("omptune_bench_par_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  util::create_directories(dir);
  const std::string store_path = util::path_join(dir, "study.omps");

  const std::size_t samples = 60000;
  synthetic_dataset(samples).save_store(store_path);
  sim::ModelRunner runner;
  core::Study study(runner);

  // Warm the store into the page cache so the timings compare compute, not
  // first-touch disk latency. Each path is timed best-of-3: the artefacts
  // are deterministic, so the minimum is the honest cost with scheduler
  // noise stripped.
  (void)sweep::Dataset::load_store(store_path);
  constexpr int kRuns = 3;

  // Legacy serial path: materialize every Sample, then analyze with no pool.
  core::StudyResult legacy;
  double legacy_seconds = 1e300;
  for (int i = 0; i < kRuns; ++i) {
    const auto start = std::chrono::steady_clock::now();
    legacy = study.analyze(sweep::Dataset::load_store(store_path));
    legacy_seconds = std::min(legacy_seconds, seconds_since(start));
  }

  const store::StoreReader reader(store_path);
  const util::ThreadPool pool1(1);
  core::StudyResult serial;
  double serial_seconds = 1e300;
  for (int i = 0; i < kRuns; ++i) {
    const auto start = std::chrono::steady_clock::now();
    serial = study.analyze_store(reader, &pool1);
    serial_seconds = std::min(serial_seconds, seconds_since(start));
  }

  const util::ThreadPool pool8(8);
  core::StudyResult parallel;
  double parallel_seconds = 1e300;
  for (int i = 0; i < kRuns; ++i) {
    const auto start = std::chrono::steady_clock::now();
    parallel = study.analyze_store(reader, &pool8);
    parallel_seconds = std::min(parallel_seconds, seconds_since(start));
  }

  std::printf("\n%zu samples end-to-end (aggregation + 3 influence maps + "
              "trends):\n",
              samples);
  std::printf("  %-28s %9.3f s\n", "legacy serial (pre-pool)", legacy_seconds);
  std::printf("  %-28s %9.3f s  (%.2fx vs legacy)\n", "analyze_store, pool(1)",
              serial_seconds, legacy_seconds / serial_seconds);
  std::printf("  %-28s %9.3f s  (%.2fx vs pool(1))\n", "analyze_store, pool(8)",
              parallel_seconds, serial_seconds / parallel_seconds);

  const std::string serial_digest = digest(serial);
  const bool identical = digest(parallel) == serial_digest &&
                         digest(legacy) == serial_digest;
  const bool serial_ok = serial_seconds <= legacy_seconds * 1.10;
  const unsigned hw = std::thread::hardware_concurrency();
  const bool gate_speedup = hw >= 8;
  const bool speedup_ok =
      !gate_speedup || serial_seconds / parallel_seconds >= 3.0;

  std::printf("\nartefacts bit-identical (pool 8 == pool 1 == legacy): %s\n",
              identical ? "PASS" : "FAIL");
  std::printf("pool(1) within 10%% of legacy serial: %s\n",
              serial_ok ? "PASS" : "FAIL");
  if (gate_speedup) {
    std::printf("pool(8) >= 3x pool(1): %s\n", speedup_ok ? "PASS" : "FAIL");
  } else {
    std::printf("pool(8) >= 3x pool(1): skipped (%u hardware threads < 8)\n",
                hw);
  }

  std::filesystem::remove_all(dir);
  return identical && serial_ok && speedup_ok ? 0 : 1;
}
