// Reproduces Table II: dataset description (applications and sample counts
// per architecture) by running the full data-collection sweep.

#include <map>
#include <set>

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("TABLE II", "Dataset description");

  const auto result = bench::run_full_study();
  std::map<std::string, std::size_t> samples;
  std::map<std::string, std::set<std::string>> apps;
  for (const auto& s : result.dataset.samples()) {
    ++samples[s.arch];
    apps[s.arch].insert(s.app);
  }

  util::TextTable table("", {"Architecture", "Applications", "#Samples", "paper #Samples"});
  const std::pair<const char*, const char*> rows[] = {
      {"a64fx", "53822"}, {"milan", "99707"}, {"skylake", "90230"}};
  for (const auto& [arch, paper] : rows) {
    table.add_row({arch, std::to_string(apps[arch].size()),
                   std::to_string(samples[arch]), paper});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Total unique samples: %zu (paper: \"over 240,000\"; exact total 243759)\n",
              result.dataset.size());
  return 0;
}
