// Reproduces Table IV: per-repetition mean/stddev of the Alignment
// benchmark runtimes per architecture — means and deviations are similar
// across repetitions of one machine.

#include "bench_common.hpp"
#include "stats/descriptive.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("TABLE IV", "Runtime statistics for different architectures");

  const sweep::Dataset dataset = bench::run_app_study("alignment");

  util::TextTable table("", {"Architecture-Application", "Runtime Idx",
                             "Mean (sec)", "Std Dev (sec)"});
  for (const char* arch : {"a64fx", "milan", "skylake"}) {
    for (int rep = 0; rep < 3; ++rep) {
      std::vector<double> runtimes;
      for (const auto& s : dataset.samples()) {
        if (s.arch == arch && s.input == "small") {
          runtimes.push_back(s.runtimes[static_cast<std::size_t>(rep)]);
        }
      }
      table.add_row({
          std::string(arch) + "-alignment-small",
          "Runtime_" + std::to_string(rep),
          util::format_double(stats::mean(runtimes), 3),
          util::format_double(stats::stddev(runtimes), 3),
      });
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Shape check: per-architecture means/stddevs agree across repetitions\n"
              "(paper Table IV), while Table III still detects the paired drift on X86.\n");
  return 0;
}
