// Extension study (paper Section VI future work): compare the
// interpretable linear classifier against non-linear models (CART, random
// forest) per architecture, and quantify transfer to unseen applications
// via leave-one-app-out evaluation.

#include <algorithm>

#include "analysis/model_comparison.hpp"
#include "bench_common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace omptune;
  bench::print_header("EXTENSION",
                      "Linear vs non-linear models + transfer to unseen applications");

  // Reduced study (the analyses are about model quality, not scale).
  sim::ModelRunner runner;
  sweep::SweepHarness harness(runner, 3);
  sweep::StudyPlan plan = sweep::StudyPlan::paper_plan();
  for (auto& arch_plan : plan.arch_plans) {
    for (auto& count : arch_plan.configs_per_setting) count = 250;
  }
  const sweep::Dataset dataset = harness.run_study(plan);

  ml::ForestOptions forest;
  forest.num_trees = 20;

  util::TextTable models("classifier accuracy per architecture (training; forest also OOB)",
                         {"arch", "samples", "optimal share", "logistic",
                          "tree", "forest", "forest OOB"});
  for (const auto& row : analysis::compare_models(dataset, 1.01, forest)) {
    models.add_row({row.group, std::to_string(row.samples),
                    util::format_double(row.positive_share, 2),
                    util::format_double(row.logistic_accuracy, 3),
                    util::format_double(row.tree_accuracy, 3),
                    util::format_double(row.forest_accuracy, 3),
                    util::format_double(row.forest_oob_accuracy, 3)});
  }
  std::printf("%s\n", models.render().c_str());

  const auto transfer = analysis::leave_one_app_out(dataset, 1.01, forest);
  int beats = 0;
  util::TextTable worst_best("leave-one-app-out transfer (forest, env-var features only)",
                             {"arch", "held-out app", "majority baseline",
                              "forest accuracy", "transfers?"});
  std::vector<analysis::TransferResult> sorted = transfer;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              return (a.forest_accuracy - a.majority_baseline) >
                     (b.forest_accuracy - b.majority_baseline);
            });
  for (const auto& r : sorted) {
    const bool transfers = r.forest_accuracy > r.majority_baseline + 0.02;
    beats += transfers;
    worst_best.add_row({r.arch, r.held_out_app,
                        util::format_double(r.majority_baseline, 3),
                        util::format_double(r.forest_accuracy, 3),
                        transfers ? "yes" : "no"});
  }
  std::printf("%s\n", worst_best.render().c_str());
  std::printf("%d of %zu held-out (arch, app) pairs transfer above the majority\n"
              "baseline — confirming the paper's caution: \"there is no guarantee\n"
              "this knowledge can be transferred to new unseen applications\".\n",
              beats, sorted.size());
  return 0;
}
